//! The [`ErrorBoundedCodec`] trait and its four implementations.
//!
//! A codec is a self-describing byte-stream format with block-granular
//! partial decode: `decode_blocks(range)` reconstructs exactly the
//! elements covered by a block range, reading only those blocks' payload
//! bytes. All implementations are copy-free (they parse borrowed views
//! over the frame bytes — never materialize the payload) and
//! allocation-free after warm-up (scratch lives in [`CodecScratch`] or on
//! the stack).
//!
//! The trait is f32-first (every codec must handle f32 frames); f64 is
//! opt-in per codec through [`ErrorBoundedCodec::supports_dtype`] and the
//! `*_f64` methods, whose defaults return
//! [`StoreError::UnsupportedDtype`]. The cuSZp-backed codecs (`CZP1` and
//! the hybrid `CZH1`) support both element types.

use crate::error::StoreError;
use baselines::{cuszx, cuzfp};
use cuszp_core::hybrid::{self, HybridRef, HybridScratch, HYBRID_MAGIC};
use cuszp_core::{fast, CompressedRef, CuszpConfig, DType, FloatData, Scratch};
use std::ops::Range;

/// 4-byte codec identifier persisted in shard chunk entries.
pub type FormatId = [u8; 4];

/// Reusable per-codec scratch. One instance serves every registered
/// codec; with warm buffers a partial decode performs zero heap
/// allocations (the cuSZx/cuZFP adapters use only stack arrays, cuSZp
/// uses the arena).
#[derive(Default)]
pub struct CodecScratch {
    /// Arena for the cuSZp fast codec (offsets + worker state).
    pub cuszp: Scratch,
    /// Staging buffer for the hybrid codec's lossy pre-stage frame
    /// (the `CUSZP1` bytes the second stage recodes).
    pub stage: Vec<u8>,
    /// Chunk staging for the hybrid entropy stage.
    pub hybrid: HybridScratch,
}

impl CodecScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An error-bounded (or, for cuZFP, fixed-rate) codec with block-granular
/// partial decode over its own self-describing byte-stream format.
///
/// # Contract
///
/// * `encode` replaces `out` with a frame that `num_elements` and the
///   decode methods accept; the frame embeds everything needed to decode
///   (no out-of-band metadata).
/// * `decode_blocks(stream, b0..b1, ..)` writes exactly
///   `min(b1·L, N) − min(b0·L, N)` elements (`L = block_len()`, `N` the
///   frame's element count; the final block may be ragged), value-
///   identical to decoding the whole frame and slicing. It returns the
///   payload bytes it read — the basis of the store's bytes-touched
///   accounting — and must read **only** the requested blocks' payload
///   plus per-block metadata.
/// * Corrupt frame bytes yield `Err`, never a panic or an over-read.
///   Out-of-range block ranges or wrong `out` lengths are caller bugs and
///   may panic.
/// * If `is_error_bounded()`, every decoded value is within `eb` of its
///   original (the conformance suite enforces this table-wide).
pub trait ErrorBoundedCodec {
    /// Persisted identifier resolving this codec at read time.
    fn format_id(&self) -> FormatId;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Whether `encode`'s `eb` is honored as an absolute bound.
    fn is_error_bounded(&self) -> bool {
        true
    }
    /// Whether this codec can encode and decode `dtype` elements. Every
    /// codec handles f32; f64 is opt-in (the default says no, matching
    /// the `*_f64` defaults below).
    fn supports_dtype(&self, dtype: DType) -> bool {
        dtype == DType::F32
    }
    /// Values per block — the granularity of partial decode.
    fn block_len(&self) -> usize;
    /// The format's smallest random-access unit, in blocks: 1 for plain
    /// codecs, coarser for formats that group blocks into variable-length
    /// super-blocks (the hybrid codec's entropy chunks), where serving
    /// one block means reading its whole group's payload.
    fn access_granularity_blocks(&self) -> usize {
        1
    }
    /// Compress `data` at absolute bound `eb` into `out` (contents
    /// replaced, capacity reused).
    fn encode(&self, data: &[f32], eb: f64, scratch: &mut CodecScratch, out: &mut Vec<u8>);
    /// Element count a frame declares (validating the frame on the way).
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError>;
    /// Decode blocks `blocks` into `out`; returns payload bytes read.
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError>;
    /// Decode a whole frame (`out.len()` must equal its element count).
    fn decode_into(
        &self,
        stream: &[u8],
        scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        let n = self.num_elements(stream)?;
        assert_eq!(out.len(), n, "output slice length != frame element count");
        let num_blocks = n.div_ceil(self.block_len());
        self.decode_blocks(stream, 0..num_blocks, scratch, out)
    }
    /// Compress f64 `data` at absolute bound `eb` into `out`. Errors with
    /// [`StoreError::UnsupportedDtype`] unless the codec opted in via
    /// [`ErrorBoundedCodec::supports_dtype`].
    fn encode_f64(
        &self,
        data: &[f64],
        eb: f64,
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let _ = (data, eb, scratch, out);
        Err(StoreError::UnsupportedDtype {
            codec: self.name(),
            dtype: DType::F64,
        })
    }
    /// Decode blocks of an f64 frame; same contract as
    /// [`ErrorBoundedCodec::decode_blocks`], same opt-in as
    /// [`ErrorBoundedCodec::encode_f64`].
    fn decode_blocks_f64(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [f64],
    ) -> Result<usize, StoreError> {
        let _ = (stream, blocks, scratch, out);
        Err(StoreError::UnsupportedDtype {
            codec: self.name(),
            dtype: DType::F64,
        })
    }
}

/// cuSZp frames (`CUSZP1`): quantize + Lorenzo, fixed-length blocks of
/// 32, Eq-2 offsets recomputed from fraction ⓐ.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuszpCodec;

impl CuszpCodec {
    fn config() -> CuszpConfig {
        CuszpConfig::default()
    }

    /// Parse a frame and require its element type to match the decode
    /// request — a frame of the other dtype is a typed error, never an
    /// assert (the decoder's dtype asserts are for caller bugs only).
    fn parse_as(stream: &[u8], requested: DType) -> Result<CompressedRef<'_>, StoreError> {
        let r = CompressedRef::parse(stream)?;
        if r.dtype != requested {
            return Err(StoreError::DtypeMismatch {
                stored: r.dtype,
                requested,
            });
        }
        Ok(r)
    }
}

impl ErrorBoundedCodec for CuszpCodec {
    fn format_id(&self) -> FormatId {
        *b"CZP1"
    }
    fn name(&self) -> &'static str {
        "cuszp"
    }
    fn supports_dtype(&self, _dtype: DType) -> bool {
        true
    }
    fn block_len(&self) -> usize {
        Self::config().block_len
    }
    fn encode(&self, data: &[f32], eb: f64, scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        fast::compress_into(&mut scratch.cuszp, data, eb, Self::config(), out);
    }
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError> {
        Ok(CompressedRef::parse(stream)?.num_elements as usize)
    }
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        let r = Self::parse_as(stream, DType::F32)?;
        Ok(fast::decompress_blocks_into(
            r,
            blocks,
            &mut scratch.cuszp,
            out,
        ))
    }
    fn encode_f64(
        &self,
        data: &[f64],
        eb: f64,
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        fast::compress_into(&mut scratch.cuszp, data, eb, Self::config(), out);
        Ok(())
    }
    fn decode_blocks_f64(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [f64],
    ) -> Result<usize, StoreError> {
        let r = Self::parse_as(stream, DType::F64)?;
        Ok(fast::decompress_blocks_into(
            r,
            blocks,
            &mut scratch.cuszp,
            out,
        ))
    }
}

/// Hybrid cuSZp frames (`CZH1`): the `CUSZP1` lossy stage recoded by the
/// per-chunk adaptive entropy second stage into a `CUSZPHY1` frame —
/// unless the hybrid frame would not be smaller, in which case the plain
/// `CUSZP1` frame is stored as-is (the decode side sniffs the magic).
/// Lossless over the lossy stage, so the error bound is untouched; block
/// random access goes through the stored per-chunk offset table.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuszpHybridCodec;

impl CuszpHybridCodec {
    fn config() -> CuszpConfig {
        CuszpConfig::default()
    }

    fn encode_any<T: FloatData>(
        data: &[T],
        eb: f64,
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) {
        let CodecScratch {
            cuszp,
            stage,
            hybrid: hs,
        } = scratch;
        let cfg = Self::config();
        let r = fast::compress_into(cuszp, data, eb, cfg, stage);
        let level = cuszp_core::simd::resolve_level(cfg.simd);
        hybrid::encode_at(&r, hybrid::auto_chunk_blocks(&r), level, hs, out);
        if out.len() >= stage.len() {
            // Whole-frame fallback: the second stage did not pay for its
            // table, so store the plain frame (never larger than CUSZP1).
            out.clear();
            out.extend_from_slice(stage);
        }
    }

    fn decode_any<T: FloatData>(
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [T],
    ) -> Result<usize, StoreError> {
        let CodecScratch {
            cuszp, hybrid: hs, ..
        } = scratch;
        if stream.starts_with(&HYBRID_MAGIC) {
            let r = HybridRef::parse(stream)?;
            if r.dtype != T::DTYPE {
                return Err(StoreError::DtypeMismatch {
                    stored: r.dtype,
                    requested: T::DTYPE,
                });
            }
            Ok(hybrid::decode_blocks_into(&r, blocks, hs, cuszp, out)?)
        } else {
            let r = CuszpCodec::parse_as(stream, T::DTYPE)?;
            Ok(fast::decompress_blocks_into(r, blocks, cuszp, out))
        }
    }
}

impl ErrorBoundedCodec for CuszpHybridCodec {
    fn format_id(&self) -> FormatId {
        *b"CZH1"
    }
    fn name(&self) -> &'static str {
        "cuszp-hybrid"
    }
    fn supports_dtype(&self, _dtype: DType) -> bool {
        true
    }
    fn block_len(&self) -> usize {
        Self::config().block_len
    }
    fn access_granularity_blocks(&self) -> usize {
        // Chunk size is auto-tuned per stream ([`hybrid::auto_chunk_blocks`]);
        // report the ceiling so callers budgeting a 1-block read cover the
        // coarsest framing the encoder may pick.
        hybrid::AUTO_CHUNK_MAX_BLOCKS
    }
    fn encode(&self, data: &[f32], eb: f64, scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        Self::encode_any(data, eb, scratch, out);
    }
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError> {
        if stream.starts_with(&HYBRID_MAGIC) {
            Ok(HybridRef::parse(stream)?.num_elements as usize)
        } else {
            Ok(CompressedRef::parse(stream)?.num_elements as usize)
        }
    }
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        Self::decode_any(stream, blocks, scratch, out)
    }
    fn encode_f64(
        &self,
        data: &[f64],
        eb: f64,
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        Self::encode_any(data, eb, scratch, out);
        Ok(())
    }
    fn decode_blocks_f64(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        scratch: &mut CodecScratch,
        out: &mut [f64],
    ) -> Result<usize, StoreError> {
        Self::decode_any(stream, blocks, scratch, out)
    }
}

/// cuSZx frames (`CUSZXH1`): constant-block flush + midpoint fixed-length
/// encoding, blocks of 128, offsets prefix-summed from the descriptor
/// table.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuszxCodec;

impl ErrorBoundedCodec for CuszxCodec {
    fn format_id(&self) -> FormatId {
        *b"CZX1"
    }
    fn name(&self) -> &'static str {
        "cuszx"
    }
    fn block_len(&self) -> usize {
        cuszx::BLOCK
    }
    fn encode(&self, data: &[f32], eb: f64, _scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        cuszx::host::compress(data, eb, out);
    }
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError> {
        Ok(cuszx::host::HostStream::parse(stream)?.num_elements)
    }
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        _scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        let s = cuszx::host::HostStream::parse(stream)?;
        Ok(s.decode_blocks(blocks, out))
    }
}

/// cuZFP frames (`CUZFPH1`): fixed-rate transform coding, 1-D blocks of
/// 4, block offsets are pure multiplications. **Not error-bounded** —
/// `encode`'s `eb` is ignored; quality is set by the rate.
#[derive(Debug, Clone, Copy)]
pub struct CuzfpCodec {
    /// Bits per value (1..=32).
    pub rate: u32,
}

impl Default for CuzfpCodec {
    fn default() -> Self {
        CuzfpCodec { rate: 16 }
    }
}

impl ErrorBoundedCodec for CuzfpCodec {
    fn format_id(&self) -> FormatId {
        *b"CZF1"
    }
    fn name(&self) -> &'static str {
        "cuzfp"
    }
    fn is_error_bounded(&self) -> bool {
        false
    }
    fn block_len(&self) -> usize {
        cuzfp::host::BLOCK
    }
    fn encode(&self, data: &[f32], _eb: f64, _scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        cuzfp::host::compress(data, self.rate, out);
    }
    fn num_elements(&self, stream: &[u8]) -> Result<usize, StoreError> {
        Ok(cuzfp::host::HostStream::parse(stream)?.num_elements)
    }
    fn decode_blocks(
        &self,
        stream: &[u8],
        blocks: Range<usize>,
        _scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<usize, StoreError> {
        let s = cuzfp::host::HostStream::parse(stream)?;
        Ok(s.decode_blocks(blocks, out))
    }
}
