//! # gpu-sim — a CUDA-like execution substrate with an analytic timing model
//!
//! The cuSZp paper (SC '23) is, at its core, an argument about *where time
//! goes* on a GPU: a compressor fused into a single kernel pays only for its
//! global-memory traffic and arithmetic, while multi-kernel CPU-assisted
//! pipelines (cuSZ, cuSZx) additionally pay kernel-launch latencies, PCIe
//! transfers, and serial host work. This crate reproduces that cost structure
//! in pure Rust so the paper's end-to-end experiments can run on a machine
//! without an NVIDIA GPU.
//!
//! Two things are simulated:
//!
//! 1. **Execution semantics.** Kernels are launched over a grid of thread
//!    blocks. Blocks are dispatched *in order* by workers that draw block ids
//!    from an atomic counter — exactly the guarantee chained-scan
//!    ("StreamScan"/decoupled-lookback) algorithms rely on, and the reason
//!    cuSZp can perform its Global Synchronization inside one kernel.
//!    Warp-level primitives (`shfl_up`, ballot, reductions, scans) are
//!    provided in warp-synchronous style over `[T; 32]` lane arrays.
//!    All compressors in this repository produce *real* compressed bytes
//!    through these kernels; nothing about the data path is mocked.
//!
//! 2. **Time.** A kernel's simulated duration is derived from the
//!    global-memory bytes it moved and the arithmetic it performed, which the
//!    kernel records step-by-step as it runs (see [`BlockCtx`]). Host-side
//!    work and PCIe transfers are charged against calibrated CPU/PCIe rates.
//!    The per-[`DeviceSpec`] constants are calibrated against the A100
//!    numbers reported in the paper; see `device.rs` for the calibration
//!    notes. Because the model consumes *measured traffic*, differences
//!    between pipelines (who launches how many kernels, who round-trips data
//!    through the host) emerge from the implementations themselves.
//!
//! ## Quick tour
//!
//! ```
//! use gpu_sim::{Gpu, DeviceSpec, LaunchConfig};
//!
//! let mut gpu = Gpu::new(DeviceSpec::a100());
//! let input = gpu.h2d(&[1u32, 2, 3, 4]);
//! let output = gpu.alloc::<u32>(4);
//! let n = input.len();
//! gpu.launch("double", LaunchConfig::grid(1), |ctx| {
//!     let inp = input.slice();
//!     let out = output.slice();
//!     for i in 0..n {
//!         out.set(i, inp.get(i) * 2);
//!     }
//!     ctx.read("load", (n * 4) as u64);
//!     ctx.write("store", (n * 4) as u64);
//!     ctx.ops("math", n as u64);
//! });
//! assert_eq!(gpu.d2h(&output), vec![2, 4, 6, 8]);
//! assert!(gpu.timeline().total_time() > 0.0);
//! ```

pub mod counters;
pub mod device;
pub mod kernel;
pub mod memory;
pub mod profiler;
pub mod reduce;
pub mod scan;
pub mod timing;
pub mod warp;

mod gpu;

pub use counters::{StepTraffic, TrafficCounters};
pub use device::DeviceSpec;
pub use gpu::Gpu;
pub use kernel::{BlockCtx, LaunchConfig};
pub use memory::{DeviceAtomics, DeviceBuffer, DeviceCopy, GpuSlice};
pub use profiler::{Breakdown, KernelRecord, StepShare};
pub use scan::{scan_tile_geometry, ScanState, SCAN_ITEMS_PER_THREAD, SCAN_TILE};
pub use timing::{Event, Timeline};
pub use warp::WARP;
