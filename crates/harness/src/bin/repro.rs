//! `repro` — regenerate the cuSZp paper's tables and figures.
//!
//! ```text
//! repro list
//! repro all [--scale tiny|small|medium] [--out DIR] [--fields N]
//! repro fig13 table3 ...
//! ```

use harness::experiments::{registry, Ctx};

// Counting allocator (one relaxed atomic add per heap call — throughput
// stays representative): lets the alloc_profile experiment record live
// heap-operation counts for the zero-allocation codec claims.
#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = Ctx::default();
    let mut selected: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                ctx.scale = datasets::Scale::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scale; use tiny|small|medium");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                ctx.out_dir = args
                    .get(i)
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a directory");
                        std::process::exit(2);
                    });
            }
            "--fields" => {
                i += 1;
                ctx.max_fields = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fields needs a number");
                    std::process::exit(2);
                });
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }

    let reg = registry();
    if selected.is_empty() || selected.iter().any(|s| s == "list") {
        println!("Available experiments (run `repro all` or name them):");
        for (id, desc, _) in &reg {
            println!("  {id:<10} {desc}");
        }
        return;
    }

    let run_all = selected.iter().any(|s| s == "all");
    let mut ran = 0;
    for (id, _, runner) in &reg {
        if run_all || selected.iter().any(|s| s == id) {
            runner(&ctx);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {selected:?}; try `repro list`");
        std::process::exit(2);
    }
}
