//! The sequential reference codec.
//!
//! Produces *byte-identical* streams to the fused device kernels (a
//! cross-check the integration tests enforce) and serves as the oracle for
//! property tests. Also the natural "CPU port" a downstream user of the
//! library would call when no device is in play.

use crate::bitshuffle::{shuffle, unshuffle};
use crate::config::CuszpConfig;
use crate::dtype::FloatData;
use crate::encode::{apply_sign_map, cmp_bytes_for, plan_block, sign_map};
use crate::format::Compressed;
use crate::quantize::{quantize_block, reconstruct_block};

/// Compress `data` (`f32` or `f64`) under an **absolute** error bound `eb`.
pub fn compress<T: FloatData>(data: &[T], eb: f64, cfg: CuszpConfig) -> Compressed {
    cfg.validate();
    assert!(
        eb.is_finite() && eb > 0.0,
        "absolute bound must be positive"
    );
    let l = cfg.block_len;
    let num_blocks = data.len().div_ceil(l);

    let mut fixed_lengths = vec![0u8; num_blocks];
    let mut payload = Vec::new();
    let mut resid = vec![0i64; l];
    let mut abs_vals = vec![0u64; l];
    let mut signs = vec![0u8; l / 8];

    for (b, fl) in fixed_lengths.iter_mut().enumerate() {
        let start = b * l;
        let end = (start + l).min(data.len());
        // Tail block: pad residuals with zeros beyond the data.
        for r in resid.iter_mut() {
            *r = 0;
        }
        quantize_block(
            &data[start..end],
            eb,
            cfg.lorenzo,
            &mut resid[..end - start],
        );

        let plan = plan_block(&resid, l);
        *fl = plan.fixed_len;
        if plan.fixed_len == 0 {
            continue;
        }
        sign_map(&resid, &mut signs);
        for (a, &r) in abs_vals.iter_mut().zip(resid.iter()) {
            *a = r.unsigned_abs();
        }
        let off = payload.len();
        payload.resize(off + plan.cmp_bytes as usize, 0);
        payload[off..off + l / 8].copy_from_slice(&signs);
        shuffle(&abs_vals, plan.fixed_len, &mut payload[off + l / 8..]);
    }

    Compressed {
        num_elements: data.len() as u64,
        block_len: l as u32,
        eb,
        lorenzo: cfg.lorenzo,
        dtype: T::DTYPE,
        fixed_lengths,
        payload,
    }
}

/// Decompress a stream back to its element type.
///
/// # Panics
/// Panics if the stream is structurally invalid or was compressed from a
/// different element type than `T`.
pub fn decompress<T: FloatData>(c: &Compressed) -> Vec<T> {
    c.validate().expect("invalid stream");
    assert_eq!(c.dtype, T::DTYPE, "stream element type mismatch");
    let l = c.block_len as usize;
    let n = c.num_elements as usize;
    let mut out = vec![T::default(); n];
    let mut abs_vals = vec![0u64; l];
    let mut resid = vec![0i64; l];
    let mut block_out = vec![T::default(); l];

    let mut off = 0usize;
    for (b, &f) in c.fixed_lengths.iter().enumerate() {
        let start = b * l;
        let end = (start + l).min(n);
        if f == 0 {
            // Zero block: all quantization integers are zero ⇒ all values
            // reconstruct to 0.0.
            for v in out[start..end].iter_mut() {
                *v = T::from_f64(0.0);
            }
            continue;
        }
        let cmp = cmp_bytes_for(f, l) as usize;
        let signs = &c.payload[off..off + l / 8];
        unshuffle(&c.payload[off + l / 8..off + cmp], f, &mut abs_vals);
        apply_sign_map(&abs_vals, signs, &mut resid);
        reconstruct_block(&resid, c.eb, c.lorenzo, &mut block_out);
        out[start..end].copy_from_slice(&block_out[..end - start]);
        off += cmp;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;

    fn check_roundtrip(data: &[f32], eb: f64, cfg: CuszpConfig) -> Compressed {
        let c = compress(data, eb, cfg);
        c.validate().unwrap();
        let back: Vec<f32> = decompress(&c);
        assert_eq!(back.len(), data.len());
        for (i, (&d, &r)) in data.iter().zip(&back).enumerate() {
            assert!(
                (d as f64 - r as f64).abs() <= eb * (1.0 + 1e-6),
                "bound violated at {i}: {d} vs {r} (eb {eb})"
            );
        }
        c
    }

    #[test]
    fn roundtrip_smooth() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin() * 50.0).collect();
        check_roundtrip(&data, 0.01, CuszpConfig::default());
    }

    #[test]
    fn roundtrip_with_tail_block() {
        let data: Vec<f32> = (0..77).map(|i| i as f32 * 3.0 - 100.0).collect();
        let c = check_roundtrip(&data, 0.5, CuszpConfig::default());
        assert_eq!(c.num_blocks(), 3);
    }

    #[test]
    fn all_zero_data_is_all_zero_blocks() {
        let data = vec![0.0f32; 256];
        let c = check_roundtrip(&data, 0.001, CuszpConfig::default());
        assert!(c.fixed_lengths.iter().all(|&f| f == 0));
        assert!(c.payload.is_empty());
        // Max CR: 1 byte per 128 data bytes.
        assert_eq!(c.stream_bytes(), 8);
    }

    #[test]
    fn values_within_eb_make_zero_blocks() {
        let data = vec![0.0004f32; 64];
        let c = check_roundtrip(&data, 0.001, CuszpConfig::default());
        assert!(c.fixed_lengths.iter().all(|&f| f == 0));
    }

    #[test]
    fn roundtrip_without_lorenzo() {
        let data: Vec<f32> = (0..500).map(|i| ((i * 37) % 97) as f32).collect();
        let cfg = CuszpConfig {
            lorenzo: false,
            ..Default::default()
        };
        check_roundtrip(&data, 0.05, cfg);
    }

    #[test]
    fn roundtrip_block_len_variants() {
        let data: Vec<f32> = (0..640).map(|i| (i as f32).sqrt() * 10.0).collect();
        for l in [8, 16, 32, 64, 128] {
            let cfg = CuszpConfig {
                block_len: l,
                ..Default::default()
            };
            check_roundtrip(&data, 0.02, cfg);
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.001).sin()).collect();
        let eb = ErrorBound::Rel(1e-2).absolute(2.0);
        let c = compress(&data, eb, CuszpConfig::default());
        let ratio = (data.len() * 4) as f64 / c.stream_bytes() as f64;
        // Each block's leading residual is the raw quantization integer
        // (Lorenzo restarts per block), so F is bounded below by its bit
        // width — ~5x here rather than the naive ~14x a cross-block Lorenzo
        // would give. This matches the real cuSZp block-wise design.
        assert!(ratio > 4.5, "expected strong compression, got {ratio:.2}");
    }

    #[test]
    fn random_data_compresses_poorly_but_roundtrips() {
        let data: Vec<f32> = (0..1024)
            .map(|i| (((i * 2654435761usize) % 100_000) as f32) - 50_000.0)
            .collect();
        let c = check_roundtrip(&data, 0.5, CuszpConfig::default());
        let ratio = (data.len() * 4) as f64 / c.stream_bytes() as f64;
        assert!(
            ratio < 4.0,
            "random data should not compress well: {ratio:.2}"
        );
    }

    #[test]
    fn recompression_is_lossless() {
        // decompress(compress(x)) is a fixed point.
        let data: Vec<f32> = (0..333).map(|i| (i as f32 * 0.37).cos() * 7.0).collect();
        let eb = 0.01;
        let c1 = compress(&data, eb, CuszpConfig::default());
        let d1: Vec<f32> = decompress(&c1);
        let c2 = compress(&d1, eb, CuszpConfig::default());
        let d2: Vec<f32> = decompress(&c2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn negative_values_roundtrip() {
        let data = vec![-1.0f32, -100.0, -0.001, -55.5, 0.0, 1.0, -2.0, 3.0];
        check_roundtrip(&data, 0.0005, CuszpConfig::default());
    }

    #[test]
    fn stream_size_matches_eq2_exactly() {
        let data: Vec<f32> = (0..320).map(|i| (i as f32 * 1.7).sin() * 1000.0).collect();
        let c = compress(&data, 0.1, CuszpConfig::default());
        let expected: u64 = c.num_blocks() as u64 + c.expected_payload_bytes();
        assert_eq!(c.stream_bytes(), expected);
    }
}
