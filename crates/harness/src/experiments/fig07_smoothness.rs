//! Fig 7 — visual evidence of within-block smoothness: rendered slices of
//! Hurricane, NYX and QMCPack (the same fields Fig 6 quantifies).

use super::Ctx;
use crate::report::Report;
use datasets::{hurricane, nyx, qmcpack, DatasetId};
use metrics::image::write_ppm;
use serde::Serialize;

/// One rendered slice's record.
#[derive(Debug, Clone, Serialize)]
pub struct Render {
    /// Dataset label.
    pub dataset: String,
    /// Artifact filename.
    pub file: String,
    /// Median relative block range at L = 32 (smoothness summary).
    pub median_block_range: f64,
}

/// Run the Fig 7 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new("fig07", "Dataset smoothness slices", &ctx.out_dir);
    let fields = vec![
        (
            "Hurricane",
            hurricane::field("U", &ctx.scale.shape(DatasetId::Hurricane)),
        ),
        (
            "NYX",
            nyx::field("temperature", &ctx.scale.shape(DatasetId::Nyx)),
        ),
        (
            "QMCPack",
            qmcpack::field(qmcpack::FIELDS[0], &ctx.scale.shape(DatasetId::QmcPack)),
        ),
    ];
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (name, field) in fields {
        let (h, w, plane) = field.slice2d(field.shape[0] / 2);
        let file = format!("fig07_{name}.ppm");
        write_ppm(&ctx.out_dir.join(&file), h, w, &plane).expect("write ppm");
        let cdf = metrics::cdf::BlockRangeCdf::compute(&field.data, 32);
        rows.push(vec![
            name.to_string(),
            file.clone(),
            format!("{:.4}", cdf.median()),
        ]);
        out.push(Render {
            dataset: name.to_string(),
            file,
            median_block_range: cdf.median(),
        });
    }
    report.table(&["dataset", "render", "median block range (L=32)"], &rows);
    report.line("\nslices rendered as PPM artifacts; low median block ranges confirm Fig 7's visual smoothness");
    report.save_json(&out);
    report.save_text();
}
