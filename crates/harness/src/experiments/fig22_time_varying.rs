//! Fig 22 — cuSZp over a time-varying RTM simulation: one snapshot every
//! 100 timesteps of a 3600-step shot, compressed at REL 1e-2.
//!
//! Paper: throughput *decreases* with timestep (~150 → ~105 GB/s
//! compression) because later snapshots have smaller value ranges and
//! fewer zero blocks under a REL bound. Our RTM generator reproduces the
//! mechanism (wavefronts + reverberation fill the volume over time), so
//! the same downward trend must emerge from the measured zero-block
//! fraction.

use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use baselines::common::CuszpAdapter;
use cuszp_core::ErrorBound;
use datasets::{rtm, DatasetId};
use gpu_sim::DeviceSpec;
use serde::Serialize;

/// One snapshot's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// RTM timestep.
    pub timestep: usize,
    /// Fraction of exactly-zero values in the snapshot.
    pub zero_fraction: f64,
    /// End-to-end compression throughput, GB/s.
    pub comp_gbps: f64,
    /// End-to-end decompression throughput, GB/s.
    pub decomp_gbps: f64,
    /// Compression ratio.
    pub ratio: f64,
}

/// Run the Fig 22 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new("fig22", "cuSZp on time-varying RTM", &ctx.out_dir);
    let spec = DeviceSpec::a100();
    let comp = CuszpAdapter::new();
    let shape = ctx.scale.shape(DatasetId::Rtm);

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for step in (200..=3600).step_by(200) {
        let field = rtm::snapshot(step, &shape);
        let zero = rtm::zero_fraction(&field);
        let eb = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);
        let m = measure_pipeline(&spec, &comp, &field, eb);
        rows.push(vec![
            step.to_string(),
            f2(zero * 100.0) + "%",
            f2(m.comp_e2e_gbps),
            f2(m.decomp_e2e_gbps),
            f2(m.ratio),
        ]);
        points.push(Point {
            timestep: step,
            zero_fraction: zero,
            comp_gbps: m.comp_e2e_gbps,
            decomp_gbps: m.decomp_e2e_gbps,
            ratio: m.ratio,
        });
    }
    report.table(
        &["timestep", "zero", "comp GB/s", "decomp GB/s", "ratio"],
        &rows,
    );

    let first = &points[1];
    let last = points.last().expect("points measured");
    report.line(&format!(
        "\ntrend: comp {:.1} -> {:.1} GB/s, zero blocks {:.0}% -> {:.0}% \
(paper: ~150 -> ~105 GB/s as zero blocks vanish)",
        first.comp_gbps,
        last.comp_gbps,
        first.zero_fraction * 100.0,
        last.zero_fraction * 100.0
    ));
    report.save_json(&points);
    report.save_text();
}
