//! The optimized host codec — byte-identical to [`crate::host_ref`],
//! restructured for speed.
//!
//! `host_ref` walks the pipeline step by step per block (quantize →
//! plan → sign map → abs pass → bit-by-bit shuffle) and grows the payload
//! `Vec` as it goes. This module instead mirrors the GPU kernel's own
//! **two-phase** structure on the host (paper §4.3):
//!
//! - **Phase 1** fuses quantize + Lorenzo + `(F, CmpL)` planning +
//!   encoding per *tile* of blocks: residuals live in a small reused
//!   scratch that stays cache-resident (never a data-sized buffer), the
//!   quantization arithmetic runs through [`crate::simd`] (AVX-512 when
//!   the host has it, bit-exact scalar otherwise), and each block's sign
//!   map + bit planes are emitted into the worker's staging buffer the
//!   moment the tile is planned — the host analogue of the GPU kernel
//!   encoding into shared memory before the global offsets exist.
//! - An exclusive **prefix sum** over the per-block `CmpL` table — the
//!   host edition of the paper's Global Synchronization step — fixes
//!   every block's payload offset.
//! - **Phase 2** places each worker's staged bytes at its scanned offset
//!   in the final payload. Staged bytes are already exactly the final
//!   bytes (fraction ⓑ is a plain concatenation), so placement is a
//!   bulk copy.
//!
//! The bit-plane work itself is word-parallel twice over: per 8-value
//! group, the magnitudes' byte matrix is transposed
//! ([`crate::bitshuffle::byte_transpose8x8`]) to expose each 8-plane
//! chunk as one `u64`, each chunk is bit-transposed
//! ([`crate::bitshuffle::transpose8x8`]), and a second byte transpose
//! across groups turns the results into whole plane *rows*, stored with
//! word writes instead of strided byte writes. Decoding runs the same
//! three transposes backwards (each is an involution).
//!
//! ## The zero-allocation steady state
//!
//! Every working buffer the codec needs — the per-block `(F, CmpL)`
//! table, the Eq-2 prefix-sum workspace, and per-worker residual /
//! staging buffers — lives in a caller-owned [`Scratch`] arena that is
//! grown monotonically and reused across calls. The `_into` entry points
//! ([`compress_into`], [`decompress_into`]) write their results into
//! caller-owned memory as well, so after the first call with a given
//! shape (*warm-up*), a single-threaded call performs **zero heap
//! allocations** — the host analogue of the paper's no-intermediate-
//! buffer, single-kernel design, and the property the ultra-fast CPU
//! compressors (SZx) identify as decisive for small payloads. The
//! `crates/alloc-counter` allocator proves it executable
//! (`cuszp-core/tests/alloc_count.rs`). Threaded `_into` calls reuse
//! per-worker arenas but still pay `std::thread` spawn allocations.
//!
//! The `_into` output buffer is reserved **up front from the Eq-2 size
//! table bound** — `CmpL(max_F(dtype))` per block, the same dtype-bounded
//! budget the device kernel allocates its payload from — so its capacity
//! depends only on the call's *shape* (element count, block length,
//! dtype), never on how well the content compresses: a warm buffer never
//! reallocates no matter how compressibility varies between calls.
//! Worker staging instead grows by each tile's exact `CmpL` sum, known
//! before any byte of the tile is staged, so cold owned-API calls fault
//! in only the pages they fill.
//!
//! No per-block heap allocation happens in either direction. Because
//! blocks are independent once the offsets are known — the same argument
//! the paper's GS step makes for the GPU — both directions have an
//! opt-in multi-threaded form ([`compress_threaded`] /
//! [`decompress_threaded`]) whose output is **bit-identical to the
//! sequential path by construction**: workers own disjoint block ranges
//! and their staged bytes land at disjoint, precomputed byte ranges.

use crate::bitshuffle::{byte_transpose8x8, transpose8x8};
use crate::config::{CuszpConfig, SimdLevel};
use crate::dtype::FloatData;
use crate::encode::cmp_bytes_for;
use crate::format::{Compressed, CompressedRef};

use crate::{simd, tune};

/// Resolve a requested worker count: `0` means the host's parallelism.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Ensure `v` holds at least `n` elements (monotonic growth — capacity is
/// never released) and hand back the first `n`.
fn grow<T: Copy + Default>(v: &mut Vec<T>, n: usize) -> &mut [T] {
    if v.len() < n {
        v.resize(n, T::default());
    }
    &mut v[..n]
}

/// One worker's private buffers: cache-resident residual/quantization
/// tile, per-tile max table, and the phase-1 staging bytes.
#[derive(Debug, Default)]
struct WorkerScratch {
    /// Residuals on compression, quantization integers on decompression.
    resid: Vec<i64>,
    /// Per-block max residual magnitude within the current tile.
    maxes: Vec<u64>,
    /// Phase-1 staged payload fraction for this worker's block range.
    staging: Vec<u8>,
}

/// Reusable workspace for the zero-allocation codec entry points.
///
/// Holds the per-block `(F, CmpL)` scratch table, the Eq-2 prefix-sum
/// workspace, the worker block ranges, and one `WorkerScratch` per
/// worker. Buffers grow monotonically and are reused verbatim across
/// calls — a *dirty* arena (left over from any prior call, any dtype,
/// any size) never changes results, only allocation behavior. After the
/// first call at a given shape, single-threaded [`compress_into`] /
/// [`decompress_into`] calls touch the heap zero times.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Per-block fixed lengths `F` (fraction ⓐ before it is emitted).
    fls: Vec<u8>,
    /// Per-block compressed sizes `CmpL` (Eq 2).
    cmps: Vec<u32>,
    /// Exclusive prefix sum of `cmps` — the GS-step workspace.
    offsets: Vec<u64>,
    /// Contiguous block ranges, one per worker.
    ranges: Vec<(usize, usize)>,
    /// Per-worker buffers (index parallel to `ranges`).
    workers: Vec<WorkerScratch>,
}

impl Scratch {
    /// Fresh, empty arena. All buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently held across all internal buffers (diagnostic —
    /// what a long-lived arena pins in memory).
    pub fn capacity_bytes(&self) -> usize {
        self.fls.capacity()
            + 4 * self.cmps.capacity()
            + 8 * self.offsets.capacity()
            + 16 * self.ranges.capacity()
            + self
                .workers
                .iter()
                .map(|w| 8 * w.resid.capacity() + 8 * w.maxes.capacity() + w.staging.capacity())
                .sum::<usize>()
    }

    /// Pre-grow every buffer a **sequential** [`compress_into`] /
    /// [`decompress_into`] call for an `elems`-element array will touch,
    /// so even the *first* request served with this arena performs zero
    /// heap operations. A long-running service calls this once per
    /// connection — at handshake time, when the tenant's declared maximum
    /// payload is known — moving the warm-up cost off the request path
    /// entirely (the arena lifecycle then matches the connection's).
    ///
    /// Warming is monotonic like every other arena operation: warming for
    /// a smaller shape after a larger one is a no-op, and an arena warmed
    /// for `elems` serves any request up to `elems` allocation-free.
    ///
    /// ```
    /// use cuszp_core::{fast, CuszpConfig, Scratch};
    /// let cfg = CuszpConfig::default();
    /// let mut scratch = Scratch::new();
    /// scratch.warm_for::<f32>(4096, cfg);
    /// let mut out = Vec::with_capacity(fast::max_stream_bytes::<f32>(4096, cfg));
    /// // This first call now performs zero heap allocations:
    /// let data = vec![1.5f32; 4096];
    /// fast::compress_into(&mut scratch, &data, 1e-3, cfg, &mut out);
    /// ```
    pub fn warm_for<T: crate::FloatData>(&mut self, elems: usize, cfg: CuszpConfig) {
        cfg.validate();
        let l = cfg.block_len;
        let num_blocks = elems.div_ceil(l);
        grow(&mut self.fls, num_blocks);
        grow(&mut self.cmps, num_blocks);
        grow(&mut self.offsets, num_blocks + 1);
        if self.workers.is_empty() {
            self.workers.resize_with(1, Default::default);
        }
        if self.ranges.capacity() == 0 {
            self.ranges.reserve(1);
        }
        // The codec grows the tile buffers to a full tile regardless of
        // the array size, so warming must match exactly — including the
        // autotuned tile size the compress path will resolve (calling
        // `tune::tile_elems` here also runs the one-shot probe, moving
        // that cost into warm-up where it belongs).
        let level = simd::resolve_level(cfg.simd);
        let blocks_per_tile = (tune::tile_elems(T::DTYPE, level) / l).max(1);
        let ws = &mut self.workers[0];
        grow(&mut ws.resid, blocks_per_tile * l);
        grow(&mut ws.maxes, blocks_per_tile);
    }

    /// Split `num_blocks` into at most `threads` contiguous non-empty
    /// ranges, reusing the range buffer.
    fn fill_ranges(&mut self, num_blocks: usize, threads: usize) {
        self.ranges.clear();
        if num_blocks == 0 {
            return;
        }
        let threads = threads.min(num_blocks).max(1);
        let per = num_blocks / threads;
        let extra = num_blocks % threads;
        let mut at = 0;
        for t in 0..threads {
            let len = per + usize::from(t < extra);
            if len > 0 {
                self.ranges.push((at, at + len));
                at += len;
            }
        }
        if self.workers.len() < self.ranges.len() {
            self.workers
                .resize_with(self.ranges.len(), Default::default);
        }
    }
}

/// Encode one block's sign map + bit planes into `out[..CmpL]`. Layout is
/// exactly `host_ref`'s (sign bytes, then the `F` bit planes of Fig 11);
/// only the traversal is word-parallel (see module docs).
fn encode_block(resid: &[i64], f: u8, out: &mut [u8]) {
    let bpp = resid.len() / 8; // bytes per plane = L/8
    let chunks = (f as usize).div_ceil(8);
    let (sign_bytes, planes) = out.split_at_mut(bpp);
    let mut j0 = 0usize;
    while j0 < bpp {
        let strip = (bpp - j0).min(8);
        // ys[t][g]: byte c = plane (8t+c) byte of strip group g.
        let mut ys = [[0u64; 8]; 8];
        for (g, group) in resid[8 * j0..8 * (j0 + strip)].chunks_exact(8).enumerate() {
            let mut s = 0u8;
            let mut m = [0u64; 8];
            for (i, &r) in group.iter().enumerate() {
                s |= u8::from(r < 0) << i;
                m[i] = r.unsigned_abs();
            }
            sign_bytes[j0 + g] = s;
            // limbs[t] = byte t of each of the 8 magnitudes — all eight
            // 8-plane chunks of the group from one byte transpose.
            let limbs = byte_transpose8x8(m);
            for (t, y) in ys.iter_mut().enumerate().take(chunks) {
                y[g] = transpose8x8(limbs[t]);
            }
        }
        // Across the strip: one more byte transpose turns per-group chunk
        // words into whole plane rows, stored with word-sized writes.
        for (t, y) in ys.iter().enumerate().take(chunks) {
            let rows = byte_transpose8x8(*y);
            let k0 = 8 * t;
            let n_planes = (f as usize - k0).min(8);
            for (c, row) in rows.iter().enumerate().take(n_planes) {
                planes[(k0 + c) * bpp + j0..][..strip].copy_from_slice(&row.to_le_bytes()[..strip]);
            }
        }
        j0 += strip;
    }
}

/// Phase 1 for blocks `[b0, b1)`: tile-fused quantize + Lorenzo + plan +
/// encode. Fills `fls`/`cmps` (the `(F, CmpL)` scratch table) and appends
/// every non-zero block's payload bytes to `staging` in block order.
///
/// The caller reserves `staging` from the Eq-2 dtype bound up front;
/// here it grows only by each tile's exact `CmpL` sum (known before the
/// tile's first staged byte), so it never reallocates once that
/// reservation is in place. `staging` may be a private worker buffer or
/// the final output itself (the sequential `compress_into` fast path
/// encodes straight into the serialized stream — no placement copy).
#[allow(clippy::too_many_arguments)]
fn plan_and_encode<T: FloatData>(
    data: &[T],
    eb: f64,
    lorenzo: bool,
    l: usize,
    b0: usize,
    fls: &mut [u8],
    cmps: &mut [u32],
    resid: &mut Vec<i64>,
    maxes: &mut Vec<u64>,
    staging: &mut Vec<u8>,
    level: SimdLevel,
    tile_elems: usize,
) {
    let num_blocks = fls.len();
    let blocks_per_tile = (tile_elems / l).max(1);
    let resid = grow(resid, blocks_per_tile * l);
    let maxes = grow(maxes, blocks_per_tile);
    let n = data.len();
    let vec_f = if l == 32 {
        simd::block32_max_f(level)
    } else {
        0
    };

    let mut i = 0;
    while i < num_blocks {
        let tile = (num_blocks - i).min(blocks_per_tile);
        let start = (b0 + i) * l;
        let end = (start + tile * l).min(n);
        simd::quantize_blocks(
            level,
            &data[start..end],
            l,
            eb,
            lorenzo,
            &mut resid[..tile * l],
            &mut maxes[..tile],
        );
        // Plan the whole tile first: the tile's staged size is exact
        // before a single byte is written.
        let mut tile_cmp = 0usize;
        for (k, &max_abs) in maxes[..tile].iter().enumerate() {
            let f = (64 - max_abs.leading_zeros()) as u8;
            let cmp = cmp_bytes_for(f, l);
            fls[i + k] = f;
            cmps[i + k] = cmp;
            tile_cmp += cmp as usize;
        }
        let mut at = staging.len();
        staging.resize(at + tile_cmp, 0);
        for (k, &f) in fls[i..i + tile].iter().enumerate() {
            if f == 0 {
                continue;
            }
            let cmp = cmps[i + k] as usize;
            let block = &resid[k * l..(k + 1) * l];
            if f <= vec_f {
                simd::encode_block32(level, block, f, &mut staging[at..at + cmp]);
            } else {
                encode_block(block, f, &mut staging[at..at + cmp]);
            }
            at += cmp;
        }
        i += tile;
    }
}

/// Run both compression phases into `scratch`: fills the `(F, CmpL)`
/// table and every worker's staging bytes. Returns the total payload
/// size (the sum of the `CmpL` column).
fn compress_core<T: FloatData>(
    data: &[T],
    eb: f64,
    cfg: CuszpConfig,
    threads: usize,
    scratch: &mut Scratch,
) -> u64 {
    cfg.validate();
    assert!(
        eb.is_finite() && eb > 0.0,
        "absolute bound must be positive"
    );
    let l = cfg.block_len;
    let num_blocks = data.len().div_ceil(l);
    let threads = resolve_threads(threads);
    let level = simd::resolve_level(cfg.simd);
    let tile_elems = tune::tile_elems(T::DTYPE, level);
    grow(&mut scratch.fls, num_blocks);
    grow(&mut scratch.cmps, num_blocks);
    scratch.fill_ranges(num_blocks, threads);

    // Per-worker staging grows by each tile's exact `CmpL` sum (known
    // before any byte of the tile is staged), so a cold buffer faults in
    // only the pages it actually fills — reserving the Eq-2 worst case
    // here would make every fresh-`Scratch` owned call map and fault a
    // dtype-bound-sized region. The zero-allocation arena entry points
    // make their own worst-case reservation on the *output* buffer,
    // which is where the no-realloc-at-steady-state guarantee lives.
    if scratch.ranges.len() <= 1 {
        if num_blocks > 0 {
            let ws = &mut scratch.workers[0];
            ws.staging.clear();
            plan_and_encode(
                data,
                eb,
                cfg.lorenzo,
                l,
                0,
                &mut scratch.fls[..num_blocks],
                &mut scratch.cmps[..num_blocks],
                &mut ws.resid,
                &mut ws.maxes,
                &mut ws.staging,
                level,
                tile_elems,
            );
        }
    } else {
        // Phase 1 in parallel: each worker fills its slice of the (F,
        // CmpL) table and stages its payload fraction in its own arena.
        let ranges = &scratch.ranges;
        std::thread::scope(|s| {
            let mut fl_rest = &mut scratch.fls[..num_blocks];
            let mut cmp_rest = &mut scratch.cmps[..num_blocks];
            for (&(b0, b1), ws) in ranges.iter().zip(scratch.workers.iter_mut()) {
                let (fls, flr) = fl_rest.split_at_mut(b1 - b0);
                fl_rest = flr;
                let (cs, cr) = cmp_rest.split_at_mut(b1 - b0);
                cmp_rest = cr;
                s.spawn(move || {
                    ws.staging.clear();
                    plan_and_encode(
                        data,
                        eb,
                        cfg.lorenzo,
                        l,
                        b0,
                        fls,
                        cs,
                        &mut ws.resid,
                        &mut ws.maxes,
                        &mut ws.staging,
                        level,
                        tile_elems,
                    )
                });
            }
        });
    }

    // Global Synchronization, host edition: the sum of the CmpL column is
    // the payload size; per-block offsets follow by prefix sum wherever a
    // consumer needs them (decompression rebuilds them from fraction ⓐ).
    scratch.cmps[..num_blocks]
        .iter()
        .map(|&c| c as u64)
        .sum::<u64>()
}

/// Upper bound on the serialized stream size ([`compress_into`]'s output)
/// for an `elems`-element array of `T`: header + one fixed-length byte
/// per block + the Eq-2 worst-case payload at [`crate::DType::max_fixed_len`].
/// This is exactly the reservation [`compress_into`] makes on its output
/// buffer, so a `Vec` pre-reserved to this size never reallocates —
/// which is how a service pre-warms a connection's response buffer at
/// handshake time.
pub fn max_stream_bytes<T: FloatData>(elems: usize, cfg: CuszpConfig) -> usize {
    let num_blocks = elems.div_ceil(cfg.block_len);
    let worst_block = cmp_bytes_for(T::DTYPE.max_fixed_len(), cfg.block_len) as usize;
    crate::format::HEADER_BYTES + num_blocks + num_blocks * worst_block
}

/// Compress `data` under an **absolute** error bound `eb`, sequentially.
/// Byte-identical to [`crate::host_ref::compress`].
pub fn compress<T: FloatData>(data: &[T], eb: f64, cfg: CuszpConfig) -> Compressed {
    compress_threaded(data, eb, cfg, 1)
}

/// Compress with `threads` workers (`0` ⇒ [`std::thread::available_parallelism`]).
///
/// Workers own disjoint block ranges and stage their payload fraction in
/// block order, and the prefix-sum offsets place each staged range
/// exactly, so the stream is **bit-identical** to the sequential path for
/// every thread count.
pub fn compress_threaded<T: FloatData>(
    data: &[T],
    eb: f64,
    cfg: CuszpConfig,
    threads: usize,
) -> Compressed {
    compress_with(&mut Scratch::new(), data, eb, cfg, threads)
}

/// Compress into an **owned** [`Compressed`] while reusing a caller
/// arena for every intermediate buffer — what a long-lived worker (e.g.
/// a `cuszp-pipeline` stream) runs per chunk: the only allocations left
/// are the two output `Vec`s the result itself owns, both sized exactly.
pub fn compress_with<T: FloatData>(
    scratch: &mut Scratch,
    data: &[T],
    eb: f64,
    cfg: CuszpConfig,
    threads: usize,
) -> Compressed {
    let total = compress_core(data, eb, cfg, threads, scratch);
    let num_blocks = data.len().div_ceil(cfg.block_len);
    // One worker: the staging buffer already *is* the payload, in final
    // byte order — move it out instead of copying (the arena regrows it
    // on the next call, which is the one allocation an owned result
    // needs anyway). Several workers: concatenate the staged fractions.
    let payload = if scratch.ranges.len() == 1 {
        std::mem::take(&mut scratch.workers[0].staging)
    } else {
        let mut payload = Vec::with_capacity(total as usize);
        for ws in &scratch.workers[..scratch.ranges.len()] {
            payload.extend_from_slice(&ws.staging);
        }
        payload
    };
    debug_assert_eq!(payload.len() as u64, total);
    Compressed {
        num_elements: data.len() as u64,
        block_len: cfg.block_len as u32,
        eb,
        lorenzo: cfg.lorenzo,
        dtype: T::DTYPE,
        fixed_lengths: scratch.fls[..num_blocks].to_vec(),
        payload,
    }
}

/// Compress into a caller-owned output buffer, sequentially: `out`
/// receives the full serialized stream (header + fraction ⓐ + payload,
/// exactly [`Compressed::to_bytes`]' layout) and the returned
/// [`CompressedRef`] borrows it. With a warm [`Scratch`] and a reused
/// `out`, the call performs **zero heap allocations** — see the module
/// docs.
pub fn compress_into<'a, T: FloatData>(
    scratch: &mut Scratch,
    data: &[T],
    eb: f64,
    cfg: CuszpConfig,
    out: &'a mut Vec<u8>,
) -> CompressedRef<'a> {
    compress_into_threaded(scratch, data, eb, cfg, 1, out)
}

/// [`compress_into`] with `threads` workers (`0` ⇒ host parallelism).
/// Bit-identical output for every thread count; per-worker arenas are
/// reused, though thread spawning itself still allocates.
pub fn compress_into_threaded<'a, T: FloatData>(
    scratch: &mut Scratch,
    data: &[T],
    eb: f64,
    cfg: CuszpConfig,
    threads: usize,
    out: &'a mut Vec<u8>,
) -> CompressedRef<'a> {
    cfg.validate();
    assert!(
        eb.is_finite() && eb > 0.0,
        "absolute bound must be positive"
    );
    let l = cfg.block_len;
    let num_blocks = data.len().div_ceil(l);
    let header_bytes = crate::format::HEADER_BYTES;

    // The header depends only on metadata known up front.
    let header = CompressedRef {
        num_elements: data.len() as u64,
        block_len: l as u32,
        eb,
        lorenzo: cfg.lorenzo,
        dtype: T::DTYPE,
        fixed_lengths: &[],
        payload: &[],
    }
    .header_bytes();

    out.clear();
    // Reserve from the Eq-2 dtype bound rather than this payload's exact
    // size: capacity then depends only on the input *shape*, so a reused
    // `out` never reallocates once warm even when a later payload of the
    // same shape compresses worse than the warm-up one did.
    let worst_block = cmp_bytes_for(T::DTYPE.max_fixed_len(), l) as usize;
    out.reserve(header.len() + num_blocks + num_blocks * worst_block);
    out.extend_from_slice(&header);
    out.resize(header.len() + num_blocks, 0); // fraction-ⓐ placeholder

    let resolved = resolve_threads(threads);
    let level = simd::resolve_level(cfg.simd);
    let tile_elems = tune::tile_elems(T::DTYPE, level);
    grow(&mut scratch.fls, num_blocks);
    grow(&mut scratch.cmps, num_blocks);
    scratch.fill_ranges(num_blocks, resolved);
    if scratch.ranges.len() <= 1 {
        // Sequential fast path: encode payload bytes *directly* into the
        // serialized stream — no staging buffer, no placement copy.
        if num_blocks > 0 {
            let ws = &mut scratch.workers[0];
            plan_and_encode(
                data,
                eb,
                cfg.lorenzo,
                l,
                0,
                &mut scratch.fls[..num_blocks],
                &mut scratch.cmps[..num_blocks],
                &mut ws.resid,
                &mut ws.maxes,
                out,
                level,
                tile_elems,
            );
        }
        out[header.len()..header.len() + num_blocks].copy_from_slice(&scratch.fls[..num_blocks]);
    } else {
        // Threaded: workers stage privately (they cannot share `out`
        // before the offsets exist), then placement concatenates.
        let total = compress_core(data, eb, cfg, threads, scratch);
        out[header.len()..header.len() + num_blocks].copy_from_slice(&scratch.fls[..num_blocks]);
        for ws in &scratch.workers[..scratch.ranges.len()] {
            out.extend_from_slice(&ws.staging);
        }
        debug_assert_eq!(out.len(), header.len() + num_blocks + total as usize);
    }

    let (fixed_lengths, payload) = out[header_bytes..].split_at(num_blocks);
    CompressedRef {
        num_elements: data.len() as u64,
        block_len: l as u32,
        eb,
        lorenzo: cfg.lorenzo,
        dtype: T::DTYPE,
        fixed_lengths,
        payload,
    }
}

/// Decode one block's quantization integers from its payload bytes into
/// `q[..L]` — the exact inverse of [`encode_block`] plus the Lorenzo
/// prefix sum.
fn decode_block(payload: &[u8], f: u8, lorenzo: bool, l: usize, q: &mut [i64]) {
    let bpp = l / 8;
    let chunks = (f as usize).div_ceil(8);
    let (sign_bytes, planes) = payload.split_at(bpp);
    let mut acc = 0i64;
    let mut j0 = 0usize;
    while j0 < bpp {
        let strip = (bpp - j0).min(8);
        // Inverse of the encoder's strip step: plane rows → per-group
        // chunk words → per-group magnitude limbs.
        let mut ys = [[0u64; 8]; 8];
        for (t, y) in ys.iter_mut().enumerate().take(chunks) {
            let k0 = 8 * t;
            let n_planes = (f as usize - k0).min(8);
            let mut rows = [0u64; 8];
            for (c, row) in rows.iter_mut().enumerate().take(n_planes) {
                let mut bytes = [0u8; 8];
                bytes[..strip].copy_from_slice(&planes[(k0 + c) * bpp + j0..][..strip]);
                *row = u64::from_le_bytes(bytes);
            }
            *y = byte_transpose8x8(rows);
        }
        for g in 0..strip {
            let mut limbs = [0u64; 8];
            for (t, y) in ys.iter().enumerate().take(chunks) {
                limbs[t] = transpose8x8(y[g]);
            }
            let m = byte_transpose8x8(limbs); // m[i] = |residual i|
            let s = sign_bytes[j0 + g];
            let dst = &mut q[8 * (j0 + g)..8 * (j0 + g) + 8];
            for (i, out) in dst.iter_mut().enumerate() {
                let v = m[i] as i64;
                let r = if s & (1 << i) != 0 {
                    v.wrapping_neg()
                } else {
                    v
                };
                *out = if lorenzo {
                    acc = acc.wrapping_add(r);
                    acc
                } else {
                    r
                };
            }
        }
        j0 += strip;
    }
}

/// Decode blocks `[b0, b1)` from `payload` into `out` (the slice covering
/// elements `b0·L .. min(b1·L, N)`), block by block. Three exits:
///
/// - **Zero block** (`F = 0`): `dequantize(0)` is exactly `+0.0` for both
///   element types, so the block is a plain fill — sparse decode
///   degenerates to memset speed.
/// - **Fused vector path** (full `L = 32` block with `F` within the
///   tier's [`simd::block32_max_f`]): [`simd::decode_block32_to`] undoes
///   the bit-plane layout *and* dequantizes in registers, storing
///   finished elements straight to `out`. The quantization integers
///   never exist in memory, which removes the 16 B/element scratch
///   round trip the old tiled decode paid.
/// - **Portable strip codec** (everything else, including the ragged
///   final block): decode into the worker's integer scratch, then
///   dequantize that block.
#[allow(clippy::too_many_arguments)]
fn decode_blocks<T: FloatData>(
    fls: &[u8],
    offsets: &[u64],
    payload: &[u8],
    l: usize,
    b0: usize,
    n: usize,
    eb: f64,
    lorenzo: bool,
    level: SimdLevel,
    ws: &mut WorkerScratch,
    out: &mut [T],
) {
    let out_base = b0 * l;
    let vec_f = if l == 32 {
        simd::block32_max_f(level)
    } else {
        0
    };
    for (k, &f) in fls.iter().enumerate() {
        let start = (b0 + k) * l;
        let end = (start + l).min(n);
        let dst = &mut out[start - out_base..end - out_base];
        if f == 0 {
            dst.fill(T::from_f64(0.0));
            continue;
        }
        let off = offsets[b0 + k] as usize;
        let bytes = &payload[off..off + cmp_bytes_for(f, l) as usize];
        if f <= vec_f && dst.len() == l {
            simd::decode_block32_to(level, bytes, f, lorenzo, eb, dst);
        } else {
            let q = grow(&mut ws.resid, l);
            decode_block(bytes, f, lorenzo, l, q);
            simd::dequantize_slice(level, q, eb, dst);
        }
    }
}

/// Decompress a stream sequentially. Identical output to
/// [`crate::host_ref::decompress`].
///
/// # Panics
/// Panics if the stream is structurally invalid or was compressed from a
/// different element type than `T`.
pub fn decompress<T: FloatData>(c: &Compressed) -> Vec<T> {
    decompress_threaded(c, 1)
}

/// Decompress with `threads` workers (`0` ⇒ host parallelism). Blocks
/// decode independently at Eq-2 offsets, so the output is identical for
/// every thread count.
pub fn decompress_threaded<T: FloatData>(c: &Compressed, threads: usize) -> Vec<T> {
    decompress_threaded_at(c, threads, None)
}

/// [`decompress_threaded`] at an explicit dispatch tier (`None` ⇒
/// `CUSZP_SIMD`, then runtime detection — see [`simd::resolve_level`]).
/// The tier never changes the output, only which kernels produce it.
pub fn decompress_threaded_at<T: FloatData>(
    c: &Compressed,
    threads: usize,
    simd_level: Option<SimdLevel>,
) -> Vec<T> {
    let n = c.num_elements as usize;
    let mut out: Vec<T> = Vec::with_capacity(n);
    // SAFETY: `T` is sealed to `f32`/`f64` — plain-old-data, no drop, no
    // invalid bit patterns — and the decoder stores to every element of
    // the slice (every block exit — fill, fused, or strip — writes its
    // full element range) before `set_len` makes them observable. Writing
    // through the raw-parts slice rather than `vec![T::default(); n]`
    // skips a full-size memset the decoder would immediately overwrite.
    unsafe {
        let uninit = std::slice::from_raw_parts_mut(out.as_mut_ptr(), n);
        decompress_into_threaded_at(c.as_ref(), threads, &mut Scratch::new(), simd_level, uninit);
        out.set_len(n);
    }
    out
}

/// Decompress into a caller-owned slice, sequentially, reusing `scratch`
/// for the offset table and the tile buffer. With a warm arena the call
/// performs **zero heap allocations**. Accepts the borrowed stream form,
/// so a stream parsed out of a container ([`CompressedRef::parse`])
/// decodes without its payload ever being copied.
///
/// # Panics
/// Panics if the stream is structurally invalid, was compressed from a
/// different element type than `T`, or `out.len() != num_elements`.
pub fn decompress_into<T: FloatData>(c: CompressedRef<'_>, scratch: &mut Scratch, out: &mut [T]) {
    decompress_into_threaded(c, 1, scratch, out)
}

/// [`decompress_into`] at an explicit dispatch tier (`None` ⇒
/// `CUSZP_SIMD`, then runtime detection). Output bytes are identical at
/// every tier; this exists so callers that carry a [`CuszpConfig`] (and
/// the per-tier test and benchmark rows) can pin decompression to the
/// same tier as compression.
pub fn decompress_into_at<T: FloatData>(
    c: CompressedRef<'_>,
    scratch: &mut Scratch,
    simd_level: Option<SimdLevel>,
    out: &mut [T],
) {
    decompress_into_threaded_at(c, 1, scratch, simd_level, out)
}

/// Decode **only** blocks `[blocks.start, blocks.end)` of a stream into
/// `out` — the block-granular random-access entry point.
///
/// `out` must cover exactly the elements those blocks hold:
/// `min(blocks.end·L, N) − blocks.start·L` (the final block may be
/// ragged). Returns the number of **payload bytes read** — the Eq-2 span
/// of the requested blocks — which is what a random-access store asserts
/// its bytes-touched accounting against: nothing outside that span plus
/// fraction ⓐ is ever dereferenced.
///
/// Like [`decompress_into`], the stream is accepted in borrowed form, so
/// a block read out of a container or a memory-mapped shard decodes
/// without the payload ever being copied; with a warm [`Scratch`] the
/// call performs **zero heap allocations**. Fraction ⓐ is scanned up to
/// `blocks.end` to rebuild the offsets (the per-block offset table is
/// never stored — paper Eq 2), so cost scales with the *position* of the
/// range in the F table but the payload traffic scales only with the
/// range *size*.
///
/// # Panics
/// Panics if the stream metadata is structurally invalid, the dtype
/// mismatches `T`, the block range is out of bounds, `out` has the wrong
/// length, or the payload ends before the requested span does.
pub fn decompress_blocks_into<T: FloatData>(
    c: CompressedRef<'_>,
    blocks: std::ops::Range<usize>,
    scratch: &mut Scratch,
    out: &mut [T],
) -> usize {
    assert_eq!(c.dtype, T::DTYPE, "stream element type mismatch");
    let l = c.block_len as usize;
    assert!(
        l > 0 && l.is_multiple_of(8),
        "invalid stream: bad block length"
    );
    assert!(
        c.eb.is_finite() && c.eb > 0.0,
        "invalid stream: bad error bound"
    );
    let num_blocks = c.num_blocks();
    assert_eq!(
        c.fixed_lengths.len(),
        num_blocks,
        "invalid stream: fixed-length table size"
    );
    let (b0, b1) = (blocks.start, blocks.end);
    assert!(b0 <= b1 && b1 <= num_blocks, "block range out of bounds");
    let n = c.num_elements as usize;
    let covered = (b1 * l).min(n).saturating_sub(b0 * l);
    assert_eq!(
        out.len(),
        covered,
        "output slice length != elements covered by the block range"
    );
    if b0 == b1 {
        return 0;
    }

    // Eq-2 prefix scan up to the range end. Offsets before `b0` fold into
    // a running sum; only the range's own entries are materialized (the
    // slots below `b0` in the arena are left stale — never read).
    let offsets = grow(&mut scratch.offsets, b1 + 1);
    let mut acc = 0u64;
    for (b, &f) in c.fixed_lengths[..b1].iter().enumerate() {
        assert!(f <= 64, "invalid stream: fixed length exceeds 64");
        if b >= b0 {
            offsets[b] = acc;
        }
        acc += cmp_bytes_for(f, l) as u64;
    }
    offsets[b1] = acc;
    let span = (offsets[b1] - offsets[b0]) as usize;
    // The decoder slices the payload at these offsets without further
    // bounds checks, so the span end must be in bounds *before* decoding.
    assert!(
        acc <= c.payload.len() as u64,
        "invalid stream: payload shorter than the Eq-2 span of the requested blocks"
    );

    if scratch.workers.is_empty() {
        scratch.workers.resize_with(1, Default::default);
    }
    decode_blocks(
        &c.fixed_lengths[b0..b1],
        &scratch.offsets[..b1 + 1],
        c.payload,
        l,
        b0,
        n,
        c.eb,
        c.lorenzo,
        simd::resolve_level(None),
        &mut scratch.workers[0],
        out,
    );
    span
}

/// [`decompress_into`] with `threads` workers (`0` ⇒ host parallelism).
/// Identical output for every thread count.
pub fn decompress_into_threaded<T: FloatData>(
    c: CompressedRef<'_>,
    threads: usize,
    scratch: &mut Scratch,
    out: &mut [T],
) {
    decompress_into_threaded_at(c, threads, scratch, None, out)
}

/// [`decompress_into_threaded`] at an explicit dispatch tier (`None` ⇒
/// `CUSZP_SIMD`, then runtime detection). Identical output for every
/// thread count *and* every tier.
pub fn decompress_into_threaded_at<T: FloatData>(
    c: CompressedRef<'_>,
    threads: usize,
    scratch: &mut Scratch,
    simd_level: Option<SimdLevel>,
    out: &mut [T],
) {
    assert_eq!(c.dtype, T::DTYPE, "stream element type mismatch");
    let n = c.num_elements as usize;
    assert_eq!(out.len(), n, "output slice length != num_elements");
    let l = c.block_len as usize;
    assert!(
        l > 0 && l.is_multiple_of(8),
        "invalid stream: bad block length"
    );
    assert!(
        c.eb.is_finite() && c.eb > 0.0,
        "invalid stream: bad error bound"
    );
    let num_blocks = c.num_blocks();
    assert_eq!(
        c.fixed_lengths.len(),
        num_blocks,
        "invalid stream: fixed-length table size"
    );
    let threads = resolve_threads(threads);

    // Rebuild the offset table from fraction ⓐ via Eq 2 (Fig 2's offsets
    // are never stored), fused with the structural validation: one scan
    // both checks every `F` and totals the expected payload size. The
    // exact-length check matters — block offsets are trusted for direct
    // payload slicing below.
    let offsets = grow(&mut scratch.offsets, num_blocks + 1);
    let mut acc = 0u64;
    for (dst, &f) in offsets.iter_mut().zip(c.fixed_lengths) {
        // Hard cap of the bit-plane layout (64-bit residual magnitudes),
        // NOT `DType::max_fixed_len()`: extreme f32 amplitude/bound
        // combinations legitimately push F past 33.
        assert!(f <= 64, "invalid stream: fixed length exceeds 64");
        *dst = acc;
        acc += cmp_bytes_for(f, l) as u64;
    }
    offsets[num_blocks] = acc;
    assert_eq!(
        acc,
        c.payload.len() as u64,
        "invalid stream: payload length disagrees with Eq-2 accounting"
    );

    let level = simd::resolve_level(simd_level);
    scratch.fill_ranges(num_blocks, threads);
    if scratch.ranges.len() <= 1 {
        if num_blocks > 0 {
            decode_blocks(
                c.fixed_lengths,
                &scratch.offsets[..num_blocks + 1],
                c.payload,
                l,
                0,
                n,
                c.eb,
                c.lorenzo,
                level,
                &mut scratch.workers[0],
                out,
            );
        }
    } else {
        let offsets = &scratch.offsets[..num_blocks + 1];
        let ranges = &scratch.ranges;
        std::thread::scope(|s| {
            let mut out_rest = out;
            let mut consumed = 0usize;
            for (&(b0, b1), ws) in ranges.iter().zip(scratch.workers.iter_mut()) {
                let end = (b1 * l).min(n);
                let (mine, rest) = out_rest.split_at_mut(end - consumed);
                out_rest = rest;
                consumed = end;
                let fls = &c.fixed_lengths[b0..b1];
                s.spawn(move || {
                    decode_blocks(
                        fls, offsets, c.payload, l, b0, n, c.eb, c.lorenzo, level, ws, mine,
                    )
                });
            }
        });
    }
}

/// One timed phase-1 pass for the autotuner ([`crate::tune`]): plan +
/// encode a synthetic wave with the given tile size at tier `level`,
/// best of three runs. Compression is the only tiled direction left
/// (decode is tile-free), so phase 1 is exactly what the tile tunes.
pub(crate) fn tune_probe(dtype: crate::DType, level: SimdLevel, tile_elems: usize) -> f64 {
    fn probe<T: FloatData>(level: SimdLevel, tile_elems: usize) -> f64 {
        const N: usize = 1 << 15;
        let data: Vec<T> = (0..N)
            .map(|i| {
                let x = i as f64;
                T::from_f64((x * 0.02).sin() * 40.0 + (x * 0.11).cos() * 3.0)
            })
            .collect();
        let num_blocks = N / 32;
        let mut fls = vec![0u8; num_blocks];
        let mut cmps = vec![0u32; num_blocks];
        let mut ws = WorkerScratch::default();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            ws.staging.clear();
            let t0 = std::time::Instant::now();
            plan_and_encode(
                &data,
                1e-3,
                true,
                32,
                0,
                &mut fls,
                &mut cmps,
                &mut ws.resid,
                &mut ws.maxes,
                &mut ws.staging,
                level,
                tile_elems,
            );
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }
    match dtype {
        crate::DType::F32 => probe::<f32>(level, tile_elems),
        crate::DType::F64 => probe::<f64>(level, tile_elems),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_ref;

    fn wave(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.02).sin() * 40.0 + (i as f32 * 0.11).cos() * 3.0)
            .collect()
    }

    fn assert_identical(data: &[f32], eb: f64, cfg: CuszpConfig) {
        let reference = host_ref::compress(data, eb, cfg);
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for threads in [1usize, 2, 5] {
            let fast = compress_threaded(data, eb, cfg, threads);
            assert_eq!(fast, reference, "compress threads={threads}");
            let back: Vec<f32> = decompress_threaded(&fast, threads);
            assert_eq!(
                back,
                host_ref::decompress::<f32>(&reference),
                "decompress threads={threads}"
            );
            // The arena entry points, with a deliberately dirty scratch
            // and reused output, must serialize and decode identically.
            let r = compress_into_threaded(&mut scratch, data, eb, cfg, threads, &mut out);
            assert_eq!(r.to_owned(), reference, "compress_into threads={threads}");
            assert_eq!(out, reference.to_bytes(), "serialized threads={threads}");
            let mut into_back = vec![0f32; data.len()];
            decompress_into_threaded(reference.as_ref(), threads, &mut scratch, &mut into_back);
            assert_eq!(into_back, back, "decompress_into threads={threads}");
        }
    }

    #[test]
    fn byte_identical_to_host_ref() {
        assert_identical(&wave(5000), 0.01, CuszpConfig::default());
    }

    #[test]
    fn tail_blocks_identical() {
        for n in [1usize, 7, 31, 32, 33, 100, 1023] {
            assert_identical(&wave(n), 0.005, CuszpConfig::default());
        }
    }

    #[test]
    fn no_lorenzo_identical() {
        let cfg = CuszpConfig {
            lorenzo: false,
            ..Default::default()
        };
        assert_identical(&wave(777), 0.02, cfg);
    }

    #[test]
    fn block_len_variants_identical() {
        for l in [8usize, 16, 64, 128] {
            let cfg = CuszpConfig {
                block_len: l,
                ..Default::default()
            };
            assert_identical(&wave(530), 0.01, cfg);
        }
    }

    #[test]
    fn spans_many_tiles_identical() {
        // > tile elements so tiling boundaries are exercised regardless
        // of which candidate the autotuner picked.
        assert_identical(
            &wave(3 * tune::DEFAULT_TILE_ELEMS + 17),
            0.01,
            CuszpConfig::default(),
        );
    }

    #[test]
    fn tile_size_never_changes_output() {
        // The autotuned tile is a pure performance knob: phase 1 must
        // produce identical plans and staged bytes at every tile size.
        let data = wave(10_000);
        let level = simd::resolve_level(None);
        let num_blocks = data.len().div_ceil(32);
        let mut base: Option<(Vec<u8>, Vec<u32>, Vec<u8>)> = None;
        for tile in [256usize, 2048, 8192, 32768, 1 << 20] {
            let mut fls = vec![0u8; num_blocks];
            let mut cmps = vec![0u32; num_blocks];
            let mut ws = WorkerScratch::default();
            plan_and_encode(
                &data,
                0.01,
                true,
                32,
                0,
                &mut fls,
                &mut cmps,
                &mut ws.resid,
                &mut ws.maxes,
                &mut ws.staging,
                level,
                tile,
            );
            let got = (fls, cmps, ws.staging);
            match &base {
                None => base = Some(got),
                Some(want) => assert_eq!(&got, want, "tile={tile}"),
            }
        }
    }

    #[test]
    fn forced_tiers_identical() {
        // Every tier at or below the detected one must produce the same
        // bytes and reconstructions as the scalar reference.
        let data = wave(4321);
        let reference = host_ref::compress(&data, 0.01, CuszpConfig::default());
        let full = host_ref::decompress::<f32>(&reference);
        for level in SimdLevel::ALL {
            if level > simd::detect_level() {
                continue;
            }
            let cfg = CuszpConfig {
                simd: Some(level),
                ..Default::default()
            };
            let c = compress(&data, 0.01, cfg);
            assert_eq!(c, reference, "compress at {level}");
            let back = decompress_threaded_at::<f32>(&c, 1, Some(level));
            assert_eq!(back, full, "decompress at {level}");
        }
    }

    #[test]
    fn wide_residuals_identical() {
        // Large magnitudes + tiny bound pushes F past one 8-plane chunk.
        let data: Vec<f32> = (0..640).map(|i| (i as f32 * 0.37).sin() * 3.0e7).collect();
        assert_identical(&data, 1e-4, CuszpConfig::default());
    }

    #[test]
    fn empty_input() {
        let c = compress::<f32>(&[], 0.1, CuszpConfig::default());
        assert_eq!(c.num_blocks(), 0);
        assert!(decompress::<f32>(&c).is_empty());
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        let r = compress_into::<f32>(&mut scratch, &[], 0.1, CuszpConfig::default(), &mut out);
        assert_eq!(r.to_owned(), c);
        decompress_into::<f32>(c.as_ref(), &mut scratch, &mut []);
    }

    #[test]
    fn all_zero_blocks() {
        let data = vec![0.0f32; 256];
        let c = compress(&data, 0.001, CuszpConfig::default());
        assert!(c.payload.is_empty());
        assert_eq!(decompress::<f32>(&c), data);
    }

    #[test]
    fn f64_identical() {
        let data: Vec<f64> = (0..900).map(|i| (i as f64 * 0.013).sin() * 1e5).collect();
        let reference = host_ref::compress(&data, 0.5, CuszpConfig::default());
        let fast = compress_threaded(&data, 0.5, CuszpConfig::default(), 3);
        assert_eq!(fast, reference);
        let back: Vec<f64> = decompress_threaded(&fast, 3);
        assert_eq!(back, host_ref::decompress::<f64>(&reference));
    }

    #[test]
    fn auto_thread_count_works() {
        let data = wave(2048);
        let c = compress_threaded(&data, 0.01, CuszpConfig::default(), 0);
        assert_eq!(c, host_ref::compress(&data, 0.01, CuszpConfig::default()));
        let back: Vec<f32> = decompress_threaded(&c, 0);
        assert_eq!(back, host_ref::decompress::<f32>(&c));
    }

    #[test]
    fn dirty_arena_reused_across_shapes() {
        // One arena and one output buffer across wildly different shapes,
        // dtypes, and configs: results must match fresh-arena calls.
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for n in [4096usize, 17, 1024, 40_000, 1] {
            let data = wave(n);
            let reference = compress(&data, 0.01, CuszpConfig::default());
            let r = compress_into(&mut scratch, &data, 0.01, CuszpConfig::default(), &mut out);
            assert_eq!(r.to_owned(), reference, "n={n}");
            let mut back = vec![0f32; n];
            decompress_into(reference.as_ref(), &mut scratch, &mut back);
            assert_eq!(back, decompress::<f32>(&reference), "n={n}");
        }
        let doubles: Vec<f64> = (0..999).map(|i| (i as f64 * 0.4).cos() * 77.0).collect();
        let reference = compress(&doubles, 0.05, CuszpConfig::default());
        let r = compress_into(
            &mut scratch,
            &doubles,
            0.05,
            CuszpConfig::default(),
            &mut out,
        );
        assert_eq!(r.to_owned(), reference);
        assert!(scratch.capacity_bytes() > 0);
    }

    #[test]
    fn compress_with_matches_plain() {
        let data = wave(9000);
        let mut scratch = Scratch::new();
        for threads in [1usize, 3] {
            let c = compress_with(&mut scratch, &data, 0.02, CuszpConfig::default(), threads);
            assert_eq!(c, compress(&data, 0.02, CuszpConfig::default()));
        }
    }

    #[test]
    fn compress_into_roundtrips_through_parse() {
        // The bytes in `out` are a complete wire-format stream.
        let data = wave(3210);
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        compress_into(&mut scratch, &data, 0.01, CuszpConfig::default(), &mut out);
        let parsed = CompressedRef::parse(&out).expect("well-formed stream");
        let mut back = vec![0f32; data.len()];
        decompress_into(parsed, &mut scratch, &mut back);
        assert_eq!(back, decompress::<f32>(&parsed.to_owned()));
    }

    #[test]
    #[should_panic(expected = "output slice length")]
    fn decompress_into_checks_output_length() {
        let c = compress(&wave(100), 0.01, CuszpConfig::default());
        let mut out = vec![0f32; 99];
        decompress_into(c.as_ref(), &mut Scratch::new(), &mut out);
    }

    #[test]
    fn block32_codec_matches_generic() {
        // Deterministic pseudo-random residuals exercising every f each
        // tier covers, signs, zeros, and the exact 2^f−1 magnitude
        // boundaries — the vector encoders must emit the generic strip
        // codec's bytes, and the fused decoders must reproduce generic
        // decode + dequantize for both element types.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let eb = 0.01;
        for level in [SimdLevel::Avx2, SimdLevel::Avx512] {
            if level > simd::detect_level() {
                continue;
            }
            for f in 1u8..=simd::block32_max_f(level) {
                for trial in 0..20 {
                    let top = if f == 64 { u64::MAX } else { (1u64 << f) - 1 };
                    let resid: Vec<i64> = (0..32)
                        .map(|i| {
                            let mag = if trial == 0 && i < 4 {
                                top
                            } else {
                                rng() & top
                            };
                            let v = mag as i64;
                            if rng() & 1 == 0 {
                                v.wrapping_neg()
                            } else {
                                v
                            }
                        })
                        .collect();
                    let cmp = cmp_bytes_for(f, 32) as usize;
                    let mut want = vec![0u8; cmp];
                    encode_block(&resid, f, &mut want);
                    let mut got = vec![0u8; cmp];
                    simd::encode_block32(level, &resid, f, &mut got);
                    assert_eq!(got, want, "encode {level} f={f} trial={trial}");

                    for lorenzo in [false, true] {
                        let mut q_want = vec![0i64; 32];
                        decode_block(&want, f, lorenzo, 32, &mut q_want);
                        let mut f32_want = vec![0f32; 32];
                        simd::dequantize_slice(SimdLevel::Scalar, &q_want, eb, &mut f32_want);
                        let mut f64_want = vec![0f64; 32];
                        simd::dequantize_slice(SimdLevel::Scalar, &q_want, eb, &mut f64_want);

                        let mut f32_got = vec![0f32; 32];
                        simd::decode_block32_to(level, &want, f, lorenzo, eb, &mut f32_got);
                        let mut f64_got = vec![0f64; 32];
                        simd::decode_block32_to(level, &want, f, lorenzo, eb, &mut f64_got);
                        let tag = format!("{level} f={f} lorenzo={lorenzo} trial={trial}");
                        assert_eq!(f32_got, f32_want, "fused f32 decode {tag}");
                        assert_eq!(f64_got, f64_want, "fused f64 decode {tag}");
                    }
                }
            }
        }
    }

    #[test]
    fn decompress_blocks_matches_full_decode_slices() {
        let data = wave(3 * 32 * 41 + 19); // ragged final block
        let cfg = CuszpConfig::default();
        let c = compress(&data, 0.01, cfg);
        let full: Vec<f32> = decompress(&c);
        let n = data.len();
        let l = cfg.block_len;
        let num_blocks = c.num_blocks();
        let mut scratch = Scratch::new();
        let mut tile = vec![0f32; n];
        for (b0, b1) in [
            (0usize, 1usize),
            (0, num_blocks),
            (5, 6),
            (7, 40),
            (num_blocks - 1, num_blocks), // the ragged tail alone
            (3, 3),                       // empty range
        ] {
            let covered = (b1 * l).min(n) - (b0 * l).min(n);
            let out = &mut tile[..covered];
            let read = decompress_blocks_into(c.as_ref(), b0..b1, &mut scratch, out);
            assert_eq!(out, &full[b0 * l..(b1 * l).min(n)], "blocks {b0}..{b1}");
            // Bytes read match the exported Eq-2 span exactly.
            assert_eq!(read, c.payload_span(b0..b1).unwrap().len());
        }
    }

    #[test]
    fn decompress_blocks_zero_and_wide_blocks() {
        // Mix zero blocks (F = 0) with wide residuals in one stream.
        let mut data = vec![0.0f32; 8 * 32];
        for (i, v) in data.iter_mut().enumerate().skip(3 * 32).take(32) {
            *v = (i as f32 * 0.37).sin() * 3.0e7;
        }
        let c = compress(&data, 1e-4, CuszpConfig::default());
        let full: Vec<f32> = decompress(&c);
        let mut scratch = Scratch::new();
        for b in 0..8 {
            let mut out = vec![0f32; 32];
            let read = decompress_blocks_into(c.as_ref(), b..b + 1, &mut scratch, &mut out);
            assert_eq!(out, full[b * 32..(b + 1) * 32], "block {b}");
            if b == 3 {
                assert!(read > 0);
            } else {
                assert_eq!(read, 0, "zero block {b} reads no payload");
            }
        }
    }

    #[test]
    #[should_panic(expected = "block range out of bounds")]
    fn decompress_blocks_rejects_out_of_range() {
        let c = compress(&wave(100), 0.01, CuszpConfig::default());
        let mut out = vec![0f32; 32];
        decompress_blocks_into(c.as_ref(), 4..5, &mut Scratch::new(), &mut out);
    }

    #[test]
    #[should_panic(expected = "payload shorter")]
    fn decompress_blocks_rejects_truncated_payload() {
        let mut c = compress(&wave(100), 0.01, CuszpConfig::default());
        c.payload.truncate(c.payload.len() - 1);
        // The last block is ragged: 100 − 3·32 = 4 elements.
        let mut out = vec![0f32; 4];
        decompress_blocks_into(c.as_ref(), 3..4, &mut Scratch::new(), &mut out);
    }

    #[test]
    fn more_threads_than_blocks() {
        let data = wave(40); // 2 blocks
        assert_identical(&data, 0.01, CuszpConfig::default());
        let c = compress_threaded(&data, 0.01, CuszpConfig::default(), 16);
        assert_eq!(c, host_ref::compress(&data, 0.01, CuszpConfig::default()));
    }
}
