//! Fig 10 — throughput of cuSZp's Global Synchronization step, profiled
//! inside the fused compression kernel on four datasets.
//!
//! The paper reports 120.52 (Hurricane), 260.33 (NYX), 260.77 (QMCPack)
//! and 190.64 (RTM) GB/s — average 208.06 — where throughput is original
//! bytes divided by the GS step's time. We extract the same quantity from
//! the per-step profile of our fused kernel, and additionally compare the
//! hierarchical design against a naive single-tile scan (the design
//! argument of §4.3).

use super::Ctx;
use crate::report::{f2, Report};
use baselines::common::CuszpAdapter;
use baselines::Compressor;
use cuszp_core::ErrorBound;
use datasets::{generate_subset, DatasetId};
use gpu_sim::{DeviceBuffer, DeviceSpec, Gpu};
use serde::Serialize;

/// Paper Fig 10 values (GB/s).
pub const PAPER: [(&str, f64); 4] = [
    ("Hurricane", 120.52),
    ("NYX", 260.33),
    ("QMCPack", 260.77),
    ("RTM", 190.64),
];

/// One measured row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// GS-step throughput from the fused kernel, GB/s.
    pub gs_gbps: f64,
    /// Standalone hierarchical device scan throughput, GB/s.
    pub scan_gbps: f64,
    /// Paper value, GB/s.
    pub paper_gbps: f64,
}

/// Run the Fig 10 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new("fig10", "Global Synchronization throughput", &ctx.out_dir);
    let spec = DeviceSpec::a100();
    let comp = CuszpAdapter::new();
    let mut rows_out = Vec::new();
    let mut rows = Vec::new();

    for (name, paper) in PAPER {
        let id = DatasetId::parse(name).expect("known dataset");
        let field = generate_subset(id, ctx.scale, 1).remove(0);
        let eb = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);

        // GS share inside the fused kernel.
        let mut gpu = Gpu::new(spec.clone());
        let input = gpu.h2d(&field.data);
        gpu.reset_timeline();
        let _ = comp.compress(&mut gpu, &input, &field.shape, eb);
        let breakdown = gpu.breakdown();
        let gs_time = breakdown
            .steps
            .iter()
            .find(|s| s.step == cuszp_core::STEP_GS)
            .map(|s| s.time)
            .expect("GS step recorded");
        let gs_gbps = field.size_bytes() as f64 / gs_time / 1.0e9;

        // Standalone hierarchical scan over the same block-size array.
        let sizes: Vec<u32> = field
            .data
            .chunks(32)
            .map(|c| (c.len() * 4) as u32)
            .collect();
        let mut gpu2 = Gpu::new(spec.clone());
        let inp = gpu2.h2d(&sizes);
        let out = DeviceBuffer::<u32>::zeroed(sizes.len());
        gpu2.reset_timeline();
        gpu_sim::scan::exclusive_scan_u32(&mut gpu2, &inp, &out, "scan");
        // Standalone scan throughput is reported against the *sizes array*
        // it actually scans (one u32 per 32-value block), not the original
        // field bytes.
        let scan_gbps = (sizes.len() * 4) as f64 / gpu2.timeline().gpu_time() / 1.0e9;

        rows.push(vec![
            name.to_string(),
            f2(gs_gbps),
            f2(scan_gbps),
            f2(paper),
        ]);
        rows_out.push(Row {
            dataset: name.to_string(),
            gs_gbps,
            scan_gbps,
            paper_gbps: paper,
        });
    }
    report.table(
        &[
            "dataset",
            "GS-in-kernel GB/s",
            "scan-array GB/s",
            "paper GB/s",
        ],
        &rows,
    );
    let avg: f64 = rows_out.iter().map(|r| r.gs_gbps).sum::<f64>() / rows_out.len() as f64;
    report.line(&format!(
        "\nmeasured GS average: {:.2} GB/s (paper average: 208.06 GB/s)",
        avg
    ));
    report.save_json(&rows_out);
    report.save_text();
}
