//! Lossless second-stage coders for the hybrid cuSZp pipeline.
//!
//! cuSZp's fixed-length encoding trades ratio for speed: every value in a
//! block spends exactly `F` bits even when the bit-shuffled planes are
//! almost entirely runs of one byte. Following the synergistic
//! lossy–lossless orchestration line of work (and FZ-GPU's
//! bitshuffle-then-dictionary pipeline), this crate supplies the lossless
//! stage that runs *after* the error-bounded quantization — so it can
//! never affect the error bound — together with the estimator that
//! decides, per chunk, whether the stage pays for itself:
//!
//! - [`Mode::Pass`] — store the fixed-length bytes unchanged (cuSZp's
//!   native representation; always available, never loses).
//! - [`Mode::Constant`] — SZx-style constant-block flush: a chunk whose
//!   bytes are all equal stores one byte.
//! - [`Mode::Rle`] — PackBits run-length coding, cheap and effective on
//!   the long zero runs bit-shuffling produces at tight bounds.
//! - [`Mode::Huffman`] — canonical, length-limited Huffman with a
//!   table-driven decoder, for chunks with skewed but non-degenerate
//!   byte histograms.
//! - [`Mode::Huffman4`] — the same canonical code split across four
//!   interleaved bitstreams (round-robin symbol assignment), so decode
//!   runs four dependency chains in parallel; chosen for large Huffman
//!   chunks where its 12 extra header bytes are noise.
//!
//! [`select_mode`] samples a few windows of the chunk instead of scanning
//! it; [`encode_chunk`] *verifies* the choice by size and falls back to
//! [`Mode::Pass`] whenever the coded form would not be strictly smaller,
//! so a stored chunk is never larger than its raw bytes regardless of
//! estimator quality.
//!
//! ## The [`Tier`] ladder
//!
//! The hot loops (histogram build, RLE scanning) dispatch over a SIMD
//! [`Tier`] mirroring `cuszp_core`'s `SimdLevel`: scalar / AVX2 /
//! AVX-512, runtime-detected and clamped down by the `CUSZP_SIMD`
//! environment variable. **Every tier emits byte-identical chunks** —
//! the tier selects instruction scheduling, never coded output — so
//! frames are portable across hosts and tier overrides. (This crate has
//! zero dependencies, so it cannot use `SimdLevel` itself; `cuszp_core`
//! maps one enum onto the other.) Decoding is tier-independent: the
//! Huffman decoders are table-driven word-at-a-time loops and the RLE
//! decoder is `memcpy`/`fill` dominated.
//!
//! Everything here works on plain byte slices, uses fixed-size stack
//! tables only, and allocates nothing beyond the caller's output `Vec` —
//! the properties the store's zero-steady-state-allocation reads and the
//! service's warm buffers rely on.

#![deny(missing_docs)]

mod histogram;
mod huffman;
mod interleave;
mod rle;

pub use histogram::{histogram, histogram_into};
pub use huffman::{HUFFMAN_MAX_CODE_LEN, HUFFMAN_TABLE_BYTES};
pub use interleave::{HUFFMAN4_HEADER_BYTES, HUFFMAN4_STREAMS};

/// SIMD dispatch tier for the entropy-stage hot loops.
///
/// Mirrors `cuszp_core::SimdLevel` (this crate is dependency-free, so
/// the enum is duplicated rather than imported; `cuszp_core` converts
/// between them). The contract is identical: every tier produces
/// **byte-identical** output, and a tier above what the host supports is
/// clamped down, never faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Portable scalar kernels (still word-parallel where it is free:
    /// 4-lane histograms, `u64` bit accumulators). Runs anywhere.
    Scalar,
    /// 256-bit kernels: 8-lane histogram merge, `vpcmpeqb`/`vpmovmskb`
    /// RLE scanning.
    Avx2,
    /// 512-bit kernels: 16-wide histogram merge, 64-byte masked RLE
    /// scanning (requires AVX-512 F and BW).
    Avx512,
}

impl Tier {
    /// All tiers, weakest first — iterate this to test every tier at or
    /// below the detected one.
    pub const ALL: [Tier; 3] = [Tier::Scalar, Tier::Avx2, Tier::Avx512];

    /// The tier's `CUSZP_SIMD` name (same names as `SimdLevel`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
            Tier::Avx512 => "avx512",
        }
    }

    /// The best tier this process will use: runtime feature detection,
    /// clamped down by `CUSZP_SIMD` when set to a valid tier name. An
    /// invalid value is silently ignored here — `cuszp_core`'s resolver
    /// already warns once per process, and this crate must not duplicate
    /// that policy decision. Cached after the first call.
    pub fn detect() -> Tier {
        static CACHED: std::sync::OnceLock<Tier> = std::sync::OnceLock::new();
        *CACHED.get_or_init(|| {
            let hw = hw_tier();
            match std::env::var("CUSZP_SIMD") {
                Ok(s) => match s.to_ascii_lowercase().as_str() {
                    "scalar" => Tier::Scalar,
                    "avx2" => hw.min(Tier::Avx2),
                    _ => hw,
                },
                Err(_) => hw,
            }
        })
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn hw_tier() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            return Tier::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Tier::Avx2;
        }
    }
    Tier::Scalar
}

/// Per-chunk coding mode, stored as one byte in the `CUSZPHY1` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Raw bytes stored unchanged (`comp_len == raw_len`).
    Pass,
    /// All bytes equal; one stored byte repeated `raw_len` times.
    Constant,
    /// PackBits run-length coding.
    Rle,
    /// Canonical length-limited Huffman coding, one bitstream.
    Huffman,
    /// Canonical length-limited Huffman coding, four interleaved
    /// bitstreams (round-robin symbols, per-stream end offsets in the
    /// chunk header). Same codes as [`Mode::Huffman`], decoded ~3–4×
    /// faster on wide cores.
    Huffman4,
}

impl Mode {
    /// Every mode, in mode-byte order.
    pub const ALL: [Mode; 5] = [
        Mode::Pass,
        Mode::Constant,
        Mode::Rle,
        Mode::Huffman,
        Mode::Huffman4,
    ];

    /// The wire byte identifying this mode.
    pub fn to_byte(self) -> u8 {
        match self {
            Mode::Pass => 0,
            Mode::Constant => 1,
            Mode::Rle => 2,
            Mode::Huffman => 3,
            Mode::Huffman4 => 4,
        }
    }

    /// Parse a wire mode byte.
    pub fn from_byte(b: u8) -> Option<Mode> {
        match b {
            0 => Some(Mode::Pass),
            1 => Some(Mode::Constant),
            2 => Some(Mode::Rle),
            3 => Some(Mode::Huffman),
            4 => Some(Mode::Huffman4),
            _ => None,
        }
    }

    /// Short lowercase name (used in benchmark tables).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Pass => "pass",
            Mode::Constant => "constant",
            Mode::Rle => "rle",
            Mode::Huffman => "huffman",
            Mode::Huffman4 => "huffman4",
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A chunk failed to decode: the compressed bytes are inconsistent with
/// the recorded mode or raw length. Carries a static description of the
/// first violated invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntropyError(pub &'static str);

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "entropy chunk corrupt: {}", self.0)
    }
}

impl std::error::Error for EntropyError {}

/// Bytes sampled per estimator window; four windows are spread across
/// the chunk, so at most 256 bytes are inspected however large it is.
const SAMPLE_WINDOW: usize = 64;

/// Fixed per-chunk overhead of a Huffman chunk (its code-length table
/// plus slack for the final partial byte) the estimator charges.
const HUFFMAN_OVERHEAD: f64 = (HUFFMAN_TABLE_BYTES + 2) as f64;

/// Fixed per-chunk overhead of a `Huffman4` chunk: the table, the three
/// stream-end offsets, and slack for four final partial bytes.
const HUFFMAN4_OVERHEAD: f64 = (HUFFMAN4_HEADER_BYTES + 5) as f64;

/// Smallest chunk the estimator will route to [`Mode::Huffman4`]. Below
/// this the 4-way form's extra header is a measurable ratio cost while
/// its decode advantage is amortized over too few symbols; above it the
/// ~15 extra bytes are noise. Tiny chunks therefore always pick 1-way
/// [`Mode::Huffman`] (or better), never `Huffman4`.
pub const HUFFMAN4_MIN_CHUNK: usize = 4096;

/// Pick a coding mode for `raw` by sampling, not scanning
/// ([`select_mode_at`] at the detected tier).
pub fn select_mode(raw: &[u8]) -> Mode {
    select_mode_at(Tier::detect(), raw)
}

/// Pick a coding mode for `raw` by sampling, not scanning.
///
/// Constant detection probes a handful of spread positions and only pays
/// for a full scan when all probes match. The RLE and Huffman estimates
/// come from four 64-byte windows: the adjacent-repeat fraction stands in
/// for run coverage, and the sampled byte histogram's entropy `H` bounds
/// the Huffman bitstream at `n·H/8` bits plus the table overhead. A
/// Huffman win is upgraded to [`Mode::Huffman4`] when the chunk is at
/// least [`HUFFMAN4_MIN_CHUNK`] bytes **and** the 4-way overhead charge
/// still clears the margin.
///
/// The estimate errs toward [`Mode::Pass`]: a coded mode is chosen only
/// when its estimated size undercuts the raw size by more than 1/16 —
/// mispredicting *toward* Pass costs a little ratio, while mispredicting
/// away from it costs encode time **and** gets reverted by
/// [`encode_chunk`]'s size check anyway.
pub fn select_mode_at(tier: Tier, raw: &[u8]) -> Mode {
    let n = raw.len();
    if n < 2 {
        return Mode::Pass;
    }
    if probe_constant(raw) {
        return Mode::Constant;
    }

    // All windows sit at interior positions. The chunk's head (the
    // fixed-length array, one near-constant byte per block) is a tiny,
    // systematically atypical slice — an endpoint window anchored there
    // drags the sampled entropy far below the payload's and mispredicts
    // Huffman on incompressible data.
    //
    // Tier 1: two windows at 1/4 and 3/4, tracked with a 256-bit
    // presence bitmap (32 bytes of state). On dense data — most chunks
    // of a field that doesn't compress — the distinct count alone rules
    // every coded mode out and the estimator exits here. The Pass path
    // must stay within a few percent of a plain copy, so this tier never
    // touches the 1 KiB histogram: zeroing it per chunk is already
    // measurable against a cache-hot memcpy.
    if n > 4 * SAMPLE_WINDOW {
        let mut seen = [0u64; 4];
        let mut distinct = 0u32;
        let mut pairs = 0u32;
        let mut repeats = 0u32;
        for w in [1usize, 3] {
            let start = w * (n - SAMPLE_WINDOW) / 4;
            let win = &raw[start..start + SAMPLE_WINDOW];
            for (k, &b) in win.iter().enumerate() {
                let slot = &mut seen[(b >> 6) as usize];
                let bit = 1u64 << (b & 63);
                distinct += u32::from(*slot & bit == 0);
                *slot |= bit;
                if k > 0 {
                    pairs += 1;
                    repeats += u32::from(b == win[k - 1]);
                }
            }
        }
        // ≥ ~69% distinct sampled bytes: even an ideal byte code cannot
        // clear the 1/16 Pass margin, and runs are absent.
        let samples = 2 * SAMPLE_WINDOW as u32;
        if distinct * 16 >= samples * 11 && repeats * 8 < pairs {
            return Mode::Pass;
        }
    }

    // Tier 2: the chunk looks codable (or is small enough to sample
    // whole), so the full histogram pays for itself. Re-walk the tier-1
    // windows and add two more at 1/8 and 7/8 before the entropy
    // estimate below. The counting runs through the 4-lane accumulator
    // so even the sampling path dodges the store-forwarding chain.
    let mut lanes = histogram::Lanes4::new();
    let mut pairs = 0u32;
    let mut repeats = 0u32;
    let mut samples = 0u32;
    let mut sample = |win: &[u8]| {
        lanes.accumulate(win);
        samples += win.len() as u32;
        for k in 1..win.len() {
            pairs += 1;
            repeats += u32::from(win[k] == win[k - 1]);
        }
    };
    if n <= 4 * SAMPLE_WINDOW {
        sample(raw);
    } else {
        for (w, d) in [(1usize, 4usize), (3, 4), (1, 8), (7, 8)] {
            let start = w * (n - SAMPLE_WINDOW) / d;
            sample(&raw[start..start + SAMPLE_WINDOW]);
        }
    }
    let mut hist = [0u32; 256];
    lanes.merge_into(&mut hist);
    let distinct = hist.iter().filter(|&&c| c > 0).count() as u32;

    let n_f = n as f64;
    let rho = if pairs == 0 {
        0.0
    } else {
        f64::from(repeats) / f64::from(pairs)
    };
    // Literal bytes cost ~1 byte each; run bytes amortize to well under
    // one (2 stored bytes per run). 0.3 models short-ish runs.
    let est_rle = n_f * (1.0 - rho) + n_f * rho * 0.3 + 2.0;
    let mut entropy_bits = 0.0;
    for &c in &hist {
        if c > 0 {
            let p = f64::from(c) / f64::from(samples);
            entropy_bits -= p * p.log2();
        }
    }
    // Miller–Madow bias correction: a plug-in estimate from few samples
    // over many occupied bins systematically *under*states the entropy
    // (uniform noise would otherwise look compressible).
    entropy_bits += f64::from(distinct - 1) / (2.0 * f64::from(samples) * std::f64::consts::LN_2);
    let bitstream = n_f * entropy_bits.min(8.0) / 8.0;
    let est_huffman = bitstream + HUFFMAN_OVERHEAD;

    let margin = n_f / 16.0;
    let best = est_rle.min(est_huffman);
    if best + margin >= n_f {
        Mode::Pass
    } else if est_rle <= est_huffman {
        Mode::Rle
    } else if n >= HUFFMAN4_MIN_CHUNK && bitstream + HUFFMAN4_OVERHEAD + margin < n_f {
        // The tier only schedules instructions, but it still gates the
        // *wire* upgrade consistently: the choice depends on chunk size
        // and estimate alone, never on `tier`, so frames stay identical
        // across the ladder.
        let _ = tier;
        Mode::Huffman4
    } else {
        Mode::Huffman
    }
}

/// Cheap constant test: probe eight spread positions, full scan only if
/// every probe equals the first byte.
fn probe_constant(raw: &[u8]) -> bool {
    let n = raw.len();
    let b = raw[0];
    for k in 1..8 {
        if raw[k * (n - 1) / 7] != b {
            return false;
        }
    }
    raw.iter().all(|&x| x == b)
}

/// Encode `raw` under `mode` at the detected tier ([`encode_chunk_at`]).
pub fn encode_chunk(mode: Mode, raw: &[u8], out: &mut Vec<u8>) -> Mode {
    encode_chunk_at(Tier::detect(), mode, raw, out)
}

/// Encode `raw` under `mode`, appending the coded bytes to `out` using
/// `tier`'s kernels (the coded bytes are identical at every tier).
///
/// Returns the mode **actually** used: whenever the requested mode would
/// not produce strictly fewer bytes than `raw` (or its precondition does
/// not hold — a non-constant chunk requested as [`Mode::Constant`]), the
/// chunk falls back to [`Mode::Pass`] and the raw bytes are appended
/// instead. The returned mode is what belongs in the `CUSZPHY1` table,
/// and the appended length never exceeds `raw.len()`.
pub fn encode_chunk_at(tier: Tier, mode: Mode, raw: &[u8], out: &mut Vec<u8>) -> Mode {
    if raw.is_empty() {
        return Mode::Pass;
    }
    let mark = out.len();
    match mode {
        Mode::Pass => {}
        Mode::Constant => {
            if raw.iter().all(|&b| b == raw[0]) {
                out.push(raw[0]);
                return Mode::Constant;
            }
        }
        Mode::Rle => {
            rle::encode(tier, raw, out);
            if out.len() - mark < raw.len() {
                return Mode::Rle;
            }
            out.truncate(mark);
        }
        Mode::Huffman => {
            if huffman::encode(tier, raw, out) {
                return Mode::Huffman;
            }
        }
        Mode::Huffman4 => {
            if interleave::encode(tier, raw, out) {
                return Mode::Huffman4;
            }
        }
    }
    out.extend_from_slice(raw);
    Mode::Pass
}

/// Decode a chunk coded by [`encode_chunk`] into `out`, whose length must
/// be the chunk's recorded raw length. Tier-independent: the decoders
/// are table-driven and already word-parallel.
///
/// Every inconsistency between `mode`, `comp`, and `out.len()` is a typed
/// [`EntropyError`]; no input panics. On error the contents of `out` are
/// unspecified (the caller re-validates or discards them).
pub fn decode_chunk(mode: Mode, comp: &[u8], out: &mut [u8]) -> Result<(), EntropyError> {
    match mode {
        Mode::Pass => {
            if comp.len() != out.len() {
                return Err(EntropyError("pass chunk length mismatch"));
            }
            out.copy_from_slice(comp);
            Ok(())
        }
        Mode::Constant => {
            if comp.len() != 1 {
                return Err(EntropyError("constant chunk must store exactly one byte"));
            }
            out.fill(comp[0]);
            Ok(())
        }
        Mode::Rle => rle::decode(comp, out),
        Mode::Huffman => huffman::decode(comp, out),
        Mode::Huffman4 => interleave::decode(comp, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift bytes (the crate has no dependencies).
    fn noise(len: usize, mut seed: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 32) as u8
            })
            .collect()
    }

    fn skewed(len: usize, seed: u64) -> Vec<u8> {
        // Mostly zeros with occasional small values: the shape tight
        // error bounds produce after bit-shuffling.
        noise(len, seed)
            .into_iter()
            .map(|b| if b < 200 { 0 } else { b & 0x07 })
            .collect()
    }

    fn roundtrip(mode: Mode, raw: &[u8]) -> Mode {
        let mut comp = Vec::new();
        let used = encode_chunk(mode, raw, &mut comp);
        assert!(comp.len() <= raw.len().max(1), "chunk expanded");
        let mut back = vec![0xA5u8; raw.len()];
        decode_chunk(used, &comp, &mut back).unwrap();
        assert_eq!(back, raw, "mode {used} round trip");
        used
    }

    #[test]
    fn every_mode_roundtrips_on_every_shape() {
        let shapes: Vec<Vec<u8>> = vec![
            vec![],
            vec![42],
            vec![7; 1000],
            noise(1000, 99),
            skewed(5000, 3),
            (0..=255).collect(),
            noise(3, 1),
        ];
        for raw in &shapes {
            for mode in Mode::ALL {
                roundtrip(mode, raw);
            }
        }
    }

    #[test]
    fn every_tier_encodes_identical_chunks() {
        let shapes: Vec<Vec<u8>> = vec![
            skewed(20_000, 3),
            noise(4096, 9),
            vec![7; 1000],
            skewed(300, 5),
        ];
        for raw in &shapes {
            for mode in Mode::ALL {
                let mut want = Vec::new();
                let want_mode = encode_chunk_at(Tier::Scalar, mode, raw, &mut want);
                for tier in Tier::ALL {
                    if tier > Tier::detect() {
                        continue;
                    }
                    let mut got = Vec::new();
                    let got_mode = encode_chunk_at(tier, mode, raw, &mut got);
                    assert_eq!(got_mode, want_mode, "tier {tier} mode {mode}");
                    assert_eq!(got, want, "tier {tier} mode {mode} bytes");
                    assert_eq!(select_mode_at(tier, raw), select_mode_at(Tier::Scalar, raw));
                }
            }
        }
    }

    #[test]
    fn constant_chunks_flush_to_one_byte() {
        let raw = vec![9u8; 4096];
        let mut comp = Vec::new();
        assert_eq!(
            encode_chunk(Mode::Constant, &raw, &mut comp),
            Mode::Constant
        );
        assert_eq!(comp, vec![9]);
    }

    #[test]
    fn misdeclared_constant_falls_back_to_pass() {
        let mut raw = vec![9u8; 100];
        raw[50] = 1;
        let mut comp = Vec::new();
        assert_eq!(encode_chunk(Mode::Constant, &raw, &mut comp), Mode::Pass);
        assert_eq!(comp, raw);
    }

    #[test]
    fn incompressible_chunks_fall_back_to_pass() {
        let raw = noise(300, 5);
        for mode in [Mode::Rle, Mode::Huffman, Mode::Huffman4] {
            let mut comp = Vec::new();
            assert_eq!(encode_chunk(mode, &raw, &mut comp), Mode::Pass);
            assert_eq!(comp, raw, "fallback must store the raw bytes");
        }
    }

    #[test]
    fn estimator_picks_sensible_modes() {
        assert_eq!(select_mode(&[]), Mode::Pass);
        assert_eq!(select_mode(&vec![3u8; 10_000]), Mode::Constant);
        assert_eq!(select_mode(&noise(10_000, 17)), Mode::Pass);
        // Skewed-but-varied bytes should pick a coded mode, and the coded
        // mode must actually win.
        let raw = skewed(10_000, 11);
        let mode = select_mode(&raw);
        assert_ne!(mode, Mode::Pass, "skewed data should compress");
        let mut comp = Vec::new();
        assert_eq!(encode_chunk(mode, &raw, &mut comp), mode);
        assert!(comp.len() < raw.len());
    }

    #[test]
    fn large_huffman_chunks_upgrade_to_four_streams() {
        // A 10 KiB skewed chunk is exactly the shape Huffman4 exists
        // for; the same texture below the size floor must stay 1-way.
        let raw = skewed(10_000, 11);
        assert_eq!(select_mode(&raw), Mode::Huffman4);
        let raw = skewed(HUFFMAN4_MIN_CHUNK - 1, 11);
        let mode = select_mode(&raw);
        assert_ne!(mode, Mode::Huffman4, "tiny chunks must not pick Huffman4");
    }

    #[test]
    fn tiny_chunks_never_pick_huffman4() {
        // Sweep textures and sizes below the floor: whatever the
        // estimator picks, it is never the 4-way form, whose header
        // would eat the win on chunks this small.
        for seed in 0..12u64 {
            for len in [64usize, 300, 1000, 2048, HUFFMAN4_MIN_CHUNK - 1] {
                let raw = match seed % 3 {
                    0 => skewed(len, seed + 1),
                    1 => noise(len, seed + 1),
                    _ => noise(len, seed + 1).into_iter().map(|b| b & 0x1F).collect(),
                };
                assert_ne!(
                    select_mode(&raw),
                    Mode::Huffman4,
                    "len {len} seed {seed} picked Huffman4 below the floor"
                );
            }
        }
    }

    #[test]
    fn adaptive_never_beats_pass_by_size() {
        // Whatever the estimator says, the stored bytes never exceed raw.
        for seed in 0..20 {
            let raw = if seed % 2 == 0 {
                noise(777, seed)
            } else {
                skewed(777, seed)
            };
            let mode = select_mode(&raw);
            let mut comp = Vec::new();
            encode_chunk(mode, &raw, &mut comp);
            assert!(comp.len() <= raw.len());
        }
    }

    #[test]
    fn decode_rejects_wrong_lengths() {
        let mut out = vec![0u8; 10];
        assert!(decode_chunk(Mode::Pass, &[1, 2, 3], &mut out).is_err());
        assert!(decode_chunk(Mode::Constant, &[1, 2], &mut out).is_err());
        assert!(decode_chunk(Mode::Constant, &[], &mut out).is_err());
    }

    #[test]
    fn rle_corruption_is_typed() {
        let raw = vec![5u8; 64];
        let mut comp = Vec::new();
        assert_eq!(encode_chunk(Mode::Rle, &raw, &mut comp), Mode::Rle);
        let mut out = vec![0u8; 64];
        // Reserved control byte.
        assert_eq!(
            decode_chunk(Mode::Rle, &[128], &mut out),
            Err(EntropyError("rle reserved control byte"))
        );
        // Truncated repeat run (control byte with no payload byte).
        assert!(decode_chunk(Mode::Rle, &[200], &mut out).is_err());
        // Truncated literal run.
        assert!(decode_chunk(Mode::Rle, &[10, 1, 2], &mut out).is_err());
        // Output overflow: declared runs overshoot the raw length.
        let mut tiny = vec![0u8; 3];
        assert!(decode_chunk(Mode::Rle, &comp, &mut tiny).is_err());
        // Underflow: runs end before the raw length is reached.
        let mut long = vec![0u8; 65];
        assert!(decode_chunk(Mode::Rle, &comp, &mut long).is_err());
    }

    #[test]
    fn huffman_corruption_is_typed() {
        let raw = skewed(2000, 7);
        let mut comp = Vec::new();
        assert_eq!(encode_chunk(Mode::Huffman, &raw, &mut comp), Mode::Huffman);
        let mut out = vec![0u8; raw.len()];
        // Table truncated below 128 bytes.
        assert!(decode_chunk(Mode::Huffman, &comp[..100], &mut out).is_err());
        // Bitstream truncated.
        assert!(decode_chunk(Mode::Huffman, &comp[..comp.len() - 1], &mut out).is_err());
        // Trailing bytes.
        let mut long = comp.clone();
        long.push(0);
        assert!(decode_chunk(Mode::Huffman, &long, &mut out).is_err());
        // Overfull code-length table (all-one nibbles → Kraft > 1).
        let mut bad = comp.clone();
        for b in bad.iter_mut().take(HUFFMAN_TABLE_BYTES) {
            *b = 0x11;
        }
        assert!(decode_chunk(Mode::Huffman, &bad, &mut out).is_err());
        // An empty table cannot decode a non-empty chunk.
        let empty_table = vec![0u8; HUFFMAN_TABLE_BYTES];
        assert!(decode_chunk(Mode::Huffman, &empty_table, &mut out).is_err());
    }

    #[test]
    fn huffman4_corruption_is_typed() {
        let raw = skewed(20_000, 7);
        let mut comp = Vec::new();
        assert_eq!(
            encode_chunk(Mode::Huffman4, &raw, &mut comp),
            Mode::Huffman4
        );
        let mut out = vec![0u8; raw.len()];
        for cut in [0, 100, HUFFMAN4_HEADER_BYTES, comp.len() - 1] {
            assert!(
                decode_chunk(Mode::Huffman4, &comp[..cut], &mut out).is_err(),
                "prefix {cut}"
            );
        }
        let mut long = comp.clone();
        long.push(0);
        assert!(decode_chunk(Mode::Huffman4, &long, &mut out).is_err());
        // A Huffman4 chunk is not a valid 1-way chunk and vice versa
        // (the offset words sit where the 1-way bitstream starts).
        assert!(decode_chunk(Mode::Huffman, &comp, &mut out).is_err());
    }

    #[test]
    fn mode_bytes_roundtrip_and_reject_unknown() {
        for m in Mode::ALL {
            assert_eq!(Mode::from_byte(m.to_byte()), Some(m));
        }
        assert_eq!(Mode::from_byte(5), None);
        assert_eq!(Mode::from_byte(255), None);
    }
}
