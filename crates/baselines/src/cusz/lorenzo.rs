//! Multi-dimensional dual-quantization Lorenzo prediction — cuSZ's
//! prediction stage (paper ref \[33\]).
//!
//! Dual quantization first pre-quantizes every value (`r = round(d/2eb)`),
//! then predicts each `r` from its already-quantized neighbours with the
//! d-dimensional Lorenzo stencil. The prediction residual is the
//! d-dimensional finite difference of `r`, so the inverse is a *separable*
//! chain of cumulative sums along each axis — which is how cuSZ
//! parallelizes reverse prediction, and how our decode kernels do too.
//!
//! Residuals are clamped into `[−RADIUS, RADIUS)` quantization codes;
//! out-of-range residuals become **outliers** stored exactly. Code `i`
//! represents residual `i − RADIUS`; code 0 marks an outlier position.

/// Quantization-code radius (cuSZ default dictionary of 1024 codes).
pub const RADIUS: i64 = 512;
/// Dictionary size (codes are `u16` in `[0, 1024)`).
pub const DICT_SIZE: usize = 2 * RADIUS as usize;
/// Code marking an outlier position.
pub const OUTLIER_CODE: u16 = 0;

/// Apply the d-dimensional finite-difference (forward Lorenzo on
/// pre-quantized integers), in place. `shape` is row-major, ≤ 3 axes
/// (higher-D callers collapse leading axes first).
pub fn forward_difference(r: &mut [i64], shape: &[usize]) {
    assert!((1..=3).contains(&shape.len()));
    let n: usize = shape.iter().product();
    assert_eq!(n, r.len());
    // Differencing along each axis in turn computes the full stencil:
    // Δ = (I − S_x)(I − S_y)(I − S_z) r, processed high-index→low so each
    // pass uses original values.
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len() - 1).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    for (axis, &len) in shape.iter().enumerate() {
        let stride = strides[axis];
        // For every 1-D line along `axis`, difference from the tail.
        for_each_line(shape, axis, |base| {
            for k in (1..len).rev() {
                let idx = base + k * stride;
                let prev = base + (k - 1) * stride;
                r[idx] -= r[prev];
            }
        });
    }
}

/// Invert [`forward_difference`]: cumulative sums along each axis (the
/// separable reverse-Lorenzo cuSZ runs as one kernel per axis).
pub fn inverse_difference(delta: &mut [i64], shape: &[usize]) {
    assert!((1..=3).contains(&shape.len()));
    let n: usize = shape.iter().product();
    assert_eq!(n, delta.len());
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len() - 1).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    for (axis, &len) in shape.iter().enumerate() {
        let stride = strides[axis];
        for_each_line(shape, axis, |base| {
            for k in 1..len {
                let idx = base + k * stride;
                let prev = base + (k - 1) * stride;
                delta[idx] += delta[prev];
            }
        });
    }
}

/// Invoke `f(base_index)` for every 1-D line of `shape` along `axis`.
pub fn for_each_line(shape: &[usize], axis: usize, mut f: impl FnMut(usize)) {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len() - 1).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    // Iterate over all coordinates with `axis` fixed at 0. For 1-D fields
    // the empty product is 1: exactly one line.
    let other: Vec<usize> = (0..shape.len()).filter(|&d| d != axis).collect();
    let count: usize = other.iter().map(|&d| shape[d]).product();
    for flat in 0..count {
        let mut rem = flat;
        let mut base = 0usize;
        for &d in other.iter().rev() {
            base += (rem % shape[d]) * strides[d];
            rem /= shape[d];
        }
        f(base);
    }
}

/// Number of 1-D lines along `axis` (used by kernels to size grids).
pub fn line_count(shape: &[usize], axis: usize) -> usize {
    (0..shape.len())
        .filter(|&d| d != axis)
        .map(|d| shape[d])
        .product()
}

/// Split residuals into codes + outliers. Returns `(codes, outliers)`
/// where outliers are `(flat index, exact residual)`.
pub fn to_codes(delta: &[i64]) -> (Vec<u16>, Vec<(u32, i64)>) {
    let mut codes = Vec::with_capacity(delta.len());
    let mut outliers = Vec::new();
    for (i, &d) in delta.iter().enumerate() {
        if d > -RADIUS && d < RADIUS {
            let code = (d + RADIUS) as u16;
            debug_assert_ne!(code, OUTLIER_CODE);
            codes.push(code);
        } else {
            codes.push(OUTLIER_CODE);
            outliers.push((i as u32, d));
        }
    }
    (codes, outliers)
}

/// Rebuild residuals from codes + outliers.
pub fn from_codes(codes: &[u16], outliers: &[(u32, i64)]) -> Vec<i64> {
    let mut delta: Vec<i64> = codes
        .iter()
        .map(|&c| {
            if c == OUTLIER_CODE {
                0
            } else {
                c as i64 - RADIUS
            }
        })
        .collect();
    for &(idx, d) in outliers {
        delta[idx as usize] = d;
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference_roundtrip_1d() {
        let mut r: Vec<i64> = vec![5, 7, 7, 3, -2, 0, 100];
        let orig = r.clone();
        forward_difference(&mut r, &[7]);
        assert_eq!(r[0], 5);
        assert_eq!(r[1], 2);
        inverse_difference(&mut r, &[7]);
        assert_eq!(r, orig);
    }

    #[test]
    fn difference_roundtrip_2d_3d() {
        let mut r2: Vec<i64> = (0..35).map(|i| ((i * 37) % 23) as i64 - 11).collect();
        let orig2 = r2.clone();
        forward_difference(&mut r2, &[5, 7]);
        inverse_difference(&mut r2, &[5, 7]);
        assert_eq!(r2, orig2);

        let mut r3: Vec<i64> = (0..60).map(|i| ((i * 97) % 41) as i64).collect();
        let orig3 = r3.clone();
        forward_difference(&mut r3, &[3, 4, 5]);
        inverse_difference(&mut r3, &[3, 4, 5]);
        assert_eq!(r3, orig3);
    }

    #[test]
    fn stencil_matches_direct_2d_lorenzo() {
        // Δ[i,j] = r[i,j] − r[i−1,j] − r[i,j−1] + r[i−1,j−1].
        let shape = [4usize, 4];
        let r: Vec<i64> = (0..16).map(|i| ((i * i) % 13) as i64).collect();
        let at = |v: &[i64], i: i64, j: i64| -> i64 {
            if i < 0 || j < 0 {
                0
            } else {
                v[(i * 4 + j) as usize]
            }
        };
        let mut d = r.clone();
        forward_difference(&mut d, &shape);
        for i in 0..4i64 {
            for j in 0..4i64 {
                let expect =
                    at(&r, i, j) - at(&r, i - 1, j) - at(&r, i, j - 1) + at(&r, i - 1, j - 1);
                assert_eq!(d[(i * 4 + j) as usize], expect, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn smooth_field_gives_tiny_residuals() {
        let shape = [16usize, 16];
        let mut r: Vec<i64> = (0..256).map(|i| (i / 16 + i % 16) as i64 * 3).collect();
        forward_difference(&mut r, &shape);
        // A plane has zero 2nd differences except on the two leading edges.
        let r = &r;
        let interior_max = (1..16)
            .flat_map(|i| (1..16).map(move |j| r[i * 16 + j].abs()))
            .max()
            .unwrap();
        assert_eq!(interior_max, 0);
    }

    #[test]
    fn codes_roundtrip_with_outliers() {
        let delta = vec![0i64, 5, -511, 511, -512, 512, 10_000, -10_000];
        let (codes, outliers) = to_codes(&delta);
        assert_eq!(outliers.len(), 4); // ±512 and ±10000 are out of range
        assert_eq!(codes[0], RADIUS as u16);
        assert_eq!(codes[4], OUTLIER_CODE);
        assert_eq!(from_codes(&codes, &outliers), delta);
    }

    #[test]
    fn line_counts() {
        assert_eq!(line_count(&[5, 7], 0), 7);
        assert_eq!(line_count(&[5, 7], 1), 5);
        assert_eq!(line_count(&[3, 4, 5], 1), 15);
        assert_eq!(line_count(&[9], 0), 1);
    }
}
