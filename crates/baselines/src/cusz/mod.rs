//! cuSZ-like compressor: dual-quant multi-D Lorenzo + quantization codes +
//! **CPU-built canonical Huffman**, as a multi-kernel pipeline (paper
//! ref \[33\]).
//!
//! Pipeline structure (what Fig 13/14 measures):
//!
//! * **Compression**: quantize kernel → per-axis prediction kernels →
//!   code-split kernel → histogram kernel → *histogram D2H* → *CPU Huffman
//!   codebook build* → encode kernel (per-chunk bitstreams) → *chunk sizes
//!   D2H, CPU offset scan + outlier finalization, offsets H2D* → compaction
//!   kernel. The host round-trips ride **pageable** memory, as in the
//!   reference implementation — effective bandwidth is a fraction of the
//!   link rate, which is why Memcpy dominates the end-to-end breakdown.
//! * **Decompression**: *codebook H2D + CPU canonical-table setup* →
//!   Huffman decode kernel → *CPU chunk bookkeeping* → outlier scatter →
//!   per-axis inverse-prediction (cumulative sum) kernels → dequantize
//!   kernel.
//!
//! Quality-wise this is the strongest baseline (multi-dimensional
//! prediction + entropy coding ⇒ best rate-distortion after cuSZp in
//! Figs 17/18); speed-wise the host work caps it at ~1–2 GB/s end-to-end.

pub mod huffman;
pub mod lorenzo;

use crate::common::{Compressor, CompressorKind, Stream};
use gpu_sim::{DeviceAtomics, DeviceBuffer, Gpu, LaunchConfig};
use huffman::Codebook;
use lorenzo::{DICT_SIZE, OUTLIER_CODE, RADIUS};
use std::any::Any;

/// Codes per Huffman chunk (the reference uses chunked encoding).
pub const CHUNK: usize = 4096;

/// Step labels.
pub const STEP_QUANT: &str = "quantize";
/// Prediction step label.
pub const STEP_PRED: &str = "predict";
/// Histogram step label.
pub const STEP_HIST: &str = "histogram";
/// Huffman encode/decode step label.
pub const STEP_HUFF: &str = "huffman";
/// Compaction/scatter step label.
pub const STEP_COMPACT: &str = "compact";

/// Device + host state of a cuSZ-like compressed stream.
pub struct CuszStream {
    /// Canonical code lengths per symbol (the stored codebook).
    pub codebook_lengths: Vec<u8>,
    /// Bit length of each chunk's stream.
    pub chunk_bits: Vec<u32>,
    /// Byte-aligned concatenated chunk bitstreams (device).
    pub bitstream: DeviceBuffer<u8>,
    /// Valid bytes in `bitstream`.
    pub bitstream_len: usize,
    /// Outlier positions (exact residuals that escaped the dictionary).
    pub outliers: Vec<(u32, i64)>,
    /// Original element count.
    pub num_elements: usize,
    /// Field shape (collapsed to ≤ 3 axes).
    pub shape: Vec<usize>,
    /// Absolute error bound.
    pub eb: f64,
}

impl Stream for CuszStream {
    fn stream_bytes(&self) -> u64 {
        self.bitstream_len as u64
            + self.codebook_lengths.len() as u64
            + self.chunk_bits.len() as u64 * 4
            + self.outliers.len() as u64 * 12
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The cuSZ-like compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuszLike;

impl CuszLike {
    /// Construct with the reference dictionary size (1024 codes).
    pub fn new() -> Self {
        CuszLike
    }
}

/// Pageable D2H transfer (the slow staged path the reference uses).
fn d2h_pageable<T: gpu_sim::DeviceCopy>(
    gpu: &mut Gpu,
    buf: &DeviceBuffer<T>,
    len: usize,
) -> Vec<T> {
    gpu.d2h_prefix_pageable(buf, len)
}

/// Pageable H2D transfer.
fn h2d_pageable<T: gpu_sim::DeviceCopy>(gpu: &mut Gpu, host: &[T]) -> DeviceBuffer<T> {
    gpu.h2d_pageable(host)
}

/// Collapse ≥4-D shapes (the Lorenzo stencil supports up to 3 axes).
fn collapse_shape(shape: &[usize]) -> Vec<usize> {
    crate::cuzfp::collapse_shape(shape)
}

impl Compressor for CuszLike {
    fn kind(&self) -> CompressorKind {
        CompressorKind::Cusz
    }

    fn is_error_bounded(&self) -> bool {
        true
    }

    fn compress(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<f32>,
        shape: &[usize],
        eb: f64,
    ) -> Box<dyn Stream> {
        assert!(eb.is_finite() && eb > 0.0);
        let shape = collapse_shape(shape);
        let n: usize = shape.iter().product();
        assert_eq!(n, input.len(), "shape/data mismatch");

        // K1: pre-quantization.
        let r = gpu.alloc::<i64>(n);
        gpu.launch("cusz_quantize", LaunchConfig::cover(n, 1024), |ctx| {
            let inp = input.slice();
            let out = r.slice();
            let start = ctx.block * 1024;
            let end = (start + 1024).min(n);
            for i in start..end {
                out.set(i, (inp.get(i) as f64 / (2.0 * eb)).round() as i64);
            }
            ctx.read(STEP_QUANT, ((end - start) * 4) as u64);
            ctx.write(STEP_QUANT, ((end - start) * 8) as u64);
            ctx.ops(STEP_QUANT, ((end - start) * 6) as u64);
        });

        // K2..K(1+d): per-axis forward differencing (high index → low, so
        // each line is parallel; one kernel per axis like the reference).
        let mut strides = vec![1usize; shape.len()];
        for i in (0..shape.len() - 1).rev() {
            strides[i] = strides[i + 1] * shape[i + 1];
        }
        for axis in 0..shape.len() {
            let lines = lorenzo::line_count(&shape, axis);
            let len = shape[axis];
            let stride = strides[axis];
            let shape_c = shape.clone();
            gpu.launch("cusz_predict", LaunchConfig::cover(lines, 64), |ctx| {
                let data = r.slice();
                let l0 = ctx.block * 64;
                let mut touched = 0u64;
                for line in l0..(l0 + 64).min(lines) {
                    // Decompose line id into the non-axis coordinates.
                    let mut rem = line;
                    let mut base = 0usize;
                    for d in (0..shape_c.len()).rev() {
                        if d == axis {
                            continue;
                        }
                        base += (rem % shape_c[d]) * strides_of(&shape_c)[d];
                        rem /= shape_c[d];
                    }
                    for k in (1..len).rev() {
                        let idx = base + k * stride;
                        let prev = base + (k - 1) * stride;
                        data.set(idx, data.get(idx) - data.get(prev));
                    }
                    touched += len as u64;
                }
                ctx.read(STEP_PRED, touched * 16);
                ctx.write(STEP_PRED, touched * 8);
                ctx.ops(STEP_PRED, touched * 2);
            });
        }

        // K: split residuals into codes + outliers.
        let codes = gpu.alloc::<u16>(n);
        // Worst case every residual escapes the dictionary (rough data at
        // tight bounds), so size for it — the reference grows its sparse
        // buffer the same way.
        let outlier_idx = gpu.alloc::<u32>(n.max(64));
        let outlier_val = gpu.alloc::<i64>(n.max(64));
        let outlier_count = DeviceAtomics::zeroed(1);
        let ocap = outlier_idx.len();
        gpu.launch("cusz_codes", LaunchConfig::cover(n, 1024), |ctx| {
            let delta = r.slice();
            let c = codes.slice();
            let oi = outlier_idx.slice();
            let ov = outlier_val.slice();
            let start = ctx.block * 1024;
            let end = (start + 1024).min(n);
            for i in start..end {
                let d = delta.get(i);
                if d > -RADIUS && d < RADIUS {
                    c.set(i, (d + RADIUS) as u16);
                } else {
                    c.set(i, OUTLIER_CODE);
                    let slot = outlier_count.fetch_add(0, 1) as usize;
                    assert!(slot < ocap, "outlier buffer overflow");
                    oi.set(slot, i as u32);
                    ov.set(slot, d);
                }
            }
            ctx.read(STEP_QUANT, ((end - start) * 8) as u64);
            ctx.write(STEP_QUANT, ((end - start) * 2) as u64);
            ctx.ops(STEP_QUANT, ((end - start) * 3) as u64);
        });

        // K: histogram of codes.
        let hist = DeviceAtomics::zeroed(DICT_SIZE);
        gpu.launch("cusz_histogram", LaunchConfig::cover(n, 4096), |ctx| {
            let c = codes.slice();
            let start = ctx.block * 4096;
            let end = (start + 4096).min(n);
            for i in start..end {
                hist.fetch_add(c.get(i) as usize, 1);
            }
            ctx.read(STEP_HIST, ((end - start) * 2) as u64);
            ctx.write(STEP_HIST, ((end - start) / 16) as u64);
            ctx.ops(STEP_HIST, (end - start) as u64);
        });

        // Histogram D2H + CPU codebook construction (the Fig 14 bottleneck).
        let freq: Vec<u64> = (0..DICT_SIZE).map(|s| hist.load(s)).collect();
        gpu.cpu_work("cusz-hist-d2h", 8_000); // tiny pageable transfer
        let lengths = huffman::build_lengths(&freq);
        gpu.cpu_work("cusz-huffman-build", Codebook::build_cost_ops(DICT_SIZE));
        let book = Codebook::from_lengths(&lengths);

        // Outlier finalization on the host: the reference copies the quant
        // codes out and gathers/sorts outliers in pageable memory.
        let codes_host = d2h_pageable(gpu, &codes, n);
        let ocount = outlier_count.load(0) as usize;
        let oi_host = gpu.d2h_prefix(&outlier_idx, ocount);
        let ov_host = gpu.d2h_prefix(&outlier_val, ocount);
        let mut outliers: Vec<(u32, i64)> = oi_host.into_iter().zip(ov_host).collect();
        outliers.sort_unstable_by_key(|&(i, _)| i);
        gpu.cpu_work("cusz-outlier-gather", n as u64);

        // Encode kernel: chunked Huffman into worst-case scratch.
        let num_chunks = n.div_ceil(CHUNK);
        let worst_chunk_bytes = CHUNK * book.max_len.max(1) as usize / 8 + 8;
        let scratch = gpu.alloc::<u8>(num_chunks * worst_chunk_bytes);
        let chunk_bits_dev = gpu.alloc::<u32>(num_chunks);
        let book_ref = &book;
        gpu.launch("cusz_encode", LaunchConfig::cover(num_chunks, 4), |ctx| {
            let c = codes.slice();
            let scr = scratch.slice();
            let cb = chunk_bits_dev.slice();
            let ch0 = ctx.block * 4;
            let mut bits_total = 0u64;
            let mut syms = 0u64;
            for ch in ch0..(ch0 + 4).min(num_chunks) {
                let start = ch * CHUNK;
                let end = (start + CHUNK).min(n);
                let mut symbols = vec![0u16; end - start];
                for (k, s) in symbols.iter_mut().enumerate() {
                    *s = c.get(start + k);
                }
                let mut bytes = Vec::with_capacity(worst_chunk_bytes);
                let bl = huffman::encode(&symbols, book_ref, &mut bytes);
                scr.write_slice(ch * worst_chunk_bytes, &bytes);
                cb.set(ch, bl as u32);
                bits_total += bl as u64;
                syms += symbols.len() as u64;
            }
            ctx.read(STEP_HUFF, syms * 2);
            ctx.write_strided(STEP_HUFF, bits_total / 8);
            // Bit-serial emission: ~1 op per output bit plus table lookups.
            ctx.ops(STEP_HUFF, bits_total + syms * 2);
        });

        // Chunk sizes D2H, CPU offset scan, offsets H2D (pageable).
        let chunk_bits = d2h_pageable(gpu, &chunk_bits_dev, num_chunks);
        let mut offsets_host = vec![0u32; num_chunks];
        let mut acc = 0u32;
        for (ch, &bits) in chunk_bits.iter().enumerate() {
            offsets_host[ch] = acc;
            acc += bits.div_ceil(8);
        }
        gpu.cpu_work("cusz-deflate-scan", num_chunks as u64 * 8);
        let offsets = h2d_pageable(gpu, &offsets_host);
        let bitstream_len = acc as usize;
        let bitstream = gpu.alloc::<u8>(bitstream_len.max(1));

        // Compaction kernel.
        gpu.launch("cusz_compact", LaunchConfig::cover(num_chunks, 8), |ctx| {
            let scr = scratch.slice();
            let off = offsets.slice();
            let cb = chunk_bits_dev.slice();
            let out = bitstream.slice();
            let ch0 = ctx.block * 8;
            let mut moved = 0u64;
            for ch in ch0..(ch0 + 8).min(num_chunks) {
                let bytes = (cb.get(ch) as usize).div_ceil(8);
                let src = ch * worst_chunk_bytes;
                let dst = off.get(ch) as usize;
                for k in 0..bytes {
                    out.set(dst + k, scr.get(src + k));
                }
                moved += bytes as u64;
            }
            ctx.read_strided(STEP_COMPACT, moved);
            ctx.write_strided(STEP_COMPACT, moved);
            ctx.ops(STEP_COMPACT, moved);
        });

        let _ = codes_host; // host copy exists purely for the (charged) traffic
        Box::new(CuszStream {
            codebook_lengths: lengths,
            chunk_bits,
            bitstream,
            bitstream_len,
            outliers,
            num_elements: n,
            shape,
            eb,
        })
    }

    fn decompress(&self, gpu: &mut Gpu, stream: &dyn Stream) -> DeviceBuffer<f32> {
        let s = stream
            .as_any()
            .downcast_ref::<CuszStream>()
            .expect("not a cuSZ stream");
        let n = s.num_elements;
        let shape = s.shape.clone();
        let num_chunks = n.div_ceil(CHUNK);
        assert_eq!(num_chunks, s.chunk_bits.len());

        // CPU: canonical table reconstruction + codebook H2D.
        gpu.cpu_work(
            "cusz-canonical-rebuild",
            Codebook::build_cost_ops(DICT_SIZE) / 4,
        );
        let book = Codebook::from_lengths(&s.codebook_lengths);
        let _book_dev = h2d_pageable(gpu, &s.codebook_lengths);

        // CPU: chunk offset reconstruction (host-side bookkeeping), then
        // codes round-trip through pageable memory as in the reference.
        let mut offsets_host = vec![0u32; num_chunks];
        let mut acc = 0u32;
        for (ch, &bits) in s.chunk_bits.iter().enumerate() {
            offsets_host[ch] = acc;
            acc += bits.div_ceil(8);
        }
        gpu.cpu_work("cusz-chunk-setup", num_chunks as u64 * 8 + n as u64);
        let offsets = h2d_pageable(gpu, &offsets_host);
        let chunk_bits_dev = h2d_pageable(gpu, &s.chunk_bits);

        // Huffman decode kernel → codes.
        let codes = gpu.alloc::<u16>(n);
        let book_ref = &book;
        gpu.launch("cusz_decode", LaunchConfig::cover(num_chunks, 4), |ctx| {
            let bs = s.bitstream.slice();
            let off = offsets.slice();
            let cb = chunk_bits_dev.slice();
            let c = codes.slice();
            let ch0 = ctx.block * 4;
            let mut bits_total = 0u64;
            let mut syms = 0u64;
            for ch in ch0..(ch0 + 4).min(num_chunks) {
                let start = ch * CHUNK;
                let end = (start + CHUNK).min(n);
                let bit_len = cb.get(ch) as usize;
                let byte0 = off.get(ch) as usize;
                let nbytes = bit_len.div_ceil(8);
                let mut bytes = vec![0u8; nbytes];
                for (k, b) in bytes.iter_mut().enumerate() {
                    *b = bs.get(byte0 + k);
                }
                let symbols = huffman::decode(&bytes, bit_len, end - start, book_ref);
                for (k, &sym) in symbols.iter().enumerate() {
                    c.set(start + k, sym);
                }
                bits_total += bit_len as u64;
                syms += (end - start) as u64;
            }
            ctx.read_strided(STEP_HUFF, bits_total / 8);
            ctx.write(STEP_HUFF, syms * 2);
            ctx.ops(STEP_HUFF, bits_total * 2 + syms);
        });

        // Host-side outlier merge: the reference stages the decoded code
        // array through pageable memory to merge the sparse outliers on the
        // CPU — the second big Memcpy+CPU block in Fig 14b.
        let codes_host = d2h_pageable(gpu, &codes, n);
        gpu.cpu_work(
            "cusz-outlier-merge",
            n as u64 / 2 + s.outliers.len() as u64 * 4,
        );
        let codes = h2d_pageable(gpu, &codes_host);

        // Codes → residuals with outlier scatter.
        let delta = gpu.alloc::<i64>(n);
        let outlier_idx =
            h2d_pageable(gpu, &s.outliers.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        let outlier_val =
            h2d_pageable(gpu, &s.outliers.iter().map(|&(_, v)| v).collect::<Vec<_>>());
        let ocount = s.outliers.len();
        gpu.launch("cusz_scatter", LaunchConfig::cover(n, 1024), |ctx| {
            let c = codes.slice();
            let d = delta.slice();
            let start = ctx.block * 1024;
            let end = (start + 1024).min(n);
            for i in start..end {
                let code = c.get(i);
                d.set(
                    i,
                    if code == OUTLIER_CODE {
                        0
                    } else {
                        code as i64 - RADIUS
                    },
                );
            }
            ctx.read(STEP_QUANT, ((end - start) * 2) as u64);
            ctx.write(STEP_QUANT, ((end - start) * 8) as u64);
            ctx.ops(STEP_QUANT, (end - start) as u64);
        });

        // Sparse outlier scatter — its own kernel so it cannot race the
        // dense code expansion above (the reference uses a separate
        // sparse-scatter kernel too).
        if ocount > 0 {
            gpu.launch(
                "cusz_outlier_scatter",
                LaunchConfig::cover(ocount, 4096),
                |ctx| {
                    let d = delta.slice();
                    let oi = outlier_idx.slice();
                    let ov = outlier_val.slice();
                    let start = ctx.block * 4096;
                    let end = (start + 4096).min(ocount);
                    for k in start..end {
                        d.set(oi.get(k) as usize, ov.get(k));
                    }
                    ctx.read(STEP_COMPACT, ((end - start) * 12) as u64);
                    ctx.write_strided(STEP_COMPACT, ((end - start) * 8) as u64);
                    ctx.ops(STEP_COMPACT, (end - start) as u64);
                },
            );
        }

        // Per-axis inverse prediction (cumulative sums), one kernel each.
        let mut strides = vec![1usize; shape.len()];
        for i in (0..shape.len() - 1).rev() {
            strides[i] = strides[i + 1] * shape[i + 1];
        }
        for axis in 0..shape.len() {
            let lines = lorenzo::line_count(&shape, axis);
            let len = shape[axis];
            let stride = strides[axis];
            let shape_c = shape.clone();
            gpu.launch("cusz_unpredict", LaunchConfig::cover(lines, 64), |ctx| {
                let data = delta.slice();
                let l0 = ctx.block * 64;
                let mut touched = 0u64;
                for line in l0..(l0 + 64).min(lines) {
                    let mut rem = line;
                    let mut base = 0usize;
                    for d in (0..shape_c.len()).rev() {
                        if d == axis {
                            continue;
                        }
                        base += (rem % shape_c[d]) * strides_of(&shape_c)[d];
                        rem /= shape_c[d];
                    }
                    for k in 1..len {
                        let idx = base + k * stride;
                        let prev = base + (k - 1) * stride;
                        data.set(idx, data.get(idx) + data.get(prev));
                    }
                    touched += len as u64;
                }
                ctx.read(STEP_PRED, touched * 16);
                ctx.write(STEP_PRED, touched * 8);
                ctx.ops(STEP_PRED, touched * 2);
            });
        }

        // Dequantize kernel.
        let output = gpu.alloc::<f32>(n);
        let eb = s.eb;
        gpu.launch("cusz_dequantize", LaunchConfig::cover(n, 1024), |ctx| {
            let d = delta.slice();
            let out = output.slice();
            let start = ctx.block * 1024;
            let end = (start + 1024).min(n);
            for i in start..end {
                out.set(i, (d.get(i) as f64 * 2.0 * eb) as f32);
            }
            ctx.read(STEP_QUANT, ((end - start) * 8) as u64);
            ctx.write(STEP_QUANT, ((end - start) * 4) as u64);
            ctx.ops(STEP_QUANT, ((end - start) * 3) as u64);
        });

        output
    }
}

/// Row-major strides of a shape.
fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len() - 1).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn run(data: &[f32], shape: &[usize], eb: f64) -> (Vec<f32>, u64, usize) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(data);
        gpu.reset_timeline();
        let comp = CuszLike::new();
        let stream = comp.compress(&mut gpu, &input, shape, eb);
        let kernels = gpu.timeline().kernel_count();
        let bytes = stream.stream_bytes();
        let out = comp.decompress(&mut gpu, stream.as_ref());
        (gpu.d2h(&out), bytes, kernels)
    }

    #[test]
    fn roundtrip_respects_bound_1d() {
        let data: Vec<f32> = (0..3000).map(|i| (i as f32 * 0.01).sin() * 20.0).collect();
        let eb = 0.01;
        let (recon, _, _) = run(&data, &[3000], eb);
        for (i, (&d, &r)) in data.iter().zip(&recon).enumerate() {
            assert!(
                (d as f64 - r as f64).abs()
                    <= eb * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7,
                "idx {i}: {d} vs {r}"
            );
        }
    }

    #[test]
    fn roundtrip_respects_bound_2d_3d() {
        let data2: Vec<f32> = (0..64 * 48)
            .map(|i| ((i / 48) as f32 * 0.1).sin() * ((i % 48) as f32 * 0.2).cos() * 5.0)
            .collect();
        let (recon, _, _) = run(&data2, &[64, 48], 0.004);
        for (&d, &r) in data2.iter().zip(&recon) {
            assert!(
                (d as f64 - r as f64).abs()
                    <= 0.004 * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7
            );
        }

        let data3: Vec<f32> = (0..16 * 16 * 16)
            .map(|i| (i as f32 * 0.001).exp() % 7.0)
            .collect();
        let (recon, _, _) = run(&data3, &[16, 16, 16], 0.01);
        for (&d, &r) in data3.iter().zip(&recon) {
            assert!(
                (d as f64 - r as f64).abs()
                    <= 0.01 * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7
            );
        }
    }

    #[test]
    fn outliers_reconstruct_exactly() {
        // Spikes blow past the dictionary radius and must come back within
        // bound anyway.
        let mut data: Vec<f32> = vec![0.0; 2000];
        data[500] = 1.0e6;
        data[501] = -1.0e6;
        data[1999] = 5.0e5;
        let eb = 0.1;
        let (recon, _, _) = run(&data, &[2000], eb);
        for (&d, &r) in data.iter().zip(&recon) {
            assert!(
                (d as f64 - r as f64).abs()
                    <= eb * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7
            );
        }
    }

    #[test]
    fn smooth_data_reaches_high_ratio() {
        // Near-constant deltas → one dominant code → ~1 bit/value.
        let data: Vec<f32> = (0..32768).map(|i| i as f32 * 0.001).collect();
        let (_, bytes, _) = run(&data, &[32768], 0.01);
        let ratio = (data.len() * 4) as f64 / bytes as f64;
        assert!(ratio > 15.0, "ratio {ratio:.2}");
    }

    #[test]
    fn multi_kernel_with_host_roundtrips() {
        let data: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.02).sin()).collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        gpu.reset_timeline();
        let comp = CuszLike::new();
        let stream = comp.compress(&mut gpu, &input, &[8192], 0.001);
        assert!(
            gpu.timeline().kernel_count() >= 5,
            "cuSZ is a multi-kernel design, got {}",
            gpu.timeline().kernel_count()
        );
        assert!(gpu.timeline().cpu_time() > 0.0);
        assert!(gpu.timeline().memcpy_time() > 0.0);
        // End-to-end time must be dominated by non-GPU work (Fig 14).
        let b = gpu.breakdown();
        assert!(
            b.gpu_fraction() < 0.5,
            "GPU fraction should be small, got {:.2}",
            b.gpu_fraction()
        );
        let _ = stream;
    }

    #[test]
    fn tail_chunk_handled() {
        let data: Vec<f32> = (0..CHUNK + 37).map(|i| (i as f32).sqrt()).collect();
        let (recon, _, _) = run(&data, &[CHUNK + 37], 0.05);
        assert_eq!(recon.len(), CHUNK + 37);
    }
}
