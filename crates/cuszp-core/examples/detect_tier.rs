//! Print the host's detected SIMD dispatch tier and the autotuned tile
//! sizes — the diagnostic for "which kernels will my process run?".
//!
//! ```text
//! cargo run --release -p cuszp-core --example detect_tier
//! ```
//!
//! Honors `CUSZP_SIMD` (the printout shows the *resolved* tier next to
//! the detected one) and `CUSZP_TILE_ELEMS`.

use cuszp_core::{simd, tune, DType, SimdLevel};

fn main() {
    let detected = simd::detect_level();
    let resolved = simd::resolve_level(None);
    println!("detected SIMD tier: {detected}");
    if resolved != detected {
        println!("resolved SIMD tier: {resolved} (CUSZP_SIMD override)");
    }
    for (dtype, name) in [(DType::F32, "f32"), (DType::F64, "f64")] {
        for level in SimdLevel::ALL {
            if level <= detected {
                let tile = tune::tile_elems(dtype, level);
                println!("autotuned tile ({name}, {level}): {tile} elements");
            }
        }
    }
}
