//! Component microbenches: the four cuSZp pipeline steps plus the cuSZ
//! Huffman coder, isolated.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data: Vec<f32> = (0..32_768)
        .map(|i| (i as f32 * 0.01).sin() * 100.0)
        .collect();
    let eb = 0.01;

    let mut group = c.benchmark_group("components");

    group.bench_function("quantize_lorenzo_block", |b| {
        let mut out = vec![0i64; 32];
        b.iter(|| {
            for block in data.chunks(32) {
                cuszp_core::quantize::quantize_block(black_box(block), eb, true, &mut out);
            }
            black_box(out[0])
        })
    });

    group.bench_function("plan_block", |b| {
        let mut resid = vec![0i64; 32];
        cuszp_core::quantize::quantize_block(&data[..32], eb, true, &mut resid);
        b.iter(|| black_box(cuszp_core::encode::plan_block(black_box(&resid), 32)))
    });

    group.bench_function("bitshuffle_roundtrip", |b| {
        let values: Vec<u64> = (0..32).map(|i| (i * 37) % 1024).collect();
        let mut planes = vec![0u8; 10 * 4];
        let mut back = vec![0u64; 32];
        b.iter(|| {
            cuszp_core::bitshuffle::shuffle(black_box(&values), 10, &mut planes);
            cuszp_core::bitshuffle::unshuffle(&planes, 10, &mut back);
            black_box(back[0])
        })
    });

    group.bench_function("host_codec_roundtrip_32k", |b| {
        let cfg = cuszp_core::CuszpConfig::default();
        b.iter(|| {
            let s = cuszp_core::host_ref::compress(black_box(&data), eb, cfg);
            black_box(cuszp_core::host_ref::decompress::<f32>(&s).len())
        })
    });

    group.bench_function("huffman_roundtrip_32k", |b| {
        let symbols: Vec<u16> = data
            .iter()
            .map(|&v| ((v as i32).rem_euclid(1024)) as u16)
            .collect();
        let mut freq = vec![0u64; 1024];
        for &s in &symbols {
            freq[s as usize] += 1;
        }
        let lengths = baselines::cusz::huffman::build_lengths(&freq);
        let book = baselines::cusz::huffman::Codebook::from_lengths(&lengths);
        b.iter(|| {
            let mut bits = Vec::new();
            let bl = baselines::cusz::huffman::encode(black_box(&symbols), &book, &mut bits);
            black_box(baselines::cusz::huffman::decode(&bits, bl, symbols.len(), &book).len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
