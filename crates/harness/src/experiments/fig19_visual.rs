//! Fig 19 — slice visualization of cuSZp vs cuZFP reconstructions at the
//! same compression ratio (Hurricane CR≈60, NYX CR≈24, QMCPack CR≈36).
//!
//! We render the slices (PPM artifacts) and quantify what the paper's
//! panels show visually: at matched CR, cuSZp's error-bounded pipeline
//! preserves higher per-slice PSNR/SSIM than cuZFP's uniform bit budget,
//! which rings around sharp features.

use super::fig16_artifacts::find_eb_for_ratio;
use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use baselines::common::CuszpAdapter;
use baselines::CuzfpLike;
use datasets::{hurricane, nyx, qmcpack, DatasetId, Field};
use gpu_sim::DeviceSpec;
use metrics::ssim::ssim;
use serde::Serialize;

/// One panel's numbers.
#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    /// Dataset / field label.
    pub label: String,
    /// Compressor name.
    pub compressor: String,
    /// Achieved CR.
    pub ratio: f64,
    /// PSNR over the full field, dB.
    pub psnr: f64,
    /// SSIM over the full field.
    pub ssim: f64,
}

fn nearest_rate(target_cr: f64) -> u32 {
    // cuZFP's rate for the same CR on f32 data: rate = 32 / CR, snapped to
    // a representable integer rate ≥ 1.
    (32.0 / target_cr).round().max(1.0) as u32
}

/// Run the Fig 19 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig19",
        "Slice visualization: cuSZp vs cuZFP at matched CR",
        &ctx.out_dir,
    );
    let spec = DeviceSpec::a100();
    let cases: Vec<(&str, Field, f64)> = vec![
        (
            "Hurricane-U",
            hurricane::field("U", &ctx.scale.shape(DatasetId::Hurricane)),
            16.0,
        ),
        (
            "NYX-temperature",
            nyx::field("temperature", &ctx.scale.shape(DatasetId::Nyx)),
            24.0,
        ),
        (
            "QMCPack",
            qmcpack::field(qmcpack::FIELDS[0], &ctx.scale.shape(DatasetId::QmcPack)),
            32.0,
        ),
    ];

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (label, field, target_cr) in cases {
        let slice_idx = field.shape[0] / 2;
        let (h, w, plane) = field.slice2d(slice_idx);
        metrics::image::write_ppm(
            &ctx.out_dir.join(format!("fig19_{label}_original.ppm")),
            h,
            w,
            &plane,
        )
        .expect("write ppm");

        // cuSZp at the eb that hits the target CR.
        let cuszp = CuszpAdapter::new();
        let (eb, _) = find_eb_for_ratio(&cuszp, &field, target_cr);
        let m1 = measure_pipeline(&spec, &cuszp, &field, eb);
        // cuZFP at the nearest fixed rate.
        let cuzfp = CuzfpLike::new(nearest_rate(m1.ratio));
        let m2 = measure_pipeline(&spec, &cuzfp, &field, 0.0);

        for (name, m) in [("cuSZp", &m1), ("cuZFP", &m2)] {
            let s = ssim(&field.data, &m.reconstruction, &field.shape);
            let recon = Field::new(
                field.name.clone(),
                field.shape.clone(),
                m.reconstruction.clone(),
            );
            let (h, w, rplane) = recon.slice2d(slice_idx);
            metrics::image::write_ppm(
                &ctx.out_dir.join(format!("fig19_{label}_{name}.ppm")),
                h,
                w,
                &rplane,
            )
            .expect("write ppm");
            rows.push(vec![
                label.to_string(),
                name.to_string(),
                f2(m.ratio),
                f2(m.psnr),
                format!("{s:.4}"),
            ]);
            out.push(Panel {
                label: label.to_string(),
                compressor: name.to_string(),
                ratio: m.ratio,
                psnr: m.psnr,
                ssim: s,
            });
        }
    }
    report.table(&["field", "compressor", "CR", "PSNR", "SSIM"], &rows);
    report.line(
        "\npaper: at matched CR, cuZFP shows blocky artifacts (Hurricane) and \
distorted wavefields (NYX) while cuSZp stays visually identical; here that \
appears as cuSZp's higher PSNR/SSIM at the same ratio. PPM renders written \
next to this report.",
    );
    report.save_json(&out);
    report.save_text();
}
