//! # baselines — the cuSZp paper's comparison compressors, from scratch
//!
//! Rust implementations of the three GPU lossy compressors the paper
//! evaluates against, each with the *design choices the comparison hinges
//! on* (paper §1, §5.1.4):
//!
//! * [`cusz`] — prediction-based, error-bounded, **multi-kernel with
//!   CPU-built Huffman coding**. Dual-quantization + multi-dimensional
//!   Lorenzo produces quantization codes; a histogram is copied to the
//!   host, a canonical Huffman codebook is built on the CPU and copied
//!   back, then encode/compact kernels run. The host round-trips are what
//!   cap its end-to-end throughput at ~1–2 GB/s in Fig 13/14.
//! * [`cuszx`] — block-wise, error-bounded, ultra-fast kernels but
//!   **CPU-side global synchronization** and pre/post-processing. Blocks
//!   whose value range fits inside `2·eb` are flushed to their range
//!   midpoint ("constant blocks") — the source of both its high CRs on
//!   wide-range data (Table 3, HACC/CESM) and the stripe artifacts of
//!   Fig 16.
//! * [`cuzfp`] — **fixed-rate** (not error-bounded) transform coding in a
//!   single kernel: blocks of 4^d values, common-exponent fixed-point,
//!   forward decorrelating lifting transform, negabinary, bit-plane
//!   truncation to the exact rate budget. Single-kernel speed, but no
//!   error bound and weak 1-D quality (Fig 17e).
//!
//! [`common`] defines the [`common::Compressor`] trait the experiment
//! harness drives, plus the adapter exposing `cuszp-core` through the same
//! interface.

pub mod common;
pub mod cusz;
pub mod cuszx;
pub mod cuzfp;

pub use common::{Compressor, CompressorKind, Stream};
pub use cusz::CuszLike;
pub use cuszx::CuszxLike;
pub use cuzfp::CuzfpLike;
