//! # cuszp-core — the cuSZp error-bounded lossy compressor in Rust
//!
//! A faithful reimplementation of the SC '23 cuSZp pipeline:
//!
//! 1. **Quantization + Prediction** ([`quantize`]) — pre-quantization
//!    `r = round(d / 2eb)` (the only lossy step) followed by a 1-D 1-layer
//!    Lorenzo prediction inside each length-`L` block.
//! 2. **Fixed-length Encoding** ([`encode`]) — sign bitmap + per-block bit
//!    width `F` from the largest residual; all-zero blocks cost one byte.
//! 3. **Global Synchronization** — a decoupled-lookback prefix sum over
//!    per-block compressed sizes, run *inside* the same kernel
//!    ([`kernels`], using `gpu-sim`'s [`gpu_sim::ScanState`]).
//! 4. **Block Bit-shuffle** ([`bitshuffle`]) — bit-plane transposition so
//!    every output byte is built from uniform single-bit extracts.
//!
//! Both directions run as **one fused kernel** on the `gpu-sim` substrate
//! ([`kernels::compress_kernel`] / [`kernels::decompress_kernel`]); a
//! sequential reference codec ([`host_ref`]) produces byte-identical
//! streams and anchors the property tests. The [`Cuszp`] host API routes
//! through [`fast`], an optimized word-parallel codec that is
//! byte-identical to `host_ref` but restructured as the GPU kernel's
//! two-phase size-scan-then-write layout, with opt-in multithreading.
//!
//! ## Quick start
//!
//! ```
//! use cuszp_core::{Cuszp, ErrorBound};
//!
//! let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.01).sin()).collect();
//! let codec = Cuszp::new();
//! let compressed = codec.compress(&data, ErrorBound::Rel(1e-3));
//! let restored = codec.decompress(&compressed);
//!
//! let eb = compressed.eb; // resolved absolute bound
//! for (d, r) in data.iter().zip(&restored) {
//!     assert!((d - r).abs() as f64 <= eb * 1.000001);
//! }
//! assert!(compressed.stream_bytes() < 10_000 * 4 / 3); // ~3.5x on this signal
//! ```
//!
//! The serialized forms of both the single-shot stream and the
//! `CUSZPCH1` chunked container are specified byte-for-byte in
//! `docs/FORMAT.md` at the repository root.

#![deny(missing_docs)]

pub mod archive;
pub mod bitshuffle;
pub mod chunked;
pub mod config;
pub mod dtype;
pub mod encode;
pub mod fast;
pub mod format;
pub mod host_ref;
pub mod hybrid;
pub mod kernels;
pub mod quantize;
pub mod simd;
pub mod tune;
pub mod verify;

pub use archive::{Archive, Entry};
pub use chunked::{chunk_ref_iter, chunk_refs, ChunkRefIter, ChunkedCompressed, ChunkedReader};
pub use config::{CuszpConfig, ErrorBound, SimdLevel, DEFAULT_BLOCK_LEN};
pub use dtype::{DType, FloatData};
pub use fast::Scratch;
pub use format::{Compressed, CompressedRef, FormatError};
pub use hybrid::{HybridRef, HybridScratch};
pub use kernels::{
    compress_kernel, compressed_h2d, decompress_kernel, DeviceCompressed, STEP_BB, STEP_FE,
    STEP_GS, STEP_QP,
};

use gpu_sim::{DeviceBuffer, Gpu};

/// Value range (max − min) of a dataset — the REL bound denominator.
///
/// Non-finite values (NaN, ±∞) are **skipped**: a single stray infinity
/// would otherwise make the range infinite and a REL bound unresolvable,
/// surfacing as a confusing "bound must be positive" panic far from the
/// cause. A dataset with no finite values has range `0.0` (like an empty
/// one), which [`ErrorBound::absolute`] rejects with a clear message.
pub fn value_range<T: FloatData>(data: &[T]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in data {
        let v = v.to_f64();
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if hi >= lo {
        hi - lo
    } else {
        0.0 // empty, or no finite values
    }
}

/// The cuSZp codec with a fixed configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cuszp {
    /// Block length and ablation switches.
    pub config: CuszpConfig,
}

impl Cuszp {
    /// Codec with the paper's default configuration (`L = 32`, Lorenzo on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Codec with a custom configuration.
    pub fn with_config(config: CuszpConfig) -> Self {
        config.validate();
        Cuszp { config }
    }

    /// Resolve an [`ErrorBound`] to its absolute value for `data`.
    pub fn resolve_bound<T: FloatData>(&self, data: &[T], bound: ErrorBound) -> f64 {
        bound.absolute(value_range(data))
    }

    /// Resolve an [`ErrorBound`] against device-resident data with a
    /// single reduction kernel (what the reference `compx` CLI does before
    /// launching compression, so REL mode never round-trips the data).
    pub fn resolve_bound_device(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<f32>,
        bound: ErrorBound,
    ) -> f64 {
        match bound {
            ErrorBound::Abs(d) => bound.absolute(d), // validates positivity
            ErrorBound::Rel(_) => {
                let (lo, hi) = gpu_sim::reduce::min_max_f32(gpu, input, "range");
                bound.absolute((hi - lo) as f64)
            }
        }
    }

    /// Compress on the host via the optimized word-parallel codec
    /// ([`fast`]), byte-identical to the sequential reference
    /// ([`host_ref`]). Accepts `f32` or `f64` data; the stream records
    /// which.
    pub fn compress<T: FloatData>(&self, data: &[T], bound: ErrorBound) -> Compressed {
        let eb = self.resolve_bound(data, bound);
        fast::compress(data, eb, self.config)
    }

    /// Compress on the host with `threads` workers (`0` ⇒ host
    /// parallelism). Bit-identical to [`Cuszp::compress`] by
    /// construction — workers write disjoint ranges at offsets fixed by
    /// the size prefix sum.
    pub fn compress_threaded<T: FloatData>(
        &self,
        data: &[T],
        bound: ErrorBound,
        threads: usize,
    ) -> Compressed {
        let eb = self.resolve_bound(data, bound);
        fast::compress_threaded(data, eb, self.config, threads)
    }

    /// Compress into a caller-owned output buffer with a caller-owned
    /// [`Scratch`] arena — the zero-allocation steady-state entry point.
    ///
    /// `out` receives the complete serialized stream (the bytes are
    /// byte-identical to [`Cuszp::compress`] + [`Compressed::to_bytes`])
    /// and the returned [`CompressedRef`] borrows it. After the first
    /// call at a given shape, repeat calls perform **zero heap
    /// allocations** — see the [`fast`] module docs.
    pub fn compress_into<'a, T: FloatData>(
        &self,
        scratch: &mut Scratch,
        data: &[T],
        bound: ErrorBound,
        out: &'a mut Vec<u8>,
    ) -> CompressedRef<'a> {
        let eb = self.resolve_bound(data, bound);
        fast::compress_into(scratch, data, eb, self.config, out)
    }

    /// Decompress into a caller-owned slice with a caller-owned
    /// [`Scratch`] arena: zero heap allocations once the arena is warm.
    /// `out.len()` must equal the stream's element count. Honors this
    /// codec's [`CuszpConfig::simd`] tier override, like every `Cuszp`
    /// method.
    pub fn decompress_into<T: FloatData>(
        &self,
        c: &Compressed,
        scratch: &mut Scratch,
        out: &mut [T],
    ) {
        fast::decompress_into_at(c.as_ref(), scratch, self.config.simd, out)
    }

    /// Decompress on the host to the stream's element type.
    pub fn decompress<T: FloatData>(&self, c: &Compressed) -> Vec<T> {
        self.decompress_threaded(c, 1)
    }

    /// Decompress on the host with `threads` workers (`0` ⇒ host
    /// parallelism). Identical output for every thread count.
    pub fn decompress_threaded<T: FloatData>(&self, c: &Compressed, threads: usize) -> Vec<T> {
        fast::decompress_threaded_at(c, threads, self.config.simd)
    }

    /// Compress straight to serialized bytes, honoring
    /// [`CuszpConfig::hybrid`]: with the flag off this is
    /// [`Cuszp::compress`] + [`Compressed::to_bytes`] (a `CUSZP1`
    /// stream); with it on, the lossless second stage ([`hybrid`]) is
    /// applied and the `CUSZPHY1` frame is returned **when it is
    /// smaller** — otherwise the plain stream is kept, so the hybrid
    /// path never loses ratio to its own framing overhead. Decoders
    /// distinguish the two by magic ([`Cuszp::decompress_serialized`]).
    pub fn compress_serialized<T: FloatData>(&self, data: &[T], bound: ErrorBound) -> Vec<u8> {
        let eb = self.resolve_bound(data, bound);
        let c = fast::compress(data, eb, self.config);
        if self.config.hybrid {
            // Compare against the plain frame's *length* — materializing
            // the plain serialization just to lose the comparison would
            // double peak allocation for nothing.
            let plain_len = c.as_ref().total_bytes();
            let mut hs = HybridScratch::new();
            let mut hy = Vec::new();
            let r = c.as_ref();
            hybrid::encode_at(
                &r,
                hybrid::auto_chunk_blocks(&r),
                simd::resolve_level(self.config.simd),
                &mut hs,
                &mut hy,
            );
            if (hy.len() as u64) < plain_len {
                return hy;
            }
        }
        c.to_bytes()
    }

    /// Decompress serialized bytes produced by
    /// [`Cuszp::compress_serialized`], sniffing the magic: `CUSZPHY1`
    /// frames run the single-pass hybrid decode, anything else parses as
    /// a plain `CUSZP1` stream. Works identically whichever
    /// [`CuszpConfig::hybrid`] setting produced the bytes.
    ///
    /// The output allocation is sized from the stream's claimed element
    /// count, and a hybrid frame's claim can legitimately dwarf its
    /// physical size (Constant chunks store one byte per chunk). For
    /// **untrusted** bytes use
    /// [`Cuszp::decompress_serialized_bounded`], which rejects
    /// oversize claims with a typed error *before* allocating.
    pub fn decompress_serialized<T: FloatData>(&self, bytes: &[u8]) -> Result<Vec<T>, FormatError> {
        self.decompress_serialized_bounded(bytes, usize::MAX)
    }

    /// [`Cuszp::decompress_serialized`] with a caller-supplied ceiling on
    /// the decoded element count: streams claiming more than
    /// `max_elements` are rejected with [`FormatError::LimitExceeded`]
    /// **before any output allocation**, so a tiny malicious frame
    /// cannot force an out-of-memory abort. This is the entry point for
    /// untrusted input; pick `max_elements` from the memory budget of
    /// the call site (e.g. a service's payload cap).
    pub fn decompress_serialized_bounded<T: FloatData>(
        &self,
        bytes: &[u8],
        max_elements: usize,
    ) -> Result<Vec<T>, FormatError> {
        let mut scratch = Scratch::new();
        if bytes.starts_with(&hybrid::HYBRID_MAGIC) {
            let r = HybridRef::parse(bytes)?;
            if r.dtype != T::DTYPE {
                return Err(FormatError::Corrupt("stream element type mismatch"));
            }
            if r.num_elements > max_elements as u64 {
                return Err(FormatError::LimitExceeded {
                    claimed: r.num_elements,
                    limit: max_elements as u64,
                });
            }
            let mut out = vec![T::default(); r.num_elements as usize];
            hybrid::decode_into(&r, &mut HybridScratch::new(), &mut scratch, &mut out)?;
            Ok(out)
        } else {
            let r = CompressedRef::parse(bytes)?;
            if r.dtype != T::DTYPE {
                return Err(FormatError::Corrupt("stream element type mismatch"));
            }
            if r.num_elements > max_elements as u64 {
                return Err(FormatError::LimitExceeded {
                    claimed: r.num_elements,
                    limit: max_elements as u64,
                });
            }
            let mut out = vec![T::default(); r.num_elements as usize];
            fast::decompress_into_at(r, &mut scratch, self.config.simd, &mut out);
            Ok(out)
        }
    }

    /// Compress `data` as a [`ChunkedCompressed`] container of
    /// `chunk_elems`-element chunks (the last chunk may be shorter).
    ///
    /// The bound is resolved **once against the whole array**, so a REL
    /// bound means the same absolute tolerance as the single-shot path —
    /// and each chunk's stream is byte-identical to compressing that
    /// slice alone at the resolved bound. Chunk boundaries that are a
    /// multiple of the block length keep block alignment identical too.
    pub fn compress_chunked<T: FloatData>(
        &self,
        data: &[T],
        bound: ErrorBound,
        chunk_elems: usize,
    ) -> ChunkedCompressed {
        assert!(chunk_elems > 0, "chunk_elems must be positive");
        if data.is_empty() {
            return ChunkedCompressed::new();
        }
        let eb = self.resolve_bound(data, bound);
        ChunkedCompressed {
            chunks: data
                .chunks(chunk_elems)
                .map(|c| fast::compress(c, eb, self.config))
                .collect(),
        }
    }

    /// Decompress a chunked container, concatenating the chunks in order.
    pub fn decompress_chunked<T: FloatData>(&self, c: &ChunkedCompressed) -> Vec<T> {
        let mut scratch = Scratch::new();
        let mut out = vec![T::default(); c.total_elements() as usize];
        let mut at = 0usize;
        for chunk in &c.chunks {
            let n = chunk.num_elements as usize;
            fast::decompress_into(chunk.as_ref(), &mut scratch, &mut out[at..at + n]);
            at += n;
        }
        out
    }

    /// Decompress a **serialized** chunked container directly from its
    /// bytes, copy-free: chunk payloads are decoded as borrowed slices of
    /// `bytes` ([`chunk_refs`]) — no frame is ever cloned, and one
    /// [`Scratch`] arena serves every chunk. This is the path to point at
    /// a memory-mapped archive.
    pub fn decompress_container_bytes<T: FloatData>(
        &self,
        bytes: &[u8],
    ) -> Result<Vec<T>, FormatError> {
        let refs = chunk_refs(bytes)?;
        let total: u64 = refs.iter().map(|r| r.num_elements).sum();
        let mut scratch = Scratch::new();
        let mut out = vec![T::default(); total as usize];
        let mut at = 0usize;
        for r in refs {
            let n = r.num_elements as usize;
            fast::decompress_into(r, &mut scratch, &mut out[at..at + n]);
            at += n;
        }
        Ok(out)
    }

    /// Compress on the device in a single fused kernel. `eb` is absolute.
    pub fn compress_device<T: FloatData>(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<T>,
        eb: f64,
    ) -> DeviceCompressed {
        kernels::compress_kernel(gpu, input, eb, self.config)
    }

    /// Decompress on the device in a single fused kernel.
    pub fn decompress_device<T: FloatData>(
        &self,
        gpu: &mut Gpu,
        c: &DeviceCompressed,
    ) -> DeviceBuffer<T> {
        kernels::decompress_kernel(gpu, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_range_basics() {
        assert_eq!(value_range(&[1.0, -2.0, 5.0]), 7.0);
        assert_eq!(value_range::<f32>(&[]), 0.0);
        assert_eq!(value_range(&[3.0]), 0.0);
    }

    #[test]
    fn value_range_skips_non_finite() {
        assert_eq!(value_range(&[1.0, f64::NAN, 5.0]), 4.0);
        assert_eq!(value_range(&[1.0, f64::INFINITY, 5.0]), 4.0);
        assert_eq!(value_range(&[f64::NEG_INFINITY, 1.0, 5.0]), 4.0);
        assert_eq!(value_range(&[f32::NAN, f32::NAN]), 0.0);
        assert_eq!(value_range(&[f64::INFINITY, f64::NEG_INFINITY]), 0.0);
    }

    #[test]
    fn rel_bound_with_stray_nan_resolves_from_finite_values() {
        let codec = Cuszp::new();
        let data = vec![0.0f32, f32::NAN, 10.0];
        assert!((codec.resolve_bound(&data, ErrorBound::Rel(1e-2)) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "value range")]
    fn rel_bound_on_all_nan_data_panics_clearly() {
        Cuszp::new().resolve_bound(&[f32::NAN, f32::NAN], ErrorBound::Rel(1e-2));
    }

    #[test]
    fn rel_bound_resolution() {
        let codec = Cuszp::new();
        let data = vec![0.0f32, 10.0];
        assert!((codec.resolve_bound(&data, ErrorBound::Rel(1e-2)) - 0.1).abs() < 1e-12);
        assert_eq!(codec.resolve_bound(&data, ErrorBound::Abs(0.5)), 0.5);
    }

    #[test]
    fn host_api_roundtrip() {
        let data: Vec<f32> = (0..2000).map(|i| (i as f32 * 0.003).cos() * 9.0).collect();
        let codec = Cuszp::new();
        let c = codec.compress(&data, ErrorBound::Rel(1e-3));
        let back: Vec<f32> = codec.decompress(&c);
        for (&d, &r) in data.iter().zip(&back) {
            assert!((d as f64 - r as f64).abs() <= c.eb * (1.0 + 1e-6));
        }
    }

    #[test]
    fn with_config_validates() {
        let cfg = CuszpConfig {
            block_len: 64,
            lorenzo: false,
            ..Default::default()
        };
        let codec = Cuszp::with_config(cfg);
        assert_eq!(codec.config.block_len, 64);
    }
}
