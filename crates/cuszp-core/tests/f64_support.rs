//! Double-precision support (the reference cuSZp's `-d` mode): host and
//! device round trips, stream tagging, and type-safety checks.

use cuszp_core::{host_ref, Compressed, Cuszp, CuszpConfig, DType, ErrorBound};
use gpu_sim::{DeviceBuffer, DeviceSpec, Gpu};
use proptest::prelude::*;

fn wave64(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.013).sin() * 1.0e9 + (i as f64 * 0.11).cos())
        .collect()
}

#[test]
fn f64_host_roundtrip_respects_bound() {
    let data = wave64(5000);
    let codec = Cuszp::new();
    let stream = codec.compress(&data, ErrorBound::Rel(1e-6));
    assert_eq!(stream.dtype, DType::F64);
    let back: Vec<f64> = codec.decompress(&stream);
    for (&d, &r) in data.iter().zip(&back) {
        assert!((d - r).abs() <= stream.eb * (1.0 + 1e-9));
    }
}

#[test]
fn f64_device_matches_host() {
    let data = wave64(4000);
    let codec = Cuszp::new();
    let eb = codec.resolve_bound(&data, ErrorBound::Rel(1e-8));
    let host_stream = host_ref::compress(&data, eb, codec.config);

    let mut gpu = Gpu::new(DeviceSpec::a100()).with_workers(2);
    let input = gpu.h2d(&data);
    let dc = codec.compress_device(&mut gpu, &input, eb);
    assert_eq!(dc.to_host(&mut gpu), host_stream);

    let out: DeviceBuffer<f64> = codec.decompress_device(&mut gpu, &dc);
    assert_eq!(gpu.d2h(&out), host_ref::decompress::<f64>(&host_stream));
}

#[test]
fn f64_reaches_bounds_f32_cannot_represent() {
    // A bound below f32's ULP at this magnitude: only the f64 path can
    // honour it.
    let data: Vec<f64> = (0..2048).map(|i| 1.0e6 + (i as f64) * 1.0e-4).collect();
    let eb = 1.0e-5;
    let stream = host_ref::compress(&data, eb, CuszpConfig::default());
    let back: Vec<f64> = host_ref::decompress(&stream);
    for (&d, &r) in data.iter().zip(&back) {
        assert!((d - r).abs() <= eb * (1.0 + 1e-9), "{d} vs {r}");
    }
}

#[test]
fn dtype_mismatch_is_rejected() {
    let data = wave64(100);
    let stream = host_ref::compress(&data, 1.0, CuszpConfig::default());
    let result = std::panic::catch_unwind(|| host_ref::decompress::<f32>(&stream));
    assert!(result.is_err(), "decoding f64 stream as f32 must panic");
}

#[test]
fn dtype_survives_serialization() {
    let data = wave64(100);
    let stream = host_ref::compress(&data, 1.0, CuszpConfig::default());
    let parsed = Compressed::from_bytes(&stream.to_bytes()).unwrap();
    assert_eq!(parsed.dtype, DType::F64);
    assert_eq!(parsed, stream);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f64_roundtrip_bound_property(
        data in proptest::collection::vec(-1.0e12f64..1.0e12, 1..400),
        eb in prop_oneof![Just(1e-6), Just(1.0), Just(1e6)],
    ) {
        let stream = host_ref::compress(&data, eb, CuszpConfig::default());
        let back: Vec<f64> = host_ref::decompress(&stream);
        for (&d, &r) in data.iter().zip(&back) {
            // f64 reconstruction ULP slack, mirroring verify::check_bound.
            let slack = d.abs().max(r.abs()) * 2.0f64.powi(-52);
            prop_assert!((d - r).abs() <= eb * (1.0 + 1e-9) + slack + f64::EPSILON);
        }
    }
}
