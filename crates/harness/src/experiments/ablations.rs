//! Ablations of cuSZp's design choices (DESIGN.md §5):
//!
//! 1. **Block length L** — the throughput/ratio trade the paper settles at
//!    L = 32 (Fig 6 motivates; smaller blocks = better locality, more
//!    per-block overhead).
//! 2. **Lorenzo prediction on/off** — Fig 4's motivation: the effective
//!    bit width of residuals collapses on smooth data.
//! 3. **Fixed-length vs Huffman encoding of the residuals** — §4.2's
//!    argument: at cuSZp's block granularity, Huffman's gain over
//!    fixed-length is modest while requiring a codebook build + global
//!    serialization.
//! 4. **Hierarchical scan vs a single-tile (flat) scan** — §4.3's design:
//!    thread/warp-level prefix work slashes global traffic.

use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use baselines::common::CuszpAdapter;
use baselines::cusz::huffman;
use cuszp_core::{CuszpConfig, ErrorBound};
use datasets::{hurricane, nyx, DatasetId};
use gpu_sim::{DeviceBuffer, DeviceSpec, Gpu, LaunchConfig};
use serde::Serialize;

/// One ablation record.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ablation name.
    pub ablation: String,
    /// Variant label.
    pub variant: String,
    /// Compression ratio (if applicable).
    pub ratio: Option<f64>,
    /// End-to-end compression throughput, GB/s (if applicable).
    pub comp_gbps: Option<f64>,
}

/// Run all ablations.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new("ablations", "cuSZp design-choice ablations", &ctx.out_dir);
    let spec = DeviceSpec::a100();
    let field = hurricane::field("U", &ctx.scale.shape(DatasetId::Hurricane));
    let eb = ErrorBound::Rel(1e-3).absolute(field.value_range() as f64);
    let mut out = Vec::new();

    // 1. Block length sweep.
    report.line("\nBlock length L (Hurricane U, REL 1e-3)");
    let mut rows = Vec::new();
    for l in [8usize, 16, 32, 64, 128] {
        let comp = CuszpAdapter::with_config(CuszpConfig {
            block_len: l,
            ..Default::default()
        });
        let m = measure_pipeline(&spec, &comp, &field, eb);
        rows.push(vec![l.to_string(), f2(m.ratio), f2(m.comp_e2e_gbps)]);
        out.push(Row {
            ablation: "block-length".into(),
            variant: l.to_string(),
            ratio: Some(m.ratio),
            comp_gbps: Some(m.comp_e2e_gbps),
        });
    }
    report.table(&["L", "ratio", "comp GB/s"], &rows);

    // 2. Lorenzo on/off.
    report.line("\nLorenzo prediction (Hurricane U + NYX temperature, REL 1e-3)");
    let mut rows = Vec::new();
    for (ds, f) in [
        ("Hurricane-U", field.clone()),
        (
            "NYX-temperature",
            nyx::field("temperature", &ctx.scale.shape(DatasetId::Nyx)),
        ),
    ] {
        let eb = ErrorBound::Rel(1e-3).absolute(f.value_range() as f64);
        for lorenzo in [true, false] {
            let comp = CuszpAdapter::with_config(CuszpConfig {
                block_len: 32,
                lorenzo,
                ..Default::default()
            });
            let m = measure_pipeline(&spec, &comp, &f, eb);
            rows.push(vec![
                ds.to_string(),
                if lorenzo { "on" } else { "off" }.to_string(),
                f2(m.ratio),
            ]);
            out.push(Row {
                ablation: "lorenzo".into(),
                variant: format!("{ds}/{}", if lorenzo { "on" } else { "off" }),
                ratio: Some(m.ratio),
                comp_gbps: None,
            });
        }
    }
    report.table(&["field", "lorenzo", "ratio"], &rows);

    // 3. Fixed-length vs Huffman over the same residual stream: compare
    // cuSZp's payload size against an entropy-coded encoding of the same
    // Lorenzo residuals (codebook included).
    report.line("\nFixed-length vs Huffman on cuSZp residuals (Hurricane U, REL 1e-3)");
    let codec = cuszp_core::Cuszp::new();
    let stream = codec.compress(&field.data, ErrorBound::Abs(eb));
    let fixed_bytes = stream.stream_bytes();
    // Re-derive the residual symbols (clamped into a 16-bit alphabet).
    let mut symbols: Vec<u16> = Vec::with_capacity(field.len());
    let mut resid = vec![0i64; 32];
    for block in field.data.chunks(32) {
        cuszp_core::quantize::quantize_block(block, eb, true, &mut resid[..block.len()]);
        for &r in &resid[..block.len()] {
            symbols.push((r.clamp(-32768, 32767) + 32768) as u16);
        }
    }
    let mut freq = vec![0u64; 65536];
    for &s in &symbols {
        freq[s as usize] += 1;
    }
    let lengths = huffman::build_lengths(&freq);
    let book = huffman::Codebook::from_lengths(&lengths);
    let mut bits = Vec::new();
    let bit_len = huffman::encode(&symbols, &book, &mut bits);
    let used_symbols = lengths.iter().filter(|&&l| l > 0).count();
    let huff_bytes = bit_len as u64 / 8 + used_symbols as u64 * 3 + field.len() as u64 / 2048;
    let rows = vec![
        vec![
            "fixed-length (cuSZp)".into(),
            fixed_bytes.to_string(),
            f2(field.size_bytes() as f64 / fixed_bytes as f64),
        ],
        vec![
            "Huffman (+codebook)".into(),
            huff_bytes.to_string(),
            f2(field.size_bytes() as f64 / huff_bytes as f64),
        ],
    ];
    report.table(&["encoding", "bytes", "ratio"], &rows);
    out.push(Row {
        ablation: "encoding".into(),
        variant: "fixed-length".into(),
        ratio: Some(field.size_bytes() as f64 / fixed_bytes as f64),
        comp_gbps: None,
    });
    out.push(Row {
        ablation: "encoding".into(),
        variant: "huffman".into(),
        ratio: Some(field.size_bytes() as f64 / huff_bytes as f64),
        comp_gbps: None,
    });

    // 4. Hierarchical scan vs flat single-block scan.
    report.line("\nGlobal synchronization: hierarchical vs flat scan");
    let sizes: Vec<u32> = field.data.chunks(32).map(|_| 68).collect();
    let mut gpu = Gpu::new(spec.clone());
    let inp = gpu.h2d(&sizes);
    let outbuf = DeviceBuffer::<u32>::zeroed(sizes.len());
    gpu.reset_timeline();
    gpu_sim::scan::exclusive_scan_u32(&mut gpu, &inp, &outbuf, "scan");
    let hier_t = gpu.timeline().gpu_time();

    // Flat scan: one block walks the whole array through global memory.
    let n = sizes.len();
    gpu.reset_timeline();
    gpu.launch("flat_scan", LaunchConfig::grid(1), |ctxk| {
        let i = inp.slice();
        let o = outbuf.slice();
        let mut acc = 0u64;
        for k in 0..n {
            o.set(k, acc as u32);
            acc += i.get(k) as u64;
        }
        ctxk.read("scan", (n * 4) as u64);
        ctxk.write("scan", (n * 4) as u64);
        // Fully serialized: every element is a dependent global round trip.
        ctxk.ops("scan", (n * 220) as u64);
    });
    let flat_t = gpu.timeline().gpu_time();
    let mut rows = Vec::new();
    rows.push(vec![
        "hierarchical (thread/warp/lookback)".into(),
        format!("{:.3e}", hier_t),
        f2(field.size_bytes() as f64 / hier_t / 1e9),
    ]);
    rows.push(vec![
        "flat single-block".into(),
        format!("{:.3e}", flat_t),
        f2(field.size_bytes() as f64 / flat_t / 1e9),
    ]);
    report.table(&["scan design", "time (s)", "effective GB/s"], &rows);
    report.line(&format!(
        "\nhierarchical scan speedup over flat: {:.1}x (the §4.3 design argument)",
        flat_t / hier_t
    ));

    report.save_json(&out);
    report.save_text();
}
