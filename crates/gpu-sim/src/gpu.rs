//! The simulated device handle: allocations, transfers, launches, host work,
//! and the timeline they all feed.

use crate::counters::TrafficCounters;
use crate::device::DeviceSpec;
use crate::kernel::{run_grid, BlockCtx, LaunchConfig};
use crate::memory::{DeviceBuffer, DeviceCopy};
use crate::profiler::{kernel_body_time, Breakdown, KernelRecord};
use crate::timing::{CopyDir, Timeline};

/// A simulated GPU plus its host link. All simulated time flows through
/// this handle's [`Timeline`].
pub struct Gpu {
    spec: DeviceSpec,
    timeline: Timeline,
    workers: usize,
}

impl Gpu {
    /// A device with the given spec; the worker pool defaults to this
    /// machine's available parallelism (the simulation is deterministic in
    /// results and simulated time regardless of worker count).
    pub fn new(spec: DeviceSpec) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Gpu {
            spec,
            timeline: Timeline::new(),
            workers,
        }
    }

    /// Override the worker-pool size (mainly for scheduler tests).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The device spec in effect.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The simulated event log.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Clear the timeline (start a new measurement window).
    pub fn reset_timeline(&mut self) {
        self.timeline.reset();
    }

    /// Allocate a zeroed device buffer (no simulated-time charge, matching
    /// the paper's methodology of excluding allocation from throughput).
    pub fn alloc<T: DeviceCopy>(&self, len: usize) -> DeviceBuffer<T> {
        DeviceBuffer::zeroed(len)
    }

    /// Copy host data to a new device buffer, charging PCIe time.
    pub fn h2d<T: DeviceCopy>(&mut self, host: &[T]) -> DeviceBuffer<T> {
        let buf = DeviceBuffer::from_host(host);
        let bytes = buf.size_bytes();
        let time = self.spec.memcpy_time(bytes);
        self.timeline.push_memcpy(CopyDir::H2D, bytes, time, "h2d");
        buf
    }

    /// Copy host data into an existing device buffer, charging PCIe time.
    pub fn h2d_into<T: DeviceCopy>(&mut self, host: &[T], buf: &mut DeviceBuffer<T>) {
        buf.copy_from_host(host);
        let bytes = buf.size_bytes();
        let time = self.spec.memcpy_time(bytes);
        self.timeline.push_memcpy(CopyDir::H2D, bytes, time, "h2d");
    }

    /// Copy a device buffer back to the host, charging PCIe time.
    pub fn d2h<T: DeviceCopy>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let bytes = buf.size_bytes();
        let time = self.spec.memcpy_time(bytes);
        self.timeline.push_memcpy(CopyDir::D2H, bytes, time, "d2h");
        buf.to_host()
    }

    /// Copy only the first `len` elements back to the host (compressors
    /// transfer just the used prefix of their output buffers).
    pub fn d2h_prefix<T: DeviceCopy>(&mut self, buf: &DeviceBuffer<T>, len: usize) -> Vec<T> {
        assert!(len <= buf.len(), "d2h_prefix beyond buffer");
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let time = self.spec.memcpy_time(bytes);
        self.timeline.push_memcpy(CopyDir::D2H, bytes, time, "d2h");
        let mut out = vec![T::default(); len];
        buf.slice().read_slice(0, &mut out);
        out
    }

    /// Copy host data to the device through *pageable* memory (the slower
    /// staged path the reference cuSZ/cuSZx pipelines use).
    pub fn h2d_pageable<T: DeviceCopy>(&mut self, host: &[T]) -> DeviceBuffer<T> {
        let buf = DeviceBuffer::from_host(host);
        let bytes = buf.size_bytes();
        let time = self.spec.memcpy_time_pageable(bytes);
        self.timeline
            .push_memcpy(CopyDir::H2D, bytes, time, "h2d-pageable");
        buf
    }

    /// Copy the first `len` elements to the host through pageable memory.
    pub fn d2h_prefix_pageable<T: DeviceCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
        len: usize,
    ) -> Vec<T> {
        assert!(len <= buf.len(), "d2h_prefix_pageable beyond buffer");
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let time = self.spec.memcpy_time_pageable(bytes);
        self.timeline
            .push_memcpy(CopyDir::D2H, bytes, time, "d2h-pageable");
        let mut out = vec![T::default(); len];
        buf.slice().read_slice(0, &mut out);
        out
    }

    /// Charge serial host-side work (cuSZ's Huffman build, cuSZx's CPU
    /// prefix sums, ...).
    pub fn cpu_work(&mut self, label: &'static str, ops: u64) {
        let time = self.spec.cpu_time(ops);
        self.timeline.push_cpu(label, ops, time);
    }

    /// Launch a kernel: run every block of `cfg` through `f` (in-order
    /// dynamic dispatch), convert the recorded traffic into simulated time,
    /// and log the launch. Returns the kernel's record.
    pub fn launch<F>(&mut self, name: &'static str, cfg: LaunchConfig, f: F) -> KernelRecord
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        let counters: TrafficCounters = run_grid(cfg, self.workers, f);
        let body = kernel_body_time(&self.spec, &counters);
        let rec = KernelRecord {
            name,
            grid: cfg.grid_blocks,
            time: body + self.spec.kernel_launch_overhead,
            launch_overhead: self.spec.kernel_launch_overhead,
            steps: counters,
        };
        self.timeline.push_kernel(rec.clone());
        rec
    }

    /// Breakdown of the current timeline window (Fig 14 / Fig 21 shape).
    pub fn breakdown(&self) -> Breakdown {
        Breakdown::from_timeline(&self.spec, &self.timeline)
    }

    /// Throughput in GB/s for processing `bytes` of original data over the
    /// current window's *total* (end-to-end) time.
    pub fn end_to_end_throughput_gbps(&self, bytes: u64) -> f64 {
        let t = self.timeline.total_time();
        if t > 0.0 {
            bytes as f64 / t / 1.0e9
        } else {
            0.0
        }
    }

    /// Throughput in GB/s over kernel-body time only.
    pub fn kernel_throughput_gbps(&self, bytes: u64) -> f64 {
        let t = self.timeline.gpu_time() + self.timeline.launch_overhead_time();
        if t > 0.0 {
            bytes as f64 / t / 1.0e9
        } else {
            0.0
        }
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Gpu({}, workers={}, t={:.3e}s)",
            self.spec.name,
            self.workers,
            self.timeline.total_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2d_d2h_roundtrip_charges_time() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = gpu.h2d(&[1.0f32; 1000]);
        let back = gpu.d2h(&buf);
        assert_eq!(back.len(), 1000);
        assert!(gpu.timeline().memcpy_time() >= 2.0 * gpu.spec().pcie_latency);
        assert_eq!(gpu.timeline().gpu_time(), 0.0);
    }

    #[test]
    fn launch_charges_body_plus_overhead() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let rec = gpu.launch("noop", LaunchConfig::grid(8), |ctx| {
            ctx.ops("body", 1_000_000);
        });
        assert!(rec.time > gpu.spec().kernel_launch_overhead);
        assert_eq!(rec.grid, 8);
        assert_eq!(gpu.timeline().kernel_count(), 1);
    }

    #[test]
    fn d2h_prefix_moves_fewer_bytes() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = gpu.alloc::<u8>(1_000_000);
        buf.slice().set(0, 7);
        gpu.reset_timeline();
        let out = gpu.d2h_prefix(&buf, 10);
        assert_eq!(out[0], 7);
        assert_eq!(out.len(), 10);
        let full_time = gpu.spec().memcpy_time(1_000_000);
        assert!(gpu.timeline().memcpy_time() < full_time);
    }

    #[test]
    fn cpu_work_accumulates() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        gpu.cpu_work("huffman", 1_500_000_000);
        assert!((gpu.timeline().cpu_time() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_helpers() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        gpu.launch("k", LaunchConfig::grid(1), |ctx| {
            ctx.read("s", 1_000_000);
        });
        let e2e = gpu.end_to_end_throughput_gbps(1_000_000);
        let kern = gpu.kernel_throughput_gbps(1_000_000);
        assert!(e2e > 0.0 && kern > 0.0);
        // End-to-end equals kernel throughput for single-kernel pipelines
        // with no transfers (both include launch overhead).
        assert!((e2e - kern).abs() / kern < 1e-9);
    }

    #[test]
    fn reset_timeline_opens_new_window() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        gpu.cpu_work("x", 1000);
        gpu.reset_timeline();
        assert_eq!(gpu.timeline().total_time(), 0.0);
    }

    #[test]
    #[should_panic]
    fn d2h_prefix_oob_panics() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = gpu.alloc::<u8>(4);
        gpu.d2h_prefix(&buf, 5);
    }
}
