//! Single-pass chained-scan (decoupled lookback) prefix sums.
//!
//! This is the machinery behind cuSZp's Global Synchronization (paper §4.3,
//! Figs 8–10): each tile (thread block) publishes its local aggregate, then
//! resolves its exclusive prefix by walking backwards over predecessor
//! tiles' published state — without any separate kernel or host round-trip.
//! The same [`ScanState`] object is embedded inside the fused compression
//! kernels (cuszp-core) and also drives the standalone
//! [`exclusive_scan_u32`] used by tests and the Fig 10 experiment.
//!
//! Tile status is packed into one atomic u64: two flag bits (`X` = invalid,
//! `A` = aggregate available, `P` = inclusive prefix available) and 62 value
//! bits. Compressed sizes comfortably fit 62 bits.

use crate::gpu::Gpu;
use crate::kernel::LaunchConfig;
use crate::memory::{DeviceAtomics, DeviceBuffer};
use crate::warp::{exclusive_scan_u64, WARP};

/// Flag: tile has published nothing yet (the zero-initialized state).
#[allow(dead_code)]
const FLAG_X: u64 = 0;
/// Flag: tile has published its local aggregate.
const FLAG_A: u64 = 1;
/// Flag: tile has published its inclusive prefix.
const FLAG_P: u64 = 2;

const FLAG_SHIFT: u32 = 62;
const VALUE_MASK: u64 = (1u64 << FLAG_SHIFT) - 1;

/// Items each lane scans serially before the warp-level pass (paper:
/// "cuSZp utilizes one thread to operate multiple blocks").
pub const SCAN_ITEMS_PER_THREAD: usize = 4;
/// Items per tile: one warp × items-per-thread.
pub const SCAN_TILE: usize = WARP * SCAN_ITEMS_PER_THREAD;

/// Grid geometry for scanning `n` items: `(tiles, tile_size)`.
pub fn scan_tile_geometry(n: usize) -> (usize, usize) {
    (n.div_ceil(SCAN_TILE).max(1), SCAN_TILE)
}

/// Per-tile decoupled-lookback state shared by all blocks of one launch.
pub struct ScanState {
    tiles: DeviceAtomics,
}

impl ScanState {
    /// State for `num_tiles` tiles, all initially `X`.
    pub fn new(num_tiles: usize) -> Self {
        ScanState {
            tiles: DeviceAtomics::zeroed(num_tiles),
        }
    }

    /// Number of tiles tracked.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Reset all tiles to `X` so the state can be reused across launches.
    pub fn reset(&self) {
        self.tiles.reset();
    }

    fn pack(flag: u64, value: u64) -> u64 {
        debug_assert!(value <= VALUE_MASK, "scan value exceeds 62 bits");
        (flag << FLAG_SHIFT) | value
    }

    fn unpack(word: u64) -> (u64, u64) {
        (word >> FLAG_SHIFT, word & VALUE_MASK)
    }

    /// Tile publishes its local aggregate (status `A`).
    pub fn publish_aggregate(&self, tile: usize, aggregate: u64) {
        self.tiles.store(tile, Self::pack(FLAG_A, aggregate));
    }

    /// Tile publishes its inclusive prefix (status `P`), unblocking all
    /// successors' lookbacks.
    pub fn publish_prefix(&self, tile: usize, inclusive_prefix: u64) {
        self.tiles.store(tile, Self::pack(FLAG_P, inclusive_prefix));
    }

    /// Resolve this tile's *exclusive* prefix by decoupled lookback,
    /// spinning on predecessors until each publishes. Returns
    /// `(exclusive_prefix, simulated ops spent)`.
    ///
    /// Tile 0 returns 0 immediately. Requires the in-order block dispatch
    /// guarantee of [`crate::kernel::run_grid`]; see that module's docs.
    pub fn lookback(&self, tile: usize) -> (u64, u64) {
        let mut ops = 0u64;
        let mut running = 0u64;
        let mut look = tile;
        while look > 0 {
            look -= 1;
            loop {
                let word = self.tiles.load(look);
                let (flag, value) = Self::unpack(word);
                ops += 1;
                match flag {
                    FLAG_P => {
                        return (running + value, ops);
                    }
                    FLAG_A => {
                        running += value;
                        break; // continue to the next predecessor
                    }
                    _ => {
                        // Predecessor started but hasn't published; it is
                        // running on another worker. Yield and retry.
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                }
            }
        }
        (running, ops)
    }
}

/// Device-wide exclusive prefix sum over `u32` sizes, fully inside one
/// kernel launch (the standalone form of cuSZp's Global Synchronization).
///
/// Writes the exclusive prefix of `input` into `output` (same length) and
/// returns the grand total. Traffic is recorded under `step`.
#[allow(clippy::needless_range_loop)] // k is the thread-local item slot, as in the CUDA kernel
pub fn exclusive_scan_u32(
    gpu: &mut Gpu,
    input: &DeviceBuffer<u32>,
    output: &DeviceBuffer<u32>,
    step: &'static str,
) -> u64 {
    assert_eq!(input.len(), output.len(), "scan buffers must match");
    let n = input.len();
    if n == 0 {
        return 0;
    }
    let (tiles, tile_size) = scan_tile_geometry(n);
    let state = ScanState::new(tiles);
    let total = DeviceAtomics::zeroed(1);

    gpu.launch("exclusive_scan", LaunchConfig::grid(tiles), |ctx| {
        let inp = input.slice();
        let out = output.slice();
        let tile = ctx.block;
        let base = tile * tile_size;
        let count = tile_size.min(n - base.min(n));

        // Thread-level serial scan: each lane accumulates its own items.
        let mut lane_sums = [0u64; WARP];
        let mut lane_vals = [[0u64; SCAN_ITEMS_PER_THREAD]; WARP];
        for lane in 0..WARP {
            let mut acc = 0u64;
            for k in 0..SCAN_ITEMS_PER_THREAD {
                let idx = lane * SCAN_ITEMS_PER_THREAD + k;
                lane_vals[lane][k] = acc;
                if idx < count {
                    acc += inp.get(base + idx) as u64;
                }
            }
            lane_sums[lane] = acc;
        }
        ctx.read(step, (count * 4) as u64);
        ctx.ops(step, count as u64);

        // Warp-level scan of per-lane sums via shuffles.
        let (lane_offsets, tile_aggregate, warp_ops) = exclusive_scan_u64(lane_sums);
        ctx.ops(step, warp_ops);

        // Global chained-scan: publish aggregate, look back, publish prefix.
        let exclusive = if tile == 0 {
            state.publish_prefix(0, tile_aggregate);
            0
        } else {
            state.publish_aggregate(tile, tile_aggregate);
            let (prefix, look_ops) = state.lookback(tile);
            state.publish_prefix(tile, prefix + tile_aggregate);
            ctx.ops(step, look_ops);
            prefix
        };
        // Each tile writes one flag word and reads ~its lookback window.
        ctx.write(step, 8);
        ctx.read(step, 8);

        // Restore per-item exclusive offsets and store.
        for lane in 0..WARP {
            for k in 0..SCAN_ITEMS_PER_THREAD {
                let idx = lane * SCAN_ITEMS_PER_THREAD + k;
                if idx < count {
                    let v = exclusive + lane_offsets[lane] + lane_vals[lane][k];
                    debug_assert!(v <= u32::MAX as u64, "scan overflowed u32 output");
                    out.set(base + idx, v as u32);
                }
            }
        }
        ctx.write(step, (count * 4) as u64);
        ctx.ops(step, count as u64);

        if tile == tiles - 1 {
            total.store(0, exclusive + tile_aggregate);
        }
    });

    total.load(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn host_exclusive_scan(input: &[u32]) -> (Vec<u32>, u64) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u64;
        for &v in input {
            out.push(acc as u32);
            acc += v as u64;
        }
        (out, acc)
    }

    fn check_scan(input: &[u32], workers: usize) {
        let mut gpu = Gpu::new(DeviceSpec::a100()).with_workers(workers);
        let inp = DeviceBuffer::from_host(input);
        let out = DeviceBuffer::<u32>::zeroed(input.len());
        let total = exclusive_scan_u32(&mut gpu, &inp, &out, "scan");
        let (expect, expect_total) = host_exclusive_scan(input);
        assert_eq!(out.to_host(), expect);
        assert_eq!(total, expect_total);
    }

    #[test]
    fn scan_small() {
        check_scan(&[3, 1, 4, 1, 5], 1);
    }

    #[test]
    fn scan_exact_tile() {
        let input: Vec<u32> = (0..SCAN_TILE as u32).collect();
        check_scan(&input, 2);
    }

    #[test]
    fn scan_many_tiles_multi_worker() {
        let input: Vec<u32> = (0..10_000u32).map(|i| (i * 37) % 251).collect();
        for workers in [1, 2, 4] {
            check_scan(&input, workers);
        }
    }

    #[test]
    fn scan_all_zeros() {
        check_scan(&[0; 1000], 2);
    }

    #[test]
    fn scan_empty() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let inp = DeviceBuffer::<u32>::from_host(&[]);
        let out = DeviceBuffer::<u32>::zeroed(0);
        assert_eq!(exclusive_scan_u32(&mut gpu, &inp, &out, "scan"), 0);
    }

    #[test]
    fn scan_records_traffic_and_time() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input: Vec<u32> = vec![1; 4096];
        let inp = DeviceBuffer::from_host(&input);
        let out = DeviceBuffer::<u32>::zeroed(4096);
        exclusive_scan_u32(&mut gpu, &inp, &out, "scan");
        let tl = gpu.timeline();
        assert_eq!(tl.kernel_count(), 1);
        let k = tl.kernels().next().unwrap();
        let t = k.steps.get("scan").unwrap();
        // Reads + writes at least the payload both ways.
        assert!(t.bytes_read >= 4096 * 4);
        assert!(t.bytes_written >= 4096 * 4);
        assert!(tl.gpu_time() > 0.0);
    }

    #[test]
    fn state_pack_roundtrip() {
        let s = ScanState::new(4);
        s.publish_prefix(0, 0);
        s.publish_aggregate(1, 12345);
        let (p1, _) = s.lookback(2);
        assert_eq!(p1, 12345);
    }

    #[test]
    fn lookback_tile0_is_zero() {
        let s = ScanState::new(3);
        let (p, ops) = s.lookback(0);
        assert_eq!(p, 0);
        assert_eq!(ops, 0);
    }

    #[test]
    fn lookback_sums_aggregates_until_prefix() {
        let s = ScanState::new(5);
        s.publish_prefix(0, 10);
        s.publish_aggregate(1, 5);
        s.publish_aggregate(2, 7);
        let (p, _) = s.lookback(3);
        assert_eq!(p, 22);
    }
}
