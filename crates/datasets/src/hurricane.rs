//! Hurricane ISABEL stand-in (weather simulation, 3-D 500×500×100, 13
//! fields in the paper's Table 2).
//!
//! The real dataset mixes three statistical families, and the Table 3
//! min/avg/max spread (2.71 … 36.66 at REL 1e-4) depends on all of them:
//!
//! * *dynamic* fields (winds `U`/`V`/`W`, temperature `TC`) — smooth at the
//!   sample scale, with value ranges driven by localized storm extremes
//!   while most of the volume sits near the ambient value;
//! * *broad* fields (pressure `P`) — smooth but with mass spread across the
//!   whole range (the hard, low-CR case);
//! * *sparse* non-negative hydrometeors (`QCLOUD`, `QICE`, `QRAIN`,
//!   `QSNOW`, `QGRAUP`, `PRECIP`, `CLOUD`, and the moisture field
//!   `QVAPOR`) — exactly zero over most of the domain, the source of
//!   cuSZp's zero blocks and near-128 max CRs.
//!
//! `FIELDS` interleaves the families so that any prefix subset (what the
//! experiments iterate) preserves the archive's family mix.

use crate::field::Field;
use crate::spectral::{
    concentrate, gaussian_random_field, k_for, lognormalize, rescale, rescale_signed, seed_from,
    sparsify, GrfSpec,
};

/// Field names, matching SDRBench's Hurricane archive. Interleaved so any
/// prefix keeps the dynamic/sparse family mix.
pub const FIELDS: [&str; 13] = [
    "U", "QCLOUD", "P", "QRAIN", "TC", "QICE", "V", "QSNOW", "W", "QGRAUP", "QVAPOR", "PRECIP",
    "CLOUD",
];

/// Generate one Hurricane field at the given grid shape.
pub fn field(name: &str, shape: &[usize]) -> Field {
    let seed = seed_from(&["hurricane", name]);
    let mut data = match name {
        // Horizontal winds: smooth large-scale flow; the range comes from
        // the storm core (heavy tails), the bulk sits near the ambient.
        "U" | "V" => {
            let spec = GrfSpec {
                modes: 72,
                slope: 4.0,
                k_max: k_for(shape, 96.0),
                noise: 1.5e-4,
                anisotropy: [6.0, 2.0, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            concentrate(&mut d, 3.2);
            rescale_signed(&mut d, -79.5, 85.0);
            d
        }
        // Vertical wind: smaller magnitude, slightly rougher, same family.
        "W" => {
            let spec = GrfSpec {
                modes: 72,
                slope: 3.4,
                k_max: k_for(shape, 48.0),
                noise: 5.0e-4,
                anisotropy: [6.0, 2.0, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            concentrate(&mut d, 2.8);
            rescale_signed(&mut d, -18.0, 22.0);
            d
        }
        // Pressure: very smooth, but mass spread over the range — the
        // low-CR field of the dataset (Table 3 Hurricane min).
        "P" => {
            let spec = GrfSpec {
                modes: 48,
                slope: 5.0,
                k_max: k_for(shape, 48.0),
                noise: 2.0e-4,
                anisotropy: [6.0, 2.0, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            rescale(&mut d, -5471.0, 3225.0);
            d
        }
        // Temperature: smooth with localized fronts.
        "TC" => {
            let spec = GrfSpec {
                modes: 64,
                slope: 4.2,
                k_max: k_for(shape, 64.0),
                noise: 1.0e-4,
                anisotropy: [6.0, 2.0, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            concentrate(&mut d, 2.4);
            rescale_signed(&mut d, -83.0, 31.5);
            d
        }
        // Water vapour: non-negative, decaying, heavy right tail.
        "QVAPOR" => {
            let spec = GrfSpec {
                modes: 64,
                slope: 3.8,
                k_max: k_for(shape, 40.0),
                noise: 0.0,
                anisotropy: [6.0, 2.0, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            lognormalize(&mut d, 1.6);
            rescale(&mut d, 0.0, 0.024);
            d
        }
        // Hydrometeors: sparse non-negative — exactly zero over most of
        // the domain, with smooth positive cells elsewhere.
        _ => {
            let spec = GrfSpec {
                modes: 72,
                slope: 3.6,
                k_max: k_for(shape, 48.0),
                noise: 0.0,
                anisotropy: [6.0, 2.0, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            let cut = match name {
                "QCLOUD" => 1.4,
                "QICE" => 1.6,
                "QRAIN" => 1.8,
                "QSNOW" => 1.7,
                "QGRAUP" => 2.0,
                "PRECIP" => 1.5,
                _ => 1.4, // CLOUD
            };
            for v in d.iter_mut() {
                *v = (*v - cut).max(0.0);
            }
            sparsify(&mut d, 1e-6);
            rescale(&mut d, 0.0, 0.0021);
            d
        }
    };
    // Guard against degenerate all-equal fields.
    if data.iter().all(|&v| v == data[0]) {
        data[0] += 1.0;
    }
    Field::new(name, shape.to_vec(), data)
}

/// Generate the full 13-field dataset at `shape`.
pub fn generate(shape: &[usize]) -> Vec<Field> {
    FIELDS.iter().map(|name| field(name, shape)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: [usize; 3] = [8, 24, 24];

    #[test]
    fn thirteen_fields() {
        let fields = generate(&SHAPE);
        assert_eq!(fields.len(), 13);
        for f in &fields {
            assert_eq!(f.shape, SHAPE.to_vec());
        }
    }

    #[test]
    fn prefix_subset_mixes_families() {
        // The first three fields must span dynamic + sparse + broad.
        assert_eq!(&FIELDS[..3], &["U", "QCLOUD", "P"]);
    }

    #[test]
    fn hydrometeors_are_sparse_and_nonnegative() {
        let f = field("QRAIN", &[16, 24, 24]);
        let zeros = f.data.iter().filter(|&&v| v == 0.0).count();
        assert!(
            zeros > f.len() / 2,
            "QRAIN should be mostly zero, got {} / {}",
            zeros,
            f.len()
        );
        assert!(f.data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn winds_are_signed_and_concentrated() {
        let f = field("U", &[16, 24, 24]);
        assert!(f.data.iter().any(|&v| v < 0.0));
        assert!(f.data.iter().any(|&v| v > 0.0));
        // Heavy tails: most samples well inside the range.
        let range = f.value_range();
        let small = f.data.iter().filter(|v| v.abs() < 0.1 * range).count();
        assert!(
            small > f.len() / 2,
            "wind values should concentrate near ambient: {}/{}",
            small,
            f.len()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(field("TC", &SHAPE), field("TC", &SHAPE));
    }

    #[test]
    fn block_smoothness_matches_fig6() {
        // Fig 6a: the bulk of length-8 blocks span a small fraction of the
        // value range.
        let f = field("U", &[10, 48, 48]);
        let mut small = 0usize;
        let mut total = 0usize;
        let range = f.value_range();
        for block in f.data.chunks(8) {
            let lo = block.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = block.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            if (hi - lo) / range < 0.05 {
                small += 1;
            }
            total += 1;
        }
        assert!(
            small as f64 > 0.65 * total as f64,
            "blocks too rough: {small}/{total}"
        );
    }
}
