//! Small-payload throughput: the allocating codec API vs the
//! zero-allocation arena API (ISSUE 5).
//!
//! On multi-MB fields the codec's arithmetic dominates and allocator
//! traffic disappears into the noise. On *small* payloads — telemetry
//! windows, halo exchanges, per-timestep deltas, exactly the repeated-
//! call service shape the arena API targets — every owned-API call pays
//! several malloc/free round trips that can rival the compression work
//! itself. This experiment measures compress + decompress throughput for
//! payloads from 4 KiB to 1 MiB through both APIs and records the result
//! as `BENCH_alloc_profile.json` at the repository root. Targets:
//! ≥1.5× round-trip speedup on ≤64 KiB payloads, and — when the `repro`
//! binary's counting allocator is installed — **0 heap operations** per
//! steady-state arena call. The heap-op target holds everywhere; the
//! speedup is ~3× at 4 KiB and fades as the shared codec arithmetic
//! starts to dominate, crossing 1.5× around 32 KiB on a warm glibc heap
//! (whose freelists make this tight-loop baseline a *best case* for the
//! allocating API — a service heap churned by other requests retains the
//! arena advantage longer).
//!
//! The comparison is end-to-end for a serialization-shaped service —
//! both sides start from values and end at wire bytes (and back). The
//! allocating side produces an owned [`cuszp_core::Compressed`] plus its
//! `to_bytes()` stream, and decodes by `Compressed::from_bytes` (owned
//! copies of the F table and payload — the seed's only wire path) into a
//! freshly allocated output. The arena side produces the identical
//! serialized stream in a reused buffer, and decodes through a borrowed
//! [`CompressedRef::parse`] view into a reused slice.

use super::Ctx;
use crate::report::Report;
use cuszp_core::{fast, CompressedRef, CuszpConfig, Scratch};
use datasets::Scale;
use serde::Serialize;
use std::time::Instant;

/// One payload size, both APIs, both directions.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Uncompressed payload size in bytes (f32 elements × 4).
    pub payload_bytes: usize,
    /// Owned-API compress throughput (compress + serialize), MB/s.
    pub alloc_compress_mbps: f64,
    /// Arena-API compress throughput (identical output bytes), MB/s.
    pub into_compress_mbps: f64,
    /// `into / alloc` for compression.
    pub compress_speedup: f64,
    /// Owned-API decompress throughput, MB/s.
    pub alloc_decompress_mbps: f64,
    /// Arena-API decompress throughput, MB/s.
    pub into_decompress_mbps: f64,
    /// `into / alloc` for decompression.
    pub decompress_speedup: f64,
    /// Round-trip (compress + decompress) speedup.
    pub roundtrip_speedup: f64,
    /// Heap operations per steady-state arena round trip (0 when the
    /// counting allocator is installed; meaningless otherwise).
    pub steady_state_heap_ops: u64,
}

/// The checked-in benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct BenchFile {
    /// Artifact schema tag.
    pub experiment: String,
    /// Whether heap-op counts are live (the `repro` binary installs the
    /// counting allocator; other hosts of this module may not).
    pub counting_allocator_installed: bool,
    /// Timing samples per measurement.
    pub samples: usize,
    /// All measured payload sizes.
    pub rows: Vec<Row>,
    /// ISSUE 5 acceptance: minimum round-trip speedup across payloads
    /// ≤ 64 KiB (target ≥ 1.5×).
    pub small_payload_min_speedup: f64,
    /// Maximum steady-state heap ops across all rows (target 0).
    pub max_steady_state_heap_ops: u64,
}

/// Best-of-N tracker. One timing sample runs `reps` calls so
/// sub-microsecond payloads aren't timer-noise-bound.
struct BestOf {
    best: f64,
}

impl BestOf {
    fn new() -> Self {
        BestOf {
            best: f64::INFINITY,
        }
    }

    fn sample(&mut self, reps: usize, mut f: impl FnMut()) {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        self.best = self.best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
}

fn measure(elems: usize, samples: usize) -> Row {
    let eb = 0.01;
    let cfg = CuszpConfig::default();
    let data: Vec<f32> = (0..elems)
        .map(|i| (i as f32 * 0.023).sin() * 60.0 + (i as f32 * 0.0017).cos() * 9.0)
        .collect();
    let bytes = (elems * 4) as f64;
    let mbps = |secs: f64| bytes / secs / 1.0e6;
    // Amortize timer overhead: ~4 MB of payload per timing sample.
    let reps = ((1 << 22) / (elems * 4)).clamp(4, 1024);

    let owned = fast::compress(&data, eb, cfg);
    let owned_bytes = owned.to_bytes();

    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let mut restored = vec![0f32; elems];

    // Correctness cross-check before timing anything.
    fast::compress_into(&mut scratch, &data, eb, cfg, &mut stream);
    assert_eq!(stream, owned_bytes, "arena stream must be byte-identical");

    let run_c_alloc = || {
        let c = fast::compress(&data, eb, cfg);
        std::hint::black_box(c.to_bytes());
    };
    let run_d_alloc = || {
        // The pre-arena wire-to-values path: `from_bytes` copies the F
        // table and the whole payload into an owned `Compressed` (the
        // seed had no borrowed view), then decompression allocates fresh
        // offset/tile buffers and a zero-initialized output. (Today's
        // owned `fast::decompress` already skips the memset — that fix
        // rides this PR too — so the seed behavior is reproduced
        // explicitly.)
        let c = cuszp_core::Compressed::from_bytes(&owned_bytes).expect("stream parses");
        let mut fresh = Scratch::new();
        let mut v = vec![0f32; elems];
        fast::decompress_into(c.as_ref(), &mut fresh, &mut v);
        std::hint::black_box(&v);
    };
    let run_d_into = |scratch: &mut Scratch, restored: &mut Vec<f32>| {
        // The arena wire-to-values path: parse a borrowed view (no
        // copies), decode into the reused output.
        let c = CompressedRef::parse(&owned_bytes).expect("stream parses");
        fast::decompress_into(c, scratch, restored);
        std::hint::black_box(restored[0]);
    };

    // Warm-up: fill arenas, fault pages, warm caches on every path.
    for _ in 0..reps {
        run_c_alloc();
        fast::compress_into(&mut scratch, &data, eb, cfg, &mut stream);
        run_d_alloc();
        run_d_into(&mut scratch, &mut restored);
    }

    // Interleave the four configurations sample-by-sample so transient
    // machine load hits them symmetrically — the ratios of best-of-N
    // times are far more stable than timing each API in its own block.
    let mut c_alloc = BestOf::new();
    let mut c_into = BestOf::new();
    let mut d_alloc = BestOf::new();
    let mut d_into = BestOf::new();
    for _ in 0..samples {
        c_alloc.sample(reps, run_c_alloc);
        c_into.sample(reps, || {
            fast::compress_into(&mut scratch, &data, eb, cfg, &mut stream);
            std::hint::black_box(stream.len());
        });
        d_alloc.sample(reps, run_d_alloc);
        d_into.sample(reps, || run_d_into(&mut scratch, &mut restored));
    }
    let (c_alloc, c_into) = (c_alloc.best, c_into.best);
    let (d_alloc, d_into) = (d_alloc.best, d_into.best);

    // Heap traffic of one steady-state arena round trip (arena and
    // buffers are warm from the timing loops above).
    let before = alloc_counter::snapshot();
    fast::compress_into(&mut scratch, &data, eb, cfg, &mut stream);
    fast::decompress_into(
        CompressedRef::parse(&stream).expect("own output parses"),
        &mut scratch,
        &mut restored,
    );
    let steady_state_heap_ops = alloc_counter::snapshot().since(&before).heap_ops();

    Row {
        payload_bytes: elems * 4,
        alloc_compress_mbps: mbps(c_alloc),
        into_compress_mbps: mbps(c_into),
        compress_speedup: c_alloc / c_into,
        alloc_decompress_mbps: mbps(d_alloc),
        into_decompress_mbps: mbps(d_into),
        decompress_speedup: d_alloc / d_into,
        roundtrip_speedup: (c_alloc + d_alloc) / (c_into + d_into),
        steady_state_heap_ops,
    }
}

/// Run the allocation-profile experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "alloc_profile",
        "Small-payload throughput: allocating API vs zero-allocation arena API",
        &ctx.out_dir,
    );
    let samples = match ctx.scale {
        Scale::Tiny => 5,
        Scale::Small => 20,
        Scale::Medium => 40,
    };
    let installed = alloc_counter::is_installed();
    report.line(&format!(
        "payloads 4 KiB..1 MiB (f32); best of {samples} samples; counting allocator {}",
        if installed {
            "installed"
        } else {
            "NOT installed (heap-op counts inert)"
        }
    ));

    let sizes_kib = [4usize, 8, 16, 32, 64, 256, 1024];
    let rows: Vec<Row> = sizes_kib
        .iter()
        .map(|&kib| measure(kib * 1024 / 4, samples))
        .collect();

    report.table(
        &[
            "payload",
            "cmp alloc MB/s",
            "cmp arena MB/s",
            "dec alloc MB/s",
            "dec arena MB/s",
            "rt speedup",
            "heap ops",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{} KiB", r.payload_bytes / 1024),
                    format!("{:.0}", r.alloc_compress_mbps),
                    format!("{:.0}", r.into_compress_mbps),
                    format!("{:.0}", r.alloc_decompress_mbps),
                    format!("{:.0}", r.into_decompress_mbps),
                    format!("{:.2}x", r.roundtrip_speedup),
                    format!("{}", r.steady_state_heap_ops),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let small_payload_min_speedup = rows
        .iter()
        .filter(|r| r.payload_bytes <= 64 * 1024)
        .map(|r| r.roundtrip_speedup)
        .fold(f64::INFINITY, f64::min);
    let max_steady_state_heap_ops = rows
        .iter()
        .map(|r| r.steady_state_heap_ops)
        .max()
        .unwrap_or(0);
    report.line(&format!(
        "min round-trip speedup on <=64 KiB payloads: {small_payload_min_speedup:.2}x (target >=1.5x); \
         max steady-state heap ops: {max_steady_state_heap_ops} (target 0)"
    ));

    let bench = BenchFile {
        experiment: "alloc_profile".to_string(),
        counting_allocator_installed: installed,
        samples,
        rows: rows.clone(),
        small_payload_min_speedup,
        max_steady_state_heap_ops,
    };

    report.save_json(&rows);
    report.save_text();

    // Perf-trajectory artifact at the repository root, like
    // BENCH_host_codec.json, so successive PRs diff it directly.
    let root = ctx.out_dir.parent().unwrap_or(std::path::Path::new("."));
    let path = root.join("BENCH_alloc_profile.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench file");
    std::fs::write(&path, json).expect("write BENCH_alloc_profile.json");
    report.line(&format!(
        "benchmark trajectory written to {}",
        path.display()
    ));
}
