//! Quickstart: compress a scientific field with cuSZp on the simulated
//! A100, on both the device path (single fused kernel) and the host
//! reference codec, and verify the error bound.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cuszp_core::{Cuszp, ErrorBound};
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    // 1. Get some scientific-looking data (a NYX-like velocity field).
    let field = datasets::nyx::field("velocity_x", &[64, 64, 64]);
    println!(
        "field {:?} ({} values, {:.1} MB, range {:.3e})",
        field.shape,
        field.len(),
        field.size_bytes() as f64 / 1e6,
        field.value_range()
    );

    // 2. Pick an error bound: REL 1e-3 of the value range.
    let codec = Cuszp::new();
    let bound = ErrorBound::Rel(1e-3);
    let eb = codec.resolve_bound(&field.data, bound);
    println!("bound {bound} -> absolute eb {eb:.4e}");

    // 3. Host path: pure-CPU reference codec.
    let compressed = codec.compress(&field.data, bound);
    let restored = codec.decompress(&compressed);
    println!(
        "host codec: {} -> {} bytes (ratio {:.2})",
        field.size_bytes(),
        compressed.stream_bytes(),
        field.size_bytes() as f64 / compressed.stream_bytes() as f64
    );

    // 4. Device path: one fused kernel each way on a simulated A100.
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.h2d(&field.data);
    gpu.reset_timeline();
    let dc = codec.compress_device(&mut gpu, &input, eb);
    let comp_gbps = gpu.end_to_end_throughput_gbps(field.size_bytes());
    gpu.reset_timeline();
    let out = codec.decompress_device(&mut gpu, &dc);
    let decomp_gbps = gpu.end_to_end_throughput_gbps(field.size_bytes());
    let device_restored = gpu.d2h(&out);
    println!(
        "device codec: one kernel per direction, {:.1} GB/s comp, {:.1} GB/s decomp (simulated A100)",
        comp_gbps, decomp_gbps
    );

    // 5. The two paths agree bit-for-bit, and the bound holds.
    assert_eq!(restored, device_restored, "host and device must agree");
    assert!(
        cuszp_core::verify::check_bound(&field.data, &restored, eb),
        "error bound violated"
    );
    let stats = metrics::ErrorStats::compute(&field.data, &restored);
    println!(
        "quality: max abs err {:.3e} (eb {:.3e}), PSNR {:.2} dB",
        stats.max_abs_error, eb, stats.psnr
    );
    println!("Pass error check!");
}
