//! Fig 6 — CDF of per-block relative value ranges (block length 8 and 32)
//! for Hurricane (U), NYX (temperature), and QMCPack.
//!
//! This is the paper's empirical justification for fixed-length encoding:
//! scientific data is so smooth that the vast majority of blocks span a
//! tiny fraction of the global value range (e.g. >80% of Hurricane blocks
//! under 0.02 at L = 8).

use super::Ctx;
use crate::report::{pct, Report};
use datasets::{hurricane, nyx, qmcpack, DatasetId};
use metrics::cdf::BlockRangeCdf;
use serde::Serialize;

/// A CDF series for one (dataset, block length) pair.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Dataset name.
    pub dataset: String,
    /// Block length used.
    pub block_len: usize,
    /// `(x, CDF(x))` samples.
    pub points: Vec<(f64, f64)>,
    /// Median relative block range.
    pub median: f64,
}

/// Run the Fig 6 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig06",
        "CDF of block relative value range (Fig 6)",
        &ctx.out_dir,
    );
    let fields = vec![
        (
            "Hurricane",
            hurricane::field("U", &ctx.scale.shape(DatasetId::Hurricane)),
        ),
        (
            "NYX",
            nyx::field("temperature", &ctx.scale.shape(DatasetId::Nyx)),
        ),
        (
            "QMCPack",
            qmcpack::field(qmcpack::FIELDS[0], &ctx.scale.shape(DatasetId::QmcPack)),
        ),
    ];

    let mut all = Vec::new();
    for block_len in [8usize, 32] {
        report.line(&format!("\nBlock length L = {block_len}"));
        let thresholds = [0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];
        let mut rows = Vec::new();
        for (name, field) in &fields {
            let cdf = BlockRangeCdf::compute(&field.data, block_len);
            let mut row = vec![name.to_string()];
            for &t in &thresholds {
                row.push(pct(cdf.cdf_at(t)));
            }
            rows.push(row);
            all.push(Series {
                dataset: name.to_string(),
                block_len,
                points: cdf.series(50),
                median: cdf.median(),
            });
        }
        report.table(
            &[
                "dataset", "≤0.01", "≤0.02", "≤0.05", "≤0.10", "≤0.20", "≤0.50", "≤1.00",
            ],
            &rows,
        );
    }
    report.line(
        "\npaper: Hurricane has >80% of blocks under relative range 0.02 at L=8; \
all three datasets show high within-block smoothness, degrading slightly at L=32",
    );
    report.save_json(&all);
    report.save_text();
}
