//! Differential suite for the word-parallel host codec: `fast` must be
//! **byte-identical** to `host_ref` — compressed stream and reconstructed
//! values — across element types, block lengths, Lorenzo on/off, awkward
//! tail lengths, and every threading mode (threaded output is identical
//! by construction; this suite is the executable proof). Round-trips must
//! also honor the error bound.

use cuszp_repro::cuszp_core::{fast, host_ref, CuszpConfig, DType, FloatData};
use proptest::prelude::*;

/// Thread counts that exercise: sequential, the threaded path with few /
/// many workers, and auto-detection.
const THREADS: [usize; 4] = [1, 2, 7, 0];

fn assert_fast_matches_ref<T: FloatData>(
    data: &[T],
    eb: f64,
    cfg: CuszpConfig,
) -> Result<(), TestCaseError> {
    let reference = host_ref::compress(data, eb, cfg);
    let ref_back: Vec<T> = host_ref::decompress(&reference);

    for threads in THREADS {
        let stream = fast::compress_threaded(data, eb, cfg, threads);
        prop_assert_eq!(&stream, &reference, "stream differs (threads={})", threads);
        prop_assert_eq!(
            stream.to_bytes(),
            reference.to_bytes(),
            "serialized bytes differ (threads={})",
            threads
        );
        let back: Vec<T> = fast::decompress_threaded(&stream, threads);
        prop_assert_eq!(
            &back,
            &ref_back,
            "reconstruction differs (threads={})",
            threads
        );
    }

    // The shared reconstruction honors the bound (modulo T's rounding).
    let type_eps = match T::DTYPE {
        DType::F32 => f32::EPSILON as f64,
        DType::F64 => f64::EPSILON,
    };
    for (&d, &r) in data.iter().zip(&ref_back) {
        let slack = d.to_f64().abs() * type_eps + f64::EPSILON;
        prop_assert!((d.to_f64() - r.to_f64()).abs() <= eb * (1.0 + 1e-6) + slack);
    }
    Ok(())
}

/// Lengths that land on, just before, and just after block boundaries.
fn awkward_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..700,
        Just(31usize),
        Just(32),
        Just(33),
        Just(127),
        Just(128),
        Just(129),
        Just(1024),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn f32_fast_is_byte_identical(
        len in awkward_len(),
        seed in any::<u64>(),
        eb in 1e-5f64..1.0,
        block_len in prop_oneof![Just(8usize), Just(16), Just(32), Just(64), Just(128)],
        lorenzo in any::<bool>(),
    ) {
        let mut s = seed | 1;
        let data: Vec<f32> = (0..len).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 20_000) as f32 - 10_000.0) * 0.37
        }).collect();
        assert_fast_matches_ref(&data, eb, CuszpConfig { block_len, lorenzo, ..CuszpConfig::default() })?;
    }

    #[test]
    fn f64_fast_is_byte_identical(
        len in awkward_len(),
        seed in any::<u64>(),
        eb in 1e-6f64..0.5,
        lorenzo in any::<bool>(),
    ) {
        let mut s = seed | 1;
        let data: Vec<f64> = (0..len).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 2_000_000) as f64 - 1_000_000.0) * 1.3e-2
        }).collect();
        assert_fast_matches_ref(&data, eb, CuszpConfig { lorenzo, ..CuszpConfig::default() })?;
    }

    #[test]
    fn smooth_fields_byte_identical(
        n in 64usize..2048,
        freq in 0.001f64..0.2,
        amp in 1.0f64..1e5,
        eb in 1e-4f64..0.1,
    ) {
        // Smooth data drives small residuals — the specialized low-F
        // vector paths — while the amplitude sweep reaches the wide-F
        // generic path.
        let data: Vec<f32> = (0..n).map(|i| ((i as f64 * freq).sin() * amp) as f32).collect();
        assert_fast_matches_ref(&data, eb, CuszpConfig::default())?;
    }
}

#[test]
fn constant_and_zero_data_byte_identical() {
    for v in [0.0f32, 1.25, -7.5] {
        let data = vec![v; 300];
        assert_fast_matches_ref(&data, 0.01, CuszpConfig::default()).unwrap();
    }
}

#[test]
fn wide_residuals_cross_block32_cutoff() {
    // Magnitudes pushing F through 15..=20 straddle the vector block
    // codec's F ≤ 16 specialization on hosts that have it.
    for amp in [3.0e4f32, 2.0e5, 3.0e6, 5.0e7] {
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.41).sin() * amp).collect();
        assert_fast_matches_ref(&data, 1e-4, CuszpConfig::default()).unwrap();
    }
}

#[test]
fn non_finite_values_byte_identical() {
    // NaN/±inf quantize through the same saturating casts on both paths.
    let mut data: Vec<f32> = (0..200).map(|i| (i as f32 * 0.11).cos() * 5.0).collect();
    data[3] = f32::NAN;
    data[50] = f32::INFINITY;
    data[51] = f32::NEG_INFINITY;
    let cfg = CuszpConfig::default();
    let reference = host_ref::compress(&data, 0.01, cfg);
    for threads in THREADS {
        assert_eq!(
            fast::compress_threaded(&data, 0.01, cfg, threads),
            reference
        );
    }
}
