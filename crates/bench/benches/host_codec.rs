//! Host codec throughput: `host_ref` (the step-by-step oracle) against
//! the word-parallel two-phase `fast` codec, both directions, both
//! element types, at **every SIMD tier the host supports** (scalar /
//! avx2 / avx512, forced per row through `CuszpConfig::simd` and the
//! `_at` decompress entry points). The harness experiment
//! `repro host_codec` records the same comparison into
//! `BENCH_host_codec.json`; this criterion target gives the
//! statistically careful local view. Decompress rows use the warm-arena
//! `decompress_into_at` serving path so they measure the codec, not the
//! allocator; `decompress_fast_owned` keeps the allocating wrapper on
//! the record at the auto tier.

use criterion::{criterion_group, criterion_main, Criterion};
use cuszp_core::{fast, host_ref, simd, CuszpConfig, FloatData, Scratch, SimdLevel};
use std::hint::black_box;

fn corpus<T: FloatData>(n: usize) -> Vec<T> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            T::from_f64((x * 0.02).sin() * 40.0 + (x * 0.11).cos() * 3.0)
        })
        .collect()
}

fn bench_dtype<T: FloatData + Default + Copy>(c: &mut Criterion, tag: &str) {
    let n = 1 << 20;
    let data = corpus::<T>(n);
    let eb = 0.01;
    let base = CuszpConfig::default();
    let stream = host_ref::compress(&data, eb, base);
    let detected = simd::detect_level();

    let mut group = c.benchmark_group(format!("host_codec_{tag}"));

    group.bench_function("compress_ref", |b| {
        b.iter(|| black_box(host_ref::compress(black_box(&data), eb, base).stream_bytes()))
    });
    group.bench_function("decompress_ref", |b| {
        b.iter(|| black_box(host_ref::decompress::<T>(black_box(&stream)).len()))
    });

    for level in SimdLevel::ALL.into_iter().filter(|&l| l <= detected) {
        let cfg = CuszpConfig {
            simd: Some(level),
            ..base
        };
        assert_eq!(
            stream,
            fast::compress(&data, eb, cfg),
            "fast codec must stay byte-identical to host_ref at {level}"
        );

        group.bench_function(format!("compress_fast_{level}"), |b| {
            b.iter(|| black_box(fast::compress(black_box(&data), eb, cfg).stream_bytes()))
        });
        group.bench_function(format!("compress_fast_mt_{level}"), |b| {
            b.iter(|| {
                black_box(fast::compress_threaded(black_box(&data), eb, cfg, 0).stream_bytes())
            })
        });

        let mut scratch = Scratch::new();
        let mut out = vec![T::default(); n];
        group.bench_function(format!("decompress_fast_{level}"), |b| {
            b.iter(|| {
                fast::decompress_into_at(
                    black_box(stream.as_ref()),
                    &mut scratch,
                    Some(level),
                    &mut out,
                );
                black_box(out.len())
            })
        });
        group.bench_function(format!("decompress_fast_mt_{level}"), |b| {
            b.iter(|| {
                fast::decompress_into_threaded_at(
                    black_box(stream.as_ref()),
                    0,
                    &mut scratch,
                    Some(level),
                    &mut out,
                );
                black_box(out.len())
            })
        });
    }

    // The allocating wrapper at the auto-detected tier: what callers pay
    // when they skip the arena API.
    group.bench_function("decompress_fast_owned", |b| {
        b.iter(|| black_box(fast::decompress::<T>(black_box(&stream)).len()))
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    bench_dtype::<f32>(c, "f32");
    bench_dtype::<f64>(c, "f64");
}

criterion_group!(benches, bench);
criterion_main!(benches);
