//! Offline shim for `proptest` — randomized property testing without
//! shrinking.
//!
//! Supports the API surface this workspace uses: the [`proptest!`] macro
//! (with `#![proptest_config(..)]`), [`strategy::Strategy`] with
//! `prop_map`, range strategies, [`strategy::Just`], weighted
//! [`prop_oneof!`], [`collection::vec`], [`array::uniform32`],
//! `any::<T>()`, and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Failures panic immediately with the failing inputs `Debug`-printed;
//! there is no shrinking, so diagnose from the reported case directly.
//! Case generation is deterministic per test name (override the base seed
//! with `PROPTEST_SEED`).

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's config: how many cases to run per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a test case did not pass: rejected precondition or real failure.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert*!` failed; the test panics with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected precondition.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Result alias matching proptest's property-body signature.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic RNG derived from the test name (and the
        /// `PROPTEST_SEED` env var, if set).
        pub fn deterministic(name: &str) -> Self {
            let base: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x00C0_FFEE);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::{Rng, SampleRange};
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Filter generated values (regenerates until `f` accepts, up to a
        /// retry cap).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence,
                f,
            }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    /// [`Strategy::prop_filter`] adapter.
    pub struct Filter<S, F> {
        base: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
        }
    }

    /// Weighted union of strategies (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight bookkeeping")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    SampleRange::sample(self.clone(), rng)
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    SampleRange::sample(self.clone(), rng)
                }
            }
        )*};
    }
    impl_range_inclusive_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_range_from_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    SampleRange::sample(self.start..=<$t>::MAX, rng)
                }
            }
        )*};
    }
    impl_range_from_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// `any::<bool>()` support.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// Full-range strategy for numeric `any::<T>()`.
    pub struct AnyNum<T>(std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyNum<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen::<$t>()
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyNum<$t>;
                fn arbitrary() -> AnyNum<$t> { AnyNum(std::marker::PhantomData) }
            }
        )*};
    }
    impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    macro_rules! impl_any_float {
        ($($t:ty),*) => {$(
            impl Strategy for AnyNum<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    // Finite, magnitude-spread values (no NaN/inf — matches
                    // how the workspace uses `any` on floats).
                    let exp: i32 = rng.gen_range(-40..40);
                    let mant: $t = rng.gen_range(-1.0..1.0);
                    mant * (2.0 as $t).powi(exp)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyNum<$t>;
                fn arbitrary() -> AnyNum<$t> { AnyNum(std::marker::PhantomData) }
            }
        )*};
    }
    impl_any_float!(f32, f64);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy [`vec()`] returns.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `[T; 32]` arrays of `element` values.
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        UniformArray { element }
    }

    /// Fixed-size array strategy.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn new_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.new_value(rng))
        }
    }
}

/// Everything `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                    let __dbg = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)* "{}"), $(&$arg,)* "");
                    let __result: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match __result {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(__msg)) => panic!(
                            "proptest case {} of {} {}\ninputs:{}",
                            __case + 1, stringify!($name), __msg, __dbg
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Assert inside a property: on failure, returns
/// `Err(TestCaseError::Fail(..))` from the enclosing property body (which
/// must have a `Result<(), TestCaseError>` return type, as `proptest!`
/// bodies do).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a property (same failure path as [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f32>> {
        crate::collection::vec(
            prop_oneof![
                3 => -10.0f32..10.0,
                1 => Just(0.0f32),
            ],
            1..50,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_sizes_respected(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for x in &v {
                prop_assert!((-10.0..=10.0).contains(x));
            }
        }

        #[test]
        fn tuples_and_maps_work(pair in (0usize..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 < 20);
        }

        #[test]
        fn arrays_are_fixed_size(a in crate::array::uniform32(0u64..100)) {
            prop_assert_eq!(a.len(), 32);
            prop_assert!(a.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = crate::collection::vec(0.0f64..1.0, 5..10);
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
