//! Step ④ — block bit-shuffle (paper §4.4, Fig 11).
//!
//! Rather than packing each value's `F` bits contiguously (which needs
//! irregular cross-byte shifts whenever `F % 8 ≠ 0`), cuSZp transposes the
//! bit matrix: output byte `k·L/8 + j` collects bit `k` of values
//! `8j .. 8j+8`. Every output byte is then built from exactly 8 single-bit
//! extracts — branch-free and uniform across lanes, which is the property
//! that makes the step GPU-friendly.
//!
//! On the host the same layout admits a much faster implementation than
//! the one-bit-at-a-time loop the GPU lanes run: each group of 8 values ×
//! 8 bit planes is an 8×8 **bit matrix** packed into one `u64`, and a
//! three-step masked delta-swap (Hacker's Delight Fig 7-3) transposes all
//! 64 bits in ~18 ALU ops. [`shuffle`]/[`unshuffle`] below process 8
//! values × 8 planes per transpose instead of one bit per inner-loop
//! iteration — the word-level trick SZx uses to run this fixed-length
//! design at memory bandwidth on CPUs.
//!
//! These primitives are the **scalar tier** of the
//! [`SimdLevel`](crate::SimdLevel) dispatch hierarchy, and the wider
//! tiers in [`crate::simd`] are lane-lifted editions of exactly the same
//! networks rather than different algorithms:
//!
//! - The AVX-512 tier runs [`transpose8x8`]'s three delta-swaps on eight
//!   `u64` lanes at once (`transpose8x8_x8`) and replaces
//!   [`byte_transpose8x8`]'s swap network with a single `vpermb`
//!   cross-lane byte permute.
//! - The AVX2 tier has no cross-lane byte permute, so it reaches the
//!   same Fig 11 bytes through a pack/`vpshufb` reorder plus one
//!   `vpmovmskb` per plane — a different instruction route through the
//!   identical bit-matrix transpose.
//!
//! Decoding is the same strip step **inverted**: every transpose here is
//! an involution, so the decode side of each tier runs the identical
//! permutes in the opposite order (plane rows → chunk words → magnitude
//! limbs) — which is why encode and decode vectorize to the same
//! throughput class instead of decode trailing on a scalar inverse.

/// Transpose an 8×8 bit matrix packed LSB-first into a `u64`: input bit
/// `8i + c` (bit `c` of byte `i`) moves to output bit `8c + i`. The
/// operation is an involution.
#[inline(always)]
pub fn transpose8x8(mut x: u64) -> u64 {
    // Masked delta-swaps at distances 7, 14, 28: first the 2×2 element
    // tiles, then 2×2 blocks of those, then the two 4×4 quadrants.
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Transpose an 8×8 **byte** matrix held as 8 little-endian `u64` rows:
/// byte `c` of output row `i` is byte `i` of input row `c`. Same recursive
/// block-swap idea as [`transpose8x8`] one level up (bytes instead of
/// bits), and likewise an involution.
///
/// This is the workhorse of the fast codec's inner loops: loading 8
/// values' magnitudes (or 8 plane rows) as `u64`s and byte-transposing
/// them turns what would be 64 scattered single-byte memory accesses into
/// 8 word accesses plus ~36 ALU ops held in registers.
#[inline(always)]
pub fn byte_transpose8x8(m: [u64; 8]) -> [u64; 8] {
    let mut m = m;
    // Distance-1 swaps: exchange byte pairs between adjacent rows.
    for i in [0, 2, 4, 6] {
        let t = ((m[i] >> 8) ^ m[i + 1]) & 0x00FF_00FF_00FF_00FF;
        m[i] ^= t << 8;
        m[i + 1] ^= t;
    }
    // Distance-2 swaps: 2×2 byte blocks.
    for i in [0, 1, 4, 5] {
        let t = ((m[i] >> 16) ^ m[i + 2]) & 0x0000_FFFF_0000_FFFF;
        m[i] ^= t << 16;
        m[i + 2] ^= t;
    }
    // Distance-4 swaps: the two 4×4 quadrants.
    for i in 0..4 {
        let t = ((m[i] >> 32) ^ m[i + 4]) & 0x0000_0000_FFFF_FFFF;
        m[i] ^= t << 32;
        m[i + 4] ^= t;
    }
    m
}

/// Bit-transpose `values[..L]` (each using `f` significant bits) into
/// `out[..f·L/8]` bytes. `values.len()` must be a multiple of 8.
pub fn shuffle(values: &[u64], f: u8, out: &mut [u8]) {
    let l = values.len();
    debug_assert_eq!(l % 8, 0);
    let bytes_per_plane = l / 8;
    debug_assert!(out.len() >= f as usize * bytes_per_plane);
    for (j, group) in values.chunks_exact(8).enumerate() {
        let mut k0 = 0usize;
        while k0 < f as usize {
            // Byte i of the matrix = bits k0..k0+8 of value 8j+i.
            let mut x = 0u64;
            for (i, &v) in group.iter().enumerate() {
                x |= ((v >> k0) & 0xFF) << (8 * i);
            }
            let y = transpose8x8(x);
            // Byte c of the transpose = plane k0+c of the 8 values.
            let planes = (f as usize - k0).min(8);
            for c in 0..planes {
                out[(k0 + c) * bytes_per_plane + j] = (y >> (8 * c)) as u8;
            }
            k0 += 8;
        }
    }
}

/// Invert [`shuffle`]: rebuild `values[..L]` from `f` bit planes.
pub fn unshuffle(planes: &[u8], f: u8, values: &mut [u64]) {
    let l = values.len();
    debug_assert_eq!(l % 8, 0);
    let bytes_per_plane = l / 8;
    debug_assert!(planes.len() >= f as usize * bytes_per_plane);
    for v in values.iter_mut() {
        *v = 0;
    }
    for j in 0..bytes_per_plane {
        let mut k0 = 0usize;
        while k0 < f as usize {
            let n_planes = (f as usize - k0).min(8);
            let mut x = 0u64;
            for c in 0..n_planes {
                x |= (planes[(k0 + c) * bytes_per_plane + j] as u64) << (8 * c);
            }
            let y = transpose8x8(x);
            for (i, v) in values[8 * j..8 * j + 8].iter_mut().enumerate() {
                *v |= ((y >> (8 * i)) & 0xFF) << k0;
            }
            k0 += 8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_transpose_matches_index_definition() {
        // Row i, byte c = unique value, check the transposed placement.
        let mut m = [0u64; 8];
        for (i, row) in m.iter_mut().enumerate() {
            for c in 0..8u64 {
                *row |= (i as u64 * 8 + c) << (8 * c);
            }
        }
        let t = byte_transpose8x8(m);
        for (i, row) in t.iter().enumerate() {
            for c in 0..8 {
                let byte = (row >> (8 * c)) & 0xFF;
                assert_eq!(byte, (c * 8 + i) as u64, "row {i} byte {c}");
            }
        }
        assert_eq!(byte_transpose8x8(t), m, "involution");
    }

    /// The original one-bit-at-a-time implementation, kept as the oracle
    /// for the word-parallel rewrite.
    fn shuffle_scalar(values: &[u64], f: u8, out: &mut [u8]) {
        let bytes_per_plane = values.len() / 8;
        for k in 0..f as usize {
            for j in 0..bytes_per_plane {
                let mut byte = 0u8;
                for b in 0..8 {
                    byte |= (((values[8 * j + b] >> k) & 1) as u8) << b;
                }
                out[k * bytes_per_plane + j] = byte;
            }
        }
    }

    fn unshuffle_scalar(planes: &[u8], f: u8, values: &mut [u64]) {
        let bytes_per_plane = values.len() / 8;
        for v in values.iter_mut() {
            *v = 0;
        }
        for k in 0..f as usize {
            for j in 0..bytes_per_plane {
                let byte = planes[k * bytes_per_plane + j];
                for b in 0..8 {
                    values[8 * j + b] |= (((byte >> b) & 1) as u64) << k;
                }
            }
        }
    }

    #[test]
    fn transpose_is_involution_and_moves_bits() {
        for seed in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF, 1 << 63] {
            let x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
            assert_eq!(transpose8x8(transpose8x8(x)), x);
            for i in 0..8 {
                for c in 0..8 {
                    let src = (x >> (8 * i + c)) & 1;
                    let dst = (transpose8x8(x) >> (8 * c + i)) & 1;
                    assert_eq!(src, dst, "bit ({i},{c}) of {x:#x}");
                }
            }
        }
    }

    #[test]
    fn matches_scalar_reference() {
        for l in [8usize, 32, 64, 128] {
            for f in [0u8, 1, 3, 7, 8, 9, 13, 20, 33, 63, 64] {
                let values: Vec<u64> = (0..l as u64)
                    .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (i << 17))
                    .collect();
                let bytes = f as usize * l / 8;
                let mut fast = vec![0u8; bytes];
                let mut slow = vec![0u8; bytes];
                shuffle(&values, f, &mut fast);
                shuffle_scalar(&values, f, &mut slow);
                assert_eq!(fast, slow, "shuffle L={l} F={f}");

                let mut back_fast = vec![1u64; l];
                let mut back_slow = vec![2u64; l];
                unshuffle(&fast, f, &mut back_fast);
                unshuffle_scalar(&slow, f, &mut back_slow);
                assert_eq!(back_fast, back_slow, "unshuffle L={l} F={f}");
            }
        }
    }

    #[test]
    fn roundtrip_small() {
        let values: Vec<u64> = vec![123, 15, 134, 85, 77, 4, 5, 9];
        let f = 8u8;
        let mut planes = vec![0u8; f as usize];
        shuffle(&values, f, &mut planes);
        let mut back = vec![0u64; 8];
        unshuffle(&planes, f, &mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn fig11_plane_layout() {
        // Byte 0 must hold the first bit of each of the 8 values.
        let values: Vec<u64> = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let mut planes = vec![0u8; 1];
        shuffle(&values, 1, &mut planes);
        assert_eq!(planes[0], 0b0100_1101);
    }

    #[test]
    fn values_above_f_bits_are_truncated() {
        // Only F bits survive — the encoder guarantees max|v| < 2^F, so
        // truncation never loses data in practice; this documents the
        // contract.
        let values: Vec<u64> = vec![0b1111, 0, 0, 0, 0, 0, 0, 0];
        let mut planes = vec![0u8; 2];
        shuffle(&values, 2, &mut planes);
        let mut back = vec![0u64; 8];
        unshuffle(&planes, 2, &mut back);
        assert_eq!(back[0], 0b11);
    }

    #[test]
    fn wide_block_roundtrip() {
        let values: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) % (1 << 20)).collect();
        let f = 20u8;
        let mut planes = vec![0u8; f as usize * 8];
        shuffle(&values, f, &mut planes);
        let mut back = vec![0u64; 64];
        unshuffle(&planes, f, &mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn f_zero_writes_nothing() {
        let values = vec![0u64; 8];
        let mut planes: Vec<u8> = vec![];
        shuffle(&values, 0, &mut planes);
        let mut back = vec![7u64; 8];
        unshuffle(&planes, 0, &mut back);
        assert_eq!(back, vec![0u64; 8]);
    }

    #[test]
    fn full_64_bit_roundtrip() {
        let values: Vec<u64> = vec![u64::MAX, 0, 1, u64::MAX / 3, 42, 7, 1 << 63, 12345];
        let f = 64u8;
        let mut planes = vec![0u8; 64];
        shuffle(&values, f, &mut planes);
        let mut back = vec![0u64; 8];
        unshuffle(&planes, f, &mut back);
        assert_eq!(back, values);
    }
}
