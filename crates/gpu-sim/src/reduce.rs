//! Device-wide reductions (min/max) — the kernel that resolves a
//! value-range-relative (REL) error bound on the device before a
//! compression launch, as the reference `compx` CLI does.
//!
//! Classic two-level shape: each block reduces its tile in registers and
//! publishes one partial; the last block to finish (tracked with a device
//! atomic) folds the partials. Still a single launch.

use crate::gpu::Gpu;
use crate::kernel::LaunchConfig;
use crate::memory::{DeviceAtomics, DeviceBuffer};

/// Elements each block reduces.
const TILE: usize = 4096;

/// Bit-cast an `f32` into a totally-ordered `u64` key (monotone mapping,
/// so atomic max works for both min and max searches).
fn order_key(v: f32) -> u64 {
    let bits = v.to_bits();
    // Flip sign bit for positives, all bits for negatives: orders as f32.
    let key = if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    };
    key as u64
}

fn key_to_f32(key: u64) -> f32 {
    let bits = key as u32;
    let bits = if bits & 0x8000_0000 != 0 {
        bits & 0x7FFF_FFFF
    } else {
        !bits
    };
    f32::from_bits(bits)
}

/// Device-wide `(min, max)` of a non-empty `f32` buffer, in one kernel
/// launch. Traffic is recorded under `step`.
///
/// # Panics
/// Panics on an empty buffer.
pub fn min_max_f32(gpu: &mut Gpu, input: &DeviceBuffer<f32>, step: &'static str) -> (f32, f32) {
    let n = input.len();
    assert!(n > 0, "min_max over empty buffer");
    let tiles = n.div_ceil(TILE);
    // Slot 0: running max-key of values; slot 1: running max-key of
    // negated values (== min); initialized to 0 (the smallest key).
    let acc = DeviceAtomics::zeroed(2);

    gpu.launch("minmax_reduce", LaunchConfig::grid(tiles), |ctx| {
        let inp = input.slice();
        let start = ctx.block * TILE;
        let end = (start + TILE).min(n);
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for i in start..end {
            let v = inp.get(i);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        acc.fetch_max(0, order_key(hi));
        acc.fetch_max(1, order_key(-lo));
        ctx.read(step, ((end - start) * 4) as u64);
        ctx.ops(step, (end - start) as u64 * 2 + 64);
        ctx.write(step, 16);
    });

    let hi = key_to_f32(acc.load(0));
    let lo = -key_to_f32(acc.load(1));
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn order_key_is_monotone() {
        let vals = [
            f32::NEG_INFINITY,
            -1.0e30,
            -3.5,
            -0.0,
            0.0,
            1.0e-20,
            2.0,
            f32::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(order_key(w[0]) <= order_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &v in &vals[1..vals.len() - 1] {
            assert_eq!(key_to_f32(order_key(v)), v);
        }
    }

    #[test]
    fn min_max_matches_iterator() {
        let data: Vec<f32> = (0..20_000)
            .map(|i| ((i * 2654435761usize) % 100_000) as f32 - 50_000.0)
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::a100()).with_workers(3);
        let buf = gpu.h2d(&data);
        let (lo, hi) = min_max_f32(&mut gpu, &buf, "range");
        let expect_lo = data.iter().cloned().fold(f32::INFINITY, f32::min);
        let expect_hi = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!((lo, hi), (expect_lo, expect_hi));
    }

    #[test]
    fn min_max_single_element() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = gpu.h2d(&[-7.5f32]);
        assert_eq!(min_max_f32(&mut gpu, &buf, "range"), (-7.5, -7.5));
    }

    #[test]
    fn min_max_all_negative() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = gpu.h2d(&[-3.0f32, -9.0, -1.0]);
        assert_eq!(min_max_f32(&mut gpu, &buf, "range"), (-9.0, -1.0));
    }

    #[test]
    fn min_max_is_one_kernel() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = gpu.h2d(&vec![1.0f32; 100_000]);
        gpu.reset_timeline();
        min_max_f32(&mut gpu, &buf, "range");
        assert_eq!(gpu.timeline().kernel_count(), 1);
        assert_eq!(gpu.timeline().memcpy_time(), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = DeviceBuffer::<f32>::from_host(&[]);
        min_max_f32(&mut gpu, &buf, "range");
    }
}
