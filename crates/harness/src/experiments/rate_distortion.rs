//! Figs 17 & 18 — rate-distortion curves (PSNR and SSIM vs bit rate) for
//! all four compressors over the six datasets, plus the `CUSZPHY1`
//! hybrid second stage as a fifth curve (ROADMAP item 5: the sweep
//! emits hybrid ratio and throughput per bound).
//!
//! Shape claims reproduced:
//! * cuSZp and cuSZ trace the upper envelope (error-bounded prediction
//!   beats fixed-rate truncation), with cuSZ strongest at very low rates
//!   (Huffman) and cuSZp close while being ~100x faster.
//! * cuSZx sits below both at matched rates (midpoint flush).
//! * cuZFP is competitive on smooth multi-D data (Hurricane/NYX) but
//!   collapses on the 1-D HACC (paper: 28.77 dB / 0.1465 SSIM at rate 4,
//!   vs 60.42 dB / 0.7892 for cuSZp at the same rate).
//! * The hybrid stage (`cuSZp+hybrid`) is lossless over the lossy
//!   stream, so it moves every cuSZp point left (lower bit rate) at
//!   identical PSNR/SSIM; its rows also carry the second-stage encode
//!   and decode throughput so the rate win is priced.

use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use crate::{error_bounded_compressors, CUZFP_RATES};
use baselines::{Compressor, CuzfpLike};
use cuszp_core::hybrid::{self, HybridRef, HybridScratch};
use cuszp_core::{fast, CuszpConfig, ErrorBound, Scratch};
use datasets::{generate_subset, DatasetId};
use gpu_sim::DeviceSpec;
use metrics::ssim::ssim;
use serde::Serialize;
use std::time::Instant;

/// One rate-distortion point.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Dataset name.
    pub dataset: String,
    /// Compressor name (`cuSZp+hybrid` for the second-stage curve).
    pub compressor: String,
    /// Bit rate (bits per value).
    pub bit_rate: f64,
    /// PSNR, dB.
    pub psnr: f64,
    /// SSIM.
    pub ssim: f64,
    /// Second-stage encode throughput, GB/s of raw input — only on
    /// `cuSZp+hybrid` rows.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub enc_gbps: Option<f64>,
    /// Second-stage decode throughput, GB/s of raw input — only on
    /// `cuSZp+hybrid` rows.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dec_gbps: Option<f64>,
}

/// Shipped hybrid size and second-stage throughput for one bound.
fn hybrid_stats(data: &[f32], eb: f64) -> (usize, f64, f64) {
    let raw = std::mem::size_of_val(data);
    let mut scratch = Scratch::new();
    let mut hs = HybridScratch::new();
    let mut plain = Vec::new();
    let mut frame = Vec::new();
    let mut back = Vec::new();
    let r = fast::compress_into(&mut scratch, data, eb, CuszpConfig::default(), &mut plain);
    hybrid::encode(&r, hybrid::auto_chunk_blocks(&r), &mut hs, &mut frame);
    let shipped = frame.len().min(plain.len());

    let reps = ((16 << 20) / raw.max(1)).clamp(1, 32);
    let mut best_enc = f64::INFINITY;
    let mut best_dec = f64::INFINITY;
    for _ in 0..3 {
        let r = cuszp_core::CompressedRef::parse(&plain).expect("own frame parses");
        let t0 = Instant::now();
        for _ in 0..reps {
            hybrid::encode(&r, hybrid::auto_chunk_blocks(&r), &mut hs, &mut frame);
            std::hint::black_box(frame.len());
        }
        best_enc = best_enc.min(t0.elapsed().as_secs_f64() / reps as f64);
        let t0 = Instant::now();
        for _ in 0..reps {
            let h = HybridRef::parse(&frame).expect("own hybrid frame parses");
            hybrid::decode_stream_bytes(&h, &mut hs, &mut back).expect("own frame decodes");
            std::hint::black_box(back.len());
        }
        best_dec = best_dec.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    (
        shipped,
        raw as f64 / best_enc / 1e9,
        raw as f64 / best_dec / 1e9,
    )
}

/// Measure the rate-distortion grid (one representative field per
/// dataset, as the paper plots per-field curves).
pub fn measure(ctx: &Ctx) -> Vec<Point> {
    let spec = DeviceSpec::a100();
    let mut points = Vec::new();
    for id in DatasetId::all() {
        let field = generate_subset(id, ctx.scale, 1).remove(0);
        for comp in error_bounded_compressors() {
            for bound in ErrorBound::paper_rel_set() {
                let eb = bound.absolute(field.value_range() as f64);
                let m = measure_pipeline(&spec, comp.as_ref(), &field, eb);
                let s = ssim(&field.data, &m.reconstruction, &field.shape);
                points.push(Point {
                    dataset: id.name().to_string(),
                    compressor: comp.kind().name().to_string(),
                    bit_rate: m.bit_rate,
                    psnr: m.psnr,
                    ssim: s,
                    enc_gbps: None,
                    dec_gbps: None,
                });
                // The hybrid second stage is lossless over cuSZp's lossy
                // stream: same reconstruction, fewer stored bits. Emit
                // it as its own curve with the stage's throughput.
                if comp.kind().name() == "cuSZp" {
                    let (shipped, enc_gbps, dec_gbps) = hybrid_stats(&field.data, eb);
                    points.push(Point {
                        dataset: id.name().to_string(),
                        compressor: "cuSZp+hybrid".to_string(),
                        bit_rate: shipped as f64 * 8.0 / field.data.len() as f64,
                        psnr: m.psnr,
                        ssim: s,
                        enc_gbps: Some(enc_gbps),
                        dec_gbps: Some(dec_gbps),
                    });
                }
            }
        }
        for rate in CUZFP_RATES {
            let comp = CuzfpLike::new(rate);
            let m = measure_pipeline(&spec, &comp, &field, 0.0);
            let s = ssim(&field.data, &m.reconstruction, &field.shape);
            points.push(Point {
                dataset: id.name().to_string(),
                compressor: comp.kind().name().to_string(),
                bit_rate: m.bit_rate,
                psnr: m.psnr,
                ssim: s,
                enc_gbps: None,
                dec_gbps: None,
            });
        }
    }
    points
}

/// Run the Fig 17/18 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig17",
        "Rate distortion: PSNR (Fig 17) and SSIM (Fig 18)",
        &ctx.out_dir,
    );
    let points = measure(ctx);

    for id in DatasetId::all() {
        report.line(&format!("\n{}", id.name()));
        let mut rows = Vec::new();
        for comp in ["cuSZp", "cuSZp+hybrid", "cuSZ", "cuSZx", "cuZFP"] {
            let mut series: Vec<&Point> = points
                .iter()
                .filter(|p| p.dataset == id.name() && p.compressor == comp)
                .collect();
            series.sort_by(|a, b| a.bit_rate.partial_cmp(&b.bit_rate).expect("finite"));
            for p in series {
                let gbps = |v: Option<f64>| v.map_or_else(|| "-".to_string(), f2);
                rows.push(vec![
                    comp.to_string(),
                    f2(p.bit_rate),
                    f2(p.psnr),
                    format!("{:.4}", p.ssim),
                    gbps(p.enc_gbps),
                    gbps(p.dec_gbps),
                ]);
            }
        }
        report.table(
            &[
                "compressor",
                "bit-rate",
                "PSNR (dB)",
                "SSIM",
                "enc GB/s",
                "dec GB/s",
            ],
            &rows,
        );
    }

    // Sanity: the hybrid curve never stores more bits than cuSZp at the
    // same bound (the whole-frame fallback guarantees it). The two rates
    // are not counted identically — the baseline charges the bare device
    // stream, the hybrid point its full serialized container (38-byte
    // header plus chunk table) — so grant a small absolute allowance for
    // that fixed framing; it is only visible at the tiny test scale and
    // vanishes into the 0.1% slack on real field sizes.
    for id in DatasetId::all() {
        let base: Vec<&Point> = points
            .iter()
            .filter(|p| p.dataset == id.name() && p.compressor == "cuSZp")
            .collect();
        let hy: Vec<&Point> = points
            .iter()
            .filter(|p| p.dataset == id.name() && p.compressor == "cuSZp+hybrid")
            .collect();
        for (b, h) in base.iter().zip(&hy) {
            assert!(
                h.bit_rate <= b.bit_rate * 1.001 + 0.08,
                "{}: hybrid bit rate {} must not exceed cuSZp {}",
                id.name(),
                h.bit_rate,
                b.bit_rate
            );
        }
    }

    // The headline HACC contrast.
    let hacc_cuzfp = points
        .iter()
        .filter(|p| p.dataset == "HACC" && p.compressor == "cuZFP")
        .min_by(|a, b| a.bit_rate.partial_cmp(&b.bit_rate).expect("finite"));
    let hacc_cuszp = points
        .iter()
        .filter(|p| p.dataset == "HACC" && p.compressor == "cuSZp")
        .min_by(|a, b| a.bit_rate.partial_cmp(&b.bit_rate).expect("finite"));
    if let (Some(z), Some(p)) = (hacc_cuzfp, hacc_cuszp) {
        report.line(&format!(
            "\nHACC low-rate contrast: cuZFP {:.2} dB / {:.4} SSIM at {:.1} bits vs \
cuSZp {:.2} dB / {:.4} SSIM at {:.1} bits (paper: 28.77 dB/0.1465 vs 60.42 dB/0.7892)",
            z.psnr, z.ssim, z.bit_rate, p.psnr, p.ssim, p.bit_rate
        ));
    }
    report.save_json(&points);
    report.save_text();
}
