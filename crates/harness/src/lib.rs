//! # harness — reproduction of every table and figure in the cuSZp paper
//!
//! Each experiment module regenerates one table/figure of the paper's
//! evaluation (Section 5, plus the Section 6 discussion), printing the
//! paper's reported values next to the values measured on this
//! repository's implementations, and writing machine-readable JSON under
//! `artifacts/`. The `repro` binary drives them:
//!
//! ```text
//! repro all            # every experiment
//! repro fig13          # one experiment
//! repro table3 --scale medium
//! ```
//!
//! See DESIGN.md §4 for the experiment ↔ module index.

pub mod experiments;
pub mod measure;
pub mod report;

pub use measure::{measure_pipeline, resolve_bound, Measurement};
pub use report::Report;

use baselines::common::CuszpAdapter;
use baselines::{Compressor, CuszLike, CuszxLike, CuzfpLike};

/// The three error-bounded compressors (cuSZp + the two error-bounded
/// baselines), as used by Table 3 and the REL-swept figures.
pub fn error_bounded_compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(CuszpAdapter::new()),
        Box::new(CuszLike::new()),
        Box::new(CuszxLike::new()),
    ]
}

/// All four compressors; cuZFP runs at the given fixed rate.
pub fn all_compressors(cuzfp_rate: u32) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(CuszpAdapter::new()),
        Box::new(CuszLike::new()),
        Box::new(CuszxLike::new()),
        Box::new(CuzfpLike::new(cuzfp_rate)),
    ]
}

/// The paper's cuZFP fixed-rate sweep (§5.2).
pub const CUZFP_RATES: [u32; 4] = [4, 8, 16, 24];
