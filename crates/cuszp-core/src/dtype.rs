//! Element types the codec supports — the reference cuSZp ships `-f`
//! (float) and `-d` (double) code paths; this trait folds both into one
//! generic pipeline.

use serde::{Deserialize, Serialize};

/// On-disk tag for the element type of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DType {
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
}

impl DType {
    /// Header byte for serialization.
    pub fn to_byte(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::F64 => 1,
        }
    }

    /// Parse the header byte.
    pub fn from_byte(b: u8) -> Option<DType> {
        match b {
            0 => Some(DType::F32),
            1 => Some(DType::F64),
            _ => None,
        }
    }

    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }

    /// Largest fixed length `F` a stream of this element type can use.
    ///
    /// `f32` quantization integers fit in the `i32` range wherever the
    /// bound is meaningful (the reference cuSZp stores them in `int`);
    /// the block-internal Lorenzo difference of two such integers spans
    /// at most 33 bits. `f64` residual magnitudes are capped by the
    /// 64-bit unsigned-abs representation. This bounds the device
    /// payload allocation at `(max_F + 1)·L/8` bytes per block — roughly
    /// **half** the f64 worst case for f32 streams.
    pub fn max_fixed_len(self) -> u8 {
        match self {
            DType::F32 => 33,
            DType::F64 => 64,
        }
    }
}

mod sealed {
    /// Seals [`super::FloatData`] to `f32`/`f64`: the SIMD batch paths in
    /// [`crate::simd`] reinterpret `&[T]` by `T::DTYPE`, which is sound
    /// only if the tag cannot lie about the element type.
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// A floating-point element the codec can quantize.
///
/// The quantization itself runs in `f64` for both types; the trait carries
/// the conversions and the stream tag. The error-bound guarantee is exact
/// in `f64` arithmetic, with reconstruction rounding bounded by one ULP of
/// the element type (see `verify::check_bound`). Sealed: implemented for
/// `f32` and `f64` only.
pub trait FloatData: gpu_sim::DeviceCopy + PartialEq + std::fmt::Debug + sealed::Sealed {
    /// This type's stream tag.
    const DTYPE: DType;
    /// Widen to `f64` for quantization.
    fn to_f64(self) -> f64;
    /// Narrow from `f64` after dequantization.
    fn from_f64(v: f64) -> Self;
}

impl FloatData for f32 {
    const DTYPE: DType = DType::F32;
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl FloatData for f64 {
    const DTYPE: DType = DType::F64;
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        for d in [DType::F32, DType::F64] {
            assert_eq!(DType::from_byte(d.to_byte()), Some(d));
        }
        assert_eq!(DType::from_byte(7), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::F64.size(), 8);
    }

    #[test]
    fn conversions_are_exact_for_f64() {
        let v = 1.234_567_890_123_456_7f64;
        assert_eq!(f64::from_f64(v.to_f64()), v);
        assert_eq!(<f64 as FloatData>::DTYPE, DType::F64);
        assert_eq!(<f32 as FloatData>::DTYPE, DType::F32);
    }
}
