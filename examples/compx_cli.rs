//! `compx` — a clone of the CLI from the paper's artifact appendix.
//!
//! ```text
//! cargo run --release --example compx_cli -- <file.f32> <rel-error-bound>
//! cargo run --release --example compx_cli -- --demo 1e-4
//! ```
//!
//! Reads a raw little-endian `f32` file (SDRBench format), compresses and
//! decompresses it with cuSZp on the simulated A100, writes
//! `<file>.compx.cmp` / `<file>.compx.dec`, and prints the same summary
//! the artifact's `compx temperature.f32 1e-4` produces.

use cuszp_core::{Compressed, Cuszp, ErrorBound};
use gpu_sim::{DeviceSpec, Gpu};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, rel, demo) = match args.as_slice() {
        [flag, rel] if flag == "--demo" => (PathBuf::from("compx_demo.f32"), rel.clone(), true),
        [path, rel] => (PathBuf::from(path), rel.clone(), false),
        _ => {
            eprintln!("usage: compx <data.f32> <rel-error-bound>   (or --demo <rel>)");
            return ExitCode::from(2);
        }
    };
    let rel: f64 = match rel.parse() {
        Ok(v) if v > 0.0 && v < 1.0 => v,
        _ => {
            eprintln!("relative error bound must be in (0, 1), e.g. 1e-4");
            return ExitCode::from(2);
        }
    };

    if demo {
        // Generate a NYX-temperature-like field so the demo runs without
        // downloading SDRBench.
        let field = datasets::nyx::field("temperature", &[64, 64, 64]);
        datasets::io::write_field(&path, &field).expect("write demo data");
        println!("[demo] wrote {} ({} values)", path.display(), field.len());
    }

    // Zero-copy load: the file is memory-mapped (falling back to a
    // buffered read where mapping is unavailable) and compressed straight
    // out of the page cache — the input-side analogue of the paper's
    // no-intermediate-buffer design.
    let data = match datasets::mmap::map_f32_le(&path) {
        Ok(d) if !d.is_empty() => d,
        Ok(_) => {
            eprintln!("{}: empty file", path.display());
            return ExitCode::from(1);
        }
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return ExitCode::from(1);
        }
    };

    let codec = Cuszp::new();
    let eb = codec.resolve_bound(&data, ErrorBound::Rel(rel));

    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.h2d(&data);
    gpu.reset_timeline();
    let dc = codec.compress_device(&mut gpu, &input, eb);
    println!("CompX Compression Kernel finished!");
    let comp_gbps = gpu.end_to_end_throughput_gbps((data.len() * 4) as u64);

    gpu.reset_timeline();
    let out = codec.decompress_device(&mut gpu, &dc);
    println!("CompX Decompression Kernel finished!");
    let decomp_gbps = gpu.end_to_end_throughput_gbps((data.len() * 4) as u64);
    let restored = gpu.d2h(&out);

    // Persist artifacts like the reference CLI.
    let host_stream: Compressed = dc.to_host(&mut gpu);
    let cmp_path = path.with_extension("f32.compx.cmp");
    let dec_path = path.with_extension("f32.compx.dec");
    std::fs::write(&cmp_path, host_stream.to_bytes()).expect("write .cmp");
    datasets::io::write_f32_le(&dec_path, &restored).expect("write .dec");

    let ratio = (data.len() * 4) as f64 / host_stream.stream_bytes() as f64;
    println!("CompX finished!");
    println!("CompX Compression   end-to-end speed: {comp_gbps:.6} GB/s (simulated A100)");
    println!("CompX Decompression end-to-end speed: {decomp_gbps:.6} GB/s (simulated A100)");
    println!("CompX Compression ratio: {ratio:.6}");

    if cuszp_core::verify::check_bound(&data, &restored, eb) {
        println!("Pass error check!");
        ExitCode::SUCCESS
    } else {
        println!("FAILED error check!");
        ExitCode::from(1)
    }
}
