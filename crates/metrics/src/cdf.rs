//! Block value-range CDFs (paper Fig 6): the smoothness evidence behind
//! cuSZp's fixed-length encoding.

use serde::{Deserialize, Serialize};

/// Per-block relative value ranges of a field, ready for CDF queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockRangeCdf {
    /// Sorted relative ranges, one per block, each in `[0, 1]`.
    pub sorted_ranges: Vec<f64>,
    /// Block length used.
    pub block_len: usize,
}

impl BlockRangeCdf {
    /// Split `data` into consecutive blocks of `block_len` (tail block
    /// included) and record each block's `(max − min) / global_range`.
    ///
    /// # Panics
    /// Panics if `block_len == 0` or `data` is empty.
    pub fn compute(data: &[f32], block_len: usize) -> Self {
        assert!(block_len > 0, "block_len must be positive");
        assert!(!data.is_empty(), "empty data");
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let global = (hi - lo) as f64;

        let mut ranges: Vec<f64> = data
            .chunks(block_len)
            .map(|block| {
                let mut blo = f32::INFINITY;
                let mut bhi = f32::NEG_INFINITY;
                for &v in block {
                    blo = blo.min(v);
                    bhi = bhi.max(v);
                }
                if global > 0.0 {
                    ((bhi - blo) as f64 / global).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect();
        ranges.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        BlockRangeCdf {
            sorted_ranges: ranges,
            block_len,
        }
    }

    /// Fraction of blocks whose relative range is ≤ `x` (the CDF value the
    /// paper plots).
    pub fn cdf_at(&self, x: f64) -> f64 {
        let n = self.sorted_ranges.len();
        let count = self.sorted_ranges.partition_point(|&r| r <= x);
        count as f64 / n as f64
    }

    /// Evaluate the CDF at evenly spaced points in `[0, 1]` — the series a
    /// Fig 6 plot needs.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        (0..=points)
            .map(|i| {
                let x = i as f64 / points as f64;
                (x, self.cdf_at(x))
            })
            .collect()
    }

    /// Median relative block range — a scalar smoothness summary.
    pub fn median(&self) -> f64 {
        self.sorted_ranges[self.sorted_ranges.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_blocks_have_zero_range() {
        let data = vec![5.0f32; 64];
        let cdf = BlockRangeCdf::compute(&data, 8);
        assert_eq!(cdf.sorted_ranges.len(), 8);
        assert!(cdf.sorted_ranges.iter().all(|&r| r == 0.0));
        assert_eq!(cdf.cdf_at(0.0), 1.0);
    }

    #[test]
    fn one_jump_block_detected() {
        // 7 smooth blocks and one block containing the full range.
        let mut data = vec![0.0f32; 64];
        data[60] = 100.0;
        let cdf = BlockRangeCdf::compute(&data, 8);
        assert_eq!(cdf.cdf_at(0.5), 7.0 / 8.0);
        assert_eq!(cdf.cdf_at(1.0), 1.0);
    }

    #[test]
    fn smooth_ramp_has_small_block_ranges() {
        let data: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let cdf = BlockRangeCdf::compute(&data, 8);
        // Each block spans 7/1023 of the range.
        assert!(cdf.median() < 0.01);
        assert_eq!(cdf.cdf_at(0.01), 1.0);
    }

    #[test]
    fn series_is_monotonic() {
        let data: Vec<f32> = (0..512).map(|i| ((i * 7919) % 101) as f32).collect();
        let cdf = BlockRangeCdf::compute(&data, 32);
        let series = cdf.series(20);
        assert_eq!(series.len(), 21);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series[20].1, 1.0);
    }

    #[test]
    fn tail_block_counted() {
        let data = vec![1.0f32; 20];
        let cdf = BlockRangeCdf::compute(&data, 8);
        assert_eq!(cdf.sorted_ranges.len(), 3);
    }
}
