//! Per-stream and batch-level counters.
//!
//! A "stream" is one worker thread (the software analogue of a CUDA
//! stream). Counters are cheap enough to keep always-on: a few integer
//! adds per chunk plus one `Instant` pair.

use crate::CompressedField;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters for one worker/stream over the pipeline's lifetime.
#[derive(Debug, Clone, Serialize)]
pub struct StreamStats {
    /// Worker index.
    pub worker: usize,
    /// Chunks this stream compressed.
    pub chunks: u64,
    /// Original bytes consumed.
    pub bytes_in: u64,
    /// Compressed bytes produced (paper accounting: fraction ⓐ + ⓑ).
    pub bytes_out: u64,
    /// Wall-clock seconds spent compressing (excludes queue waits).
    pub busy_seconds: f64,
    /// Simulated GPU seconds from this stream's `gpu_sim` timeline
    /// (device mode only; 0 on the host path).
    pub sim_kernel_seconds: f64,
}

impl StreamStats {
    /// Fresh zeroed counters for worker `worker`.
    pub fn new(worker: usize) -> Self {
        StreamStats {
            worker,
            chunks: 0,
            bytes_in: 0,
            bytes_out: 0,
            busy_seconds: 0.0,
            sim_kernel_seconds: 0.0,
        }
    }

    /// This stream's busy-time compression throughput, GB/s.
    pub fn throughput_gbps(&self) -> f64 {
        if self.busy_seconds > 0.0 {
            self.bytes_in as f64 / self.busy_seconds / 1.0e9
        } else {
            0.0
        }
    }
}

/// Batch-level counters, assembled by [`crate::Pipeline::finish`].
#[derive(Debug, Clone, Serialize)]
pub struct BatchStats {
    /// Pipeline lifetime, seconds (creation to finish).
    pub wall_seconds: f64,
    /// Original bytes across all fields.
    pub bytes_in: u64,
    /// Compressed bytes across all fields (stream accounting).
    pub bytes_out: u64,
    /// Batch compression ratio.
    pub ratio: f64,
    /// Aggregate throughput over the wall clock, GB/s.
    pub throughput_gbps: f64,
    /// Mean submit-to-complete chunk latency, seconds.
    pub mean_chunk_latency_s: f64,
    /// Worst chunk latency, seconds.
    pub max_chunk_latency_s: f64,
    /// Per-stream counters, by worker index.
    pub streams: Vec<StreamStats>,
}

impl BatchStats {
    /// Roll field outputs + chunk latencies + worker counters into batch
    /// totals.
    pub(crate) fn collect(
        wall_seconds: f64,
        fields: &[CompressedField],
        chunk_latencies: &[f64],
        mut streams: Vec<StreamStats>,
    ) -> BatchStats {
        streams.sort_by_key(|s| s.worker);
        let bytes_in: u64 = fields.iter().map(|f| f.bytes_in).sum();
        let bytes_out: u64 = fields.iter().map(|f| f.container.stream_bytes()).sum();
        let n = chunk_latencies.len().max(1) as f64;
        BatchStats {
            wall_seconds,
            bytes_in,
            bytes_out,
            ratio: if bytes_out > 0 {
                bytes_in as f64 / bytes_out as f64
            } else {
                0.0
            },
            throughput_gbps: if wall_seconds > 0.0 {
                bytes_in as f64 / wall_seconds / 1.0e9
            } else {
                0.0
            },
            mean_chunk_latency_s: chunk_latencies.iter().sum::<f64>() / n,
            max_chunk_latency_s: chunk_latencies.iter().cloned().fold(0.0, f64::max),
            streams,
        }
    }

    /// Total chunks across all streams.
    pub fn chunks(&self) -> u64 {
        self.streams.iter().map(|s| s.chunks).sum()
    }
}

/// Number of latency buckets in a [`LatencyHistogram`]: powers of two
/// from 1 µs up to ~34 s, plus an overflow bucket.
pub const LATENCY_BUCKETS: usize = 26;

/// A fixed-bucket latency histogram with lock-free recording.
///
/// Buckets are powers of two of microseconds: bucket `i` counts samples
/// in `(2^(i-1), 2^i]` µs (bucket 0 is `≤ 1 µs`, the last bucket catches
/// everything ≥ ~34 s). Recording is one relaxed atomic add — cheap
/// enough for every request on the service hot path, and **allocation-
/// free**, which keeps the zero-heap-ops steady-state property intact.
///
/// Quantiles are read back as the **upper bound of the bucket** where the
/// cumulative count crosses the rank, so a reported p99 is an upper
/// estimate with at most 2× bucket resolution error.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a duration.
    fn index(d: Duration) -> usize {
        let micros = d.as_micros() as u64;
        if micros <= 1 {
            0
        } else {
            // ceil(log2(micros)), capped at the overflow bucket.
            ((64 - (micros - 1).leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// Upper bound of bucket `i`, in seconds.
    fn upper_seconds(i: usize) -> f64 {
        (1u64 << i) as f64 * 1e-6
    }

    /// Record one sample. Lock-free, allocation-free.
    pub fn record(&self, d: Duration) {
        self.buckets[Self::index(d)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// where the cumulative count crosses `q · count`, in seconds.
    /// `None` while the histogram is empty.
    pub fn quantile_seconds(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::upper_seconds(i));
            }
        }
        Some(Self::upper_seconds(LATENCY_BUCKETS - 1))
    }

    /// Snapshot the bucket counts (index = power-of-two microseconds).
    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Live counters for a long-running compression service.
///
/// All fields are atomics updated with relaxed ordering from connection
/// handlers and workers — no locks, no allocation — and read back by the
/// plain-text `metrics` admin query ([`ServiceMetrics::render_text`]).
/// Shared as an `Arc` between the server, its connections, and scrapers.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Completed compress requests.
    pub compress_requests: AtomicU64,
    /// Completed decompress requests.
    pub decompress_requests: AtomicU64,
    /// Requests refused with `BUSY` (admission queue full).
    pub busy_rejections: AtomicU64,
    /// Requests refused with `ERR` (malformed frame, bad stream, bound
    /// unresolvable, payload over the tenant cap).
    pub errors: AtomicU64,
    /// Uncompressed bytes crossing the service (compress input +
    /// decompress output) — the numerator of the achieved ratio.
    pub raw_bytes: AtomicU64,
    /// Compressed stream bytes crossing the service (compress output +
    /// decompress input, paper accounting: fraction ⓐ + ⓑ).
    pub stream_bytes: AtomicU64,
    /// Bytes read off sockets (request payloads).
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets (response payloads).
    pub bytes_out: AtomicU64,
    /// Connections currently open.
    pub active_connections: AtomicU64,
    /// Connections accepted over the server lifetime.
    pub total_connections: AtomicU64,
    /// Wire-to-wire service latency (request fully read → response
    /// written) across compress + decompress requests.
    pub latency: LatencyHistogram,
}

impl ServiceMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Completed requests (compress + decompress).
    pub fn requests(&self) -> u64 {
        self.compress_requests.load(Ordering::Relaxed)
            + self.decompress_requests.load(Ordering::Relaxed)
    }

    /// Achieved compression ratio across all traffic (raw / stream
    /// bytes); `0.0` before any request completes.
    pub fn ratio(&self) -> f64 {
        let stream = self.stream_bytes.load(Ordering::Relaxed);
        if stream == 0 {
            0.0
        } else {
            self.raw_bytes.load(Ordering::Relaxed) as f64 / stream as f64
        }
    }

    /// Render the Prometheus-style plain-text exposition into `out`
    /// (cleared first). Writing into a caller-owned `String` lets a
    /// connection handler reuse one buffer across scrapes.
    pub fn render_text(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "# HELP cuszp_requests_total completed requests by operation\n\
             # TYPE cuszp_requests_total counter\n\
             cuszp_requests_total{{op=\"compress\"}} {}\n\
             cuszp_requests_total{{op=\"decompress\"}} {}",
            c(&self.compress_requests),
            c(&self.decompress_requests),
        );
        let mut counter = |name: &str, help: &str, v: u64| {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}"
            );
        };
        counter(
            "cuszp_busy_rejections_total",
            "requests refused BUSY (admission queue full)",
            c(&self.busy_rejections),
        );
        counter(
            "cuszp_errors_total",
            "requests refused ERR (malformed or over-cap)",
            c(&self.errors),
        );
        counter(
            "cuszp_raw_bytes_total",
            "uncompressed bytes served",
            c(&self.raw_bytes),
        );
        counter(
            "cuszp_stream_bytes_total",
            "compressed stream bytes served",
            c(&self.stream_bytes),
        );
        counter(
            "cuszp_socket_bytes_in_total",
            "request payload bytes read",
            c(&self.bytes_in),
        );
        counter(
            "cuszp_socket_bytes_out_total",
            "response payload bytes written",
            c(&self.bytes_out),
        );
        counter(
            "cuszp_connections_total",
            "connections accepted",
            c(&self.total_connections),
        );
        let _ = writeln!(
            out,
            "# HELP cuszp_active_connections connections currently open\n\
             # TYPE cuszp_active_connections gauge\n\
             cuszp_active_connections {}",
            c(&self.active_connections)
        );
        let _ = writeln!(
            out,
            "# HELP cuszp_compression_ratio achieved raw/stream ratio\n\
             # TYPE cuszp_compression_ratio gauge\n\
             cuszp_compression_ratio {:.6}",
            self.ratio()
        );
        let _ = writeln!(
            out,
            "# HELP cuszp_request_latency_seconds service latency histogram \
             (bucket upper bounds, cumulative)\n\
             # TYPE cuszp_request_latency_seconds histogram"
        );
        let snap = self.latency.snapshot();
        let mut cum = 0u64;
        for (i, n) in snap.iter().enumerate() {
            cum += n;
            if *n > 0 || i + 1 == LATENCY_BUCKETS {
                let _ = writeln!(
                    out,
                    "cuszp_request_latency_seconds_bucket{{le=\"{:.6}\"}} {cum}",
                    LatencyHistogram::upper_seconds(i)
                );
            }
        }
        let _ = writeln!(out, "cuszp_request_latency_seconds_count {cum}");
        for (label, q) in [("p50", 0.50), ("p99", 0.99)] {
            if let Some(s) = self.latency.quantile_seconds(q) {
                let _ = writeln!(out, "cuszp_request_latency_{label}_seconds {s:.6}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_seconds(0.5), None);
        // 99 fast samples at ~100 µs, one slow at ~50 ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        // p50 lands in the 100 µs bucket (upper bound 128 µs)...
        let p50 = h.quantile_seconds(0.50).unwrap();
        assert!(p50 <= 128e-6, "p50 {p50} should be ~128 µs");
        // ...while p100 sees the slow outlier (bucket upper 65.536 ms).
        let p100 = h.quantile_seconds(1.0).unwrap();
        assert!(p100 >= 50e-3, "p100 {p100} must cover the 50 ms sample");
        // Quantile is an upper estimate: within 2x of the true value.
        assert!(p100 <= 2.0 * 65.536e-3);
    }

    #[test]
    fn histogram_extremes_hit_edge_buckets() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1)); // bucket 0
        h.record(Duration::from_secs(3600)); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap[0], 1);
        assert_eq!(snap[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn service_metrics_render_and_ratio() {
        let m = ServiceMetrics::new();
        assert_eq!(m.ratio(), 0.0);
        m.compress_requests.fetch_add(3, Ordering::Relaxed);
        m.raw_bytes.fetch_add(4000, Ordering::Relaxed);
        m.stream_bytes.fetch_add(1000, Ordering::Relaxed);
        m.latency.record(Duration::from_micros(250));
        assert_eq!(m.requests(), 3);
        assert_eq!(m.ratio(), 4.0);
        let mut text = String::new();
        m.render_text(&mut text);
        assert!(text.contains("cuszp_requests_total{op=\"compress\"} 3"));
        assert!(text.contains("cuszp_compression_ratio 4.000000"));
        assert!(text.contains("cuszp_request_latency_seconds_count 1"));
        assert!(text.contains("cuszp_request_latency_p99_seconds"));
        // Reuse: a second render replaces, not appends.
        let len = text.len();
        m.render_text(&mut text);
        assert_eq!(text.len(), len);
    }
}
