//! Error-bound modes and compressor configuration (paper §2.1, §4).

use serde::{Deserialize, Serialize};

/// Default block length `L` — the reference cuSZp processes 32 values per
//  thread, which also caps the compression ratio at `32·4 / 1 = 128`
/// (Table 3's observed ceiling of 127.99).
pub const DEFAULT_BLOCK_LEN: usize = 32;

/// User-facing error-bound mode (paper Eq 1).
///
/// # Non-finite data policy
///
/// The REL denominator ([`crate::value_range`]) **skips** NaN and ±∞, so
/// a few stray non-finite values do not poison the bound resolution; the
/// range comes from the finite values alone. The bound guarantee itself
/// only ever applies to finite elements — a NaN input quantizes to an
/// integer like any other value and reconstructs as a finite number.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ErrorBound {
    /// Absolute bound δ: `|d_i − d'_i| ≤ δ`.
    Abs(f64),
    /// Value-range-relative bound λ: `|d_i − d'_i| ≤ λ · (max − min)`.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound given the dataset's value range.
    ///
    /// # Panics
    /// Panics if the resolved bound is not finite and positive — for REL
    /// bounds that includes empty, constant, and all-non-finite data,
    /// whose value range is `0.0`.
    pub fn absolute(&self, value_range: f64) -> f64 {
        let eb = match self {
            ErrorBound::Abs(d) => *d,
            ErrorBound::Rel(l) => l * value_range,
        };
        assert!(
            eb.is_finite() && eb > 0.0,
            "error bound must be positive and finite, got {eb} from {self} \
             (value range {value_range}; REL cannot resolve on empty, \
             constant, or all-non-finite data)"
        );
        eb
    }

    /// The paper's four standard REL settings (used across Table 3 and the
    /// throughput figures).
    pub fn paper_rel_set() -> [ErrorBound; 4] {
        [
            ErrorBound::Rel(1e-1),
            ErrorBound::Rel(1e-2),
            ErrorBound::Rel(1e-3),
            ErrorBound::Rel(1e-4),
        ]
    }
}

impl std::fmt::Display for ErrorBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorBound::Abs(d) => write!(f, "ABS {d:.0e}"),
            ErrorBound::Rel(l) => write!(f, "REL {l:.0e}"),
        }
    }
}

/// Host SIMD dispatch tier for the fast codec ([`crate::fast`]).
///
/// Every tier produces **byte-identical** streams and reconstructions:
/// the tier selects *which kernels run*, never *what they compute* — the
/// differential suites (`tests/fast_vs_ref.rs`, `tests/simd_tiers.rs`)
/// pin each tier against the scalar [`crate::host_ref`] oracle. The
/// default is runtime detection of the best tier the host supports; the
/// `CUSZP_SIMD` environment variable or [`CuszpConfig::simd`] force a
/// tier. Forcing a tier the host cannot run clamps **down** to the
/// detected one, so an override can never enable unsupported
/// instructions — overrides exist to *disable* vector paths (testing the
/// portable tiers on wide hosts, or pinning a tier process-wide for
/// reproducible latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable word-parallel strip codec and scalar arithmetic. Runs on
    /// any host; the floor every other tier must match byte-for-byte.
    Scalar,
    /// 256-bit kernels (AVX2): packed byte transposes plus
    /// `vpmovmskb`-based plane extraction for the `L = 32`, `F ≤ 16`
    /// block codec, with a fused decode→dequantize path. Arithmetic
    /// outside the block codec stays scalar (AVX2 has no exact
    /// `f64`↔`i64` vector converts).
    Avx2,
    /// Full 512-bit paths (AVX-512 F/DQ/BW/VBMI): vector
    /// quantize/dequantize, `vpermb` byte transposes, delta-swap bit
    /// transposes, and fused decode→dequantize for `L = 32` at every
    /// `F ≤ 64`.
    Avx512,
}

impl SimdLevel {
    /// All tiers, weakest first — iterate this to test every tier at or
    /// below the detected one.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512];

    /// Parse a tier name as used by `CUSZP_SIMD` (case-insensitive).
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "avx2" => Some(SimdLevel::Avx2),
            "avx512" => Some(SimdLevel::Avx512),
            _ => None,
        }
    }

    /// The tier's `CUSZP_SIMD` name.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SimdLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SimdLevel::parse(s)
            .ok_or_else(|| format!("unknown SIMD tier {s:?} (expected scalar, avx2, or avx512)"))
    }
}

/// Compressor configuration. The defaults reproduce the paper; the other
/// knobs exist for the ablation experiments called out in DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CuszpConfig {
    /// Block length `L`; must be a positive multiple of 8.
    pub block_len: usize,
    /// Apply the 1-D 1-layer Lorenzo prediction inside blocks (paper §4.1).
    /// Disabling it is the Fig 4 ablation.
    pub lorenzo: bool,
    /// Force a SIMD dispatch tier for this codec instance. `None` (the
    /// default) defers to the `CUSZP_SIMD` environment variable, then to
    /// runtime detection; `Some(level)` takes precedence over both but is
    /// still clamped to what the host supports. Output bytes are
    /// identical at every tier. Not serialized — dispatch is a property
    /// of the running process, not of a stream.
    #[serde(skip)]
    pub simd: Option<SimdLevel>,
    /// Apply the lossless hybrid second stage ([`crate::hybrid`]) when
    /// serializing: the fixed-length stream is re-coded per chunk by the
    /// adaptive entropy coder and framed as `CUSZPHY1` whenever that is
    /// smaller than the plain `CUSZP1` serialization. Purely a *framing*
    /// switch — the stage is lossless, so reconstructed values and the
    /// error-bound contract are identical with it on or off. Only
    /// [`crate::Cuszp::compress_serialized`] and byte-stream consumers
    /// honor it; the in-memory [`crate::Compressed`] API is unaffected.
    pub hybrid: bool,
}

impl Default for CuszpConfig {
    fn default() -> Self {
        CuszpConfig {
            block_len: DEFAULT_BLOCK_LEN,
            lorenzo: true,
            simd: None,
            hybrid: false,
        }
    }
}

impl CuszpConfig {
    /// Validate invariants; call before compressing.
    ///
    /// # Panics
    /// Panics on an unusable configuration.
    pub fn validate(&self) {
        assert!(
            self.block_len >= 8 && self.block_len.is_multiple_of(8),
            "block_len must be a positive multiple of 8, got {}",
            self.block_len
        );
        assert!(self.block_len <= 4096, "block_len unreasonably large");
    }

    /// Maximum achievable compression ratio under this configuration
    /// (an all-zero-block stream still stores one fixed-length byte per
    /// block).
    pub fn max_ratio(&self) -> f64 {
        (self.block_len * 4) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_bound_passthrough() {
        assert_eq!(ErrorBound::Abs(0.5).absolute(100.0), 0.5);
    }

    #[test]
    fn rel_bound_scales_by_range() {
        assert!((ErrorBound::Rel(1e-2).absolute(50.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_bound_rejected() {
        ErrorBound::Abs(0.0).absolute(1.0);
    }

    #[test]
    #[should_panic]
    fn rel_on_constant_data_rejected() {
        ErrorBound::Rel(1e-3).absolute(0.0);
    }

    #[test]
    fn paper_set_has_four_rel_bounds() {
        let set = ErrorBound::paper_rel_set();
        assert_eq!(set.len(), 4);
        assert!(matches!(set[0], ErrorBound::Rel(r) if (r - 1e-1).abs() < 1e-12));
    }

    #[test]
    fn default_config_is_paper_config() {
        let cfg = CuszpConfig::default();
        cfg.validate();
        assert_eq!(cfg.block_len, 32);
        assert!(cfg.lorenzo);
        assert_eq!(cfg.max_ratio(), 128.0);
    }

    #[test]
    #[should_panic]
    fn odd_block_len_rejected() {
        CuszpConfig {
            block_len: 12,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ErrorBound::Rel(1e-3)), "REL 1e-3");
        assert_eq!(format!("{}", ErrorBound::Abs(1e-4)), "ABS 1e-4");
    }
}
