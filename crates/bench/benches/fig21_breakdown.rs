//! Fig 21 workload: the fused cuSZp kernels in isolation (compression and
//! decompression), whose per-step shares the figure decomposes.

use bench::{bench_field, eb_for};
use criterion::{criterion_group, criterion_main, Criterion};
use cuszp_core::Cuszp;
use datasets::DatasetId;
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let field = bench_field(DatasetId::Hurricane);
    let codec = Cuszp::new();
    let eb = eb_for(&field, 1e-2);
    let mut group = c.benchmark_group("fig21_fused_kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("compress_kernel", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.h2d(&field.data);
            black_box(
                codec
                    .compress_device(&mut gpu, black_box(&input), eb)
                    .payload_len,
            )
        })
    });
    group.bench_function("decompress_kernel", |b| {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&field.data);
        let dc = codec.compress_device(&mut gpu, &input, eb);
        b.iter(|| {
            let out: gpu_sim::DeviceBuffer<f32> = codec.decompress_device(&mut gpu, black_box(&dc));
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
