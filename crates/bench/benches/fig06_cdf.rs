//! Fig 6 workload: block value-range CDF computation at L = 8 and 32.

use bench::bench_field;
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetId;
use metrics::cdf::BlockRangeCdf;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let field = bench_field(DatasetId::Hurricane);
    let mut group = c.benchmark_group("fig06_block_cdf");
    for l in [8usize, 32] {
        group.bench_function(format!("L{l}"), |b| {
            b.iter(|| black_box(BlockRangeCdf::compute(black_box(&field.data), l).median()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
