//! Fig 17/18 workload: the quality metrics themselves (PSNR over a full
//! field, windowed SSIM over the field's shape).

use bench::{bench_field, eb_for};
use criterion::{criterion_group, criterion_main, Criterion};
use cuszp_core::Cuszp;
use datasets::DatasetId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let field = bench_field(DatasetId::Nyx);
    let codec = Cuszp::new();
    let eb = eb_for(&field, 1e-3);
    let stream = cuszp_core::host_ref::compress(&field.data, eb, codec.config);
    let recon: Vec<f32> = cuszp_core::host_ref::decompress(&stream);

    let mut group = c.benchmark_group("fig17_quality_metrics");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("psnr", |b| {
        b.iter(|| black_box(metrics::ErrorStats::compute(&field.data, &recon).psnr))
    });
    group.bench_function("ssim", |b| {
        b.iter(|| black_box(metrics::ssim::ssim(&field.data, &recon, &field.shape)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
