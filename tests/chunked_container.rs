//! Chunked container round trips across the stack: chunk-boundary
//! reconstruction, the empty container, single-chunk degeneration to the
//! existing format, corruption rejection, and pipeline/sequential
//! equivalence.

use cuszp_repro::cuszp_core::{
    chunked::CONTAINER_HEADER_BYTES, ChunkedCompressed, Compressed, Cuszp, ErrorBound, FormatError,
};
use cuszp_repro::cuszp_pipeline::{Pipeline, PipelineConfig};
use proptest::prelude::*;

fn wavy(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.021).sin() * 11.0 + (i as f32 * 0.0031).cos())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn reconstruction_is_seamless_across_chunk_boundaries(
        n in 1usize..3000,
        chunk_elems in prop_oneof![Just(1usize), Just(31), Just(32), Just(100), Just(1024)],
        eb in 1e-4f64..1e-1,
    ) {
        let data = wavy(n);
        let codec = Cuszp::new();
        let container = codec.compress_chunked(&data, ErrorBound::Abs(eb), chunk_elems);
        prop_assert_eq!(container.num_chunks(), n.div_ceil(chunk_elems));
        prop_assert_eq!(container.total_elements(), n as u64);

        let back: Vec<f32> = codec.decompress_chunked(&container);
        prop_assert_eq!(back.len(), n);
        // The bound must hold *everywhere*, in particular at the seams.
        for (&d, &r) in data.iter().zip(&back) {
            prop_assert!((d as f64 - r as f64).abs() <= eb * (1.0 + 1e-6));
        }
        // A boundary-blind comparison: chunked reconstruction equals
        // per-slice single-shot reconstruction.
        let mut reference = Vec::new();
        for slice in data.chunks(chunk_elems) {
            let c = codec.compress(slice, ErrorBound::Abs(eb));
            reference.extend(codec.decompress::<f32>(&c));
        }
        prop_assert_eq!(back, reference);
    }

    #[test]
    fn chunks_are_bit_identical_to_single_shot(
        n in 1usize..2000,
        chunk_elems in prop_oneof![Just(32usize), Just(64), Just(257)],
    ) {
        let data = wavy(n);
        let codec = Cuszp::new();
        let eb = codec.resolve_bound(&data, ErrorBound::Rel(1e-3));
        let container = codec.compress_chunked(&data, ErrorBound::Rel(1e-3), chunk_elems);
        for (slice, chunk) in data.chunks(chunk_elems).zip(&container.chunks) {
            let single = codec.compress(slice, ErrorBound::Abs(eb));
            prop_assert_eq!(single.to_bytes(), chunk.to_bytes());
        }
    }

    #[test]
    fn serialization_roundtrip(
        n in 0usize..2000,
        chunk_elems in prop_oneof![Just(50usize), Just(512)],
    ) {
        let data = wavy(n);
        let container = Cuszp::new().compress_chunked(&data, ErrorBound::Abs(1e-3), chunk_elems);
        let back = ChunkedCompressed::from_bytes(&container.to_bytes()).unwrap();
        prop_assert_eq!(back, container);
    }

    #[test]
    fn corrupted_container_never_panics(
        flip_at in 0usize..200,
        xor in 1u8..255,
    ) {
        let container = Cuszp::new().compress_chunked(&wavy(500), ErrorBound::Abs(1e-2), 100);
        let mut bytes = container.to_bytes();
        let at = flip_at % bytes.len();
        bytes[at] ^= xor;
        // Either the flip is caught (an error) or it landed in payload
        // bits and still parses — both fine; a panic is the only failure.
        let _ = ChunkedCompressed::from_bytes(&bytes);
    }
}

#[test]
fn empty_container_roundtrips() {
    let codec = Cuszp::new();
    let container = codec.compress_chunked::<f32>(&[], ErrorBound::Abs(1.0), 128);
    assert_eq!(container.num_chunks(), 0);
    let bytes = container.to_bytes();
    let back = ChunkedCompressed::from_bytes(&bytes).unwrap();
    assert_eq!(back.num_chunks(), 0);
    assert_eq!(codec.decompress_chunked::<f32>(&back), Vec::<f32>::new());
}

#[test]
fn single_chunk_degenerates_to_existing_format() {
    let data = wavy(777);
    let codec = Cuszp::new();
    let container = codec.compress_chunked(&data, ErrorBound::Abs(1e-3), usize::MAX >> 1);
    assert_eq!(container.num_chunks(), 1);
    // The frame tail is exactly the single-stream serialization, parseable
    // by the existing decoder.
    let bytes = container.to_bytes();
    let inner = Compressed::from_bytes(&bytes[CONTAINER_HEADER_BYTES + 8..]).unwrap();
    assert_eq!(inner, container.chunks[0]);
    let back: Vec<f32> = codec.decompress(&inner);
    assert_eq!(back.len(), 777);
}

#[test]
fn corrupted_headers_rejected_with_errors() {
    let container = Cuszp::new().compress_chunked(&wavy(300), ErrorBound::Abs(1e-2), 100);
    let good = container.to_bytes();

    let mut bad_magic = good.clone();
    bad_magic[0] = b'!';
    assert_eq!(
        ChunkedCompressed::from_bytes(&bad_magic),
        Err(FormatError::BadMagic)
    );

    let mut huge_count = good.clone();
    huge_count[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(ChunkedCompressed::from_bytes(&huge_count).is_err());

    let mut lying_length = good.clone();
    lying_length[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(ChunkedCompressed::from_bytes(&lying_length).is_err());

    for cut in [0, 5, CONTAINER_HEADER_BYTES, good.len() - 1] {
        assert!(
            ChunkedCompressed::from_bytes(&good[..cut]).is_err(),
            "cut {cut}"
        );
    }
}

#[test]
fn pipeline_output_equals_sequential_container() {
    let fields: Vec<Vec<f32>> = (0..5).map(|i| wavy(2048 + i * 311)).collect();
    let mut pipe = Pipeline::new(PipelineConfig {
        chunk_elems: 512,
        ..PipelineConfig::with_workers(3)
    });
    for (i, f) in fields.iter().enumerate() {
        pipe.submit(&format!("f{i}"), f.clone(), ErrorBound::Rel(1e-3));
    }
    let batch = pipe.finish();
    let codec = Cuszp::new();
    for (f, out) in fields.iter().zip(&batch.fields) {
        let reference = codec.compress_chunked(f, ErrorBound::Rel(1e-3), 512);
        assert_eq!(out.container.to_bytes(), reference.to_bytes());
    }
}
