//! Fig 21 — per-step breakdown of the cuSZp kernels at REL 1e-2 over the
//! six datasets.
//!
//! Paper (compression): Block Bit-shuffle 21.67%, Global Synchronization
//! 37.50%, Fixed-length Encoding 30.00%, Quantization+Prediction the rest —
//! the three global-memory-touching steps dominate. In decompression the
//! weight shifts to BB, GS and QP (reads become writes; FE's fixed-length
//! byte is already amortized into GS's read).

use super::Ctx;
use crate::report::{pct, Report};
use baselines::common::CuszpAdapter;
use baselines::Compressor;
use cuszp_core::{ErrorBound, STEP_BB, STEP_FE, STEP_GS, STEP_QP};
use datasets::{generate_subset, DatasetId};
use gpu_sim::{DeviceSpec, Gpu};
use serde::Serialize;

/// One dataset's step shares for one direction.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Direction.
    pub direction: String,
    /// Share per step, ordered QP, FE, GS, BB.
    pub shares: [f64; 4],
}

/// Run the Fig 21 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig21",
        "cuSZp kernel-time breakdown (QP/FE/GS/BB), REL 1e-2",
        &ctx.out_dir,
    );
    let spec = DeviceSpec::a100();
    let comp = CuszpAdapter::new();
    let mut out = Vec::new();

    for direction in ["compression", "decompression"] {
        report.line(&format!("\n{direction}"));
        let mut rows = Vec::new();
        let mut avg = [0.0f64; 4];
        for id in DatasetId::all() {
            let field = generate_subset(id, ctx.scale, 1).remove(0);
            let eb = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);
            let mut gpu = Gpu::new(spec.clone());
            let input = gpu.h2d(&field.data);
            gpu.reset_timeline();
            let stream = comp.compress(&mut gpu, &input, &field.shape, eb);
            if direction == "decompression" {
                gpu.reset_timeline();
                let _ = comp.decompress(&mut gpu, stream.as_ref());
            }
            let b = gpu.breakdown();
            let share = |step: &str| -> f64 {
                b.steps
                    .iter()
                    .find(|s| s.step == step)
                    .map(|s| s.fraction)
                    .unwrap_or(0.0)
            };
            let shares = [
                share(STEP_QP),
                share(STEP_FE),
                share(STEP_GS),
                share(STEP_BB),
            ];
            for (a, s) in avg.iter_mut().zip(shares) {
                *a += s / 6.0;
            }
            rows.push(vec![
                id.name().to_string(),
                pct(shares[0]),
                pct(shares[1]),
                pct(shares[2]),
                pct(shares[3]),
            ]);
            out.push(Row {
                dataset: id.name().to_string(),
                direction: direction.to_string(),
                shares,
            });
        }
        rows.push(vec![
            "AVERAGE".into(),
            pct(avg[0]),
            pct(avg[1]),
            pct(avg[2]),
            pct(avg[3]),
        ]);
        report.table(&["dataset", "QP", "FE", "GS", "BB"], &rows);
    }
    report.line(
        "\npaper (compression averages): QP ~10.8%, FE 30.00%, GS 37.50%, BB 21.67%; \
decompression shifts weight to BB/GS/QP",
    );
    report.save_json(&out);
    report.save_text();
}
