//! Offline shim for `criterion` — wall-clock mean/min/max timing with the
//! same authoring API (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`). No statistics engine,
//! no plots: each benchmark warms up, runs timed samples, and prints one
//! line per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.into(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Set the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean seconds per iteration, filled by `iter`.
    result: Option<Stats>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    mean: f64,
    min: f64,
    max: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, called in timed batches until the measurement budget
    /// is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and a first estimate of the per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Choose a batch size so one sample is neither trivially short nor
        // longer than the whole budget.
        let budget = self.measurement_time.as_secs_f64();
        let per_sample = budget / self.sample_size as f64;
        let batch = ((per_sample / est.max(1e-9)).round() as u64).max(1);

        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut total = 0.0f64;
        let mut total_iters: u64 = 0;
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / batch as f64;
            min = min.min(dt);
            max = max.max(dt);
            total += dt * batch as f64;
            total_iters += batch;
            if started.elapsed().as_secs_f64() > budget * 2.0 {
                break; // long benches: don't exceed twice the budget
            }
        }
        self.result = Some(Stats {
            mean: total / total_iters as f64,
            min,
            max,
            iters: total_iters,
        });
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn run_one<F>(
    id: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        warm_up_time,
        measurement_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => println!(
            "{id:<60} time: [{} {} {}]  ({} iters)",
            fmt_time(s.min),
            fmt_time(s.mean),
            fmt_time(s.max),
            s.iters
        ),
        None => println!("{id:<60} (no measurement — closure never called iter)"),
    }
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.warm_up_time(Duration::from_millis(5));
        g.measurement_time(Duration::from_millis(20));
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
    }
}
