//! A blocking client for the `CUSZPSV1` protocol with reusable wire
//! buffers: after the first request of each kind, a client performs no
//! heap allocations on the success path — matching the server's
//! zero-allocation steady state, which keeps load-generator
//! measurements honest.

use crate::protocol::*;
use crate::WireFloat;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a request did not produce a result.
#[derive(Debug)]
pub enum ServiceError {
    /// The server's admission queue was full; the request was **not**
    /// processed. Safe to retry.
    Busy,
    /// The server rejected the request; the message is available from
    /// [`Client::last_error`] until the next request.
    Remote,
    /// The connection failed.
    Io(std::io::Error),
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Busy => write!(f, "server busy (admission queue full)"),
            ServiceError::Remote => write!(f, "server rejected the request"),
            ServiceError::Io(e) => write!(f, "connection error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A connected tenant session.
pub struct Client {
    stream: TcpStream,
    tenant: Tenant,
    /// Request payload staging (little-endian element bytes).
    wire: Vec<u8>,
    /// Response payload buffer; compressed containers are borrowed from
    /// it by [`Client::compress_f32`] / [`Client::compress_f64`].
    resp: Vec<u8>,
    /// Last `ERR` message from the server (reused).
    errmsg: String,
}

impl Client {
    /// Connect and perform the `CUSZPSV1` handshake. On success the
    /// client's buffers are pre-sized for the **effective** payload cap
    /// (the tenant's ask clamped by the server — see
    /// [`Client::effective_max_payload`]), so steady-state requests
    /// allocate nothing.
    pub fn connect(addr: impl ToSocketAddrs, tenant: Tenant) -> std::io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&tenant.encode_hello())?;
        let mut reply = [0u8; HANDSHAKE_REPLY_BYTES];
        stream.read_exact(&mut reply)?;
        if reply[0] != STATUS_OK {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("handshake rejected (code {})", reply[1]),
            ));
        }
        let effective = u32::from_le_bytes(reply[4..8].try_into().unwrap());
        let tenant = Tenant {
            max_payload: effective,
            ..tenant
        };
        let cap = effective as usize;
        let elems = cap / tenant.dtype.size();
        let cfg = cuszp_core::CuszpConfig::default();
        let chunk = cuszp_core::hybrid::DEFAULT_CHUNK_BLOCKS;
        // Hybrid tenants may receive raw CUSZPHY1 frames, whose
        // worst-case (chunk-table overhead) can exceed the container's.
        let (stream_cap, frame_cap) = match tenant.dtype {
            cuszp_core::DType::F32 => (
                cuszp_core::fast::max_stream_bytes::<f32>(elems, cfg),
                cuszp_core::hybrid::max_frame_bytes::<f32>(elems, cfg, chunk),
            ),
            cuszp_core::DType::F64 => (
                cuszp_core::fast::max_stream_bytes::<f64>(elems, cfg),
                cuszp_core::hybrid::max_frame_bytes::<f64>(elems, cfg, chunk),
            ),
        };
        let mut resp_cap = single_chunk_container_len(stream_cap).max(cap);
        if tenant.hybrid {
            resp_cap = resp_cap.max(frame_cap);
        }
        let wire = Vec::with_capacity(cap);
        let resp = Vec::with_capacity(resp_cap);
        Ok(Client {
            stream,
            tenant,
            wire,
            resp,
            errmsg: String::with_capacity(128),
        })
    }

    /// The payload cap actually in force on this connection (the
    /// handshake's clamped echo).
    pub fn effective_max_payload(&self) -> u32 {
        self.tenant.max_payload
    }

    /// The tenant configuration in force (with the effective cap).
    pub fn tenant(&self) -> Tenant {
        self.tenant
    }

    /// The server's message from the most recent `ERR` reply.
    pub fn last_error(&self) -> &str {
        &self.errmsg
    }

    /// Read one response frame into `self.resp`; maps BUSY/ERR to the
    /// error enum.
    fn read_response(&mut self) -> Result<(), ServiceError> {
        let mut hdr = [0u8; RESPONSE_HEADER_BYTES];
        self.stream.read_exact(&mut hdr)?;
        let len = u32::from_le_bytes(hdr[1..5].try_into().unwrap()) as usize;
        self.resp.clear();
        self.resp.resize(len, 0);
        self.stream.read_exact(&mut self.resp)?;
        match hdr[0] {
            STATUS_OK => Ok(()),
            STATUS_BUSY => Err(ServiceError::Busy),
            _ => {
                self.errmsg.clear();
                self.errmsg
                    .push_str(std::str::from_utf8(&self.resp).unwrap_or("<non-utf8 error>"));
                Err(ServiceError::Remote)
            }
        }
    }

    fn compress_impl<T: WireFloat>(&mut self, data: &[T]) -> Result<&[u8], ServiceError> {
        self.wire.clear();
        for &v in data {
            v.write_le(&mut self.wire);
        }
        self.stream
            .write_all(&encode_request_header(OP_COMPRESS, self.wire.len() as u32))?;
        self.stream.write_all(&self.wire)?;
        self.read_response()?;
        Ok(&self.resp)
    }

    fn decompress_impl<T: WireFloat>(
        &mut self,
        container: &[u8],
        out: &mut Vec<T>,
    ) -> Result<(), ServiceError> {
        self.stream.write_all(&encode_request_header(
            OP_DECOMPRESS,
            container.len() as u32,
        ))?;
        self.stream.write_all(container)?;
        self.read_response()?;
        out.clear();
        for chunk in self.resp.chunks_exact(T::WIRE_SIZE) {
            out.push(T::read_le(chunk));
        }
        Ok(())
    }

    /// Compress `data` under the tenant's bound; returns the single-chunk
    /// `CUSZPCH1` container — or, for hybrid tenants whose entropy stage
    /// won, a raw `CUSZPHY1` frame — borrowed from the client's reused
    /// response buffer (copy it out to keep it past the next request).
    /// Either payload is accepted back by [`Client::decompress_f32`].
    pub fn compress_f32(&mut self, data: &[f32]) -> Result<&[u8], ServiceError> {
        self.compress_impl(data)
    }

    /// [`Client::compress_f32`] for `f64` tenants.
    pub fn compress_f64(&mut self, data: &[f64]) -> Result<&[u8], ServiceError> {
        self.compress_impl(data)
    }

    /// Decompress a `CUSZPCH1` container (or, on hybrid connections, a
    /// `CUSZPHY1` frame) into `out` (cleared first).
    pub fn decompress_f32(
        &mut self,
        container: &[u8],
        out: &mut Vec<f32>,
    ) -> Result<(), ServiceError> {
        self.decompress_impl(container, out)
    }

    /// [`Client::decompress_f32`] for `f64` tenants.
    pub fn decompress_f64(
        &mut self,
        container: &[u8],
        out: &mut Vec<f64>,
    ) -> Result<(), ServiceError> {
        self.decompress_impl(container, out)
    }

    /// Fetch the server's plain-text metrics snapshot into `out`
    /// (cleared first).
    pub fn metrics_into(&mut self, out: &mut String) -> Result<(), ServiceError> {
        self.stream
            .write_all(&encode_request_header(OP_METRICS, 0))?;
        self.read_response()?;
        out.clear();
        out.push_str(std::str::from_utf8(&self.resp).unwrap_or(""));
        Ok(())
    }
}
