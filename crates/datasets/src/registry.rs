//! The dataset catalog: Table 2 of the paper, mapped to generator calls at
//! configurable scales.

use crate::field::Field;
use crate::{cesm, hacc, hurricane, nyx, qmcpack, rtm};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The six evaluation datasets (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// Hurricane ISABEL — weather simulation, 3-D, 13 fields.
    Hurricane,
    /// NYX — cosmology simulation, 3-D, 6 fields.
    Nyx,
    /// QMCPack — quantum Monte Carlo, 4-D, 2 fields.
    QmcPack,
    /// RTM — seismic imaging snapshots, 3-D, 36 fields.
    Rtm,
    /// HACC — cosmology particles, 1-D, 6 fields.
    Hacc,
    /// CESM-ATM — climate model atmosphere, 2-D, 79 fields (10 generated).
    CesmAtm,
}

impl DatasetId {
    /// All six datasets, in the paper's Table 2 order.
    pub fn all() -> [DatasetId; 6] {
        [
            DatasetId::Hurricane,
            DatasetId::Nyx,
            DatasetId::QmcPack,
            DatasetId::Rtm,
            DatasetId::Hacc,
            DatasetId::CesmAtm,
        ]
    }

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Hurricane => "Hurricane",
            DatasetId::Nyx => "NYX",
            DatasetId::QmcPack => "QMCPack",
            DatasetId::Rtm => "RTM",
            DatasetId::Hacc => "HACC",
            DatasetId::CesmAtm => "CESM-ATM",
        }
    }

    /// The real archive's per-field dimensions (paper Table 2), for
    /// documentation and scale derivation.
    pub fn paper_dims(&self) -> &'static [usize] {
        match self {
            DatasetId::Hurricane => &[100, 500, 500],
            DatasetId::Nyx => &[512, 512, 512],
            DatasetId::QmcPack => &[288, 115, 69, 69],
            DatasetId::Rtm => &[235, 449, 449],
            DatasetId::Hacc => &[280_953_867],
            DatasetId::CesmAtm => &[1800, 3600],
        }
    }

    /// Number of fields in the real archive (paper Table 2).
    pub fn paper_field_count(&self) -> usize {
        match self {
            DatasetId::Hurricane => 13,
            DatasetId::Nyx => 6,
            DatasetId::QmcPack => 2,
            DatasetId::Rtm => 36,
            DatasetId::Hacc => 6,
            DatasetId::CesmAtm => 79,
        }
    }

    /// Parse a (case-insensitive) dataset name.
    pub fn parse(s: &str) -> Option<DatasetId> {
        match s.to_ascii_lowercase().as_str() {
            "hurricane" => Some(DatasetId::Hurricane),
            "nyx" => Some(DatasetId::Nyx),
            "qmcpack" => Some(DatasetId::QmcPack),
            "rtm" => Some(DatasetId::Rtm),
            "hacc" => Some(DatasetId::Hacc),
            "cesm" | "cesm-atm" | "cesmatm" => Some(DatasetId::CesmAtm),
            _ => None,
        }
    }
}

/// Generation scale. The statistical character is scale-invariant; scale
/// only sets how many elements each field has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~10⁴ elements/field — unit tests.
    Tiny,
    /// ~3·10⁵ elements/field — default for experiments (seconds per run).
    Small,
    /// ~2·10⁶ elements/field — higher-fidelity runs.
    Medium,
}

impl Scale {
    /// Grid shape for `id` at this scale.
    pub fn shape(&self, id: DatasetId) -> Vec<usize> {
        match (id, self) {
            (DatasetId::Hurricane, Scale::Tiny) => vec![8, 24, 24],
            (DatasetId::Hurricane, Scale::Small) => vec![20, 100, 100],
            (DatasetId::Hurricane, Scale::Medium) => vec![40, 224, 224],
            (DatasetId::Nyx, Scale::Tiny) => vec![18, 18, 18],
            (DatasetId::Nyx, Scale::Small) => vec![64, 64, 64],
            (DatasetId::Nyx, Scale::Medium) => vec![128, 128, 128],
            (DatasetId::QmcPack, Scale::Tiny) => vec![4, 10, 14, 14],
            (DatasetId::QmcPack, Scale::Small) => vec![18, 29, 24, 24],
            (DatasetId::QmcPack, Scale::Medium) => vec![72, 29, 32, 32],
            (DatasetId::Rtm, Scale::Tiny) => vec![12, 22, 22],
            (DatasetId::Rtm, Scale::Small) => vec![47, 90, 90],
            (DatasetId::Rtm, Scale::Medium) => vec![94, 160, 160],
            (DatasetId::Hacc, Scale::Tiny) => vec![10_000],
            (DatasetId::Hacc, Scale::Small) => vec![380_000],
            (DatasetId::Hacc, Scale::Medium) => vec![2_000_000],
            (DatasetId::CesmAtm, Scale::Tiny) => vec![30, 60],
            (DatasetId::CesmAtm, Scale::Small) => vec![180, 360],
            (DatasetId::CesmAtm, Scale::Medium) => vec![450, 900],
        }
    }

    /// Parse a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            _ => None,
        }
    }
}

/// Generate all fields of `id` at `scale`, fields in parallel (each field
/// is seeded independently, so the result is identical to the sequential
/// order regardless of thread count).
pub fn generate(id: DatasetId, scale: Scale) -> Vec<Field> {
    let shape = scale.shape(id);
    match id {
        DatasetId::Hurricane => hurricane::FIELDS
            .par_iter()
            .map(|n| hurricane::field(n, &shape))
            .collect(),
        DatasetId::Nyx => nyx::FIELDS
            .par_iter()
            .map(|n| nyx::field(n, &shape))
            .collect(),
        DatasetId::QmcPack => qmcpack::FIELDS
            .par_iter()
            .map(|n| qmcpack::field(n, &shape))
            .collect(),
        DatasetId::Rtm => (1..=36usize)
            .into_par_iter()
            .map(|i| rtm::snapshot(i * 100, &shape))
            .collect(),
        DatasetId::Hacc => hacc::FIELDS
            .par_iter()
            .map(|n| hacc::field(n, shape[0]))
            .collect(),
        DatasetId::CesmAtm => cesm::FIELDS
            .par_iter()
            .map(|n| cesm::field(n, &shape))
            .collect(),
    }
}

/// Generate a small representative subset (first `max_fields` fields) —
/// what the throughput experiments iterate to keep runtimes tractable.
pub fn generate_subset(id: DatasetId, scale: Scale, max_fields: usize) -> Vec<Field> {
    let shape = scale.shape(id);
    match id {
        DatasetId::Hurricane => hurricane::FIELDS
            .iter()
            .take(max_fields)
            .map(|n| hurricane::field(n, &shape))
            .collect(),
        DatasetId::Nyx => nyx::FIELDS
            .iter()
            .take(max_fields)
            .map(|n| nyx::field(n, &shape))
            .collect(),
        DatasetId::QmcPack => qmcpack::FIELDS
            .iter()
            .take(max_fields)
            .map(|n| qmcpack::field(n, &shape))
            .collect(),
        DatasetId::Rtm => (1..=max_fields.min(36))
            .map(|i| rtm::snapshot(i * 100, &shape))
            .collect(),
        DatasetId::Hacc => hacc::FIELDS
            .iter()
            .take(max_fields)
            .map(|n| hacc::field(n, shape[0]))
            .collect(),
        DatasetId::CesmAtm => cesm::FIELDS
            .iter()
            .take(max_fields)
            .map(|n| cesm::field(n, &shape))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_at_tiny() {
        for id in DatasetId::all() {
            let fields = generate_subset(id, Scale::Tiny, 2);
            assert!(!fields.is_empty(), "{}", id.name());
            for f in &fields {
                assert!(f.len() > 1000, "{} field too small", id.name());
                assert!(f.value_range() > 0.0);
                assert!(f.data.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(DatasetId::parse("NYX"), Some(DatasetId::Nyx));
        assert_eq!(DatasetId::parse("cesm-atm"), Some(DatasetId::CesmAtm));
        assert_eq!(DatasetId::parse("bogus"), None);
        assert_eq!(Scale::parse("Small"), Some(Scale::Small));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_metadata_is_table2() {
        assert_eq!(DatasetId::Hurricane.paper_field_count(), 13);
        assert_eq!(DatasetId::Rtm.paper_field_count(), 36);
        assert_eq!(DatasetId::QmcPack.paper_dims().len(), 4);
        assert_eq!(DatasetId::Hacc.paper_dims(), &[280_953_867]);
    }

    #[test]
    fn scales_are_ordered() {
        for id in DatasetId::all() {
            let t: usize = Scale::Tiny.shape(id).iter().product();
            let s: usize = Scale::Small.shape(id).iter().product();
            let m: usize = Scale::Medium.shape(id).iter().product();
            assert!(t < s && s < m, "{}", id.name());
        }
    }

    #[test]
    fn subset_respects_max() {
        let fields = generate_subset(DatasetId::Hurricane, Scale::Tiny, 3);
        assert_eq!(fields.len(), 3);
    }

    #[test]
    fn parallel_generate_matches_subset_order() {
        let all = generate(DatasetId::Nyx, Scale::Tiny);
        let sub = generate_subset(DatasetId::Nyx, Scale::Tiny, all.len());
        assert_eq!(all, sub, "parallel generation must be order-stable");
    }
}
