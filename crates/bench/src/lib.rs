//! Shared workload builders for the Criterion benchmarks.
//!
//! Each bench target regenerates one paper table/figure's workload and
//! measures the wall-clock cost of this repository's implementations on
//! it. (The *simulated* GB/s numbers the paper reports come from the
//! `repro` binary; Criterion tracks the real execution cost so regressions
//! in the Rust code itself are caught.)

use baselines::common::CuszpAdapter;
use baselines::{Compressor, CuszLike, CuszxLike, CuzfpLike};
use cuszp_core::ErrorBound;
use datasets::{generate_subset, DatasetId, Field, Scale};
use gpu_sim::{DeviceSpec, Gpu};

/// Benchmark scale: Tiny keeps `cargo bench --workspace` in minutes.
pub const BENCH_SCALE: Scale = Scale::Tiny;

/// First field of a dataset at bench scale.
pub fn bench_field(id: DatasetId) -> Field {
    generate_subset(id, BENCH_SCALE, 1).remove(0)
}

/// All six bench fields.
pub fn all_bench_fields() -> Vec<(DatasetId, Field)> {
    DatasetId::all()
        .into_iter()
        .map(|id| (id, bench_field(id)))
        .collect()
}

/// Resolve a REL bound for a field.
pub fn eb_for(field: &Field, rel: f64) -> f64 {
    ErrorBound::Rel(rel).absolute(field.value_range() as f64)
}

/// Run one full compression pipeline; returns compressed bytes (to keep
/// the optimizer honest).
pub fn compress_once(comp: &dyn Compressor, field: &Field, eb: f64) -> u64 {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.h2d(&field.data);
    comp.compress(&mut gpu, &input, &field.shape, eb)
        .stream_bytes()
}

/// Run compression + decompression; returns a reconstruction checksum.
pub fn roundtrip_once(comp: &dyn Compressor, field: &Field, eb: f64) -> f64 {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.h2d(&field.data);
    let stream = comp.compress(&mut gpu, &input, &field.shape, eb);
    let out = comp.decompress(&mut gpu, stream.as_ref());
    let recon = gpu.d2h(&out);
    recon.iter().map(|&v| v as f64).sum()
}

/// The four compressors (cuZFP at the given rate).
pub fn compressors(rate: u32) -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        ("cuSZp", Box::new(CuszpAdapter::new())),
        ("cuSZ", Box::new(CuszLike::new())),
        ("cuSZx", Box::new(CuszxLike::new())),
        ("cuZFP", Box::new(CuzfpLike::new(rate))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let f = bench_field(DatasetId::Nyx);
        let eb = eb_for(&f, 1e-2);
        assert!(eb > 0.0);
        for (name, comp) in compressors(8) {
            let bytes = compress_once(comp.as_ref(), &f, eb);
            assert!(bytes > 0, "{name}");
        }
    }
}
