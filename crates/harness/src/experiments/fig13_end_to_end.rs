//! Fig 13 — end-to-end compression/decompression throughput for all four
//! compressors over the six datasets.
//!
//! Error-bounded compressors average over REL {1e-1, 1e-2, 1e-3, 1e-4};
//! cuZFP averages over rates {4, 8, 16, 24} (paper §5.2). The paper's
//! headline: cuSZp and cuZFP reach tens-to-hundreds of GB/s thanks to the
//! single-kernel design, while cuSZ and cuSZx sit at 1.04–2.22 GB/s
//! (95.53× / 55.18× end-to-end speedup for cuSZp).

use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use crate::{all_compressors, CUZFP_RATES};
use baselines::CuzfpLike;
use cuszp_core::ErrorBound;
use datasets::{generate_subset, DatasetId};
use gpu_sim::DeviceSpec;
use serde::Serialize;

/// Paper-reported end-to-end numbers quoted in the text (GB/s).
const PAPER_NOTES: &str = "paper: cuSZp avg 93.63 (comp) / 120.04 (decomp); \
cuSZp comp range 41.77 (CESM-ATM) .. 140.44 (QMCPack); decomp range 49.91 \
(CESM-ATM) .. 190.11 (NYX); cuSZ+cuSZx 1.04..2.22; speedups 95.53x / 55.18x";

/// One dataset × compressor cell.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Dataset name.
    pub dataset: String,
    /// Compressor name.
    pub compressor: String,
    /// Mean end-to-end compression throughput, GB/s.
    pub comp_gbps: f64,
    /// Mean end-to-end decompression throughput, GB/s.
    pub decomp_gbps: f64,
}

/// Measure the Fig 13 grid. Returns all cells (used by fig15 too, via the
/// kernel-throughput variant).
pub fn measure(ctx: &Ctx, kernel_only: bool) -> Vec<Cell> {
    let spec = DeviceSpec::a100();
    let mut cells = Vec::new();
    for id in DatasetId::all() {
        let fields = generate_subset(id, ctx.scale, ctx.max_fields);
        for comp in all_compressors(8) {
            let mut comp_sum = 0.0;
            let mut decomp_sum = 0.0;
            let mut count = 0usize;
            if comp.is_error_bounded() {
                for bound in ErrorBound::paper_rel_set() {
                    for field in &fields {
                        let eb = bound.absolute(field.value_range() as f64);
                        let m = measure_pipeline(&spec, comp.as_ref(), field, eb);
                        comp_sum += if kernel_only {
                            m.comp_kernel_gbps
                        } else {
                            m.comp_e2e_gbps
                        };
                        decomp_sum += if kernel_only {
                            m.decomp_kernel_gbps
                        } else {
                            m.decomp_e2e_gbps
                        };
                        count += 1;
                    }
                }
            } else {
                for rate in CUZFP_RATES {
                    let comp_r = CuzfpLike::new(rate);
                    for field in &fields {
                        let m = measure_pipeline(&spec, &comp_r, field, 0.0);
                        comp_sum += if kernel_only {
                            m.comp_kernel_gbps
                        } else {
                            m.comp_e2e_gbps
                        };
                        decomp_sum += if kernel_only {
                            m.decomp_kernel_gbps
                        } else {
                            m.decomp_e2e_gbps
                        };
                        count += 1;
                    }
                }
            }
            cells.push(Cell {
                dataset: id.name().to_string(),
                compressor: comp.kind().name().to_string(),
                comp_gbps: comp_sum / count as f64,
                decomp_gbps: decomp_sum / count as f64,
            });
        }
    }
    cells
}

/// Render the Fig 13 tables and speedup summary.
pub fn render(report: &mut Report, cells: &[Cell], label: &str) {
    for (title, pick) in [
        (format!("{label} compression throughput (GB/s)"), 0usize),
        (format!("{label} decompression throughput (GB/s)"), 1usize),
    ] {
        report.line(&format!("\n{title}"));
        let compressors = ["cuSZp", "cuSZ", "cuSZx", "cuZFP"];
        let mut rows = Vec::new();
        for id in DatasetId::all() {
            let mut row = vec![id.name().to_string()];
            for c in compressors {
                let cell = cells
                    .iter()
                    .find(|x| x.dataset == id.name() && x.compressor == c)
                    .expect("cell measured");
                row.push(f2(if pick == 0 {
                    cell.comp_gbps
                } else {
                    cell.decomp_gbps
                }));
            }
            rows.push(row);
        }
        report.table(&["dataset", "cuSZp", "cuSZ", "cuSZx", "cuZFP"], &rows);
    }

    // Aggregate speedups (the paper's headline claim).
    let avg = |c: &str, f: &dyn Fn(&Cell) -> f64| -> f64 {
        let v: Vec<f64> = cells.iter().filter(|x| x.compressor == c).map(f).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let cuszp_c = avg("cuSZp", &|x| x.comp_gbps);
    let cuszp_d = avg("cuSZp", &|x| x.decomp_gbps);
    let cusz_c = avg("cuSZ", &|x| x.comp_gbps);
    let cusz_d = avg("cuSZ", &|x| x.decomp_gbps);
    let cuszx_c = avg("cuSZx", &|x| x.comp_gbps);
    let cuszx_d = avg("cuSZx", &|x| x.decomp_gbps);
    report.line(&format!(
        "\ncuSZp average: {:.2} GB/s comp, {:.2} GB/s decomp",
        cuszp_c, cuszp_d
    ));
    if label == "End-to-end" {
        report.line(&format!(
            "speedup vs cuSZ: {:.1}x comp / {:.1}x decomp   (paper: 95.53x end-to-end)",
            cuszp_c / cusz_c,
            cuszp_d / cusz_d
        ));
        report.line(&format!(
            "speedup vs cuSZx: {:.1}x comp / {:.1}x decomp  (paper: 55.18x end-to-end)",
            cuszp_c / cuszx_c,
            cuszp_d / cuszx_d
        ));
    } else {
        report.line(&format!(
            "kernel ratio vs cuSZ: {:.1}x comp / {:.1}x decomp   (paper: ~2x)",
            cuszp_c / cusz_c,
            cuszp_d / cusz_d
        ));
        report.line(&format!(
            "kernel ratio vs cuSZx: {:.2}x comp / {:.2}x decomp  (paper: ~0.6x — \
cuSZx kernels are FASTER; its end-to-end collapse is host work, Fig 14)",
            cuszp_c / cuszx_c,
            cuszp_d / cuszx_d
        ));
    }
}

/// Run the Fig 13 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig13",
        "End-to-end throughput, 4 compressors x 6 datasets",
        &ctx.out_dir,
    );
    let cells = measure(ctx, false);
    render(&mut report, &cells, "End-to-end");
    report.line(&format!("\n{PAPER_NOTES}"));
    report.save_json(&cells);
    report.save_text();
}
