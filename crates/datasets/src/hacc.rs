//! HACC stand-in (N-body cosmology particles, 1-D arrays of ~281 M
//! particles, 6 fields).
//!
//! HACC snapshots store per-particle positions (`xx`,`yy`,`zz`) and
//! velocities (`vx`,`vy`,`vz`) with **no spatial ordering** — adjacent
//! array entries belong to unrelated particles, so 1-D Lorenzo prediction
//! buys little on positions and CRs stay low at tight bounds (Table 3: avg
//! 2.96 at REL 1e-4). Velocities have a large value range (the paper
//! quotes 7614.87 for `vx`) with the bulk of particles far slower — under
//! coarse REL bounds most velocity blocks quantize to zero (cuSZp) or fit
//! a constant block (cuSZx, which therefore wins Table 3's HACC 1e-1/1e-2
//! cells). Fast halo particles arrive in contiguous bursts (halo-ordered
//! output), so they contaminate few blocks.
//!
//! `FIELDS` interleaves positions and velocities so prefix subsets keep
//! the mix.

use crate::field::Field;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spectral::seed_from;

/// Field names, matching SDRBench's HACC archive (interleaved).
pub const FIELDS: [&str; 6] = ["xx", "vx", "yy", "vy", "zz", "vz"];

/// Simulation box size in Mpc/h (matches the real archive's 256³ box).
pub const BOX_SIZE: f32 = 256.0;

/// Generate one HACC particle field of `n` particles.
pub fn field(name: &str, n: usize) -> Field {
    let seed = seed_from(&["hacc", name]);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n);

    match name {
        // Positions: uniform in the box; consecutive particles are spatially
        // unrelated except for short same-halo runs.
        "xx" | "yy" | "zz" => {
            let mut remaining_in_halo = 0usize;
            let mut halo_center = 0.0f32;
            let mut halo_radius = 0.0f32;
            for _ in 0..n {
                if remaining_in_halo == 0 {
                    // ~70% of particles stream in uniformly; ~30% arrive in
                    // halo bursts of 4-32 particles (burst probability 0.02
                    // per decision × ~18 particles per burst ≈ 0.27 of all
                    // particles).
                    if rng.gen_bool(0.02) {
                        remaining_in_halo = rng.gen_range(4..32);
                        halo_center = rng.gen_range(0.0..BOX_SIZE);
                        halo_radius = rng.gen_range(0.1..2.0);
                    } else {
                        data.push(rng.gen_range(0.0..BOX_SIZE));
                        continue;
                    }
                }
                remaining_in_halo -= 1;
                let offset: f32 = rng.gen_range(-1.0..1.0f32) * halo_radius;
                data.push((halo_center + offset).clamp(0.0, BOX_SIZE));
            }
        }
        // Velocities: particles stream out halo-by-halo, so consecutive
        // entries share a slowly drifting *bulk flow* (hundreds of km/s)
        // with a small thermal jitter on top; rare fast-halo bursts carry
        // the tails that set the value range (paper: 7614.87 for vx).
        //
        // This composition is what makes Table 3's HACC orderings: at
        // REL 1e-1 the flow exceeds the bound (cuSZp blocks are non-zero)
        // while the within-block spread stays inside it (cuSZx flushes
        // whole blocks to a constant) — cuSZx wins. At tight bounds the
        // jitter dominates both and cuSZp's predictor pulls ahead.
        _ => {
            let mut flow = 0.0f32;
            let mut remaining_in_burst = 0usize;
            let mut burst_boost = 1.0f32;
            for _ in 0..n {
                // Bulk flow: mean-reverting (OU-like) walk, stationary
                // sigma ~230 km/s, correlation ~500 particles — independent
                // of the array length.
                let step: f32 = rng.gen_range(-25.0..25.0f32);
                flow = flow * 0.998 + step;
                // Thermal jitter, sigma ~57.
                let jitter: f32 = (0..6).map(|_| rng.gen_range(-0.5..0.5f32)).sum::<f32>() * 80.0;
                if remaining_in_burst == 0 && rng.gen_bool(0.0005) {
                    remaining_in_burst = rng.gen_range(24..80);
                    burst_boost = rng.gen_range(2.6..3.2);
                }
                let v = if remaining_in_burst > 0 {
                    remaining_in_burst -= 1;
                    flow * burst_boost + jitter * burst_boost
                } else {
                    flow + jitter
                };
                data.push(v);
            }
        }
    }
    Field::new(name, vec![n], data)
}

/// Generate all six fields with `n` particles each.
pub fn generate(n: usize) -> Vec<Field> {
    FIELDS.iter().map(|name| field(name, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_1d_fields() {
        let fields = generate(1000);
        assert_eq!(fields.len(), 6);
        assert!(fields.iter().all(|f| f.ndim() == 1 && f.len() == 1000));
    }

    #[test]
    fn prefix_mixes_positions_and_velocities() {
        assert_eq!(&FIELDS[..2], &["xx", "vx"]);
    }

    #[test]
    fn positions_stay_in_box() {
        let f = field("xx", 5000);
        assert!(f.data.iter().all(|&v| (0.0..=BOX_SIZE).contains(&v)));
        // Uniform-ish: both halves of the box populated.
        let low = f.data.iter().filter(|&&v| v < BOX_SIZE / 2.0).count();
        assert!(low > 1000 && low < 4000);
    }

    #[test]
    fn velocities_heavy_tailed_with_quiet_bulk() {
        let f = field("vx", 50_000);
        let (lo, hi) = f.min_max();
        assert!(hi - lo > 2000.0, "range {}", hi - lo);
        // The bulk is modest: 95th percentile well below max.
        let mut mags: Vec<f32> = f.data.iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = mags[(0.95 * mags.len() as f64) as usize];
        assert!(
            p95 * 3.0 < hi.max(-lo),
            "p95 {} vs max {}",
            p95,
            hi.max(-lo)
        );
    }

    #[test]
    fn velocity_blocks_have_small_spread() {
        // The constant-block property cuSZx exploits at loose bounds:
        // within a 128-particle block the spread (jitter + slow drift) is
        // a small fraction of the global range.
        let f = field("vy", 100_000);
        let range = f.value_range();
        let tight_blocks = f
            .data
            .chunks(128)
            .filter(|b| {
                let lo = b.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = b.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                hi - lo < 0.15 * range
            })
            .count();
        let total = f.data.chunks(128).count();
        assert!(
            tight_blocks as f64 > 0.85 * total as f64,
            "tight {tight_blocks}/{total}"
        );
    }

    #[test]
    fn velocity_flow_often_exceeds_coarse_bound() {
        // ...while the *values themselves* exceed a REL-1e-1 bound often
        // enough that cuSZp cannot rely on zero blocks (the Table 3 HACC
        // ordering at loose bounds).
        let f = field("vx", 100_000);
        let eb = 0.1 * f.value_range();
        let above = f.data.iter().filter(|v| v.abs() > eb).count();
        assert!(
            above as f64 > 0.015 * f.len() as f64,
            "above {above}/{}",
            f.len()
        );
    }

    #[test]
    fn positions_are_poorly_predictable() {
        // Adjacent-difference magnitudes should be comparable to the box
        // scale (no 1-D smoothness to exploit).
        let f = field("yy", 4000);
        let mean_jump: f64 = f
            .data
            .windows(2)
            .map(|w| (w[1] - w[0]).abs() as f64)
            .sum::<f64>()
            / (f.len() - 1) as f64;
        assert!(mean_jump > BOX_SIZE as f64 * 0.1, "jump {mean_jump}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(field("vz", 100), field("vz", 100));
        assert_ne!(field("vx", 100).data, field("vy", 100).data);
    }
}
