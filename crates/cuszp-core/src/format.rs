//! The compressed-stream layout (paper Fig 12) and its file serialization.
//!
//! The stream has two fractions: ⓐ one fixed-length byte per block and
//! ⓑ the shuffled payload (sign map + bit planes per non-zero block,
//! concatenated at the synchronized offsets). The block-offset array of
//! Fig 2 is *not* stored — it is recomputed from ⓐ via Eq 2 during
//! decompression, exactly as the paper describes.
//!
//! Streams come in two ownership flavors: [`Compressed`] owns its
//! fractions (the long-lived archival form), while [`CompressedRef`]
//! borrows them — from a serialized buffer ([`CompressedRef::parse`]
//! slices instead of copying), from an owned stream
//! ([`Compressed::as_ref`]), or from an arena-written output buffer
//! ([`crate::fast::compress_into`]). Decoding accepts either via the
//! borrowed form, so nothing in the decompression path forces a copy.

use crate::config::CuszpConfig;
use crate::dtype::DType;
use crate::encode::cmp_bytes_for;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// Magic bytes of the file serialization.
pub const MAGIC: [u8; 6] = *b"CUSZP1";
/// Serialized header size in bytes.
pub const HEADER_BYTES: usize = 6 + 1 + 1 + 8 + 4 + 8;

/// A complete compressed stream plus the metadata needed to decode it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compressed {
    /// Element count of the original array.
    pub num_elements: u64,
    /// Block length `L` used.
    pub block_len: u32,
    /// The *absolute* error bound the stream was quantized with.
    pub eb: f64,
    /// Whether Lorenzo prediction was applied.
    pub lorenzo: bool,
    /// Element type of the original data.
    pub dtype: DType,
    /// Fraction ⓐ: fixed length `F` per block (`num_blocks` bytes).
    pub fixed_lengths: Vec<u8>,
    /// Fraction ⓑ: concatenated per-block sign maps + bit planes.
    pub payload: Vec<u8>,
}

/// Errors decoding a serialized stream.
///
/// Marked `#[non_exhaustive]`: future format revisions may add failure
/// modes, and downstream matches must keep a wildcard arm. Every variant
/// is *reachable from bytes* — `tests/container_errors.rs` constructs
/// each one from a concrete malformed input, so no dead variants
/// accumulate behind the attribute.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Wrong magic bytes or version.
    BadMagic,
    /// Stream shorter than its own accounting claims.
    Truncated,
    /// Header fields are internally inconsistent.
    Corrupt(&'static str),
    /// A `CUSZPHY1` chunk-table entry names a coding mode this reader
    /// does not know (the offending byte is carried for diagnostics).
    UnknownHybridMode(u8),
    /// A `CUSZPHY1` chunk failed entropy decoding: the compressed bytes
    /// are inconsistent with the recorded mode or raw length.
    Entropy(&'static str),
    /// The stream's claimed decoded size exceeds a caller-supplied
    /// limit ([`crate::Cuszp::decompress_serialized_bounded`]). Raised
    /// *before* any output allocation, so an untrusted stream cannot
    /// command memory just by naming a huge element count.
    LimitExceeded {
        /// Elements the stream claims to decode to.
        claimed: u64,
        /// The caller's element limit.
        limit: u64,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a cuSZp stream (bad magic)"),
            FormatError::Truncated => write!(f, "stream truncated"),
            FormatError::Corrupt(why) => write!(f, "corrupt stream: {why}"),
            FormatError::UnknownHybridMode(m) => {
                write!(f, "unknown hybrid chunk mode byte {m}")
            }
            FormatError::Entropy(why) => write!(f, "hybrid chunk corrupt: {why}"),
            FormatError::LimitExceeded { claimed, limit } => {
                write!(
                    f,
                    "claimed element count {claimed} exceeds caller limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}

impl Compressed {
    /// Number of blocks (`⌈N / L⌉`).
    pub fn num_blocks(&self) -> usize {
        (self.num_elements as usize).div_ceil(self.block_len as usize)
    }

    /// The paper's compressed size: fixed-length bytes + payload (what
    /// compression ratios are computed from).
    pub fn stream_bytes(&self) -> u64 {
        (self.fixed_lengths.len() + self.payload.len()) as u64
    }

    /// Stream size plus the file header.
    pub fn total_bytes(&self) -> u64 {
        self.stream_bytes() + HEADER_BYTES as u64
    }

    /// Expected payload size from the fixed lengths (Eq 2 applied per
    /// block) — must equal `payload.len()` for a well-formed stream.
    pub fn expected_payload_bytes(&self) -> u64 {
        self.fixed_lengths
            .iter()
            .map(|&f| cmp_bytes_for(f, self.block_len as usize) as u64)
            .sum()
    }

    /// Borrow this stream's fractions as a [`CompressedRef`].
    pub fn as_ref(&self) -> CompressedRef<'_> {
        CompressedRef {
            num_elements: self.num_elements,
            block_len: self.block_len,
            eb: self.eb,
            lorenzo: self.lorenzo,
            dtype: self.dtype,
            fixed_lengths: &self.fixed_lengths,
            payload: &self.payload,
        }
    }

    /// Serialize to a standalone byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.as_ref().to_bytes()
    }

    /// Stream the serialized form to a writer without building an
    /// intermediate buffer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.as_ref().write_to(w)
    }

    /// Deserialize a stream produced by [`Compressed::to_bytes`] into an
    /// owned value (one copy of each fraction). For copy-free decoding
    /// straight out of a buffer, use [`CompressedRef::parse`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Compressed, FormatError> {
        CompressedRef::parse(bytes).map(|r| r.to_owned())
    }

    /// Byte span of blocks `blocks` within the payload; see
    /// [`CompressedRef::payload_span`].
    pub fn payload_span(
        &self,
        blocks: std::ops::Range<usize>,
    ) -> Result<std::ops::Range<usize>, FormatError> {
        self.as_ref().payload_span(blocks)
    }

    /// Cheap structural sanity check: payload length matches Eq 2
    /// **exactly** — neither truncated nor overlong. The fast decoder
    /// ([`crate::fast`]) preallocates its output and slices the payload
    /// at Eq-2 offsets without further bounds checks, so an overlong
    /// payload must be rejected here, not tolerated.
    pub fn validate(&self) -> Result<(), FormatError> {
        CuszpConfig {
            block_len: self.block_len as usize,
            lorenzo: self.lorenzo,
            simd: None,
            hybrid: false,
        }
        .validate();
        if self.fixed_lengths.len() != self.num_blocks() {
            return Err(FormatError::Corrupt("fixed-length array size"));
        }
        if self.expected_payload_bytes() != self.payload.len() as u64 {
            return Err(FormatError::Corrupt("payload size vs Eq 2"));
        }
        Ok(())
    }
}

/// A compressed stream whose fractions are *borrowed* — from a serialized
/// buffer, an owned [`Compressed`], or an arena output buffer.
///
/// Everything the decoder needs is here; [`crate::fast::decompress_into`]
/// consumes this form, so streams parsed out of a container or a file
/// never copy their payload just to be decoded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressedRef<'a> {
    /// Element count of the original array.
    pub num_elements: u64,
    /// Block length `L` used.
    pub block_len: u32,
    /// The *absolute* error bound the stream was quantized with.
    pub eb: f64,
    /// Whether Lorenzo prediction was applied.
    pub lorenzo: bool,
    /// Element type of the original data.
    pub dtype: DType,
    /// Fraction ⓐ: fixed length `F` per block (`num_blocks` bytes).
    pub fixed_lengths: &'a [u8],
    /// Fraction ⓑ: concatenated per-block sign maps + bit planes.
    pub payload: &'a [u8],
}

impl<'a> CompressedRef<'a> {
    /// Zero-copy deserialization: the same checks as
    /// [`Compressed::from_bytes`], but the fractions are slices into
    /// `bytes` instead of fresh allocations.
    pub fn parse(bytes: &'a [u8]) -> Result<CompressedRef<'a>, FormatError> {
        if bytes.len() < HEADER_BYTES {
            return Err(FormatError::Truncated);
        }
        if bytes[..6] != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let lorenzo = match bytes[6] {
            0 => false,
            1 => true,
            _ => return Err(FormatError::Corrupt("bad lorenzo flag")),
        };
        let dtype = DType::from_byte(bytes[7]).ok_or(FormatError::Corrupt("bad dtype"))?;
        let num_elements = u64::from_le_bytes(bytes[8..16].try_into().expect("len checked"));
        let block_len = u32::from_le_bytes(bytes[16..20].try_into().expect("len checked"));
        let eb = f64::from_le_bytes(bytes[20..28].try_into().expect("len checked"));
        if block_len == 0 || block_len % 8 != 0 {
            return Err(FormatError::Corrupt("bad block length"));
        }
        if !(eb.is_finite() && eb > 0.0) {
            return Err(FormatError::Corrupt("bad error bound"));
        }
        let num_blocks = (num_elements as usize).div_ceil(block_len as usize);
        let fl_end = HEADER_BYTES + num_blocks;
        if bytes.len() < fl_end {
            return Err(FormatError::Truncated);
        }
        let fixed_lengths = &bytes[HEADER_BYTES..fl_end];
        if fixed_lengths.iter().any(|&f| f > 64) {
            return Err(FormatError::Corrupt("fixed length exceeds 64 bits"));
        }
        let expected: u64 = fixed_lengths
            .iter()
            .map(|&f| cmp_bytes_for(f, block_len as usize) as u64)
            .sum();
        let payload = &bytes[fl_end..];
        if (payload.len() as u64) < expected {
            return Err(FormatError::Truncated);
        }
        if (payload.len() as u64) > expected {
            return Err(FormatError::Corrupt("trailing bytes"));
        }
        Ok(CompressedRef {
            num_elements,
            block_len,
            eb,
            lorenzo,
            dtype,
            fixed_lengths,
            payload,
        })
    }

    /// Copy the fractions into an owned [`Compressed`].
    pub fn to_owned(&self) -> Compressed {
        Compressed {
            num_elements: self.num_elements,
            block_len: self.block_len,
            eb: self.eb,
            lorenzo: self.lorenzo,
            dtype: self.dtype,
            fixed_lengths: self.fixed_lengths.to_vec(),
            payload: self.payload.to_vec(),
        }
    }

    /// Number of blocks (`⌈N / L⌉`).
    pub fn num_blocks(&self) -> usize {
        (self.num_elements as usize).div_ceil(self.block_len as usize)
    }

    /// The paper's compressed size: fixed-length bytes + payload.
    pub fn stream_bytes(&self) -> u64 {
        (self.fixed_lengths.len() + self.payload.len()) as u64
    }

    /// Stream size plus the file header.
    pub fn total_bytes(&self) -> u64 {
        self.stream_bytes() + HEADER_BYTES as u64
    }

    /// Expected payload size from the fixed lengths (Eq 2 per block).
    pub fn expected_payload_bytes(&self) -> u64 {
        self.fixed_lengths
            .iter()
            .map(|&f| cmp_bytes_for(f, self.block_len as usize) as u64)
            .sum()
    }

    /// Byte span the payload bytes of blocks `blocks` occupy — the Eq-2
    /// prefix sum over fraction ⓐ, exported for partial decoders.
    ///
    /// This is the block-offset table of the paper's Fig 2, computed on
    /// demand instead of stored: a random-access reader asks for the span
    /// of the blocks overlapping its request and reads (or decodes) only
    /// those payload bytes. Runs in `O(blocks.end)` over the fixed-length
    /// bytes and allocates nothing.
    ///
    /// Errors if the range is out of bounds, a scanned fixed length
    /// exceeds 64 bits, or the payload ends before the span does — the
    /// same conditions [`CompressedRef::parse`] rejects, so a parsed
    /// stream never fails here.
    pub fn payload_span(
        &self,
        blocks: std::ops::Range<usize>,
    ) -> Result<std::ops::Range<usize>, FormatError> {
        if blocks.start > blocks.end || blocks.end > self.num_blocks() {
            return Err(FormatError::Corrupt("block range out of bounds"));
        }
        if self.fixed_lengths.len() != self.num_blocks() {
            return Err(FormatError::Corrupt("fixed-length array size"));
        }
        let mut start = 0u64;
        let mut end = 0u64;
        for (b, &f) in self.fixed_lengths[..blocks.end].iter().enumerate() {
            if f > 64 {
                return Err(FormatError::Corrupt("fixed length exceeds 64 bits"));
            }
            let cmp = cmp_bytes_for(f, self.block_len as usize) as u64;
            if b < blocks.start {
                start += cmp;
            }
            end += cmp;
        }
        if end > self.payload.len() as u64 {
            return Err(FormatError::Truncated);
        }
        Ok(start as usize..end as usize)
    }

    /// Structural sanity check — identical to [`Compressed::validate`]:
    /// the fast decoder trusts Eq-2 offsets for direct payload slicing,
    /// so the payload length must match **exactly**.
    pub fn validate(&self) -> Result<(), FormatError> {
        CuszpConfig {
            block_len: self.block_len as usize,
            lorenzo: self.lorenzo,
            simd: None,
            hybrid: false,
        }
        .validate();
        if self.fixed_lengths.len() != self.num_blocks() {
            return Err(FormatError::Corrupt("fixed-length array size"));
        }
        if self.expected_payload_bytes() != self.payload.len() as u64 {
            return Err(FormatError::Corrupt("payload size vs Eq 2"));
        }
        Ok(())
    }

    /// Append the serialized header to `out` (the fractions follow it in
    /// the wire format).
    pub(crate) fn header_bytes(&self) -> [u8; HEADER_BYTES] {
        let mut h = [0u8; HEADER_BYTES];
        h[..6].copy_from_slice(&MAGIC);
        h[6] = self.lorenzo as u8;
        h[7] = self.dtype.to_byte();
        h[8..16].copy_from_slice(&self.num_elements.to_le_bytes());
        h[16..20].copy_from_slice(&self.block_len.to_le_bytes());
        h[20..28].copy_from_slice(&self.eb.to_le_bytes());
        h
    }

    /// Serialize to a standalone byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes() as usize);
        out.extend_from_slice(&self.header_bytes());
        out.extend_from_slice(self.fixed_lengths);
        out.extend_from_slice(self.payload);
        out
    }

    /// Stream the serialized form to a writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.header_bytes())?;
        w.write_all(self.fixed_lengths)?;
        w.write_all(self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Compressed {
        Compressed {
            num_elements: 40,
            block_len: 32,
            eb: 0.01,
            lorenzo: true,
            dtype: DType::F32,
            fixed_lengths: vec![3, 0],
            payload: vec![0xAB; 16], // (3+1)*32/8 = 16
        }
    }

    #[test]
    fn accounting() {
        let c = sample();
        assert_eq!(c.num_blocks(), 2);
        assert_eq!(c.stream_bytes(), 18);
        assert_eq!(c.expected_payload_bytes(), 16);
        c.validate().unwrap();
    }

    #[test]
    fn serialization_roundtrip() {
        let c = sample();
        let bytes = c.to_bytes();
        assert_eq!(bytes.len() as u64, c.total_bytes());
        let back = Compressed::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Compressed::from_bytes(&bytes), Err(FormatError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        assert_eq!(
            Compressed::from_bytes(&bytes[..bytes.len() - 1]),
            Err(FormatError::Truncated)
        );
        assert_eq!(
            Compressed::from_bytes(&bytes[..4]),
            Err(FormatError::Truncated)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Compressed::from_bytes(&bytes),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_fixed_length_rejected() {
        let mut c = sample();
        c.fixed_lengths[1] = 65;
        let bytes = c.to_bytes();
        assert!(Compressed::from_bytes(&bytes).is_err());
    }

    #[test]
    fn validate_catches_payload_mismatch() {
        let mut c = sample();
        c.payload.pop();
        assert!(c.validate().is_err());
    }

    #[test]
    fn ref_parse_is_zero_copy_and_equivalent() {
        let c = sample();
        let bytes = c.to_bytes();
        let r = CompressedRef::parse(&bytes).unwrap();
        r.validate().unwrap();
        assert_eq!(r.to_owned(), c);
        assert_eq!(c.as_ref(), r);
        // The fractions are slices into `bytes`, not copies.
        let payload_start = bytes.len() - c.payload.len();
        assert!(std::ptr::eq(
            r.payload.as_ptr(),
            bytes[payload_start..].as_ptr()
        ));
        assert_eq!(r.stream_bytes(), c.stream_bytes());
        assert_eq!(r.total_bytes(), c.total_bytes());
    }

    #[test]
    fn ref_parse_rejects_what_from_bytes_rejects() {
        let mut bytes = sample().to_bytes();
        assert!(CompressedRef::parse(&bytes[..bytes.len() - 1]).is_err());
        bytes[0] = b'X';
        assert_eq!(CompressedRef::parse(&bytes), Err(FormatError::BadMagic));
    }

    #[test]
    fn write_to_matches_to_bytes() {
        let c = sample();
        let mut streamed = Vec::new();
        c.write_to(&mut streamed).unwrap();
        assert_eq!(streamed, c.to_bytes());
    }

    #[test]
    fn payload_span_matches_eq2_prefix_sums() {
        // Three blocks: F = 3 (16 bytes), F = 0 (0 bytes), F = 1 (8 bytes).
        let c = Compressed {
            num_elements: 96,
            block_len: 32,
            eb: 0.01,
            lorenzo: true,
            dtype: DType::F32,
            fixed_lengths: vec![3, 0, 1],
            payload: vec![0xCD; 24],
        };
        c.validate().unwrap();
        assert_eq!(c.payload_span(0..3).unwrap(), 0..24);
        assert_eq!(c.payload_span(0..1).unwrap(), 0..16);
        assert_eq!(c.payload_span(1..2).unwrap(), 16..16); // zero block
        assert_eq!(c.payload_span(2..3).unwrap(), 16..24);
        assert_eq!(c.payload_span(1..1).unwrap(), 16..16); // empty range
        assert!(c.payload_span(2..4).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert!(c.payload_span(2..1).is_err());
        }
        // A truncated payload fails once the span passes its end.
        let mut short = c;
        short.payload.truncate(10);
        assert_eq!(short.payload_span(0..1), Err(FormatError::Truncated));
        // Even a zero-byte span is rejected once it sits past the payload
        // end — conservative, since the stream is corrupt either way.
        assert_eq!(short.payload_span(1..2), Err(FormatError::Truncated));
    }

    #[test]
    fn validate_rejects_overlong_payload() {
        // Regression: the length check must be exact, not a lower bound —
        // the fast decoder's preallocated writes rely on it.
        let mut c = sample();
        c.payload.push(0xFF);
        assert_eq!(
            c.validate(),
            Err(FormatError::Corrupt("payload size vs Eq 2"))
        );
    }
}
