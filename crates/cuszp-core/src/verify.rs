//! Error-bound verification (the artifact's "Pass error check!").

/// Largest pointwise absolute error between two equal-length arrays.
///
/// # Panics
/// Panics if the lengths differ.
pub fn max_abs_error(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    original
        .iter()
        .zip(reconstructed)
        .map(|(&o, &r)| (o as f64 - r as f64).abs())
        .fold(0.0, f64::max)
}

/// True iff every element respects the bound up to f32 representability.
///
/// The quantization guarantee `|r·2eb − d| ≤ eb` holds in exact arithmetic;
/// storing the reconstruction as `f32` adds at most half a ULP of its
/// magnitude (`|d'|·2⁻²⁴`). When `eb` is smaller than that ULP — i.e. the
/// user demands more precision than `f32` itself carries — no compressor
/// with `f32` output can do better, and the reference cuSZp has the same
/// contract. REL bounds ≥ 1e-7 never hit this regime.
pub fn check_bound(original: &[f32], reconstructed: &[f32], eb: f64) -> bool {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    original.iter().zip(reconstructed).all(|(&o, &r)| {
        let err = (o as f64 - r as f64).abs();
        let ulp_slack = (o.abs().max(r.abs()) as f64) * 2.0f64.powi(-23);
        err <= eb * (1.0 + 1e-6) + ulp_slack + f64::EPSILON
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes() {
        let d = vec![1.0f32, 2.0];
        assert_eq!(max_abs_error(&d, &d), 0.0);
        assert!(check_bound(&d, &d, 1e-12));
    }

    #[test]
    fn violation_detected() {
        let o = vec![1.0f32];
        let r = vec![1.2f32];
        assert!(!check_bound(&o, &r, 0.1));
        assert!(check_bound(&o, &r, 0.21));
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        max_abs_error(&[1.0], &[1.0, 2.0]);
    }
}
