//! Per-step traffic accounting recorded by kernels as they execute.
//!
//! Each kernel step (e.g. cuSZp's "quant+prediction", "fixed-length
//! encoding", "global sync", "bit-shuffle") records the global-memory bytes
//! it read/wrote and the serialized ops it performed. The launcher folds all
//! blocks' counters together and converts them to simulated time through the
//! [`crate::DeviceSpec`] cost constants. The per-step shares feed the
//! paper's breakdown figures (Fig 14, Fig 21).

use serde::{Deserialize, Serialize};

/// Traffic attributed to one named kernel step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTraffic {
    /// Coalesced bytes read from global memory.
    pub bytes_read: u64,
    /// Coalesced bytes written to global memory.
    pub bytes_written: u64,
    /// Byte-granular / strided bytes read (charged at reduced bandwidth).
    pub bytes_read_strided: u64,
    /// Byte-granular / strided bytes written (charged at reduced bandwidth).
    pub bytes_written_strided: u64,
    /// Serialized arithmetic/logic operations.
    pub ops: u64,
}

impl StepTraffic {
    /// Total bytes moved regardless of access pattern.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written + self.bytes_read_strided + self.bytes_written_strided
    }

    /// Accumulate another step's traffic into this one.
    pub fn merge(&mut self, other: &StepTraffic) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.bytes_read_strided += other.bytes_read_strided;
        self.bytes_written_strided += other.bytes_written_strided;
        self.ops += other.ops;
    }
}

/// An ordered multiset of named step counters.
///
/// Step names are `&'static str` so compressor crates can define their own
/// step vocabulary without this crate knowing about it. Insertion order is
/// preserved (first record wins the position), which keeps breakdown tables
/// stable.
#[derive(Debug, Clone, Default)]
pub struct TrafficCounters {
    steps: Vec<(&'static str, StepTraffic)>,
}

impl TrafficCounters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&mut self, step: &'static str) -> &mut StepTraffic {
        if let Some(idx) = self.steps.iter().position(|(name, _)| *name == step) {
            &mut self.steps[idx].1
        } else {
            self.steps.push((step, StepTraffic::default()));
            &mut self.steps.last_mut().expect("just pushed").1
        }
    }

    /// Record coalesced global-memory reads.
    pub fn read(&mut self, step: &'static str, bytes: u64) {
        self.entry(step).bytes_read += bytes;
    }

    /// Record coalesced global-memory writes.
    pub fn write(&mut self, step: &'static str, bytes: u64) {
        self.entry(step).bytes_written += bytes;
    }

    /// Record strided / byte-granular reads (reduced effective bandwidth).
    pub fn read_strided(&mut self, step: &'static str, bytes: u64) {
        self.entry(step).bytes_read_strided += bytes;
    }

    /// Record strided / byte-granular writes (reduced effective bandwidth).
    pub fn write_strided(&mut self, step: &'static str, bytes: u64) {
        self.entry(step).bytes_written_strided += bytes;
    }

    /// Record serialized arithmetic ops.
    pub fn ops(&mut self, step: &'static str, ops: u64) {
        self.entry(step).ops += ops;
    }

    /// Merge another counter set into this one (used when folding together
    /// the per-worker counters after a launch).
    pub fn merge(&mut self, other: &TrafficCounters) {
        for (name, traffic) in &other.steps {
            self.entry(name).merge(traffic);
        }
    }

    /// Iterate `(step name, traffic)` in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &StepTraffic)> {
        self.steps.iter().map(|(n, t)| (*n, t))
    }

    /// Traffic for one step, if it was recorded.
    pub fn get(&self, step: &str) -> Option<&StepTraffic> {
        self.steps
            .iter()
            .find(|(name, _)| *name == step)
            .map(|(_, t)| t)
    }

    /// Sum of all steps.
    pub fn total(&self) -> StepTraffic {
        let mut acc = StepTraffic::default();
        for (_, t) in &self.steps {
            acc.merge(t);
        }
        acc
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_step() {
        let mut c = TrafficCounters::new();
        c.read("load", 100);
        c.read("load", 50);
        c.write("store", 30);
        c.ops("math", 7);
        assert_eq!(c.get("load").unwrap().bytes_read, 150);
        assert_eq!(c.get("store").unwrap().bytes_written, 30);
        assert_eq!(c.get("math").unwrap().ops, 7);
        assert!(c.get("absent").is_none());
    }

    #[test]
    fn merge_folds_all_fields() {
        let mut a = TrafficCounters::new();
        a.read("s", 1);
        a.write_strided("s", 2);
        let mut b = TrafficCounters::new();
        b.read("s", 10);
        b.read_strided("s", 4);
        b.ops("t", 5);
        a.merge(&b);
        let s = a.get("s").unwrap();
        assert_eq!(s.bytes_read, 11);
        assert_eq!(s.bytes_read_strided, 4);
        assert_eq!(s.bytes_written_strided, 2);
        assert_eq!(a.get("t").unwrap().ops, 5);
    }

    #[test]
    fn total_sums_everything() {
        let mut c = TrafficCounters::new();
        c.read("a", 1);
        c.write("b", 2);
        c.read_strided("c", 3);
        c.write_strided("d", 4);
        let t = c.total();
        assert_eq!(t.total_bytes(), 10);
    }

    #[test]
    fn insertion_order_is_stable() {
        let mut c = TrafficCounters::new();
        c.ops("z", 1);
        c.ops("a", 1);
        c.ops("z", 1);
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a"]);
    }
}
