//! Hybrid lossy–lossless second stage: per-mode ratio and throughput of
//! the `CUSZPHY1` entropy subsystem (ISSUE 9).
//!
//! cuSZp's fixed-length blocks leave entropy on the table when the
//! bit-shuffled planes are sparse or repetitive. The hybrid stage
//! re-encodes the plain `CUSZP1` stream chunk-by-chunk, picking per
//! chunk among passthrough, an SZx-style constant flush, zero-run RLE,
//! and canonical Huffman via a cheap sampled estimator. This experiment
//! measures, per dataset, the compression ratio and single-core
//! second-stage throughput of each mode **forced** across the whole
//! frame, next to the adaptive estimator's pick — plus a uniform-noise
//! control where no mode can win and the estimator must get out of the
//! way.
//!
//! Written as `BENCH_hybrid.json` at the repository root. Hard
//! assertions (the ISSUE 9 acceptance criteria):
//!
//! * every hybrid frame decodes **byte-identical** to the plain frame it
//!   staged from (adaptive and all four forced modes);
//! * the shipped hybrid ratio (with the product's whole-frame fallback)
//!   is ≥ the fixed-length ratio on every dataset;
//! * when the estimator selects passthrough for the majority of chunks,
//!   its encode throughput stays within 5% of forced passthrough.

use super::Ctx;
use crate::report::{f2, Report};
use cuszp_core::hybrid::{self, HybridRef, HybridScratch, Mode, DEFAULT_CHUNK_BLOCKS};
use cuszp_core::{fast, CuszpConfig, Scratch};
use datasets::{generate_subset, DatasetId, Scale};
use serde::Serialize;
use std::time::Instant;

/// One dataset × mode measurement of the second stage.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset (or `noise` for the synthetic control).
    pub dataset: String,
    /// `fixed` (no second stage), `adaptive`, or a forced mode name.
    pub mode: String,
    /// End-to-end compression ratio: raw bytes / stored bytes. Forced
    /// modes report their true frame size; `adaptive` reports the
    /// shipped size (the product keeps the plain frame when the stage
    /// does not win).
    pub ratio: f64,
    /// Stored bytes behind `ratio`.
    pub stored_bytes: usize,
    /// Second-stage encode throughput, GB/s of raw input (single core).
    /// `0` for the `fixed` baseline row (no second stage runs).
    pub enc_gbps: f64,
    /// Second-stage decode throughput, GB/s of raw input (single core).
    pub dec_gbps: f64,
}

/// Per-dataset adaptive-estimator summary.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveSummary {
    /// Dataset name.
    pub dataset: String,
    /// Chunks per mode in the adaptive frame: `[pass, constant, rle,
    /// huffman]`.
    pub mode_histogram: [usize; 4],
    /// Whether the shipped payload was the hybrid frame (vs the plain
    /// fallback).
    pub hybrid_won: bool,
}

/// The checked-in benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct BenchFile {
    /// Artifact schema tag.
    pub experiment: String,
    /// REL bound resolved per dataset against its own value range.
    pub rel_bound: f64,
    /// Tighter REL bound used for the `noise` control: it keeps ~19
    /// residual bits, so every bit-shuffled plane is dense and the
    /// estimator must select passthrough.
    pub noise_rel_bound: f64,
    /// Timing samples per measurement (best-of).
    pub samples: usize,
    /// All dataset × mode rows.
    pub rows: Vec<Row>,
    /// Per-dataset estimator behavior.
    pub adaptive: Vec<AdaptiveSummary>,
}

const MODES: [(Mode, &str); 4] = [
    (Mode::Pass, "pass"),
    (Mode::Constant, "constant"),
    (Mode::Rle, "rle"),
    (Mode::Huffman, "huffman"),
];

struct BestOf {
    best: f64,
}

impl BestOf {
    fn new() -> Self {
        BestOf {
            best: f64::INFINITY,
        }
    }
    fn sample(&mut self, reps: usize, mut f: impl FnMut()) {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        self.best = self.best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
}

/// Deterministic uniform noise: every bit-plane is dense, so no entropy
/// mode can beat passthrough and the estimator's job is to stay out of
/// the way.
fn noise(n: usize) -> Vec<f32> {
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2_000_001) as f32 - 1_000_000.0) * 0.01
        })
        .collect()
}

/// Measure one dataset's second-stage rows. Returns the rows plus the
/// adaptive summary.
#[allow(clippy::too_many_lines)]
fn measure_dataset(
    name: &str,
    data: &[f32],
    rel: f64,
    samples: usize,
    rows: &mut Vec<Row>,
) -> AdaptiveSummary {
    let cfg = CuszpConfig::default();
    let raw = data.len() * 4;
    let eb = rel * cuszp_core::value_range(data);
    let mut scratch = Scratch::new();
    let mut hs = HybridScratch::new();
    let mut plain = Vec::new();
    let mut frame = Vec::new();
    let mut back = Vec::new();
    fast::compress_into(&mut scratch, data, eb, cfg, &mut plain);

    rows.push(Row {
        dataset: name.to_string(),
        mode: "fixed".to_string(),
        ratio: raw as f64 / plain.len() as f64,
        stored_bytes: plain.len(),
        enc_gbps: 0.0,
        dec_gbps: 0.0,
    });

    // Encode + verify + time one (forced or adaptive) configuration.
    // The timing windows cover only the second stage: the plain frame is
    // already staged, matching how the store codec and service run it.
    let mut run = |force: Option<Mode>| -> (usize, f64, f64, [usize; 4]) {
        let r = cuszp_core::CompressedRef::parse(&plain).expect("own frame parses");
        hybrid::encode_with(&r, DEFAULT_CHUNK_BLOCKS, force, &mut hs, &mut frame);
        let h = HybridRef::parse(&frame).expect("own hybrid frame parses");
        let hist = h.mode_histogram();
        hybrid::decode_stream_bytes(&h, &mut hs, &mut back).expect("own frame decodes");
        assert_eq!(
            back, plain,
            "{name}/{force:?}: hybrid frame must decode byte-identical to the plain frame"
        );

        let reps = ((64 << 20) / raw.max(1)).clamp(1, 64);
        let mut enc = BestOf::new();
        let mut dec = BestOf::new();
        for _ in 0..samples {
            enc.sample(reps, || {
                hybrid::encode_with(&r, DEFAULT_CHUNK_BLOCKS, force, &mut hs, &mut frame);
                std::hint::black_box(frame.len());
            });
            dec.sample(reps, || {
                let h = HybridRef::parse(&frame).expect("parse");
                hybrid::decode_stream_bytes(&h, &mut hs, &mut back).expect("decode");
                std::hint::black_box(back.len());
            });
        }
        (
            frame.len(),
            raw as f64 / enc.best / 1e9,
            raw as f64 / dec.best / 1e9,
            hist,
        )
    };

    let (adaptive_len, adaptive_enc, adaptive_dec, hist) = run(None);
    let hybrid_won = adaptive_len < plain.len();
    let shipped = adaptive_len.min(plain.len());
    rows.push(Row {
        dataset: name.to_string(),
        mode: "adaptive".to_string(),
        ratio: raw as f64 / shipped as f64,
        stored_bytes: shipped,
        enc_gbps: adaptive_enc,
        dec_gbps: adaptive_dec,
    });

    let mut pass_enc = 0.0f64;
    for (mode, label) in MODES {
        let (len, enc_gbps, dec_gbps, _) = run(Some(mode));
        if mode == Mode::Pass {
            pass_enc = enc_gbps;
        }
        rows.push(Row {
            dataset: name.to_string(),
            mode: label.to_string(),
            ratio: raw as f64 / len as f64,
            stored_bytes: len,
            enc_gbps,
            dec_gbps,
        });
    }

    // ISSUE 9 acceptance: an estimator that picks passthrough must not
    // cost more than 5% of passthrough's own throughput.
    let total_chunks: usize = hist.iter().sum();
    if hist[Mode::Pass.to_byte() as usize] * 2 > total_chunks {
        assert!(
            adaptive_enc >= 0.95 * pass_enc,
            "{name}: adaptive picked pass on most chunks but lost \
             {:.1}% throughput (adaptive {adaptive_enc:.2} GB/s vs pass {pass_enc:.2} GB/s)",
            100.0 * (1.0 - adaptive_enc / pass_enc),
        );
    }

    AdaptiveSummary {
        dataset: name.to_string(),
        mode_histogram: hist,
        hybrid_won,
    }
}

/// Run the hybrid-ratio experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "hybrid_ratio",
        "Hybrid second stage: ratio and throughput per entropy mode",
        &ctx.out_dir,
    );
    let rel = 1e-2;
    let noise_rel = 1e-6;
    let (noise_n, samples) = match ctx.scale {
        Scale::Tiny => (1usize << 16, 3usize),
        Scale::Small => (1 << 20, 10),
        Scale::Medium => (1 << 22, 20),
    };
    report.line(&format!(
        "REL bound {rel:.0e} per dataset ({noise_rel:.0e} on the noise control); \
         best of {samples} samples, single core"
    ));

    let mut rows = Vec::new();
    let mut adaptive = Vec::new();
    for id in DatasetId::all() {
        let fields = generate_subset(id, ctx.scale, 1);
        let field = fields.first().expect("dataset has a field");
        adaptive.push(measure_dataset(
            id.name(),
            &field.data,
            rel,
            samples,
            &mut rows,
        ));
    }
    adaptive.push(measure_dataset(
        "noise",
        &noise(noise_n),
        noise_rel,
        samples,
        &mut rows,
    ));
    // The control exists to pin the estimator's passthrough overhead —
    // at ~19 residual bits no entropy mode can win, so it must pick
    // pass (and the <= 5% throughput check inside measure_dataset ran).
    let noise_hist = adaptive.last().expect("noise measured").mode_histogram;
    assert!(
        noise_hist[0] * 2 > noise_hist.iter().sum::<usize>(),
        "estimator must select passthrough on dense noise, got {noise_hist:?}"
    );

    // Acceptance: the shipped hybrid payload never loses to the plain
    // fixed-length stream (the whole-frame fallback guarantees it; this
    // keeps the artifact honest about it).
    for summary in &adaptive {
        let fixed = rows
            .iter()
            .find(|r| r.dataset == summary.dataset && r.mode == "fixed")
            .expect("fixed row");
        let hy = rows
            .iter()
            .find(|r| r.dataset == summary.dataset && r.mode == "adaptive")
            .expect("adaptive row");
        assert!(
            hy.ratio >= fixed.ratio,
            "{}: hybrid ratio {} must be >= fixed ratio {}",
            summary.dataset,
            hy.ratio,
            fixed.ratio
        );
    }

    report.table(
        &["dataset", "mode", "ratio", "stored", "enc GB/s", "dec GB/s"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.mode.clone(),
                    f2(r.ratio),
                    format!("{}", r.stored_bytes),
                    f2(r.enc_gbps),
                    f2(r.dec_gbps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for s in &adaptive {
        report.line(&format!(
            "{}: adaptive chunks [pass {}, constant {}, rle {}, huffman {}]{}",
            s.dataset,
            s.mode_histogram[0],
            s.mode_histogram[1],
            s.mode_histogram[2],
            s.mode_histogram[3],
            if s.hybrid_won {
                ""
            } else {
                " (plain fallback shipped)"
            }
        ));
    }

    let bench = BenchFile {
        experiment: "hybrid_ratio".to_string(),
        rel_bound: rel,
        noise_rel_bound: noise_rel,
        samples,
        rows: rows.clone(),
        adaptive,
    };
    report.save_json(&rows);
    report.save_text();

    let root = ctx.out_dir.parent().unwrap_or(std::path::Path::new("."));
    let path = root.join("BENCH_hybrid.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench file");
    std::fs::write(&path, json).expect("write BENCH_hybrid.json");
    report.line(&format!(
        "benchmark trajectory written to {}",
        path.display()
    ));
}
