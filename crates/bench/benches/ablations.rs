//! Ablation benches for the design choices DESIGN.md §5 calls out: block
//! length, Lorenzo on/off, and the hierarchical scan.

use baselines::common::CuszpAdapter;
use bench::{bench_field, compress_once, eb_for};
use criterion::{criterion_group, criterion_main, Criterion};
use cuszp_core::CuszpConfig;
use datasets::DatasetId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let field = bench_field(DatasetId::Hurricane);
    let eb = eb_for(&field, 1e-3);

    let mut group = c.benchmark_group("ablation_block_length");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for l in [8usize, 32, 128] {
        let comp = CuszpAdapter::with_config(CuszpConfig {
            block_len: l,
            ..Default::default()
        });
        group.bench_function(format!("L{l}"), |b| {
            b.iter(|| black_box(compress_once(&comp, black_box(&field), eb)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_lorenzo");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for lorenzo in [true, false] {
        let comp = CuszpAdapter::with_config(CuszpConfig {
            block_len: 32,
            lorenzo,
            ..Default::default()
        });
        group.bench_function(if lorenzo { "on" } else { "off" }, |b| {
            b.iter(|| black_box(compress_once(&comp, black_box(&field), eb)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
