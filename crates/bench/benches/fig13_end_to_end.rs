//! Fig 13 workload: full end-to-end compression pipelines, all four
//! compressors over the six datasets at REL 1e-2 (rate 8 for cuZFP).

use bench::{all_bench_fields, compress_once, compressors, eb_for};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fields = all_bench_fields();
    let mut group = c.benchmark_group("fig13_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (id, field) in &fields {
        let eb = eb_for(field, 1e-2);
        for (name, comp) in compressors(8) {
            group.bench_function(format!("{}/{}", name, id.name()), |b| {
                b.iter(|| black_box(compress_once(comp.as_ref(), black_box(field), eb)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
