//! # datasets — deterministic synthetic stand-ins for the cuSZp evaluation data
//!
//! The paper evaluates on six SDRBench datasets (Table 2): Hurricane
//! (weather), NYX (cosmology), QMCPack (quantum Monte Carlo), RTM (seismic
//! imaging), HACC (N-body cosmology particles), and CESM-ATM (climate).
//! Those archives are multi-gigabyte downloads that are not available in
//! this environment, so this crate generates *synthetic equivalents* with
//! matched statistical character:
//!
//! * dimensionality and aspect (3-D grids, a 4-D grid, 1-D particle arrays,
//!   2-D lat×lon fields),
//! * block-level smoothness (the property Fig 6 measures and the
//!   fixed-length encoding exploits),
//! * dynamic range and sparsity (what drives zero blocks, cuSZx constant
//!   blocks, and the REL error-bound behaviour),
//! * per-field variety within a dataset (min/avg/max spread in Table 3).
//!
//! Every generator is deterministic in `(dataset, field, scale)`, so
//! experiments and tests are reproducible. Default scales are laptop-sized;
//! the statistical character, not the byte count, is what the experiments
//! depend on.

pub mod cesm;
pub mod field;
pub mod hacc;
pub mod hurricane;
pub mod io;
pub mod mmap;
pub mod nyx;
pub mod qmcpack;
pub mod registry;
pub mod rtm;
pub mod spectral;

pub use field::Field;
pub use mmap::{map_f32_le, map_f64_le, MappedSlice};
pub use registry::{generate, generate_subset, DatasetId, Scale};
