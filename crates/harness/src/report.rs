//! Report rendering: aligned console tables with paper-vs-measured
//! columns, plus JSON artifacts under `artifacts/`.

use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A report being assembled for one experiment.
pub struct Report {
    /// Experiment id (e.g. "fig13").
    pub id: String,
    /// Human title.
    pub title: String,
    lines: Vec<String>,
    out_dir: PathBuf,
}

impl Report {
    /// Start a report for experiment `id`, writing artifacts to `out_dir`.
    pub fn new(id: &str, title: &str, out_dir: &Path) -> Report {
        std::fs::create_dir_all(out_dir).expect("create artifacts dir");
        let mut r = Report {
            id: id.to_string(),
            title: title.to_string(),
            lines: Vec::new(),
            out_dir: out_dir.to_path_buf(),
        };
        r.line(&format!("\n=== {} — {} ===", id, title));
        r
    }

    /// Append and echo a line.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        self.lines.push(s.to_string());
    }

    /// Append a table: header row + data rows, auto-aligned.
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        self.line(&fmt_row(&head));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        self.line(&"-".repeat(total));
        for row in rows {
            self.line(&fmt_row(row));
        }
    }

    /// Write a serializable payload as `artifacts/<id>.json`.
    pub fn save_json<T: Serialize>(&self, payload: &T) {
        let path = self.out_dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(payload).expect("serialize report");
        std::fs::write(&path, json).expect("write report json");
        println!("[{}] JSON written to {}", self.id, path.display());
    }

    /// Write the accumulated console text as `artifacts/<id>.txt`.
    pub fn save_text(&self) {
        let path = self.out_dir.join(format!("{}.txt", self.id));
        let mut f = std::fs::File::create(&path).expect("create report txt");
        for l in &self.lines {
            writeln!(f, "{l}").expect("write report txt");
        }
    }

    /// Artifact output directory.
    pub fn out_dir(&self) -> &Path {
        &self.out_dir
    }
}

/// Format a float with 2 decimals (table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_and_saves() {
        let dir = std::env::temp_dir().join(format!("cuszp_report_{}", std::process::id()));
        let mut r = Report::new("test", "unit", &dir);
        r.table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        r.save_text();
        r.save_json(&vec![1, 2, 3]);
        assert!(dir.join("test.txt").exists());
        assert!(dir.join("test.json").exists());
        let text = std::fs::read_to_string(dir.join("test.txt")).unwrap();
        assert!(text.contains("333"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.0321), "3.2%");
    }
}
