//! Host codec throughput trajectory — `host_ref` vs the word-parallel
//! two-phase [`cuszp_core::fast`] codec, measured **per SIMD tier**.
//!
//! Not a paper figure: the paper's throughput story is about the GPU
//! kernels, but every `cuszp-pipeline` worker and every chunked
//! compression executes the *host* codec, so its real wall-clock speed is
//! what the repo's end-to-end numbers rest on. This experiment measures
//! compress/decompress GB/s for both codecs × {f32, f64} × {dense,
//! sparse} corpora × every [`SimdLevel`] tier the running host supports,
//! and records the result as `BENCH_host_codec.json` at the repository
//! root — a perf trajectory successive PRs are judged against.
//!
//! **Methodology.** Decompress rows time the warm-arena
//! [`fast::decompress_into_at`] serving path — the one the pipeline
//! workers, the service, and the store all run — so the number is codec
//! throughput, not allocator throughput. A supplementary
//! `decompress_owned` row (top tier only) times the allocating
//! [`fast::decompress`] wrapper; at 32 MiB outputs that path is
//! dominated by glibc's mmap-threshold churn and understates the codec
//! severalfold, which is exactly why the arena API exists (see
//! DESIGN.md "Buffer reuse"). The JSON records which tier each row ran
//! at and which tiers the host actually supports — rows the host cannot
//! run are absent, never extrapolated.

use super::Ctx;
use crate::report::{f2, Report};
use cuszp_core::{fast, host_ref, simd, CuszpConfig, FloatData, Scratch, SimdLevel};
use datasets::Scale;
use serde::Serialize;
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Element type ("f32" / "f64").
    pub dtype: String,
    /// Corpus ("dense" / "sparse").
    pub corpus: String,
    /// Direction ("compress" / "decompress" / "decompress_owned").
    pub direction: String,
    /// SIMD dispatch tier the fast-codec columns ran at.
    pub tier: String,
    /// `host_ref` throughput, GB/s of uncompressed data.
    pub ref_gbps: f64,
    /// Single-thread fast-codec throughput, GB/s.
    pub fast_gbps: f64,
    /// `fast_gbps / ref_gbps`.
    pub speedup: f64,
    /// Fast codec with `available_parallelism` workers, GB/s.
    pub fast_mt_gbps: f64,
    /// Compression ratio of the corpus (context for the rates).
    pub ratio: f64,
}

/// The checked-in benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct BenchFile {
    /// Artifact schema tag.
    pub experiment: String,
    /// Elements per corpus.
    pub elements: usize,
    /// Host threads used for the `fast_mt` rows.
    pub threads: usize,
    /// Highest SIMD tier the measuring host supports; every lower tier
    /// was also measured, so absent tiers mean the host lacks them.
    pub detected_tier: String,
    /// How decompress rows were timed (serving path vs owned wrapper).
    pub decompress_methodology: String,
    /// All measured rows.
    pub rows: Vec<Row>,
    /// ISSUE 3 acceptance: dense-f32 single-thread speedups (top tier).
    pub dense_f32_compress_speedup: f64,
    /// Decompression counterpart.
    pub dense_f32_decompress_speedup: f64,
}

/// Smooth two-tone wave — every block non-zero, moderate `F`.
fn dense<T: FloatData>(n: usize) -> Vec<T> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            T::from_f64((x * 0.02).sin() * 40.0 + (x * 0.11).cos() * 3.0)
        })
        .collect()
}

/// Same signal with three of every four 1 Ki-element stripes zeroed —
/// mostly zero blocks, the workload where skipping payload work pays.
fn sparse<T: FloatData>(n: usize) -> Vec<T> {
    dense::<T>(n)
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            if (i >> 10) % 4 == 0 {
                v
            } else {
                T::from_f64(0.0)
            }
        })
        .collect()
}

/// Best-of-`iters` wall-clock seconds for `f` (after one warmup run).
fn best_seconds<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn measure<T: FloatData + Default + Copy>(
    data: &[T],
    dtype: &str,
    corpus: &str,
    iters: usize,
) -> Vec<Row> {
    let eb = 0.01;
    let base = CuszpConfig::default();
    let bytes = std::mem::size_of_val(data) as f64;
    let gbps = |secs: f64| bytes / secs / 1.0e9;
    let detected = simd::detect_level();

    let stream = host_ref::compress(data, eb, base);
    let ratio = bytes / stream.stream_bytes() as f64;

    // The scalar oracle's times are tier-independent; measure once.
    let c_ref = best_seconds(iters, || host_ref::compress(data, eb, base));
    let d_ref = best_seconds(iters, || host_ref::decompress::<T>(&stream));

    let mut rows = Vec::new();
    let row = |direction: &str, tier: &str, r: f64, f: f64, mt: f64| Row {
        dtype: dtype.to_string(),
        corpus: corpus.to_string(),
        direction: direction.to_string(),
        tier: tier.to_string(),
        ref_gbps: gbps(r),
        fast_gbps: gbps(f),
        speedup: r / f,
        fast_mt_gbps: gbps(mt),
        ratio,
    };

    for level in SimdLevel::ALL.into_iter().filter(|&l| l <= detected) {
        let cfg = CuszpConfig {
            simd: Some(level),
            ..base
        };
        let fast_stream = fast::compress(data, eb, cfg);
        assert_eq!(stream, fast_stream, "fast codec must be byte-identical");

        let c_fast = best_seconds(iters, || fast::compress(data, eb, cfg));
        let c_mt = best_seconds(iters, || fast::compress_threaded(data, eb, cfg, 0));

        // Steady-state serving path: warm arena, caller-owned output.
        let mut scratch = Scratch::new();
        let mut out = vec![T::default(); data.len()];
        let d_fast = best_seconds(iters, || {
            fast::decompress_into_at(stream.as_ref(), &mut scratch, Some(level), &mut out)
        });
        let d_mt = best_seconds(iters, || {
            fast::decompress_into_threaded_at(
                stream.as_ref(),
                0,
                &mut scratch,
                Some(level),
                &mut out,
            )
        });

        let tier = level.name();
        rows.push(row("compress", tier, c_ref, c_fast, c_mt));
        rows.push(row("decompress", tier, d_ref, d_fast, d_mt));

        if level == detected {
            // Supplementary: the allocating wrapper, so the cost of NOT
            // using the arena path stays on the record.
            let d_own = best_seconds(iters, || {
                fast::decompress_threaded_at::<T>(&stream, 1, Some(level))
            });
            let d_own_mt = best_seconds(iters, || {
                fast::decompress_threaded_at::<T>(&stream, 0, Some(level))
            });
            rows.push(row("decompress_owned", tier, d_ref, d_own, d_own_mt));
        }
    }
    rows
}

/// Run the host-codec throughput experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "host_codec",
        "Host codec throughput: host_ref vs word-parallel fast codec, per SIMD tier",
        &ctx.out_dir,
    );
    // Tiny keeps the CI smoke run in seconds; larger scales measure at
    // working-set sizes where cache effects resemble real fields.
    let (n, iters) = match ctx.scale {
        Scale::Tiny => (1 << 16, 3),
        Scale::Small => (1 << 22, 5),
        Scale::Medium => (1 << 24, 5),
    };
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let detected = simd::detect_level();
    report.line(&format!(
        "corpus: {n} elements per configuration; best of {iters} runs; \
         {threads} host thread(s); detected SIMD tier: {detected}"
    ));
    report.line(
        "decompress rows time the warm-arena decompress_into serving path; \
         decompress_owned rows time the allocating wrapper (top tier only)",
    );

    let mut rows = Vec::new();
    rows.extend(measure(&dense::<f32>(n), "f32", "dense", iters));
    rows.extend(measure(&sparse::<f32>(n), "f32", "sparse", iters));
    rows.extend(measure(&dense::<f64>(n), "f64", "dense", iters));
    rows.extend(measure(&sparse::<f64>(n), "f64", "sparse", iters));

    report.table(
        &[
            "dtype",
            "corpus",
            "dir",
            "tier",
            "ref GB/s",
            "fast GB/s",
            "speedup",
            "mt GB/s",
            "ratio",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dtype.clone(),
                    r.corpus.clone(),
                    r.direction.clone(),
                    r.tier.clone(),
                    format!("{:.3}", r.ref_gbps),
                    format!("{:.3}", r.fast_gbps),
                    format!("{:.2}x", r.speedup),
                    format!("{:.3}", r.fast_mt_gbps),
                    f2(r.ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let pick = |dir: &str| {
        rows.iter()
            .find(|r| {
                r.dtype == "f32"
                    && r.corpus == "dense"
                    && r.direction == dir
                    && r.tier == detected.name()
            })
            .map(|r| r.speedup)
            .unwrap_or(0.0)
    };
    let bench = BenchFile {
        experiment: "host_codec".to_string(),
        elements: n,
        threads,
        detected_tier: detected.name().to_string(),
        decompress_methodology: "decompress rows: warm-arena decompress_into_at (the \
             pipeline/service/store serving path); decompress_owned rows: allocating \
             decompress wrapper, top tier only, included so allocator cost stays visible"
            .to_string(),
        rows: rows.clone(),
        dense_f32_compress_speedup: pick("compress"),
        dense_f32_decompress_speedup: pick("decompress"),
    };
    report.line(&format!(
        "dense f32 single-thread speedup at {detected}: {:.2}x compress, {:.2}x decompress",
        bench.dense_f32_compress_speedup, bench.dense_f32_decompress_speedup
    ));

    report.save_json(&rows);
    report.save_text();

    // The perf-trajectory file lives at the repository root, next to
    // ROADMAP.md, so successive PRs diff it directly.
    let root = ctx.out_dir.parent().unwrap_or(std::path::Path::new("."));
    let path = root.join("BENCH_host_codec.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench file");
    std::fs::write(&path, json).expect("write BENCH_host_codec.json");
    report.line(&format!(
        "benchmark trajectory written to {}",
        path.display()
    ));
}
