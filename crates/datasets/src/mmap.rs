//! Memory-mapped dataset loading: a zero-copy `&[f32]` / `&[f64]` view of
//! an on-disk SDRBench raw stream.
//!
//! [`crate::io::read_f32_le`] reads the whole file into a `Vec` — one
//! full-size allocation plus a full-size copy before the first element is
//! touched. For the zero-allocation compression loop that copy is the
//! single largest remaining allocation, so this module maps the file
//! instead: the kernel lends the page cache directly, the view costs no
//! heap and no copy, and compressing straight out of it is exactly the
//! paper's "no intermediate buffer" stance applied to the input side.
//!
//! The build environment has no `libc` crate, so the two syscall wrappers
//! are declared directly (`mmap`/`munmap` are part of every Unix libc's
//! stable ABI). Non-Unix targets — and any mapping failure — fall back to
//! the buffered reader, so callers never lose correctness, only the
//! zero-copy property. `mmap` returns page-aligned addresses, which
//! satisfies `f32`/`f64` alignment by a wide margin.
//!
//! A raw little-endian stream only equals the in-memory representation on
//! a little-endian host; on a big-endian target the fallback path (which
//! byte-swaps per element) is used unconditionally.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

#[cfg(all(unix, target_endian = "little"))]
mod sys {
    use std::ffi::c_void;
    use std::os::unix::io::RawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    // No `libc` crate in this environment; these signatures are the
    // POSIX-stable ABI every Unix libc exports.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: RawFd,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// Where a view's elements live.
enum Backing<T: Copy + 'static> {
    /// A private read-only file mapping (address + mapped length).
    #[cfg(all(unix, target_endian = "little"))]
    Mapped {
        addr: *mut std::ffi::c_void,
        len: usize,
    },
    /// Fallback: elements read into an owned buffer.
    Owned(Vec<T>),
}

/// A read-only view of a raw little-endian float file, memory-mapped when
/// the platform allows it. Derefs to `&[T]`, so it drops into any API
/// taking a slice — `Cuszp::compress(&view, …)` compresses straight from
/// the page cache.
pub struct MappedSlice<T: Copy + 'static> {
    backing: Backing<T>,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared memory
// with no interior mutability; `&[T]` access from any thread is sound
// (same argument as `Arc<Vec<T>>`).
unsafe impl<T: Copy + Send + 'static> Send for MappedSlice<T> {}
unsafe impl<T: Copy + Sync + 'static> Sync for MappedSlice<T> {}

impl<T: Copy + 'static> Deref for MappedSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped { addr, .. } => {
                // SAFETY: `addr` is a live PROT_READ mapping of at least
                // `len * size_of::<T>()` bytes (checked at construction),
                // page-aligned (≥ align_of::<T>()), and unmapped only in
                // Drop, after every borrow of `self` has ended.
                unsafe { std::slice::from_raw_parts(*addr as *const T, self.len) }
            }
            Backing::Owned(v) => v,
        }
    }
}

impl<T: Copy + 'static> Drop for MappedSlice<T> {
    fn drop(&mut self) {
        #[cfg(all(unix, target_endian = "little"))]
        if let Backing::Mapped { addr, len } = self.backing {
            // SAFETY: exactly the region mmap returned, unmapped once.
            unsafe {
                sys::munmap(addr, len);
            }
        }
    }
}

impl<T: Copy + 'static> MappedSlice<T> {
    /// Whether this view is an actual file mapping (`false` means the
    /// owned-buffer fallback was taken — contents are identical either
    /// way).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }
}

fn open_sized(path: &Path, elem: usize) -> io::Result<(File, usize)> {
    let file = File::open(path)?;
    let bytes = file.metadata()?.len();
    if bytes % elem as u64 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file length {bytes} is not a multiple of {elem}"),
        ));
    }
    let bytes = usize::try_from(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
    Ok((file, bytes))
}

#[cfg(all(unix, target_endian = "little"))]
fn try_map<T: Copy + 'static>(file: &File, bytes: usize) -> Option<MappedSlice<T>> {
    use std::os::unix::io::AsRawFd;
    if bytes == 0 {
        return None; // mmap(len = 0) is EINVAL; empty files use the fallback
    }
    // SAFETY: fd is open for reading; len > 0; a failed mapping returns
    // MAP_FAILED, which is checked before use.
    let addr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            bytes,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if addr == sys::MAP_FAILED {
        return None;
    }
    Some(MappedSlice {
        backing: Backing::Mapped { addr, len: bytes },
        len: bytes / std::mem::size_of::<T>(),
    })
}

/// Map a raw little-endian `f32` file as a zero-copy slice view.
///
/// Same validation as [`crate::io::read_f32_le`] (length must be a
/// multiple of 4); falls back to an owned read if mapping is unavailable.
pub fn map_f32_le(path: &Path) -> io::Result<MappedSlice<f32>> {
    let (file, bytes) = open_sized(path, 4)?;
    #[cfg(all(unix, target_endian = "little"))]
    if let Some(m) = try_map::<f32>(&file, bytes) {
        return Ok(m);
    }
    drop((file, bytes));
    let data = crate::io::read_f32_le(path)?;
    let len = data.len();
    Ok(MappedSlice {
        backing: Backing::Owned(data),
        len,
    })
}

/// Map any file as a zero-copy byte view (no length constraint) — the
/// backing for `Shard::open_path`-style consumers that parse their own
/// structure out of the raw bytes.
pub fn map_bytes(path: &Path) -> io::Result<MappedSlice<u8>> {
    let (file, bytes) = open_sized(path, 1)?;
    #[cfg(all(unix, target_endian = "little"))]
    if let Some(m) = try_map::<u8>(&file, bytes) {
        return Ok(m);
    }
    drop((file, bytes));
    let data = std::fs::read(path)?;
    let len = data.len();
    Ok(MappedSlice {
        backing: Backing::Owned(data),
        len,
    })
}

/// Map a raw little-endian `f64` file as a zero-copy slice view (length
/// must be a multiple of 8).
pub fn map_f64_le(path: &Path) -> io::Result<MappedSlice<f64>> {
    let (file, bytes) = open_sized(path, 8)?;
    #[cfg(all(unix, target_endian = "little"))]
    if let Some(m) = try_map::<f64>(&file, bytes) {
        return Ok(m);
    }
    let mut data = Vec::with_capacity(bytes / 8);
    {
        use std::io::Read;
        let mut r = std::io::BufReader::new(file);
        let mut buf = [0u8; 8];
        while data.len() < bytes / 8 {
            r.read_exact(&mut buf)?;
            data.push(f64::from_le_bytes(buf));
        }
    }
    let len = data.len();
    Ok(MappedSlice {
        backing: Backing::Owned(data),
        len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cuszp_mmap_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn maps_same_values_io_reads() {
        let path = tmp("view.f32");
        let data = vec![1.0f32, -2.5, 3.25e-7, f32::MAX, 0.0, -0.0, f32::MIN];
        crate::io::write_f32_le(&path, &data).unwrap();
        let view = map_f32_le(&path).unwrap();
        assert_eq!(&*view, &data[..]);
        assert_eq!(&*view, &crate::io::read_f32_le(&path).unwrap()[..]);
        #[cfg(all(unix, target_endian = "little"))]
        assert!(view.is_mapped(), "unix host should take the mmap path");
        drop(view);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_misaligned_length() {
        let path = tmp("bad.f32");
        std::fs::write(&path, [0u8; 10]).unwrap();
        assert!(map_f32_le(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_empty_slice() {
        let path = tmp("empty.f32");
        std::fs::write(&path, []).unwrap();
        let view = map_f32_le(&path).unwrap();
        assert!(view.is_empty());
        assert!(!view.is_mapped()); // len-0 mappings are EINVAL; fallback
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn byte_view_matches_fs_read() {
        let path = tmp("view.bytes");
        let data: Vec<u8> = (0..=255u8).cycle().take(1001).collect(); // odd length on purpose
        std::fs::write(&path, &data).unwrap();
        let view = map_bytes(&path).unwrap();
        assert_eq!(&*view, &data[..]);
        #[cfg(all(unix, target_endian = "little"))]
        assert!(view.is_mapped(), "unix host should take the mmap path");
        drop(view);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn f64_view_roundtrips() {
        let path = tmp("view.f64");
        let data = [1.0f64, -2.5e300, 0.0, f64::EPSILON];
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &bytes).unwrap();
        let view = map_f64_le(&path).unwrap();
        assert_eq!(&*view, &data[..]);
        drop(view);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn view_usable_across_threads() {
        let path = tmp("threads.f32");
        let data: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        crate::io::write_f32_le(&path, &data).unwrap();
        let view = map_f32_le(&path).unwrap();
        let sum: f64 = std::thread::scope(|s| {
            let halves: Vec<_> = view
                .chunks(512)
                .map(|half| s.spawn(move || half.iter().map(|&v| v as f64).sum::<f64>()))
                .collect();
            halves.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(sum, (0..1024).map(|i| i as f64).sum::<f64>());
        drop(view);
        std::fs::remove_file(&path).unwrap();
    }
}
