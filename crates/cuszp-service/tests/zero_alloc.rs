//! The service's headline contract, proven executable: with the
//! counting allocator installed for this whole test binary (server
//! threads, codec workers, and client alike), a warmed connection's
//! request loop performs **zero heap operations** — across compress,
//! decompress, and metrics scrapes.

use cuszp_core::{DType, ErrorBound};
use cuszp_service::{Client, Server, ServiceConfig, Tenant};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn heap_ops_of(f: impl FnOnce()) -> u64 {
    let before = alloc_counter::snapshot();
    f();
    alloc_counter::snapshot().since(&before).heap_ops()
}

#[test]
fn steady_state_request_loop_is_allocation_free() {
    let data: Vec<f32> = (0..16_384)
        .map(|i| (i as f32 * 0.021).sin() * 55.0 + (i as f32 * 0.0013).cos() * 7.0)
        .collect();
    assert!(
        alloc_counter::is_installed(),
        "counting allocator must be this binary's #[global_allocator]"
    );

    let server = Server::start(ServiceConfig::default()).unwrap();
    let tenant = Tenant {
        tenant_id: 42,
        dtype: DType::F32,
        bound: ErrorBound::Abs(1e-2),
        max_payload: (data.len() * 4) as u32,
        hybrid: false,
    };
    let mut client = Client::connect(server.addr(), tenant).unwrap();

    // Reused client-side result buffers (part of the steady state).
    let mut container = Vec::new();
    let mut restored: Vec<f32> = Vec::new();
    // Sized up front: the rendered text grows a little between scrapes
    // (counters gain digits, new histogram buckets appear), and a
    // caller-owned scrape buffer is warmed by *capacity*, not length.
    let mut metrics_text = String::with_capacity(16 * 1024);

    let roundtrip = |client: &mut Client,
                     container: &mut Vec<u8>,
                     restored: &mut Vec<f32>,
                     metrics_text: &mut String| {
        let c = client.compress_f32(&data).unwrap();
        container.clear();
        container.extend_from_slice(c);
        client.decompress_f32(container, restored).unwrap();
        client.metrics_into(metrics_text).unwrap();
    };

    // Warm-up: the handshake already warmed the server-side arena; one
    // round trip warms the client result buffers above.
    roundtrip(
        &mut client,
        &mut container,
        &mut restored,
        &mut metrics_text,
    );
    assert_eq!(restored.len(), data.len());

    // Steady state: the entire process — connection handler, admission
    // queue, codec worker, reply path, metrics render, client — does
    // zero heap operations across 20 round trips.
    let ops = heap_ops_of(|| {
        for _ in 0..20 {
            roundtrip(
                &mut client,
                &mut container,
                &mut restored,
                &mut metrics_text,
            );
        }
    });
    assert_eq!(
        ops, 0,
        "20 steady-state round trips must not touch the heap"
    );

    // Sanity: traffic was real.
    assert!(cuszp_core::verify::check_bound(&data, &restored, 1e-2));
    assert!(metrics_text.contains("cuszp_requests_total{op=\"compress\"} 21"));
    server.shutdown();
}

#[test]
fn hybrid_tenant_steady_state_is_allocation_free() {
    // The CUSZPHY1 second stage (estimator, RLE, Huffman) writes only
    // into the connection's pre-warmed staging buffers, so a hybrid
    // tenant keeps the same zero-heap-op contract. Redundant data forces
    // the entropy coders to actually run (the response is a raw hybrid
    // frame, not the container fallback).
    let data = vec![0.0f32; 65_536];
    assert!(alloc_counter::is_installed());

    let server = Server::start(ServiceConfig::default()).unwrap();
    let tenant = Tenant {
        tenant_id: 43,
        dtype: DType::F32,
        bound: ErrorBound::Abs(1e-2),
        max_payload: (data.len() * 4) as u32,
        hybrid: true,
    };
    let mut client = Client::connect(server.addr(), tenant).unwrap();

    let mut frame = Vec::new();
    let mut restored: Vec<f32> = Vec::new();
    let roundtrip = |client: &mut Client, frame: &mut Vec<u8>, restored: &mut Vec<f32>| {
        let c = client.compress_f32(&data).unwrap();
        frame.clear();
        frame.extend_from_slice(c);
        client.decompress_f32(frame, restored).unwrap();
    };

    roundtrip(&mut client, &mut frame, &mut restored);
    assert!(
        frame.starts_with(&cuszp_core::hybrid::HYBRID_MAGIC),
        "the entropy stage must win on all-zero data"
    );
    assert_eq!(restored, data);

    let ops = heap_ops_of(|| {
        for _ in 0..20 {
            roundtrip(&mut client, &mut frame, &mut restored);
        }
    });
    assert_eq!(
        ops, 0,
        "20 steady-state hybrid round trips must not touch the heap"
    );
    server.shutdown();
}
