//! Multi-lane byte histograms.
//!
//! A naive `hist[b] += 1` loop is limited not by ALU throughput but by
//! the store→load forwarding chain: consecutive increments of the *same*
//! bin must serialize through the store buffer, and real inputs (long
//! zero runs after bit-shuffling) hit exactly that worst case. The
//! classic fix — the same one FSE/zstd and the cuSZ Huffman build use —
//! is to count into several independent sub-tables so consecutive bytes
//! land in different tables, then merge once at the end:
//!
//! * [`Tier::Scalar`] counts into 4 interleaved sub-tables, 8 bytes per
//!   iteration from one `u64` load.
//! * [`Tier::Avx2`] widens to 8 sub-tables and 16 bytes per iteration —
//!   on dense data every one of the 8 increments targets a distinct
//!   table, so no pair can alias in the store buffer — and merges the
//!   8 KiB of sub-tables with 256-bit adds.
//! * [`Tier::Avx512`] uses the same 8-lane counting loop (a
//!   gather/`vpconflictd` variant was considered and rejected: gathered
//!   increments must serialize through conflict repair whenever a vector
//!   holds duplicate bytes, which is the *common* case on quantized
//!   planes) and performs the sub-table merge with 512-bit adds.
//!
//! Every tier produces identical counts — the tier selects instruction
//! scheduling, never arithmetic — which is what keeps coded chunks
//! byte-identical across the ladder.

use crate::Tier;

/// Four interleaved count tables for incremental accumulation — the
/// sampled estimator feeds its 64-byte windows through this so even the
/// sampling path avoids the single-table forwarding chain.
pub(crate) struct Lanes4 {
    t: [[u32; 256]; 4],
}

impl Lanes4 {
    pub(crate) fn new() -> Self {
        Lanes4 {
            t: [[0u32; 256]; 4],
        }
    }

    /// Count `bytes` into the four lanes.
    pub(crate) fn accumulate(&mut self, bytes: &[u8]) {
        let mut it = bytes.chunks_exact(8);
        for c in &mut it {
            let v = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
            self.t[0][(v & 255) as usize] += 1;
            self.t[1][((v >> 8) & 255) as usize] += 1;
            self.t[2][((v >> 16) & 255) as usize] += 1;
            self.t[3][((v >> 24) & 255) as usize] += 1;
            self.t[0][((v >> 32) & 255) as usize] += 1;
            self.t[1][((v >> 40) & 255) as usize] += 1;
            self.t[2][((v >> 48) & 255) as usize] += 1;
            self.t[3][((v >> 56) & 255) as usize] += 1;
        }
        for (k, &b) in it.remainder().iter().enumerate() {
            self.t[k & 3][b as usize] += 1;
        }
    }

    /// Sum the lanes into `hist` (added to its current contents).
    pub(crate) fn merge_into(&self, hist: &mut [u32; 256]) {
        for (b, h) in hist.iter_mut().enumerate() {
            *h += self.t[0][b] + self.t[1][b] + self.t[2][b] + self.t[3][b];
        }
    }
}

/// Full-slice byte histogram at `tier`. Counts are identical at every
/// tier; the tier selects the counting/merge kernels only.
pub fn histogram(tier: Tier, bytes: &[u8]) -> [u32; 256] {
    let mut hist = [0u32; 256];
    histogram_into(tier, bytes, &mut hist);
    hist
}

/// [`histogram`] accumulating into a caller-owned table (added to its
/// current contents — zero it first for a fresh count).
pub fn histogram_into(tier: Tier, bytes: &[u8], hist: &mut [u32; 256]) {
    match tier {
        Tier::Scalar => hist4(bytes, hist),
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => hist8(bytes, hist, merge8_avx2),
        #[cfg(target_arch = "x86_64")]
        Tier::Avx512 => hist8(bytes, hist, merge8_avx512),
        #[cfg(not(target_arch = "x86_64"))]
        Tier::Avx2 | Tier::Avx512 => hist4(bytes, hist),
    }
}

fn hist4(bytes: &[u8], hist: &mut [u32; 256]) {
    let mut lanes = Lanes4::new();
    lanes.accumulate(bytes);
    lanes.merge_into(hist);
}

/// Four byte histograms partitioned by position: `result[s]` counts the
/// bytes at positions `i ≡ s (mod 4)`. This is the `Huffman4` encoder's
/// sizing pass — the per-stream code-length totals (and the shared
/// frequency table, as the four-way sum) fall out of the same single
/// pass the plain histogram already makes, because the multi-lane
/// sub-tables *are* a positional partition: the 4-lane kernel's lane
/// `k` holds positions `i ≡ k (mod 4)` directly, and the 8-lane
/// kernel's lanes pair up as `k` and `k + 4`. Identical at every tier.
pub(crate) fn stride4_histograms(tier: Tier, bytes: &[u8]) -> [[u32; 256]; 4] {
    match tier {
        Tier::Scalar => {
            let mut lanes = Lanes4::new();
            lanes.accumulate(bytes);
            lanes.t
        }
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 | Tier::Avx512 => {
            let t = count8(bytes);
            std::array::from_fn(|s| {
                let mut h = [0u32; 256];
                for b in 0..256 {
                    h[b] = t[s][b] + t[s + 4][b];
                }
                h
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        Tier::Avx2 | Tier::Avx512 => {
            let mut lanes = Lanes4::new();
            lanes.accumulate(bytes);
            lanes.t
        }
    }
}

/// Eight sub-tables, 16 bytes per iteration; `merge` folds the 8 KiB of
/// sub-tables into `hist` with the tier's vector adds.
#[cfg(target_arch = "x86_64")]
fn hist8(bytes: &[u8], hist: &mut [u32; 256], merge: unsafe fn(&[[u32; 256]; 8], &mut [u32; 256])) {
    let t = count8(bytes);
    // SAFETY: the caller dispatched on a detected/clamped tier, so the
    // required target features are present on this host.
    unsafe { merge(&t, hist) };
}

/// The 8-lane counting loop shared by the full histogram and the
/// positional (stride-4) variant; lane `k` holds positions `i ≡ k
/// (mod 8)`.
#[cfg(target_arch = "x86_64")]
fn count8(bytes: &[u8]) -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut it = bytes.chunks_exact(16);
    for c in &mut it {
        let a = u64::from_le_bytes(c[..8].try_into().expect("8"));
        let b = u64::from_le_bytes(c[8..].try_into().expect("8"));
        t[0][(a & 255) as usize] += 1;
        t[1][((a >> 8) & 255) as usize] += 1;
        t[2][((a >> 16) & 255) as usize] += 1;
        t[3][((a >> 24) & 255) as usize] += 1;
        t[4][((a >> 32) & 255) as usize] += 1;
        t[5][((a >> 40) & 255) as usize] += 1;
        t[6][((a >> 48) & 255) as usize] += 1;
        t[7][((a >> 56) & 255) as usize] += 1;
        t[0][(b & 255) as usize] += 1;
        t[1][((b >> 8) & 255) as usize] += 1;
        t[2][((b >> 16) & 255) as usize] += 1;
        t[3][((b >> 24) & 255) as usize] += 1;
        t[4][((b >> 32) & 255) as usize] += 1;
        t[5][((b >> 40) & 255) as usize] += 1;
        t[6][((b >> 48) & 255) as usize] += 1;
        t[7][((b >> 56) & 255) as usize] += 1;
    }
    for (k, &b) in it.remainder().iter().enumerate() {
        t[k & 7][b as usize] += 1;
    }
    t
}

/// Requires `avx2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn merge8_avx2(t: &[[u32; 256]; 8], hist: &mut [u32; 256]) {
    use std::arch::x86_64::*;
    for chunk in 0..32 {
        let at = chunk * 8;
        let mut acc = _mm256_loadu_si256(hist.as_ptr().add(at).cast());
        for lane in t.iter() {
            let v = _mm256_loadu_si256(lane.as_ptr().add(at).cast());
            acc = _mm256_add_epi32(acc, v);
        }
        _mm256_storeu_si256(hist.as_mut_ptr().add(at).cast(), acc);
    }
}

/// Requires `avx512f`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn merge8_avx512(t: &[[u32; 256]; 8], hist: &mut [u32; 256]) {
    use std::arch::x86_64::*;
    for chunk in 0..16 {
        let at = chunk * 16;
        let mut acc = _mm512_loadu_si512(hist.as_ptr().add(at).cast());
        for lane in t.iter() {
            let v = _mm512_loadu_si512(lane.as_ptr().add(at).cast());
            acc = _mm512_add_epi32(acc, v);
        }
        _mm512_storeu_si512(hist.as_mut_ptr().add(at).cast(), acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(bytes: &[u8]) -> [u32; 256] {
        let mut h = [0u32; 256];
        for &b in bytes {
            h[b as usize] += 1;
        }
        h
    }

    fn noise(len: usize, mut seed: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn every_tier_matches_the_reference_count() {
        let shapes: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 4096],
            noise(1, 3),
            noise(15, 4),
            noise(16, 5),
            noise(17, 6),
            noise(100_003, 7),
            (0..=255).collect(),
        ];
        for raw in &shapes {
            let want = reference(raw);
            for tier in Tier::ALL {
                if tier > Tier::detect() {
                    continue;
                }
                assert_eq!(
                    histogram(tier, raw),
                    want,
                    "tier {tier:?} on len {}",
                    raw.len()
                );
            }
        }
    }

    #[test]
    fn lanes4_accumulates_incrementally() {
        let a = noise(77, 11);
        let b = noise(130, 12);
        let mut lanes = Lanes4::new();
        lanes.accumulate(&a);
        lanes.accumulate(&b);
        let mut got = [0u32; 256];
        lanes.merge_into(&mut got);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        assert_eq!(got, reference(&all));
    }
}
