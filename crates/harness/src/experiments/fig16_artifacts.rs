//! Fig 16 — cuSZx's constant-block stripe artifacts on CESM-ATM at a
//! matched compression ratio (paper: CR ≈ 6.7).
//!
//! cuSZx flushes whole 128-value blocks to their range midpoint; on smooth
//! 2-D climate fields that shows up as horizontal constant runs. We
//! quantify it with the stripe score (fraction of pixels in runs of ≥ 16
//! exactly-equal values) and render slices for visual inspection.

use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use baselines::common::CuszpAdapter;
use baselines::{Compressor, CuszxLike};
use datasets::{cesm, DatasetId};
use gpu_sim::DeviceSpec;
use metrics::image::{banding_score, stripe_score, write_ppm};
use serde::Serialize;

/// Find an absolute error bound giving approximately the target CR for
/// `comp` on `field` by bisection over log(eb).
pub fn find_eb_for_ratio(
    comp: &dyn Compressor,
    field: &datasets::Field,
    target: f64,
) -> (f64, f64) {
    let spec = DeviceSpec::a100();
    let range = field.value_range() as f64;
    let (mut lo, mut hi) = (range * 1e-7, range * 0.5);
    let mut best = (lo, 0.0);
    for _ in 0..24 {
        let mid = (lo.ln() + hi.ln()) / 2.0;
        let eb = mid.exp();
        let ratio = measure_pipeline(&spec, comp, field, eb).ratio;
        best = (eb, ratio);
        if ratio > target {
            hi = eb;
        } else {
            lo = eb;
        }
        if (ratio - target).abs() / target < 0.03 {
            break;
        }
    }
    best
}

/// Measured summary.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Compressor name.
    pub compressor: String,
    /// Achieved compression ratio.
    pub ratio: f64,
    /// Stripe-excess score of the reconstruction (stripes beyond those in
    /// the original).
    pub stripe: f64,
    /// Banding score: spatial coherence of the error over 128-value row
    /// segments (1 = flush-style stripes, ~0.1 = oscillating error).
    pub banding: f64,
    /// PSNR, dB.
    pub psnr: f64,
}

/// Run the Fig 16 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig16",
        "cuSZx stripe artifacts on CESM-ATM at matched CR",
        &ctx.out_dir,
    );
    let spec = DeviceSpec::a100();
    // U200 carries mid-latitude eddy texture on top of the zonal jet: at a
    // matched CR, cuSZx's larger effective bound flushes sloped/textured
    // 128-value blocks to their midpoints — the stripe mechanism of
    // Fig 16 — while cuSZp's 32-value Lorenzo blocks track the slopes.
    let field = cesm::field("U200", &ctx.scale.shape(DatasetId::CesmAtm));
    let (h, w, plane) = field.slice2d(0);
    write_ppm(&ctx.out_dir.join("fig16_original.ppm"), h, w, &plane).expect("write ppm");
    let base_stripe = stripe_score(h, w, &plane, 64);
    let target_cr = 6.7;

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let compressors: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("cuSZp", Box::new(CuszpAdapter::new())),
        ("cuSZx", Box::new(CuszxLike::new())),
    ];
    for (name, comp) in compressors {
        let (eb, ratio) = find_eb_for_ratio(comp.as_ref(), &field, target_cr);
        let m = measure_pipeline(&spec, comp.as_ref(), &field, eb);
        let recon_field = datasets::Field::new(
            field.name.clone(),
            field.shape.clone(),
            m.reconstruction.clone(),
        );
        let (h, w, rplane) = recon_field.slice2d(0);
        let file = format!("fig16_{}.ppm", name.to_lowercase().replace('/', "_"));
        write_ppm(&ctx.out_dir.join(&file), h, w, &rplane).expect("write ppm");
        let stripe = (stripe_score(h, w, &rplane, 64) - base_stripe).max(0.0);
        let banding = banding_score(&field.data, &m.reconstruction, 128);
        rows.push(vec![
            name.to_string(),
            f2(ratio),
            format!("{stripe:.4}"),
            format!("{banding:.4}"),
            f2(m.psnr),
        ]);
        out.push(Row {
            compressor: name.to_string(),
            ratio,
            stripe,
            banding,
            psnr: m.psnr,
        });
    }
    report.table(
        &["compressor", "CR", "stripe excess", "banding", "PSNR"],
        &rows,
    );
    report.line(&format!(
        "\noriginal stripe score: {base_stripe:.4}; paper: cuSZx shows horizontal \
stripe artifacts at CR≈6.7 while cuSZp is visually identical to the original"
    ));
    let (pb, xb) = (out[0].banding, out[1].banding);
    report.line(&format!(
        "banding (error coherence over 128-value segments): cuSZx {xb:.4} vs cuSZp {pb:.4}: {}",
        if xb > pb * 1.5 {
            "flush-style stripe artifact reproduced"
        } else {
            "WARNING: expected cuSZx banding to dominate"
        }
    ));
    report.save_json(&out);
    report.save_text();
}
