//! Runtime codec dispatch keyed by format id.

use crate::codec::{
    CuszpCodec, CuszpHybridCodec, CuszxCodec, CuzfpCodec, ErrorBoundedCodec, FormatId,
};

/// A set of codecs a reader resolves shard chunk entries against.
///
/// Registration is last-wins per format id, so an application can
/// override a default codec (e.g. a different cuZFP rate for encoding —
/// decode reads the rate from the frame regardless).
#[derive(Default)]
pub struct CodecRegistry {
    codecs: Vec<Box<dyn ErrorBoundedCodec + Send + Sync>>,
}

impl CodecRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry holding the four built-in codecs: cuSZp (`CZP1`), the
    /// hybrid two-stage cuSZp (`CZH1`), cuSZx (`CZX1`), and cuZFP
    /// (`CZF1`, rate 16).
    pub fn with_defaults() -> Self {
        let mut r = Self::new();
        r.register(Box::new(CuszpCodec));
        r.register(Box::new(CuszpHybridCodec));
        r.register(Box::new(CuszxCodec));
        r.register(Box::new(CuzfpCodec::default()));
        r
    }

    /// Register `codec`, replacing any codec with the same format id.
    pub fn register(&mut self, codec: Box<dyn ErrorBoundedCodec + Send + Sync>) {
        let id = codec.format_id();
        self.codecs.retain(|c| c.format_id() != id);
        self.codecs.push(codec);
    }

    /// Resolve a format id.
    pub fn get(&self, id: FormatId) -> Option<&(dyn ErrorBoundedCodec + Send + Sync)> {
        self.codecs
            .iter()
            .find(|c| c.format_id() == id)
            .map(|c| c.as_ref())
    }

    /// Iterate the registered codecs (conformance suites run this).
    pub fn codecs(&self) -> impl Iterator<Item = &(dyn ErrorBoundedCodec + Send + Sync)> {
        self.codecs.iter().map(|c| c.as_ref())
    }
}
