//! Fig 22 workload: cuSZp over early (sparse) vs late (reverberating) RTM
//! snapshots.

use baselines::common::CuszpAdapter;
use bench::{compress_once, eb_for, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let shape = BENCH_SCALE.shape(DatasetId::Rtm);
    let comp = CuszpAdapter::new();
    let mut group = c.benchmark_group("fig22_time_varying_rtm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for step in [300usize, 1800, 3300] {
        let field = datasets::rtm::snapshot(step, &shape);
        let eb = eb_for(&field, 1e-2);
        group.bench_function(format!("t{step}"), |b| {
            b.iter(|| black_box(compress_once(&comp, black_box(&field), eb)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
