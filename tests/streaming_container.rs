//! Integration coverage for the streaming container I/O and the
//! copy-free decode path: `write_to`/`read_from`/`ChunkedReader` must
//! agree byte-for-byte with the materializing `to_bytes`/`from_bytes`
//! pair, and decoding borrowed chunk views must reproduce the owned
//! decode exactly.

use cuszp_repro::cuszp_core::{
    chunked, fast, ChunkedCompressed, ChunkedReader, Cuszp, ErrorBound, Scratch,
};
use std::io::Cursor;

fn container(seeds: &[(usize, f32)]) -> (ChunkedCompressed, Vec<Vec<f32>>) {
    let codec = Cuszp::new();
    let mut c = ChunkedCompressed::new();
    let mut fields = Vec::new();
    for &(n, seed) in seeds {
        let data: Vec<f32> = (0..n)
            .map(|i| (i as f32 * 0.013 + seed).sin() * 90.0)
            .collect();
        // Abs bound: chunks of one element have value range 0, which a
        // REL bound cannot resolve.
        c.push(codec.compress(&data, ErrorBound::Abs(0.01)));
        fields.push(data);
    }
    (c, fields)
}

#[test]
fn streamed_bytes_equal_materialized_bytes() {
    let (c, _) = container(&[(5000, 0.0), (333, 1.0), (1, 2.0), (8192, 3.0)]);
    let mut streamed = Vec::new();
    c.write_to(&mut streamed).unwrap();
    assert_eq!(streamed, c.to_bytes());

    // Both decode paths agree with the original.
    assert_eq!(ChunkedCompressed::from_bytes(&streamed).unwrap(), c);
    assert_eq!(
        ChunkedCompressed::read_from(&mut Cursor::new(&streamed)).unwrap(),
        c
    );
}

#[test]
fn chunked_reader_decodes_chunkwise_in_constant_memory() {
    let (c, fields) = container(&[(4096, 0.0), (100, 1.0), (2048, 2.0)]);
    let bytes = c.to_bytes();
    let codec = Cuszp::new();

    let mut src = Cursor::new(&bytes);
    let mut reader = ChunkedReader::new(&mut src).unwrap();
    assert_eq!(reader.num_chunks(), 3);
    // One arena serves every chunk; each borrowed view decodes straight
    // out of the reader's frame buffer.
    let mut scratch = Scratch::new();
    let mut idx = 0;
    while let Some(chunk) = reader.next_chunk().unwrap() {
        let mut restored = vec![0f32; chunk.num_elements as usize];
        fast::decompress_into(chunk, &mut scratch, &mut restored);
        let owned: Vec<f32> = codec.decompress(&c.chunks[idx]);
        assert_eq!(restored, owned, "chunk {idx}");
        // And the lossy contract holds against the original field
        // (modulo f32 representation rounding of the reconstruction).
        for (&d, &r) in fields[idx].iter().zip(&restored) {
            let slack = (d as f64).abs() * f32::EPSILON as f64 + f64::EPSILON;
            assert!((d as f64 - r as f64).abs() <= c.chunks[idx].eb * (1.0 + 1e-6) + slack);
        }
        idx += 1;
    }
    assert_eq!(idx, 3);
}

#[test]
fn copy_free_container_decode_matches_owned_decode() {
    let codec = Cuszp::new();
    let data: Vec<f32> = (0..20_000)
        .map(|i| (i as f32 * 0.004).cos() * 12.0)
        .collect();
    let c = codec.compress_chunked(&data, ErrorBound::Rel(1e-3), 4096);
    let bytes = c.to_bytes();

    let borrowed: Vec<f32> = codec.decompress_container_bytes(&bytes).unwrap();
    let owned: Vec<f32> = codec.decompress_chunked(&c);
    assert_eq!(borrowed, owned);
    assert_eq!(borrowed.len(), data.len());

    // chunk_refs views point into `bytes` (copy-free), and reproduce the
    // owned chunks exactly.
    let refs = chunked::chunk_refs(&bytes).unwrap();
    let range = bytes.as_ptr_range();
    for (r, owned_chunk) in refs.iter().zip(&c.chunks) {
        assert_eq!(&r.to_owned(), owned_chunk);
        assert!(owned_chunk.payload.is_empty() || range.contains(&r.payload.as_ptr()));
    }
}

#[test]
fn compress_into_stream_parses_as_single_chunk_frame() {
    // A compress_into output buffer is a complete wire-format stream, so
    // it can be framed into a container verbatim.
    let codec = Cuszp::new();
    let data: Vec<f32> = (0..3000).map(|i| (i as f32 * 0.01).sin()).collect();
    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let r = codec
        .compress_into(&mut scratch, &data, ErrorBound::Rel(1e-3), &mut stream)
        .to_owned();
    let owned = codec.compress(&data, ErrorBound::Rel(1e-3));
    assert_eq!(r, owned);
    assert_eq!(stream, owned.to_bytes());

    let single = ChunkedCompressed::single(owned);
    let container_bytes = single.to_bytes();
    // The framed container embeds the compress_into bytes verbatim.
    let tail = &container_bytes[container_bytes.len() - stream.len()..];
    assert_eq!(tail, &stream[..]);
}

#[test]
fn truncated_streaming_sources_error_cleanly() {
    let (c, _) = container(&[(512, 0.0), (512, 1.0)]);
    let bytes = c.to_bytes();
    for cut in [3usize, 11, 20, bytes.len() - 1] {
        let res = ChunkedCompressed::read_from(&mut Cursor::new(&bytes[..cut]));
        assert!(res.is_err(), "cut at {cut} must fail");
    }
}
