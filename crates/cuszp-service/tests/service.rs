//! End-to-end service tests over real sockets: concurrent byte-identical
//! round trips, deterministic BUSY under a full admission queue,
//! graceful shutdown drain, per-tenant cap enforcement, and error
//! semantics.

use cuszp_core::{CuszpConfig, DType, ErrorBound};
use cuszp_service::{Client, Server, ServiceConfig, ServiceError, Tenant};
use std::time::Duration;

fn wave(n: usize, phase: f32) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.021 + phase).sin() * 55.0 + (i as f32 * 0.0013).cos() * 7.0)
        .collect()
}

fn tenant_f32(cap: u32) -> Tenant {
    Tenant {
        tenant_id: 1,
        dtype: DType::F32,
        bound: ErrorBound::Abs(1e-2),
        max_payload: cap,
        hybrid: false,
    }
}

#[test]
fn concurrent_clients_roundtrip_byte_identical() {
    let server = Server::start(ServiceConfig {
        workers: 2,
        queue_depth: 8,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..4)
        .map(|k| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, tenant_f32(1 << 20)).unwrap();
                let data = wave(10_000 + 17 * k, k as f32);
                // The service must produce the exact bytes of the local
                // single-chunk container for the same input and bound.
                let expected = cuszp_core::Cuszp::new()
                    .compress_chunked(&data, ErrorBound::Abs(1e-2), data.len())
                    .to_bytes();
                let mut restored = Vec::new();
                for _ in 0..5 {
                    let container = client.compress_f32(&data).unwrap().to_vec();
                    assert_eq!(container, expected, "service output must be byte-identical");
                    client.decompress_f32(&container, &mut restored).unwrap();
                    assert_eq!(restored.len(), data.len());
                    assert!(
                        cuszp_core::verify::check_bound(&data, &restored, 1e-2),
                        "bound violated"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let metrics = server.metrics();
    let jobs = server.shutdown();
    assert_eq!(jobs, 4 * 5 * 2, "4 clients x 5 iterations x (C + D)");
    assert_eq!(
        metrics
            .compress_requests
            .load(std::sync::atomic::Ordering::Relaxed),
        20
    );
    assert_eq!(
        metrics
            .decompress_requests
            .load(std::sync::atomic::Ordering::Relaxed),
        20
    );
}

#[test]
fn f64_tenant_roundtrips_with_rel_bound() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let tenant = Tenant {
        tenant_id: 9,
        dtype: DType::F64,
        bound: ErrorBound::Rel(1e-3),
        max_payload: 1 << 20,
        hybrid: false,
    };
    let mut client = Client::connect(server.addr(), tenant).unwrap();
    let data: Vec<f64> = (0..5000)
        .map(|i| (i as f64 * 0.017).sin() * 900.0)
        .collect();
    let range = cuszp_core::value_range(&data);
    let container = client.compress_f64(&data).unwrap().to_vec();
    let mut restored = Vec::new();
    client.decompress_f64(&container, &mut restored).unwrap();
    let eb = 1e-3 * range;
    for (a, b) in data.iter().zip(&restored) {
        assert!((a - b).abs() <= eb * (1.0 + 1e-9), "REL bound violated");
    }
    server.shutdown();
}

#[test]
fn full_queue_replies_busy_not_hang() {
    // One worker with a 200 ms service floor and a rendezvous queue:
    // while client A's request is in service, client B's must bounce
    // with BUSY immediately.
    let server = Server::start(ServiceConfig {
        workers: 1,
        queue_depth: 0,
        service_floor: Duration::from_millis(200),
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let a = std::thread::spawn(move || {
        let mut client = Client::connect(addr, tenant_f32(1 << 16)).unwrap();
        let data = wave(4096, 0.0);
        client.compress_f32(&data).unwrap().len()
    });
    // Let A's request reach the worker.
    std::thread::sleep(Duration::from_millis(60));

    let mut b = Client::connect(addr, tenant_f32(1 << 16)).unwrap();
    let data = wave(4096, 1.0);
    let t0 = std::time::Instant::now();
    match b.compress_f32(&data) {
        Err(ServiceError::Busy) => {}
        other => panic!("expected BUSY, got {:?}", other.map(<[u8]>::len)),
    }
    assert!(
        t0.elapsed() < Duration::from_millis(120),
        "BUSY must be immediate, not queued behind the floor"
    );
    // The connection stays usable: once the worker frees up, retry wins.
    std::thread::sleep(Duration::from_millis(250));
    assert!(b.compress_f32(&data).is_ok());

    assert!(a.join().unwrap() > 0);
    let metrics = server.metrics();
    assert!(
        metrics
            .busy_rejections
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    // A request already in service when shutdown starts must still get
    // its response (half-close: read side only).
    let server = Server::start(ServiceConfig {
        workers: 1,
        queue_depth: 0,
        service_floor: Duration::from_millis(300),
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let client_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr, tenant_f32(1 << 16)).unwrap();
        let data = wave(2048, 0.0);
        client
            .compress_f32(&data)
            .map(<[u8]>::len)
            .map_err(|e| e.to_string())
    });
    // Request is in the worker (floor = 300 ms) when shutdown begins.
    std::thread::sleep(Duration::from_millis(100));
    let jobs = server.shutdown();
    assert_eq!(jobs, 1, "the in-flight job must be processed, not dropped");
    let result = client_thread.join().unwrap();
    assert!(
        result.unwrap() > 0,
        "client must receive the drained response"
    );
}

#[test]
fn per_tenant_cap_is_clamped_and_enforced() {
    let server = Server::start(ServiceConfig {
        max_payload: 1 << 12, // 4 KiB server-wide
        ..ServiceConfig::default()
    })
    .unwrap();
    // Tenant asks for 1 MiB; the handshake clamps to the server cap.
    let mut client = Client::connect(server.addr(), tenant_f32(1 << 20)).unwrap();
    assert_eq!(client.effective_max_payload(), 1 << 12);

    // Within the cap: fine.
    let small = wave(1024, 0.0); // 4096 bytes
    assert!(client.compress_f32(&small).is_ok());

    // Over the cap: ERR, and the server closes the connection (the
    // oversized payload was never read, so the stream is untrusted).
    let big = wave(1025, 0.0);
    match client.compress_f32(&big) {
        Err(ServiceError::Remote) => {
            assert!(
                client.last_error().contains("cap"),
                "{}",
                client.last_error()
            );
        }
        other => panic!(
            "expected Remote rejection, got {:?}",
            other.map(<[u8]>::len)
        ),
    }
    server.shutdown();
}

#[test]
fn rel_bound_on_constant_data_is_an_error_not_a_crash() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let tenant = Tenant {
        tenant_id: 3,
        dtype: DType::F32,
        bound: ErrorBound::Rel(1e-3),
        max_payload: 1 << 16,
        hybrid: false,
    };
    let mut client = Client::connect(server.addr(), tenant).unwrap();
    let constant = vec![4.25f32; 2048];
    match client.compress_f32(&constant) {
        Err(ServiceError::Remote) => {
            assert!(
                client.last_error().contains("REL"),
                "{}",
                client.last_error()
            );
        }
        other => panic!(
            "expected Remote rejection, got {:?}",
            other.map(<[u8]>::len)
        ),
    }
    // Recoverable: the same connection still serves valid requests.
    let data = wave(2048, 0.0);
    assert!(client.compress_f32(&data).is_ok());
    server.shutdown();
}

#[test]
fn bad_handshake_is_rejected() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    // Zero bound → HS_BAD_BOUND → connect fails.
    let bad = Tenant {
        tenant_id: 1,
        dtype: DType::F32,
        bound: ErrorBound::Abs(0.0),
        max_payload: 4096,
        hybrid: false,
    };
    assert!(Client::connect(server.addr(), bad).is_err());
    server.shutdown();
}

#[test]
fn corrupt_container_is_rejected_cleanly() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr(), tenant_f32(1 << 16)).unwrap();
    let data = wave(2048, 0.0);
    let mut container = client.compress_f32(&data).unwrap().to_vec();
    // Flip a byte in the container's chunk table.
    container[9] ^= 0xFF;
    let mut out = Vec::new();
    match client.decompress_f32(&container, &mut out) {
        Err(ServiceError::Remote) => {}
        other => panic!("expected Remote rejection, got {other:?}"),
    }
    // Connection survives (payload was fully read; stream in sync).
    assert!(client.compress_f32(&data).is_ok());
    server.shutdown();
}

#[test]
fn metrics_scrape_reflects_traffic() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr(), tenant_f32(1 << 20)).unwrap();
    let data = wave(8192, 0.0);
    let container = client.compress_f32(&data).unwrap().to_vec();
    let mut restored = Vec::new();
    client.decompress_f32(&container, &mut restored).unwrap();

    let mut text = String::new();
    client.metrics_into(&mut text).unwrap();
    assert!(
        text.contains("cuszp_requests_total{op=\"compress\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("cuszp_requests_total{op=\"decompress\"} 1"),
        "{text}"
    );
    assert!(text.contains("cuszp_compression_ratio"), "{text}");
    assert!(text.contains("cuszp_request_latency_seconds"), "{text}");
    assert!(text.contains("cuszp_active_connections 1"), "{text}");

    // The codec-level ratio advertised must be raw/container for the one
    // compress + one decompress (same stream both ways).
    let metrics = server.metrics();
    let raw = metrics.raw_bytes.load(std::sync::atomic::Ordering::Relaxed);
    let stream = metrics
        .stream_bytes
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(raw, 2 * (data.len() as u64) * 4);
    assert_eq!(stream, 2 * container.len() as u64);
    server.shutdown();
}

#[test]
fn empty_compress_request_roundtrips() {
    // Zero elements is a valid (if degenerate) ABS-bound request.
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr(), tenant_f32(4096)).unwrap();
    let container = client.compress_f32(&[]).unwrap().to_vec();
    let mut out = vec![1.0f32; 3];
    client.decompress_f32(&container, &mut out).unwrap();
    assert!(out.is_empty());
    server.shutdown();
}

#[test]
fn hybrid_tenant_roundtrips_both_frame_formats() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let tenant = Tenant {
        hybrid: true,
        ..tenant_f32(1 << 20)
    };
    let mut client = Client::connect(server.addr(), tenant).unwrap();

    // Highly redundant data: the entropy stage must win, so the response
    // is a raw self-framing CUSZPHY1 frame, smaller than the plain
    // container for the same input.
    let zeros = vec![0.0f32; 100_000];
    let frame = client.compress_f32(&zeros).unwrap().to_vec();
    assert!(
        frame.starts_with(&cuszp_core::hybrid::HYBRID_MAGIC),
        "redundant data must come back as a hybrid frame"
    );
    let plain = cuszp_core::Cuszp::new()
        .compress_chunked(&zeros, ErrorBound::Abs(1e-2), zeros.len())
        .to_bytes();
    assert!(frame.len() < plain.len(), "hybrid frame must be smaller");
    let mut restored = Vec::new();
    client.decompress_f32(&frame, &mut restored).unwrap();
    assert_eq!(restored, zeros);

    // A hybrid connection still accepts plain containers on decompress —
    // and round-trips arbitrary data whichever format comes back.
    client.decompress_f32(&plain, &mut restored).unwrap();
    assert_eq!(restored, zeros);
    let data = wave(10_000, 0.3);
    let payload = client.compress_f32(&data).unwrap().to_vec();
    client.decompress_f32(&payload, &mut restored).unwrap();
    assert_eq!(restored.len(), data.len());
    assert!(
        cuszp_core::verify::check_bound(&data, &restored, 1e-2),
        "bound violated through the hybrid path"
    );
    server.shutdown();
}

#[test]
fn default_codec_config_is_paper_config() {
    // Guard: the service compresses with the paper defaults unless
    // configured otherwise, so wire streams match local `Cuszp::new()`.
    let cfg = ServiceConfig::default();
    assert_eq!(cfg.codec, CuszpConfig::default());
    assert_eq!(cfg.workers, 1);
}
