//! Batch quantize/dequantize — the arithmetic hot loops of the host
//! codec, with a runtime-detected AVX-512 path.
//!
//! The scalar quantizer (`(d / 2eb).round() as i64`) spends most of its
//! time in `f64::round` (round **half away from zero** has no direct x86
//! instruction) and in the saturating float→int cast. The vector path
//! reproduces both **bit-exactly**:
//!
//! - *Rounding*: `t = trunc(x)`, `r = x − t` (exact — Sterbenz for
//!   `|t| ≥ 1`, trivially exact for `t = 0` or integral `x`), add
//!   `copysign(1, x)` where `|r| ≥ 0.5`. Branch-free, one lane step, and
//!   exactly round-half-away-from-zero including the `x = 0.49999…94`
//!   cases the classic `trunc(x + 0.5)` trick gets wrong.
//! - *Saturation*: `vcvtpd2qq` yields `i64::MIN` for negative overflow
//!   (matching Rust's `as i64`) but also for positive overflow and NaN;
//!   two masked fix-ups restore `i64::MAX` / `0` for those lanes.
//!
//! Every public function here is a drop-in for the scalar loop it
//! replaces: same outputs for every input, only faster. The differential
//! suites (`fast` unit tests, `tests/fast_vs_ref.rs`) pin this down
//! against [`crate::host_ref`], which still runs the scalar forms.

use crate::dtype::{DType, FloatData};
use crate::quantize::{dequantize, quantize};

/// Whether the AVX-512 paths are usable on this host (F: arithmetic and
/// masks; DQ: the `f64`↔`i64` vector converts). `is_x86_feature_detected!`
/// caches, so calling this per tile is free.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
}

/// Quantize `block` and apply the Lorenzo transform (`r₋₁ = 0` at the
/// block start), writing residuals into `resid[..block.len()]`. Returns
/// the maximum `unsigned_abs` over the residuals written.
///
/// Bit-identical to [`crate::quantize::quantize_block`] plus a max scan.
pub fn quantize_lorenzo_block<T: FloatData>(
    block: &[T],
    eb: f64,
    lorenzo: bool,
    resid: &mut [i64],
) -> u64 {
    debug_assert!(resid.len() >= block.len());
    #[cfg(target_arch = "x86_64")]
    if avx512() {
        // SAFETY: FloatData is sealed, so T::DTYPE faithfully tags the
        // element type; the features were detected above.
        unsafe {
            return match T::DTYPE {
                DType::F32 => avx512_impl::quantize_lorenzo_f32(
                    std::slice::from_raw_parts(block.as_ptr().cast::<f32>(), block.len()),
                    eb,
                    lorenzo,
                    resid,
                ),
                DType::F64 => avx512_impl::quantize_lorenzo_f64(
                    std::slice::from_raw_parts(block.as_ptr().cast::<f64>(), block.len()),
                    eb,
                    lorenzo,
                    resid,
                ),
            };
        }
    }
    quantize_lorenzo_scalar(block, eb, lorenzo, resid, 0)
}

/// Scalar form of [`quantize_lorenzo_block`], starting from predecessor
/// `prev` (the vector path uses it for tails mid-block).
fn quantize_lorenzo_scalar<T: FloatData>(
    block: &[T],
    eb: f64,
    lorenzo: bool,
    resid: &mut [i64],
    prev: i64,
) -> u64 {
    let mut prev = prev;
    let mut max_abs = 0u64;
    for (dst, &d) in resid.iter_mut().zip(block) {
        let q = quantize(d, eb);
        let v = if lorenzo { q.wrapping_sub(prev) } else { q };
        if lorenzo {
            prev = q;
        }
        max_abs = max_abs.max(v.unsigned_abs());
        *dst = v;
    }
    max_abs
}

/// Quantize + Lorenzo a run of whole blocks: `data` covers blocks of
/// length `l` (the last may be partial), `resid` holds `max_abs.len() · l`
/// residuals (tail block zero-padded), and `max_abs[b]` receives block
/// `b`'s maximum residual magnitude. One feature dispatch for the whole
/// run; the Lorenzo predecessor resets at every block boundary.
pub fn quantize_blocks<T: FloatData>(
    data: &[T],
    l: usize,
    eb: f64,
    lorenzo: bool,
    resid: &mut [i64],
    max_abs: &mut [u64],
) {
    debug_assert_eq!(resid.len(), max_abs.len() * l);
    debug_assert!(data.len() <= resid.len());
    let n = data.len();
    for (b, m) in max_abs.iter_mut().enumerate() {
        let start = b * l;
        let end = (start + l).min(n);
        let r = &mut resid[start..start + l];
        *m = quantize_lorenzo_block(&data[start..end], eb, lorenzo, r);
        for pad in r[end - start..].iter_mut() {
            *pad = 0; // tail padding lives in the residual domain
        }
    }
}

/// Dequantize `q[..]` into `out[..]` (`out[i] = qᵢ · 2eb`, narrowed to
/// `T`). Bit-identical to a loop of [`crate::quantize::dequantize`].
pub fn dequantize_slice<T: FloatData>(q: &[i64], eb: f64, out: &mut [T]) {
    debug_assert!(q.len() >= out.len());
    #[cfg(target_arch = "x86_64")]
    if avx512() {
        // SAFETY: as in `quantize_lorenzo_block`.
        unsafe {
            match T::DTYPE {
                DType::F32 => avx512_impl::dequantize_f32(
                    q,
                    eb,
                    std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<f32>(), out.len()),
                ),
                DType::F64 => avx512_impl::dequantize_f64(
                    q,
                    eb,
                    std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<f64>(), out.len()),
                ),
            }
            return;
        }
    }
    for (dst, &r) in out.iter_mut().zip(q) {
        *dst = dequantize(r, eb);
    }
}

/// Whether the specialized 32-element block codec
/// ([`encode_block32`]/[`decode_block32`]) is usable: it additionally
/// needs BW (512-bit byte masks) and VBMI (`vpermb`, the cross-lane byte
/// permute that does a whole 8×8 byte transpose in one instruction).
pub fn block32_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx512()
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vbmi")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Encode one `L = 32` block (sign map + `f ≤ 16` bit planes, Fig 11
/// layout) from `resid[..32]` into `out[..4 + 4f]` — the whole
/// transposition runs as three 512-bit permutes plus one in-register bit
/// transpose. Byte-identical to the generic path.
///
/// # Panics
/// Debug-asserts availability and the `L`/`f` preconditions; call only
/// when [`block32_available`] and `1 ≤ f ≤ 16`.
pub fn encode_block32(resid: &[i64], f: u8, out: &mut [u8]) {
    debug_assert!(block32_available() && resid.len() == 32 && (1..=16).contains(&f));
    debug_assert!(out.len() == 4 + 4 * f as usize);
    #[cfg(target_arch = "x86_64")]
    // SAFETY: features checked by the caller via `block32_available`.
    unsafe {
        avx512_impl::encode_block32(resid, f, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("block32 codec gated by block32_available()");
}

/// Inverse of [`encode_block32`]: decode payload bytes into the block's
/// 32 quantization integers (signs applied, Lorenzo prefix-summed when
/// `lorenzo`). Same preconditions.
pub fn decode_block32(payload: &[u8], f: u8, lorenzo: bool, q: &mut [i64]) {
    debug_assert!(block32_available() && q.len() == 32 && (1..=16).contains(&f));
    debug_assert!(payload.len() == 4 + 4 * f as usize);
    #[cfg(target_arch = "x86_64")]
    // SAFETY: features checked by the caller via `block32_available`.
    unsafe {
        avx512_impl::decode_block32(payload, f, lorenzo, q)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("block32 codec gated by block32_available()");
}

#[cfg(target_arch = "x86_64")]
mod avx512_impl {
    use super::quantize_lorenzo_scalar;
    use std::arch::x86_64::*;

    /// Byte-transpose permutation for `vpermb`: byte `8t + i` reads byte
    /// `8i + t` (its own inverse).
    const BT_IDX: [u8; 64] = {
        let mut idx = [0u8; 64];
        let mut j = 0;
        while j < 64 {
            idx[j] = (((j & 7) << 3) | (j >> 3)) as u8;
            j += 1;
        }
        idx
    };

    /// Encode-side final permute: plane-layout byte `m = 4k + g`
    /// (plane `k = 8t + c`, group `g`) reads transposed byte
    /// `32t + 8g + c`.
    const ENC_PLANES_IDX: [u8; 64] = {
        let mut idx = [0u8; 64];
        let mut m = 0;
        while m < 64 {
            let (t, c, g) = (m >> 5, (m >> 2) & 7, m & 3);
            idx[m] = (32 * t + 8 * g + c) as u8;
            m += 1;
        }
        idx
    };

    /// Decode-side inverse: transposed byte `j = 32t + 8g + c` reads
    /// plane-layout byte `32t + 4c + g`.
    const DEC_PLANES_IDX: [u8; 64] = {
        let mut idx = [0u8; 64];
        let mut j = 0;
        while j < 64 {
            let (t, g, c) = (j >> 5, (j >> 3) & 3, j & 7);
            idx[j] = (32 * t + 4 * c + g) as u8;
            j += 1;
        }
        idx
    };

    /// Eight independent 8×8 bit-matrix transposes, one per qword lane —
    /// `transpose8x8`'s three masked delta-swaps lifted to 512 bits.
    ///
    /// # Safety
    /// Requires `avx512f`.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn transpose8x8_x8(mut z: __m512i) -> __m512i {
        let m1 = _mm512_set1_epi64(0x00AA_00AA_00AA_00AAu64 as i64);
        let t = _mm512_and_si512(_mm512_xor_si512(z, _mm512_srli_epi64(z, 7)), m1);
        z = _mm512_xor_si512(z, _mm512_xor_si512(t, _mm512_slli_epi64(t, 7)));
        let m2 = _mm512_set1_epi64(0x0000_CCCC_0000_CCCCu64 as i64);
        let t = _mm512_and_si512(_mm512_xor_si512(z, _mm512_srli_epi64(z, 14)), m2);
        z = _mm512_xor_si512(z, _mm512_xor_si512(t, _mm512_slli_epi64(t, 14)));
        let m3 = _mm512_set1_epi64(0x0000_0000_F0F0_F0F0u64 as i64);
        let t = _mm512_and_si512(_mm512_xor_si512(z, _mm512_srli_epi64(z, 28)), m3);
        _mm512_xor_si512(z, _mm512_xor_si512(t, _mm512_slli_epi64(t, 28)))
    }

    /// # Safety
    /// Requires `avx512f`, `avx512dq`, `avx512bw`, `avx512vbmi`.
    #[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vbmi")]
    pub unsafe fn encode_block32(resid: &[i64], f: u8, out: &mut [u8]) {
        let bt = _mm512_loadu_si512(BT_IDX.as_ptr() as *const _);
        // Per value-group: sign mask straight off the qword sign bits,
        // then |v| byte-transposed so qword t holds chunk t's 8 bytes.
        let mut signs = 0u32;
        let mut limbs = [_mm512_setzero_si512(); 4];
        for (g, l) in limbs.iter_mut().enumerate() {
            let v = _mm512_loadu_si512(resid.as_ptr().add(8 * g) as *const _);
            signs |= (_mm512_movepi64_mask(v) as u32) << (8 * g);
            *l = _mm512_permutexvar_epi8(bt, _mm512_abs_epi64(v));
        }
        out[..4].copy_from_slice(&signs.to_le_bytes());
        // Merge the four groups' chunk-0/1 qwords into one vector laid
        // out `[x₀₀ x₀₁ x₀₂ x₀₃ x₁₀ x₁₁ x₁₂ x₁₃]` (x_{chunk, group}).
        let p01 = _mm512_permutex2var_epi64(
            limbs[0],
            _mm512_setr_epi64(0, 8, 0, 0, 1, 9, 0, 0),
            limbs[1],
        );
        let p23 = _mm512_permutex2var_epi64(
            limbs[2],
            _mm512_setr_epi64(0, 8, 0, 0, 1, 9, 0, 0),
            limbs[3],
        );
        let z = _mm512_permutex2var_epi64(p01, _mm512_setr_epi64(0, 1, 8, 9, 4, 5, 12, 13), p23);
        // Eight bit transposes at once, then one byte permute lands every
        // plane byte at its Fig 11 position; a masked store writes
        // exactly the 4·f plane bytes.
        let y = transpose8x8_x8(z);
        let planes =
            _mm512_permutexvar_epi8(_mm512_loadu_si512(ENC_PLANES_IDX.as_ptr() as *const _), y);
        let mask: u64 = if f == 16 { !0 } else { (1u64 << (4 * f)) - 1 };
        _mm512_mask_storeu_epi8(out.as_mut_ptr().add(4) as *mut _, mask, planes);
    }

    /// # Safety
    /// Requires `avx512f`, `avx512dq`, `avx512bw`, `avx512vbmi`.
    #[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vbmi")]
    pub unsafe fn decode_block32(payload: &[u8], f: u8, lorenzo: bool, q: &mut [i64]) {
        let mask: u64 = if f == 16 { !0 } else { (1u64 << (4 * f)) - 1 };
        // Zero-masked load: absent planes decode as zero magnitude bits.
        let planes = _mm512_maskz_loadu_epi8(mask, payload.as_ptr().add(4) as *const _);
        let y = _mm512_permutexvar_epi8(
            _mm512_loadu_si512(DEC_PLANES_IDX.as_ptr() as *const _),
            planes,
        );
        let z = transpose8x8_x8(y);
        let signs = u32::from_le_bytes(payload[..4].try_into().expect("sign map"));
        let bt = _mm512_loadu_si512(BT_IDX.as_ptr() as *const _);
        let zero = _mm512_setzero_si512();
        let mut carry = _mm512_setzero_si512();
        for g in 0..4 {
            // Split group g's chunk qwords back out, un-transpose bytes,
            // apply the sign map, then the Lorenzo scan.
            let idx = _mm512_setr_epi64(g as i64, 4 + g as i64, 8, 8, 8, 8, 8, 8);
            let limbs = _mm512_permutex2var_epi64(z, idx, zero);
            let abs = _mm512_permutexvar_epi8(bt, limbs);
            let smask = ((signs >> (8 * g)) & 0xFF) as u8;
            let mut v = _mm512_mask_sub_epi64(abs, smask, zero, abs);
            if lorenzo {
                // In-lane inclusive scan (three shifted adds) plus the
                // running carry from the previous group.
                v = _mm512_add_epi64(v, _mm512_alignr_epi64(v, zero, 7));
                v = _mm512_add_epi64(v, _mm512_alignr_epi64(v, zero, 6));
                v = _mm512_add_epi64(v, _mm512_alignr_epi64(v, zero, 4));
                v = _mm512_add_epi64(v, carry);
                carry = _mm512_permutexvar_epi64(_mm512_set1_epi64(7), v);
            }
            _mm512_storeu_si512(q.as_mut_ptr().add(8 * g) as *mut _, v);
        }
    }

    /// `round(x)` (half away from zero) for 8 lanes, then saturating-cast
    /// to `i64` with Rust `as` semantics.
    ///
    /// # Safety
    /// Requires `avx512f` and `avx512dq`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn round_to_i64(x: __m512d) -> __m512i {
        let absmask = _mm512_castsi512_pd(_mm512_set1_epi64(0x7FFF_FFFF_FFFF_FFFFu64 as i64));
        let t = _mm512_roundscale_pd(x, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
        let r = _mm512_sub_pd(x, t); // exact (see module docs)
        let m = _mm512_cmp_pd_mask(_mm512_and_pd(r, absmask), _mm512_set1_pd(0.5), _CMP_GE_OQ);
        let adj = _mm512_or_pd(_mm512_set1_pd(1.0), _mm512_andnot_pd(absmask, x));
        let rounded = _mm512_mask_add_pd(t, m, t, adj);
        let q = _mm512_cvt_roundpd_epi64(rounded, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
        // `as i64` saturation: +overflow → MAX (the convert already gives
        // MIN for −overflow), NaN → 0.
        let m_pos = _mm512_cmp_pd_mask(
            rounded,
            _mm512_set1_pd(9.223_372_036_854_776e18),
            _CMP_GE_OQ,
        );
        let m_nan = _mm512_cmp_pd_mask(rounded, rounded, _CMP_UNORD_Q);
        let q = _mm512_mask_mov_epi64(q, m_pos, _mm512_set1_epi64(i64::MAX));
        _mm512_mask_mov_epi64(q, m_nan, _mm512_setzero_si512())
    }

    macro_rules! quantize_lorenzo {
        ($name:ident, $elem:ty, $load:expr) => {
            /// # Safety
            /// Requires `avx512f` and `avx512dq`.
            #[target_feature(enable = "avx512f,avx512dq")]
            pub unsafe fn $name(block: &[$elem], eb: f64, lorenzo: bool, resid: &mut [i64]) -> u64 {
                let n = block.len();
                let veb = _mm512_set1_pd(2.0 * eb);
                let mut maxv = _mm512_setzero_si512();
                // Previous vector of quantization integers, for the
                // cross-lane Lorenzo shift; lane 7 seeds the next step.
                let mut prevv = _mm512_setzero_si512();
                let mut i = 0;
                while i + 8 <= n {
                    #[allow(clippy::redundant_closure_call)]
                    let x = _mm512_div_pd(($load)(block.as_ptr().add(i)), veb);
                    let q = round_to_i64(x);
                    let v = if lorenzo {
                        // [prev₇, q₀ … q₆] — the predecessor of each lane.
                        let shifted = _mm512_alignr_epi64(q, prevv, 7);
                        prevv = q;
                        _mm512_sub_epi64(q, shifted)
                    } else {
                        q
                    };
                    maxv = _mm512_max_epu64(maxv, _mm512_abs_epi64(v));
                    _mm512_storeu_si512(resid.as_mut_ptr().add(i) as *mut _, v);
                    i += 8;
                }
                let mut max_abs = _mm512_reduce_max_epu64(maxv) as u64;
                if i < n {
                    // Scalar tail, seeded with the last vector lane's q.
                    let mut lanes = [0i64; 8];
                    _mm512_storeu_si512(lanes.as_mut_ptr() as *mut _, prevv);
                    let tail_max = quantize_lorenzo_scalar(
                        &block[i..],
                        eb,
                        lorenzo,
                        &mut resid[i..n],
                        if i == 0 { 0 } else { lanes[7] },
                    );
                    max_abs = max_abs.max(tail_max);
                }
                max_abs
            }
        };
    }

    quantize_lorenzo!(quantize_lorenzo_f32, f32, |p: *const f32| {
        _mm512_cvtps_pd(_mm256_loadu_ps(p))
    });
    quantize_lorenzo!(quantize_lorenzo_f64, f64, |p: *const f64| {
        _mm512_loadu_pd(p)
    });

    /// # Safety
    /// Requires `avx512f` and `avx512dq`.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub unsafe fn dequantize_f32(q: &[i64], eb: f64, out: &mut [f32]) {
        let n = out.len();
        let veb = _mm512_set1_pd(2.0 * eb);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(q.as_ptr().add(i) as *const _);
            let d = _mm512_mul_pd(_mm512_cvtepi64_pd(v), veb);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm512_cvtpd_ps(d));
            i += 8;
        }
        for k in i..n {
            out[k] = (q[k] as f64 * 2.0 * eb) as f32;
        }
    }

    /// # Safety
    /// Requires `avx512f` and `avx512dq`.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub unsafe fn dequantize_f64(q: &[i64], eb: f64, out: &mut [f64]) {
        let n = out.len();
        let veb = _mm512_set1_pd(2.0 * eb);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(q.as_ptr().add(i) as *const _);
            _mm512_storeu_pd(
                out.as_mut_ptr().add(i),
                _mm512_mul_pd(_mm512_cvtepi64_pd(v), veb),
            );
            i += 8;
        }
        for k in i..n {
            out[k] = q[k] as f64 * 2.0 * eb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Awkward inputs for round-half-away + saturation: exact ties, the
    /// largest double below 0.5 (scaled), infinities, NaN, overflow.
    fn nasty_f64() -> Vec<f64> {
        let mut v = vec![
            0.0,
            -0.0,
            0.01,
            -0.01,
            0.03,
            -0.03,
            0.05,
            0.009_999_999_999_999_998,
            -0.009_999_999_999_999_998,
            1e30,
            -1e30,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            123.456,
            -987.654,
            1e17,
            -1e17,
            f64::MAX,
            f64::MIN,
        ];
        // A dense sweep so every vector lane position sees varied data.
        for i in 0..200 {
            v.push((i as f64 - 100.0) * 0.007_3);
        }
        v
    }

    #[test]
    fn quantize_matches_scalar_f64() {
        let data = nasty_f64();
        for lorenzo in [false, true] {
            let mut fast = vec![0i64; data.len()];
            let got = quantize_lorenzo_block(&data, 0.01, lorenzo, &mut fast);
            let mut want = vec![0i64; data.len()];
            let want_max = quantize_lorenzo_scalar(&data, 0.01, lorenzo, &mut want, 0);
            assert_eq!(fast, want, "lorenzo={lorenzo}");
            assert_eq!(got, want_max);
        }
    }

    #[test]
    fn quantize_matches_scalar_f32() {
        let data: Vec<f32> = nasty_f64().into_iter().map(|v| v as f32).collect();
        for lorenzo in [false, true] {
            for len in [0, 1, 7, 8, 9, 16, 31, data.len()] {
                let block = &data[..len];
                let mut fast = vec![0i64; len];
                let got = quantize_lorenzo_block(block, 0.05, lorenzo, &mut fast);
                let mut want = vec![0i64; len];
                let want_max = quantize_lorenzo_scalar(block, 0.05, lorenzo, &mut want, 0);
                assert_eq!(fast, want, "lorenzo={lorenzo} len={len}");
                assert_eq!(got, want_max, "lorenzo={lorenzo} len={len}");
            }
        }
    }

    #[test]
    fn dequantize_matches_scalar() {
        let q: Vec<i64> = vec![0, 1, -1, 7, -13, 1 << 40, -(1 << 52), i64::MAX, i64::MIN]
            .into_iter()
            .chain((0..100).map(|i| i * 37 - 1850))
            .collect();
        let mut f32s = vec![0.0f32; q.len()];
        dequantize_slice(&q, 0.01, &mut f32s);
        let mut f64s = vec![0.0f64; q.len()];
        dequantize_slice(&q, 0.01, &mut f64s);
        for (i, &r) in q.iter().enumerate() {
            assert_eq!(f32s[i], dequantize::<f32>(r, 0.01), "f32 at {i}");
            assert_eq!(f64s[i], dequantize::<f64>(r, 0.01), "f64 at {i}");
        }
    }

    #[test]
    fn tie_rounds_away_from_zero() {
        // 2eb = 0.5 exactly, so d = ±0.75 / ±1.25 are exact ±x.5 ties;
        // round half AWAY from zero (not to even) must come out.
        let data = [0.75f64, -0.75, 1.25, -1.25, 0.25, -0.25, 0.0, 0.0];
        let mut out = [0i64; 8];
        quantize_lorenzo_block(&data, 0.25, false, &mut out);
        assert_eq!(&out[..6], &[2, -2, 3, -3, 1, -1]);
    }
}
