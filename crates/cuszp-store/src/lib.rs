//! Block-granular random access over error-bounded compressed data.
//!
//! cuSZp's Eq-2 prefix sum already yields exact per-block byte offsets,
//! yet reading one field from an archive normally means decompressing an
//! entire stream — the gap SZx and cuSZ+ note between throughput-oriented
//! fixed-length designs and query-style scientific workloads. This crate
//! closes it in three layers:
//!
//! 1. [`ErrorBoundedCodec`] — encode/decode plus `decode_blocks(range)`
//!    partial decode, implemented by cuSZp (via
//!    [`cuszp_core::CompressedRef`] and the recomputed `(F, CmpL)` offset
//!    table), the hybrid two-stage cuSZp (`CUSZPHY1` frames read through
//!    their stored per-chunk offset table), and adapted for the
//!    `baselines` compressors (cuSZx via its descriptor table, cuZFP via
//!    fixed-rate multiplication). Frames are `f32` or `f64`; the shard
//!    index records which, and the cuSZp-backed codecs accept both.
//! 2. [`CodecRegistry`] — runtime dispatch keyed by a 4-byte format id,
//!    so a stored shard names its codec and readers resolve it at open.
//! 3. [`Shard`] — an n-D array split into chunks, each chunk one
//!    compressed frame, with a persisted chunk index (`CUSZPIX1` +
//!    `CUSZPFT1` footer). A region read touches only the chunks — and
//!    within each chunk only the 32-value (codec-defined) blocks — that
//!    overlap the request, copy-free over the shard bytes and zero-alloc
//!    after warm-up via the [`StoreScratch`] arena.
//!
//! The partial-read path is pinned by differential tests (value-identical
//! to full-decode-then-slice), a bytes-touched accounting check, and a
//! counting-allocator proof of the zero-alloc claim.
//!
//! Decoding dispatches over the host's SIMD tiers automatically; the
//! `CUSZP_SIMD` environment variable pins the tier **process-wide**
//! (every shard and reader in the process), purely a performance knob —
//! decoded values are identical at every tier.

#![deny(missing_docs)]

pub mod codec;
pub mod error;
pub mod index;
pub mod registry;
pub mod store;

pub use codec::{
    CodecScratch, CuszpCodec, CuszpHybridCodec, CuszxCodec, CuzfpCodec, ErrorBoundedCodec, FormatId,
};
pub use error::StoreError;
pub use index::{ChunkEntry, ShardIndex};
pub use registry::CodecRegistry;
pub use store::{write_shard, ReadStats, Shard, ShardElement, StoreScratch};
