//! A named, shaped array of `f32` — one "field" of a scientific dataset.

use serde::{Deserialize, Serialize};

/// One scalar field: a flat `f32` array plus its logical shape (row-major,
/// last axis fastest — matching SDRBench's raw `.f32` layout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Field name, e.g. `"U"`, `"temperature"`, `"vx"`.
    pub name: String,
    /// Logical shape; 1 to 4 axes. `shape.iter().product() == data.len()`.
    pub shape: Vec<usize>,
    /// The values, row-major.
    pub data: Vec<f32>,
}

impl Field {
    /// Build a field, checking that the shape matches the data length.
    ///
    /// # Panics
    /// Panics if `shape.iter().product() != data.len()` or if the shape has
    /// zero or more than four axes.
    pub fn new(name: impl Into<String>, shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert!(
            (1..=4).contains(&shape.len()),
            "fields are 1-D to 4-D, got {} axes",
            shape.len()
        );
        let expect: usize = shape.iter().product();
        assert_eq!(expect, data.len(), "shape/data mismatch");
        Field {
            name: name.into(),
            shape,
            data,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field has no elements (never produced by generators).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Size in bytes of the raw data.
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * 4) as u64
    }

    /// `(min, max)` over all values. NaNs are not produced by generators
    /// and are ignored here.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        (lo, hi)
    }

    /// `max − min`: the denominator of value-range-relative (REL) error
    /// bounds (paper §2.1).
    pub fn value_range(&self) -> f32 {
        let (lo, hi) = self.min_max();
        hi - lo
    }

    /// Extract a 2-D slice for visualization. For a 3-D field, fixes the
    /// *first* axis at `index` and returns the remaining 2-D plane (shape
    /// `[shape[1], shape[2]]`); for a 2-D field returns a copy; for 1-D or
    /// 4-D fields, reshapes the first plane-worth of data.
    ///
    /// Mirrors QCAT's `PlotSliceImage -p <axis> -s <index>` behaviour
    /// closely enough for the paper's slice figures.
    pub fn slice2d(&self, index: usize) -> (usize, usize, Vec<f32>) {
        match self.shape.len() {
            2 => (self.shape[0], self.shape[1], self.data.clone()),
            3 => {
                let (nz, ny, nx) = (self.shape[0], self.shape[1], self.shape[2]);
                assert!(index < nz, "slice index out of range");
                let plane = &self.data[index * ny * nx..(index + 1) * ny * nx];
                (ny, nx, plane.to_vec())
            }
            4 => {
                let (nw, nz, ny, nx) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
                let per_w = nz * ny * nx;
                let w = index.min(nw - 1);
                let plane = &self.data[w * per_w..w * per_w + ny * nx];
                (ny, nx, plane.to_vec())
            }
            _ => {
                // 1-D: wrap into a roughly square raster.
                let side = (self.data.len() as f64).sqrt() as usize;
                let side = side.max(1);
                let rows = self.data.len() / side;
                (rows, side, self.data[..rows * side].to_vec())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shape() {
        let f = Field::new("x", vec![2, 3], (0..6).map(|v| v as f32).collect());
        assert_eq!(f.len(), 6);
        assert_eq!(f.ndim(), 2);
        assert_eq!(f.size_bytes(), 24);
    }

    #[test]
    #[should_panic]
    fn new_rejects_mismatched_shape() {
        Field::new("x", vec![2, 3], vec![0.0; 5]);
    }

    #[test]
    #[should_panic]
    fn new_rejects_5d() {
        Field::new("x", vec![1, 1, 1, 1, 1], vec![0.0]);
    }

    #[test]
    fn min_max_and_range() {
        let f = Field::new("x", vec![4], vec![-1.5, 0.0, 2.5, 1.0]);
        assert_eq!(f.min_max(), (-1.5, 2.5));
        assert_eq!(f.value_range(), 4.0);
    }

    #[test]
    fn slice2d_of_3d_takes_plane() {
        let data: Vec<f32> = (0..24).map(|v| v as f32).collect();
        let f = Field::new("x", vec![2, 3, 4], data);
        let (h, w, plane) = f.slice2d(1);
        assert_eq!((h, w), (3, 4));
        assert_eq!(plane[0], 12.0);
        assert_eq!(plane.len(), 12);
    }

    #[test]
    fn slice2d_of_1d_rasterizes() {
        let f = Field::new("x", vec![10], (0..10).map(|v| v as f32).collect());
        let (h, w, plane) = f.slice2d(0);
        assert_eq!(h * w, plane.len());
        assert!(!plane.is_empty());
    }

    #[test]
    fn slice2d_of_4d_takes_first_plane_of_w() {
        let data: Vec<f32> = (0..2 * 2 * 3 * 4).map(|v| v as f32).collect();
        let f = Field::new("x", vec![2, 2, 3, 4], data);
        let (h, w, plane) = f.slice2d(1);
        assert_eq!((h, w), (3, 4));
        assert_eq!(plane[0], 24.0);
    }
}
