//! Cross-crate integration: every compressor over every dataset at Tiny
//! scale, verifying the paper's core contracts end to end.

use baselines::common::CuszpAdapter;
use baselines::{Compressor, CuszLike, CuszxLike, CuzfpLike};
use cuszp_core::ErrorBound;
use datasets::{generate_subset, DatasetId, Scale};
use gpu_sim::{DeviceSpec, Gpu};

fn bound_ok(data: &[f32], recon: &[f32], eb: f64) -> bool {
    data.iter().zip(recon).all(|(&d, &r)| {
        let slack = (d.abs().max(r.abs()) as f64) * 1.3e-7;
        (d as f64 - r as f64).abs() <= eb * (1.0 + 1e-6) + slack + f64::EPSILON
    })
}

#[test]
fn error_bounded_compressors_respect_bounds_on_all_datasets() {
    let spec = DeviceSpec::a100();
    let compressors: Vec<Box<dyn Compressor>> = vec![
        Box::new(CuszpAdapter::new()),
        Box::new(CuszLike::new()),
        Box::new(CuszxLike::new()),
    ];
    for id in DatasetId::all() {
        for field in generate_subset(id, Scale::Tiny, 2) {
            for bound in [ErrorBound::Rel(1e-1), ErrorBound::Rel(1e-3)] {
                let eb = bound.absolute(field.value_range() as f64);
                for comp in &compressors {
                    let mut gpu = Gpu::new(spec.clone());
                    let input = gpu.h2d(&field.data);
                    let stream = comp.compress(&mut gpu, &input, &field.shape, eb);
                    assert!(stream.stream_bytes() > 0);
                    let out = comp.decompress(&mut gpu, stream.as_ref());
                    let recon = gpu.d2h(&out);
                    assert_eq!(recon.len(), field.len());
                    assert!(
                        bound_ok(&field.data, &recon, eb),
                        "{} violated {} on {}/{}",
                        comp.kind().name(),
                        bound,
                        id.name(),
                        field.name
                    );
                }
            }
        }
    }
}

#[test]
fn cuzfp_fixed_rate_on_all_datasets() {
    let spec = DeviceSpec::a100();
    for id in DatasetId::all() {
        let field = generate_subset(id, Scale::Tiny, 1).remove(0);
        for rate in [8u32, 16] {
            let comp = CuzfpLike::new(rate);
            let mut gpu = Gpu::new(spec.clone());
            let input = gpu.h2d(&field.data);
            let stream = comp.compress(&mut gpu, &input, &field.shape, 0.0);
            // Fixed rate: the stream size is fully determined by geometry.
            let shape = baselines::cuzfp::collapse_shape(&field.shape);
            let block_vals = 4usize.pow(shape.len() as u32);
            let blocks: usize = shape.iter().map(|&s| s.div_ceil(4)).product();
            let budget = (rate as usize * block_vals).max(16 + block_vals);
            assert_eq!(
                stream.stream_bytes(),
                (blocks * budget.div_ceil(8)) as u64,
                "{} rate {rate}",
                id.name()
            );
            let out = comp.decompress(&mut gpu, stream.as_ref());
            assert_eq!(out.len(), field.len());
        }
    }
}

#[test]
fn cuszp_is_single_kernel_baselines_are_not() {
    let spec = DeviceSpec::a100();
    let field = generate_subset(DatasetId::Hurricane, Scale::Tiny, 1).remove(0);
    let eb = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);

    let mut gpu = Gpu::new(spec.clone());
    let input = gpu.h2d(&field.data);
    gpu.reset_timeline();
    let comp = CuszpAdapter::new();
    let stream = comp.compress(&mut gpu, &input, &field.shape, eb);
    assert_eq!(gpu.timeline().kernel_count(), 1);
    assert_eq!(gpu.timeline().memcpy_time(), 0.0);
    assert_eq!(gpu.timeline().cpu_time(), 0.0);
    drop(stream);

    let mut gpu = Gpu::new(spec.clone());
    let input = gpu.h2d(&field.data);
    gpu.reset_timeline();
    let comp = CuszLike::new();
    let _ = comp.compress(&mut gpu, &input, &field.shape, eb);
    assert!(gpu.timeline().kernel_count() > 1, "cuSZ is multi-kernel");
    assert!(gpu.timeline().cpu_time() > 0.0);
    assert!(gpu.timeline().memcpy_time() > 0.0);
}

#[test]
fn end_to_end_speedup_ordering_holds() {
    // The paper's headline shape: cuSZp end-to-end >> cuSZx > cuSZ, and
    // cuSZp ~ cuZFP. Measured at Tiny scale, margins are narrower but the
    // ordering must hold.
    let spec = DeviceSpec::a100();
    let field = generate_subset(DatasetId::Nyx, Scale::Tiny, 1).remove(0);
    let eb = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);
    let e2e = |comp: &dyn Compressor| -> f64 {
        let mut gpu = Gpu::new(spec.clone());
        let input = gpu.h2d(&field.data);
        gpu.reset_timeline();
        let _ = comp.compress(&mut gpu, &input, &field.shape, eb);
        gpu.end_to_end_throughput_gbps(field.size_bytes())
    };
    let cuszp = e2e(&CuszpAdapter::new());
    let cusz = e2e(&CuszLike::new());
    let cuszx = e2e(&CuszxLike::new());
    let cuzfp = e2e(&CuzfpLike::new(8));
    assert!(cuszp > 10.0 * cuszx, "cuszp {cuszp} vs cuszx {cuszx}");
    assert!(cuszx > cusz, "cuszx {cuszx} vs cusz {cusz}");
    assert!(
        cuzfp > 5.0 * cuszx,
        "single-kernel cuZFP must be fast too: {cuzfp} vs {cuszx}"
    );
}

#[test]
fn compression_ratio_decreases_with_tighter_bounds() {
    let spec = DeviceSpec::a100();
    let comp = CuszpAdapter::new();
    for id in DatasetId::all() {
        let field = generate_subset(id, Scale::Tiny, 1).remove(0);
        let mut prev = f64::INFINITY;
        for rel in [1e-1, 1e-2, 1e-3, 1e-4] {
            let eb = rel * field.value_range() as f64;
            let mut gpu = Gpu::new(spec.clone());
            let input = gpu.h2d(&field.data);
            let stream = comp.compress(&mut gpu, &input, &field.shape, eb);
            let ratio = field.size_bytes() as f64 / stream.stream_bytes() as f64;
            assert!(
                ratio <= prev * (1.0 + 1e-9),
                "{}: ratio rose from {prev:.2} to {ratio:.2} at rel {rel:e}",
                id.name()
            );
            prev = ratio;
        }
    }
}
