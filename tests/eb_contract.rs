//! The error-bound contract, property-tested end to end:
//! `|decompress(compress(d)) − d| ≤ eb` for every element, both dtypes,
//! absolute and relative bounds, and the awkward lengths that stress
//! partial blocks (0, 1, L−1, L, L+1, non-multiples of L).

use cuszp_repro::cuszp_core::{Cuszp, CuszpConfig, ErrorBound};
use proptest::prelude::*;

/// Lengths around the default block size L = 32 plus non-multiples.
fn awkward_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(31usize),
        Just(32usize),
        Just(33usize),
        Just(63usize),
        Just(65usize),
        Just(100usize),
        2usize..700,
    ]
}

fn eb_abs() -> impl Strategy<Value = f64> {
    prop_oneof![1e-6f64..1e-2, 1e-2f64..1.0]
}

/// Narrowing the f64 reconstruction to f32 can add up to half a ULP of
/// the value — the bound cannot hold below the type's own precision.
fn ulp_slack_f32(v: f32) -> f64 {
    v.abs() as f64 * f32::EPSILON as f64
}

/// Verify the contract for one f32 round trip at an absolute bound.
fn check_f32(data: &[f32], eb: f64) -> Result<(), TestCaseError> {
    let codec = Cuszp::new();
    let c = codec.compress(data, ErrorBound::Abs(eb));
    let back: Vec<f32> = codec.decompress(&c);
    prop_assert_eq!(back.len(), data.len());
    for (i, (&d, &r)) in data.iter().zip(&back).enumerate() {
        let err = (d as f64 - r as f64).abs();
        prop_assert!(
            err <= eb * (1.0 + 1e-6) + ulp_slack_f32(d) + f64::EPSILON,
            "element {i}: |{d} - {r}| = {err} > eb {eb}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f32_abs_bound_holds_for_awkward_lengths(
        n in awkward_len(),
        scale in 0.1f32..100.0,
        eb in eb_abs(),
    ) {
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * scale).collect();
        check_f32(&data, eb)?;
    }

    #[test]
    fn f32_abs_bound_holds_for_random_data(
        data in proptest::collection::vec(-1e4f32..1e4, 0..300),
        eb in eb_abs(),
    ) {
        check_f32(&data, eb)?;
    }

    #[test]
    fn f32_rel_bound_holds(
        data in proptest::collection::vec(-50.0f32..50.0, 2..300),
        rel in 1e-4f64..1e-1,
    ) {
        let codec = Cuszp::new();
        let eb = codec.resolve_bound(&data, ErrorBound::Rel(rel));
        prop_assume!(eb > 0.0); // constant data has zero range
        let c = codec.compress(&data, ErrorBound::Rel(rel));
        prop_assert!((c.eb - eb).abs() <= eb * 1e-12);
        let back: Vec<f32> = codec.decompress(&c);
        for (&d, &r) in data.iter().zip(&back) {
            prop_assert!(
                (d as f64 - r as f64).abs() <= eb * (1.0 + 1e-6) + ulp_slack_f32(d)
            );
        }
    }

    #[test]
    fn f64_abs_bound_holds_for_awkward_lengths(
        n in awkward_len(),
        scale in 0.1f64..1e6,
        eb in eb_abs(),
    ) {
        let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() * scale).collect();
        let codec = Cuszp::new();
        let c = codec.compress(&data, ErrorBound::Abs(eb));
        let back: Vec<f64> = codec.decompress(&c);
        prop_assert_eq!(back.len(), data.len());
        for (&d, &r) in data.iter().zip(&back) {
            prop_assert!((d - r).abs() <= eb * (1.0 + 1e-6) + d.abs() * f64::EPSILON + f64::EPSILON);
        }
    }

    #[test]
    fn constant_fields_reconstruct_within_bound(
        n in awkward_len(),
        v in -100.0f32..100.0,
        eb in eb_abs(),
    ) {
        let data = vec![v; n];
        check_f32(&data, eb)?;
    }

    #[test]
    fn all_zero_fields_cost_one_byte_per_block(
        n in 1usize..600,
        eb in eb_abs(),
    ) {
        let data = vec![0.0f32; n];
        let codec = Cuszp::new();
        let c = codec.compress(&data, ErrorBound::Abs(eb));
        // Zero blocks are the format's best case: F = 0, no payload.
        prop_assert_eq!(c.stream_bytes(), c.num_blocks() as u64);
        check_f32(&data, eb)?;
    }

    /// The lossless second stage cannot change the contract: with
    /// `hybrid: true` the serialized round trip obeys the same bound,
    /// and never costs more bytes than the plain stream.
    #[test]
    fn hybrid_stage_preserves_the_bound_f32(
        n in awkward_len(),
        scale in 0.1f32..100.0,
        eb in eb_abs(),
    ) {
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.23).sin() * scale).collect();
        let plain = Cuszp::new();
        let hybrid = Cuszp::with_config(CuszpConfig {
            hybrid: true,
            ..CuszpConfig::default()
        });
        let hy = hybrid.compress_serialized(&data, ErrorBound::Abs(eb));
        prop_assert!(
            hy.len() <= plain.compress_serialized(&data, ErrorBound::Abs(eb)).len(),
            "hybrid serialization must never be larger than plain"
        );
        let back: Vec<f32> = hybrid.decompress_serialized(&hy).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (i, (&d, &r)) in data.iter().zip(&back).enumerate() {
            let err = (d as f64 - r as f64).abs();
            prop_assert!(
                err <= eb * (1.0 + 1e-6) + ulp_slack_f32(d) + f64::EPSILON,
                "element {i}: |{d} - {r}| = {err} > eb {eb} (hybrid)"
            );
        }
    }

    #[test]
    fn hybrid_stage_preserves_the_bound_f64(
        n in awkward_len(),
        scale in 0.1f64..1e6,
        eb in eb_abs(),
    ) {
        let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).cos() * scale).collect();
        let hybrid = Cuszp::with_config(CuszpConfig {
            hybrid: true,
            ..CuszpConfig::default()
        });
        let hy = hybrid.compress_serialized(&data, ErrorBound::Abs(eb));
        let back: Vec<f64> = hybrid.decompress_serialized(&hy).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (&d, &r) in data.iter().zip(&back) {
            prop_assert!(
                (d - r).abs() <= eb * (1.0 + 1e-6) + d.abs() * f64::EPSILON + f64::EPSILON
            );
        }
    }

    #[test]
    fn values_below_eb_quantize_to_zero_blocks(
        n in 1usize..400,
        eb in 0.5f64..10.0,
    ) {
        // |d| < eb  =>  round(d / 2eb) == 0 everywhere: all-zero blocks.
        let data: Vec<f32> = (0..n)
            .map(|i| ((i as f64 * 0.71).sin() * eb * 0.9) as f32)
            .collect();
        let codec = Cuszp::new();
        let c = codec.compress(&data, ErrorBound::Abs(eb));
        prop_assert!(c.fixed_lengths.iter().all(|&f| f == 0));
        prop_assert_eq!(c.payload.len(), 0);
    }
}
