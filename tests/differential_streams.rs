//! Differential check: the fused device kernel (`compress_kernel` on the
//! gpu-sim substrate) and the sequential host reference (`host_ref`) must
//! produce **byte-identical serialized archives** — for both element
//! types, random data, and awkward lengths. Complements
//! `device_host_equivalence.rs`, which sweeps the dataset generators in
//! f32 only.

use cuszp_repro::cuszp_core::{host_ref, Cuszp, DType, ErrorBound, FloatData};
use cuszp_repro::gpu_sim::{DeviceSpec, Gpu};
use proptest::prelude::*;

/// Compress on both paths and compare the serialized bytes.
fn assert_identical_archives<T: FloatData>(data: &[T], eb: f64) -> Result<(), TestCaseError> {
    let codec = Cuszp::new();
    let host_bytes = host_ref::compress(data, eb, codec.config).to_bytes();

    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.h2d(data);
    let dev = codec
        .compress_device(&mut gpu, &input, eb)
        .to_host(&mut gpu);
    let dev_bytes = dev.to_bytes();

    prop_assert_eq!(host_bytes, dev_bytes);

    // Narrowing the reconstruction to T can add half a ULP of the value.
    let type_eps = match T::DTYPE {
        DType::F32 => f32::EPSILON as f64,
        DType::F64 => f64::EPSILON,
    };
    // And the reconstruction from the shared stream honors the bound.
    let back: Vec<T> = host_ref::decompress(&dev);
    prop_assert_eq!(back.len(), data.len());
    for (&d, &r) in data.iter().zip(&back) {
        let slack = d.to_f64().abs() * type_eps + f64::EPSILON;
        prop_assert!((d.to_f64() - r.to_f64()).abs() <= eb * (1.0 + 1e-6) + slack);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f32_archives_byte_identical(
        data in proptest::collection::vec(-1e4f32..1e4, 1..500),
        eb in 1e-5f64..1.0,
    ) {
        assert_identical_archives(&data, eb)?;
    }

    #[test]
    fn f64_archives_byte_identical(
        data in proptest::collection::vec(-1e8f64..1e8, 1..500),
        eb in 1e-3f64..100.0,
    ) {
        assert_identical_archives(&data, eb)?;
    }

    #[test]
    fn partial_block_lengths_byte_identical(
        n in prop_oneof![Just(1usize), Just(31), Just(32), Just(33), Just(95), Just(97)],
        scale in 0.5f32..50.0,
    ) {
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.29).sin() * scale).collect();
        assert_identical_archives(&data, 1e-3)?;
    }
}

#[test]
fn chunked_container_identical_across_paths() {
    // Per-chunk device compression assembled into a container equals the
    // host chunked path byte-for-byte.
    let data: Vec<f32> = (0..10_000)
        .map(|i| (i as f32 * 0.017).sin() * 7.0)
        .collect();
    let codec = Cuszp::new();
    let eb = 1e-3;
    let host = codec.compress_chunked(&data, ErrorBound::Abs(eb), 1024);

    let mut gpu = Gpu::new(DeviceSpec::a100());
    let mut dev = cuszp_repro::cuszp_core::ChunkedCompressed::new();
    for chunk in data.chunks(1024) {
        let input = gpu.h2d(chunk);
        dev.push(
            codec
                .compress_device(&mut gpu, &input, eb)
                .to_host(&mut gpu),
        );
    }
    assert_eq!(host.to_bytes(), dev.to_bytes());
}
