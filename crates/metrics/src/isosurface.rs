//! Isosurface cell-crossing similarity — the quantitative stand-in for the
//! paper's Fig 20 isosurface visualizations.
//!
//! A marching-cubes isosurface passes through exactly the grid cells whose
//! corner values straddle the isovalue. Two reconstructions look alike in
//! an isosurface render iff they select (nearly) the same crossing-cell
//! set, so we compare the sets directly with a Jaccard index: 1.0 means
//! the isosurface is cell-for-cell identical, lower values mean visible
//! artifacts (cuZFP's blocky ringing perturbs cells far from the surface).

/// Identify the crossing cells of a 3-D field at `isovalue`.
///
/// Returns a bitmask over the `(nz−1)(ny−1)(nx−1)` cells, `true` where the
/// 8 corners are not all on one side of the isovalue.
pub fn crossing_cells(shape: &[usize], data: &[f32], isovalue: f32) -> Vec<bool> {
    assert_eq!(shape.len(), 3, "isosurfaces need 3-D fields");
    let (nz, ny, nx) = (shape[0], shape[1], shape[2]);
    assert_eq!(data.len(), nz * ny * nx);
    assert!(nz >= 2 && ny >= 2 && nx >= 2, "field too small for cells");
    let mut cells = vec![false; (nz - 1) * (ny - 1) * (nx - 1)];
    let at = |z: usize, y: usize, x: usize| data[(z * ny + y) * nx + x];

    for z in 0..nz - 1 {
        for y in 0..ny - 1 {
            for x in 0..nx - 1 {
                let mut above = false;
                let mut below = false;
                for (dz, dy, dx) in [
                    (0, 0, 0),
                    (0, 0, 1),
                    (0, 1, 0),
                    (0, 1, 1),
                    (1, 0, 0),
                    (1, 0, 1),
                    (1, 1, 0),
                    (1, 1, 1),
                ] {
                    let v = at(z + dz, y + dy, x + dx);
                    if v >= isovalue {
                        above = true;
                    } else {
                        below = true;
                    }
                }
                if above && below {
                    cells[(z * (ny - 1) + y) * (nx - 1) + x] = true;
                }
            }
        }
    }
    cells
}

/// Jaccard similarity of two reconstructions' crossing-cell sets at
/// `isovalue` (1.0 = isosurfaces identical at cell resolution).
pub fn isosurface_similarity(
    shape: &[usize],
    original: &[f32],
    reconstructed: &[f32],
    isovalue: f32,
) -> f64 {
    let a = crossing_cells(shape, original, isovalue);
    let b = crossing_cells(shape, reconstructed, isovalue);
    let mut inter = 0usize;
    let mut union = 0usize;
    for (&x, &y) in a.iter().zip(&b) {
        if x && y {
            inter += 1;
        }
        if x || y {
            union += 1;
        }
    }
    if union == 0 {
        1.0 // neither field crosses: trivially identical surfaces
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A centered radial field: isosurface at r = iso is a sphere.
    fn radial(n: usize) -> Vec<f32> {
        let mut d = vec![0.0f32; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let c = (n as f32 - 1.0) / 2.0;
                    let r =
                        ((z as f32 - c).powi(2) + (y as f32 - c).powi(2) + (x as f32 - c).powi(2))
                            .sqrt();
                    d[(z * n + y) * n + x] = r;
                }
            }
        }
        d
    }

    #[test]
    fn identical_fields_similarity_one() {
        let d = radial(10);
        let s = isosurface_similarity(&[10, 10, 10], &d, &d, 3.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn sphere_has_crossings() {
        let d = radial(10);
        let cells = crossing_cells(&[10, 10, 10], &d, 3.0);
        let count = cells.iter().filter(|&&c| c).count();
        assert!(count > 0 && count < cells.len());
    }

    #[test]
    fn perturbation_lowers_similarity() {
        let d = radial(12);
        let mut noisy = d.clone();
        for (i, v) in noisy.iter_mut().enumerate() {
            *v += if i % 3 == 0 { 0.6 } else { -0.6 };
        }
        let s = isosurface_similarity(&[12, 12, 12], &d, &noisy, 4.0);
        assert!(s < 0.9, "similarity {s}");
        assert!(s >= 0.0);
    }

    #[test]
    fn no_crossings_is_trivially_similar() {
        let a = vec![0.0f32; 27];
        let b = vec![0.5f32; 27];
        let s = isosurface_similarity(&[3, 3, 3], &a, &b, 10.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_3d_panics() {
        crossing_cells(&[4, 4], &[0.0; 16], 0.0);
    }
}
