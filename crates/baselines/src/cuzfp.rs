//! cuZFP-like compressor: fixed-rate transform coding in a single kernel
//! (paper refs [21, 33], §5).
//!
//! The algorithm family of ZFP, reimplemented from its published design:
//!
//! 1. Partition the field into blocks of `4^d` values (d = 1..3; higher-D
//!    fields collapse leading axes). Edge blocks pad by clamping.
//! 2. Per block: align to a common exponent and convert to 32-bit fixed
//!    point; apply the forward decorrelating **lifting transform** along
//!    each axis; reorder coefficients by total sequency; map to
//!    **negabinary** so significance decays from the MSB.
//! 3. Emit bit planes MSB→LSB into a per-block budget of exactly
//!    `rate × 4^d` bits (16 of which hold the block exponent). Fixed rate ⇒
//!    block offsets are multiplications, so the whole compressor is one
//!    kernel — but there is **no error bound**, and low rates produce the
//!    blocky artifacts of Fig 19 and the poor 1-D quality of Fig 17e.
//!
//! Like the original, the lifting pair is not bit-exact (inverse recovers
//! fixed-point values to within ~2 LSBs of the `2^-30` block scale), which
//! is far below bit-plane truncation error at any practical rate.

use crate::common::{Compressor, CompressorKind, Stream};
use gpu_sim::{DeviceBuffer, Gpu, LaunchConfig};
use std::any::Any;

/// Step labels for the profiler.
pub const STEP_GATHER: &str = "gather";
/// Transform step label.
pub const STEP_XFORM: &str = "transform";
/// Bit-plane emission step label.
pub const STEP_PLANES: &str = "bitplanes";

/// Bits reserved per block for the common exponent.
const EXP_BITS: usize = 16;
/// Exponent bias so it serializes as unsigned.
const EXP_BIAS: i32 = 16384;

/// Device-resident cuZFP stream (fixed rate ⇒ fixed geometry).
pub struct CuzfpStream {
    /// The packed bit stream, `block_bytes` per block.
    pub bits: DeviceBuffer<u8>,
    /// Bytes per block (`rate × 4^d / 8`, rounded up to whole bytes).
    pub block_bytes: usize,
    /// Number of blocks.
    pub num_blocks: usize,
    /// Original logical shape (collapsed to ≤3 axes).
    pub shape: Vec<usize>,
    /// Original element count.
    pub num_elements: usize,
    /// Rate in bits per value.
    pub rate: u32,
}

impl Stream for CuzfpStream {
    fn stream_bytes(&self) -> u64 {
        (self.num_blocks * self.block_bytes) as u64
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The cuZFP-like compressor at a fixed `rate` (bits per value).
#[derive(Debug, Clone, Copy)]
pub struct CuzfpLike {
    /// Bits per value; the paper evaluates 4, 8, 16, 24.
    pub rate: u32,
}

impl CuzfpLike {
    /// Compressor at `rate` bits/value.
    ///
    /// # Panics
    /// Panics if the rate is 0 or above 32.
    pub fn new(rate: u32) -> Self {
        assert!((1..=32).contains(&rate), "rate must be in 1..=32");
        CuzfpLike { rate }
    }
}

/// Collapse an arbitrary shape to at most 3 axes (leading axes merge).
pub fn collapse_shape(shape: &[usize]) -> Vec<usize> {
    match shape.len() {
        0 => vec![1],
        1..=3 => shape.to_vec(),
        _ => {
            let lead: usize = shape[..shape.len() - 2].iter().product();
            vec![lead, shape[shape.len() - 2], shape[shape.len() - 1]]
        }
    }
}

/// zfp's int→negabinary-style uint mapping (order-preserving in
/// significance).
#[inline]
fn int2uint(x: i32) -> u32 {
    ((x as u32).wrapping_add(0xaaaa_aaaa)) ^ 0xaaaa_aaaa
}

/// Inverse of [`int2uint`].
#[inline]
fn uint2int(u: u32) -> i32 {
    ((u ^ 0xaaaa_aaaa).wrapping_sub(0xaaaa_aaaa)) as i32
}

/// Forward lifting transform over 4 elements at stride `s`.
fn fwd_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Inverse lifting transform over 4 elements at stride `s`.
fn inv_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Geometry helper: blocks along each axis and block count for `shape`.
fn block_grid(shape: &[usize]) -> (Vec<usize>, usize) {
    let grid: Vec<usize> = shape.iter().map(|&s| s.div_ceil(4)).collect();
    let count = grid.iter().product();
    (grid, count)
}

/// Sequency (total-order) permutation for a `4^d` block: coefficient
/// indices sorted by coordinate sum, ties by index — approximating zfp's
/// PERM tables.
fn sequency_order(d: usize) -> Vec<usize> {
    let n = 4usize.pow(d as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    let key = |i: usize| -> usize {
        let mut rem = i;
        let mut sum = 0;
        for _ in 0..d {
            sum += rem % 4;
            rem /= 4;
        }
        sum
    };
    idx.sort_by_key(|&i| (key(i), i));
    idx
}

struct BlockCodec {
    d: usize,
    n: usize,
    order: Vec<usize>,
    plane_bits: usize,
}

impl BlockCodec {
    fn new(d: usize) -> Self {
        let n = 4usize.pow(d as u32);
        BlockCodec {
            d,
            n,
            order: sequency_order(d),
            plane_bits: n,
        }
    }

    /// Encode one gathered block into `out` (exactly `budget_bits` bits).
    fn encode(&self, vals: &[f32], budget_bits: usize, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = 0;
        }
        // Common exponent.
        let max = vals.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let e = if max > 0.0 {
            max.log2().floor() as i32 + 1
        } else {
            // All-zero block: store the minimum exponent; planes stay 0.
            -EXP_BIAS
        };
        let e_store = (e + EXP_BIAS) as u32 & 0xFFFF;
        let mut writer = BitWriter { out, pos: 0 };
        writer.put(e_store as u64, EXP_BITS);

        if max > 0.0 {
            // Fixed point at 2^(30 − e).
            let scale = (30 - e) as f64;
            let mut q: Vec<i64> = vals
                .iter()
                .map(|&v| ((v as f64) * scale.exp2()).round() as i64)
                .collect();
            // Lifting along each axis.
            self.transform(&mut q, false);
            // Reorder + negabinary.
            let coeffs: Vec<u32> = self.order.iter().map(|&i| int2uint(q[i] as i32)).collect();
            // Bit planes MSB→LSB within the remaining budget.
            let mut remaining = budget_bits - EXP_BITS;
            let mut plane = 31i32;
            while remaining > 0 && plane >= 0 {
                let take = remaining.min(self.plane_bits);
                for (k, &c) in coeffs.iter().take(take).enumerate() {
                    let bit = (c >> plane) & 1;
                    let _ = k;
                    writer.put(bit as u64, 1);
                }
                remaining -= take;
                plane -= 1;
            }
        }
    }

    /// Decode one block from `bits` into `vals`.
    fn decode(&self, bits: &[u8], budget_bits: usize, vals: &mut [f32]) {
        let mut reader = BitReader { bits, pos: 0 };
        let e_store = reader.get(EXP_BITS) as u32;
        let e = e_store as i32 - EXP_BIAS;
        if e == -EXP_BIAS {
            for v in vals.iter_mut() {
                *v = 0.0;
            }
            return;
        }
        let mut coeffs = vec![0u32; self.n];
        let mut remaining = budget_bits - EXP_BITS;
        let mut plane = 31i32;
        while remaining > 0 && plane >= 0 {
            let take = remaining.min(self.plane_bits);
            for c in coeffs.iter_mut().take(take) {
                let bit = reader.get(1) as u32;
                *c |= bit << plane;
            }
            remaining -= take;
            plane -= 1;
        }
        let mut q = vec![0i64; self.n];
        for (k, &src) in self.order.iter().enumerate() {
            q[src] = uint2int(coeffs[k]) as i64;
        }
        self.transform(&mut q, true);
        let scale = (e - 30) as f64;
        for (i, v) in vals.iter_mut().enumerate() {
            *v = ((q[i] as f64) * scale.exp2()) as f32;
        }
    }

    /// Apply the lifting transform along every axis (inverse applies axes
    /// in reverse order).
    fn transform(&self, q: &mut [i64], inverse: bool) {
        match self.d {
            1 => {
                if inverse {
                    inv_lift(q, 0, 1);
                } else {
                    fwd_lift(q, 0, 1);
                }
            }
            2 => {
                if inverse {
                    for x in 0..4 {
                        inv_lift(q, x, 4);
                    }
                    for y in 0..4 {
                        inv_lift(q, 4 * y, 1);
                    }
                } else {
                    for y in 0..4 {
                        fwd_lift(q, 4 * y, 1);
                    }
                    for x in 0..4 {
                        fwd_lift(q, x, 4);
                    }
                }
            }
            _ => {
                if inverse {
                    for z in 0..4 {
                        for y in 0..4 {
                            inv_lift(q, 16 * z + 4 * y, 1);
                        }
                    }
                    for z in 0..4 {
                        for x in 0..4 {
                            inv_lift(q, 16 * z + x, 4);
                        }
                    }
                    for y in 0..4 {
                        for x in 0..4 {
                            inv_lift(q, 4 * y + x, 16);
                        }
                    }
                } else {
                    for y in 0..4 {
                        for x in 0..4 {
                            fwd_lift(q, 4 * y + x, 16);
                        }
                    }
                    for z in 0..4 {
                        for x in 0..4 {
                            fwd_lift(q, 16 * z + x, 4);
                        }
                    }
                    for z in 0..4 {
                        for y in 0..4 {
                            fwd_lift(q, 16 * z + 4 * y, 1);
                        }
                    }
                }
            }
        }
    }
}

struct BitWriter<'a> {
    out: &'a mut [u8],
    pos: usize,
}

impl BitWriter<'_> {
    fn put(&mut self, bits: u64, count: usize) {
        for k in 0..count {
            if (bits >> k) & 1 != 0 {
                self.out[self.pos / 8] |= 1 << (self.pos % 8);
            }
            self.pos += 1;
        }
    }
}

struct BitReader<'a> {
    bits: &'a [u8],
    pos: usize,
}

impl BitReader<'_> {
    fn get(&mut self, count: usize) -> u64 {
        let mut v = 0u64;
        for k in 0..count {
            let bit = (self.bits[self.pos / 8] >> (self.pos % 8)) & 1;
            v |= (bit as u64) << k;
            self.pos += 1;
        }
        v
    }
}

/// Gather a 4^d block at block-coordinates `bc`, clamping at edges.
fn gather(inp: &gpu_sim::GpuSlice<'_, f32>, shape: &[usize], bc: &[usize], vals: &mut [f32]) {
    let d = shape.len();
    let mut strides = vec![1usize; d];
    for i in (0..d.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    let n = vals.len();
    for (k, v) in vals.iter_mut().enumerate() {
        let mut rem = k;
        let mut idx = 0usize;
        for axis in (0..d).rev() {
            let o = rem % 4;
            rem /= 4;
            let coord = (bc[axis] * 4 + o).min(shape[axis] - 1);
            idx += coord * strides[axis];
        }
        let _ = n;
        *v = inp.get(idx);
    }
}

/// Scatter a decoded block back (skipping padded coordinates).
fn scatter(out: &gpu_sim::GpuSlice<'_, f32>, shape: &[usize], bc: &[usize], vals: &[f32]) -> usize {
    let d = shape.len();
    let mut strides = vec![1usize; d];
    for i in (0..d.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    let mut stored = 0usize;
    'vals: for (k, &v) in vals.iter().enumerate() {
        let mut rem = k;
        let mut idx = 0usize;
        for axis in (0..d).rev() {
            let o = rem % 4;
            rem /= 4;
            let coord = bc[axis] * 4 + o;
            if coord >= shape[axis] {
                continue 'vals; // padded position
            }
            idx += coord * strides[axis];
        }
        out.set(idx, v);
        stored += 1;
    }
    stored
}

impl Compressor for CuzfpLike {
    fn kind(&self) -> CompressorKind {
        CompressorKind::Cuzfp
    }

    fn is_error_bounded(&self) -> bool {
        false
    }

    fn compress(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<f32>,
        shape: &[usize],
        _eb: f64,
    ) -> Box<dyn Stream> {
        let shape = collapse_shape(shape);
        let n: usize = shape.iter().product();
        assert_eq!(n, input.len(), "shape/data mismatch");
        let d = shape.len();
        let block_vals = 4usize.pow(d as u32);
        let (grid, num_blocks) = block_grid(&shape);
        // zfp's `minbits`: a block always stores its exponent plus at least
        // one full bit plane, so very low nominal rates on small (1-D)
        // blocks are clamped up.
        let budget_bits = ((self.rate as usize) * block_vals).max(EXP_BITS + block_vals);
        let block_bytes = budget_bits.div_ceil(8);
        let bits = gpu.alloc::<u8>(num_blocks * block_bytes);
        let rate = self.rate;

        gpu.launch("cuzfp_encode", LaunchConfig::cover(num_blocks, 16), |ctx| {
            let inp = input.slice();
            let out = bits.slice();
            let codec = BlockCodec::new(d);
            let mut vals = vec![0.0f32; block_vals];
            let mut buf = vec![0u8; block_bytes];
            let b0 = ctx.block * 16;
            let mut blocks_done = 0u64;
            for b in b0..(b0 + 16).min(num_blocks) {
                // Decompose block index into block coordinates.
                let mut rem = b;
                let mut bc = vec![0usize; d];
                for axis in (0..d).rev() {
                    bc[axis] = rem % grid[axis];
                    rem /= grid[axis];
                }
                gather(&inp, &shape, &bc, &mut vals);
                codec.encode(&vals, budget_bits, &mut buf);
                out.write_slice(b * block_bytes, &buf);
                blocks_done += 1;
            }
            ctx.read(STEP_GATHER, blocks_done * (block_vals * 4) as u64);
            ctx.ops(STEP_GATHER, blocks_done * (block_vals * 2) as u64);
            ctx.ops(STEP_XFORM, blocks_done * (block_vals * 12) as u64);
            ctx.ops(STEP_PLANES, blocks_done * budget_bits as u64);
            ctx.write(STEP_PLANES, blocks_done * block_bytes as u64);
            let _ = rate;
        });

        Box::new(CuzfpStream {
            bits,
            block_bytes,
            num_blocks,
            shape,
            num_elements: n,
            rate: self.rate,
        })
    }

    fn decompress(&self, gpu: &mut Gpu, stream: &dyn Stream) -> DeviceBuffer<f32> {
        let s = stream
            .as_any()
            .downcast_ref::<CuzfpStream>()
            .expect("not a cuZFP stream");
        let d = s.shape.len();
        let block_vals = 4usize.pow(d as u32);
        let (grid, num_blocks) = block_grid(&s.shape);
        assert_eq!(num_blocks, s.num_blocks);
        let budget_bits = ((s.rate as usize) * block_vals).max(EXP_BITS + block_vals);
        let output = gpu.alloc::<f32>(s.num_elements);

        gpu.launch("cuzfp_decode", LaunchConfig::cover(num_blocks, 16), |ctx| {
            let inp = s.bits.slice();
            let out = output.slice();
            let codec = BlockCodec::new(d);
            let mut vals = vec![0.0f32; block_vals];
            let mut buf = vec![0u8; s.block_bytes];
            let b0 = ctx.block * 16;
            let mut blocks_done = 0u64;
            let mut stored = 0u64;
            for b in b0..(b0 + 16).min(num_blocks) {
                let mut rem = b;
                let mut bc = vec![0usize; d];
                for axis in (0..d).rev() {
                    bc[axis] = rem % grid[axis];
                    rem /= grid[axis];
                }
                let src = b * s.block_bytes;
                for (k, byte) in buf.iter_mut().enumerate() {
                    *byte = inp.get(src + k);
                }
                codec.decode(&buf, budget_bits, &mut vals);
                stored += scatter(&out, &s.shape, &bc, &vals) as u64;
                blocks_done += 1;
            }
            ctx.read(STEP_PLANES, blocks_done * s.block_bytes as u64);
            ctx.ops(STEP_PLANES, blocks_done * budget_bits as u64);
            ctx.ops(STEP_XFORM, blocks_done * (block_vals * 12) as u64);
            ctx.write(STEP_GATHER, stored * 4);
            ctx.ops(STEP_GATHER, stored * 2);
        });

        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn run(data: &[f32], shape: &[usize], rate: u32) -> (Vec<f32>, u64) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(data);
        let comp = CuzfpLike::new(rate);
        let stream = comp.compress(&mut gpu, &input, shape, 0.0);
        let bytes = stream.stream_bytes();
        let out = comp.decompress(&mut gpu, stream.as_ref());
        (gpu.d2h(&out), bytes)
    }

    #[test]
    fn lift_roundtrip_error_tiny() {
        // The pair recovers values to within a few LSBs (zfp-like).
        let mut q: Vec<i64> = vec![123456, -99999, 5555, -1, 0, 7, 1 << 20, -(1 << 18)];
        let orig = q.clone();
        fwd_lift(&mut q, 0, 1);
        inv_lift(&mut q, 0, 1);
        for (a, b) in orig.iter().zip(&q[..4]) {
            assert!((a - b).abs() <= 4, "{a} vs {b}");
        }
    }

    #[test]
    fn negabinary_roundtrip() {
        for x in [-1000000, -1, 0, 1, 42, i32::MAX / 2, i32::MIN / 2] {
            assert_eq!(uint2int(int2uint(x)), x);
        }
    }

    #[test]
    fn fixed_rate_is_exact() {
        let data: Vec<f32> = (0..64 * 64).map(|i| (i as f32 * 0.01).sin()).collect();
        for rate in [4u32, 8, 16] {
            let (_, bytes) = run(&data, &[64, 64], rate);
            // 16×16 blocks of 16 values... 2-D: 4x4 blocks → 16 values each.
            let blocks = 16 * 16;
            assert_eq!(bytes, (blocks * (rate as usize * 16).div_ceil(8)) as u64);
        }
    }

    #[test]
    fn high_rate_high_quality() {
        let data: Vec<f32> = (0..4096)
            .map(|i| {
                let (y, x) = (i / 64, i % 64);
                ((x as f32) * 0.1).sin() * ((y as f32) * 0.07).cos() * 10.0
            })
            .collect();
        let (recon, _) = run(&data, &[64, 64], 24);
        let max_err = data
            .iter()
            .zip(&recon)
            .map(|(&d, &r)| (d - r).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_err < 0.01,
            "rate-24 should be near-lossless, err {max_err}"
        );
    }

    #[test]
    fn low_rate_low_quality_but_exact_size() {
        let data: Vec<f32> = (0..4096)
            .map(|i| ((i * 2654435761usize) % 1000) as f32 - 500.0)
            .collect();
        let (recon, bytes) = run(&data, &[64, 64], 4);
        assert_eq!(bytes, (256 * (4 * 16) / 8) as u64);
        // Not error bounded: random data at 4 bits/value is badly distorted.
        let max_err = data
            .iter()
            .zip(&recon)
            .map(|(&d, &r)| (d - r).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err > 1.0, "expected visible distortion, {max_err}");
    }

    #[test]
    fn three_d_roundtrip() {
        let data: Vec<f32> = (0..16 * 16 * 16)
            .map(|i| {
                let z = i / 256;
                let y = (i / 16) % 16;
                let x = i % 16;
                (x as f32 * 0.3).sin() + (y as f32 * 0.2).cos() + z as f32 * 0.1
            })
            .collect();
        let (recon, _) = run(&data, &[16, 16, 16], 16);
        let rmse = (data
            .iter()
            .zip(&recon)
            .map(|(&d, &r)| ((d - r) as f64).powi(2))
            .sum::<f64>()
            / data.len() as f64)
            .sqrt();
        assert!(rmse < 0.01, "rmse {rmse}");
    }

    #[test]
    fn one_d_and_edge_padding() {
        let data: Vec<f32> = (0..103).map(|i| i as f32 * 0.5).collect();
        let (recon, _) = run(&data, &[103], 16);
        assert_eq!(recon.len(), 103);
        let rmse = (data
            .iter()
            .zip(&recon)
            .map(|(&d, &r)| ((d - r) as f64).powi(2))
            .sum::<f64>()
            / 103.0)
            .sqrt();
        assert!(rmse < 0.5, "rmse {rmse}");
    }

    #[test]
    fn single_kernel_each_way() {
        let data: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        gpu.reset_timeline();
        let comp = CuzfpLike::new(8);
        let stream = comp.compress(&mut gpu, &input, &[32, 32], 0.0);
        assert_eq!(gpu.timeline().kernel_count(), 1);
        assert_eq!(gpu.timeline().memcpy_time(), 0.0);
        assert_eq!(gpu.timeline().cpu_time(), 0.0);
        gpu.reset_timeline();
        let _ = comp.decompress(&mut gpu, stream.as_ref());
        assert_eq!(gpu.timeline().kernel_count(), 1);
        assert_eq!(gpu.timeline().cpu_time(), 0.0);
    }

    #[test]
    fn collapse_shapes() {
        assert_eq!(collapse_shape(&[288, 115, 69, 69]), vec![288 * 115, 69, 69]);
        assert_eq!(collapse_shape(&[10, 20]), vec![10, 20]);
        assert_eq!(collapse_shape(&[7]), vec![7]);
    }

    #[test]
    fn all_zero_block_decodes_to_zero() {
        let data = vec![0.0f32; 256];
        let (recon, _) = run(&data, &[16, 16], 8);
        assert!(recon.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        CuzfpLike::new(0);
    }
}
