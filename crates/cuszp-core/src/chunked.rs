//! Chunked container format: many independent cuSZp streams in one frame.
//!
//! The single-stream layout ([`crate::format`]) compresses one array with
//! one header. Batch workloads — many fields, or one huge field split for
//! pipelined compression — need a container that holds *several* streams
//! while keeping each chunk independently decodable. The layout is a
//! framed header plus a per-chunk length table:
//!
//! ```text
//! magic "CUSZPCH1"            8 bytes
//! num_chunks                  u32 LE
//! frame_len[num_chunks]       u64 LE each
//! frame[0] .. frame[n-1]      each exactly Compressed::to_bytes()
//! ```
//!
//! Chunk byte offsets are not stored — they are the prefix sum of the
//! length table, mirroring how the per-block offsets of the inner format
//! are recomputed from fixed lengths (Eq 2) rather than serialized.
//!
//! Every chunk is byte-identical to what the single-shot path would
//! produce for that slice at the same absolute bound, so a one-chunk
//! container is the existing format plus a 20-byte frame. Chunks may
//! differ in dtype, block length, and bound — a container can hold a
//! whole batch of unrelated fields.

use crate::format::{Compressed, FormatError, HEADER_BYTES};

/// Magic bytes of the chunked container serialization.
pub const CHUNK_MAGIC: [u8; 8] = *b"CUSZPCH1";
/// Fixed container header size (magic + chunk count), before the length
/// table.
pub const CONTAINER_HEADER_BYTES: usize = 8 + 4;
/// Hard cap on the serialized chunk count — rejects absurd headers before
/// allocating a length table for them.
pub const MAX_CHUNKS: u32 = 1 << 24;

/// A sequence of independent compressed streams with a shared frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChunkedCompressed {
    /// The chunks, in order. Decompression concatenates them.
    pub chunks: Vec<Compressed>,
}

impl ChunkedCompressed {
    /// Empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Container holding exactly one stream.
    pub fn single(c: Compressed) -> Self {
        ChunkedCompressed { chunks: vec![c] }
    }

    /// Append a chunk.
    pub fn push(&mut self, c: Compressed) {
        self.chunks.push(c);
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total element count across all chunks.
    pub fn total_elements(&self) -> u64 {
        self.chunks.iter().map(|c| c.num_elements).sum()
    }

    /// The paper's compressed size summed over chunks (fixed-length bytes
    /// + payload; what compression ratios are computed from).
    pub fn stream_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.stream_bytes()).sum()
    }

    /// Full serialized size: container header + length table + frames.
    pub fn container_bytes(&self) -> u64 {
        CONTAINER_HEADER_BYTES as u64
            + self.chunks.len() as u64 * 8
            + self.chunks.iter().map(|c| c.total_bytes()).sum::<u64>()
    }

    /// Serialize to a standalone byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.container_bytes() as usize);
        out.extend_from_slice(&CHUNK_MAGIC);
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.total_bytes().to_le_bytes());
        }
        for c in &self.chunks {
            out.extend_from_slice(&c.to_bytes());
        }
        out
    }

    /// Deserialize a container produced by [`ChunkedCompressed::to_bytes`].
    ///
    /// Malformed input — wrong magic, truncation anywhere, a length table
    /// whose sum disagrees with the buffer, or a corrupt inner frame —
    /// returns an error; it never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<ChunkedCompressed, FormatError> {
        if bytes.len() < CONTAINER_HEADER_BYTES {
            return Err(FormatError::Truncated);
        }
        if bytes[..8] != CHUNK_MAGIC {
            return Err(FormatError::BadMagic);
        }
        let n = u32::from_le_bytes(bytes[8..12].try_into().expect("len checked"));
        if n > MAX_CHUNKS {
            return Err(FormatError::Corrupt("chunk count exceeds MAX_CHUNKS"));
        }
        let n = n as usize;
        let table_end = CONTAINER_HEADER_BYTES + n * 8;
        if bytes.len() < table_end {
            return Err(FormatError::Truncated);
        }
        let mut lens = Vec::with_capacity(n);
        for i in 0..n {
            let at = CONTAINER_HEADER_BYTES + i * 8;
            let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("len checked"));
            if len < HEADER_BYTES as u64 {
                return Err(FormatError::Corrupt("chunk frame shorter than a header"));
            }
            lens.push(len);
        }
        let mut chunks = Vec::with_capacity(n);
        let mut at = table_end as u64;
        for len in lens {
            let end = at
                .checked_add(len)
                .ok_or(FormatError::Corrupt("chunk offset overflow"))?;
            if end > bytes.len() as u64 {
                return Err(FormatError::Truncated);
            }
            chunks.push(Compressed::from_bytes(&bytes[at as usize..end as usize])?);
            at = end;
        }
        if at != bytes.len() as u64 {
            return Err(FormatError::Corrupt("trailing bytes after last chunk"));
        }
        Ok(ChunkedCompressed { chunks })
    }

    /// Structural sanity check of every chunk (payload accounting, Eq 2).
    pub fn validate(&self) -> Result<(), FormatError> {
        for c in &self.chunks {
            c.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CuszpConfig;
    use crate::host_ref;

    fn chunk(n: usize, seed: f32) -> Compressed {
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01 + seed).sin()).collect();
        host_ref::compress(&data, 1e-3, CuszpConfig::default())
    }

    #[test]
    fn roundtrip_multi() {
        let c = ChunkedCompressed {
            chunks: vec![chunk(100, 0.0), chunk(33, 1.0), chunk(1, 2.0)],
        };
        let bytes = c.to_bytes();
        assert_eq!(bytes.len() as u64, c.container_bytes());
        assert_eq!(ChunkedCompressed::from_bytes(&bytes).unwrap(), c);
    }

    #[test]
    fn roundtrip_empty() {
        let c = ChunkedCompressed::new();
        let back = ChunkedCompressed::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.num_chunks(), 0);
        assert_eq!(back, c);
    }

    #[test]
    fn single_chunk_is_inner_format_plus_frame() {
        let inner = chunk(64, 0.5);
        let container = ChunkedCompressed::single(inner.clone());
        let bytes = container.to_bytes();
        // Frame = magic + count + one length entry, then the inner stream
        // verbatim.
        assert_eq!(&bytes[CONTAINER_HEADER_BYTES + 8..], &inner.to_bytes()[..]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = ChunkedCompressed::single(chunk(8, 0.0)).to_bytes();
        bytes[0] = b'Z';
        assert_eq!(
            ChunkedCompressed::from_bytes(&bytes),
            Err(FormatError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = ChunkedCompressed {
            chunks: vec![chunk(40, 0.0), chunk(40, 1.0)],
        }
        .to_bytes();
        for cut in [3, CONTAINER_HEADER_BYTES + 3, bytes.len() - 1] {
            assert!(
                ChunkedCompressed::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ChunkedCompressed::single(chunk(8, 0.0)).to_bytes();
        bytes.push(0);
        assert!(matches!(
            ChunkedCompressed::from_bytes(&bytes),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_chunk_count_rejected() {
        let mut bytes = CHUNK_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            ChunkedCompressed::from_bytes(&bytes),
            Err(FormatError::Corrupt(_))
        ));
    }
}
