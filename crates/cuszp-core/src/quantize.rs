//! Step ① — pre-quantization and 1-D 1-layer Lorenzo prediction
//! (paper §4.1, Fig 4). The *only* lossy step in the pipeline.

use crate::dtype::FloatData;

/// Quantize one value: `r = round(d / 2eb)`, guaranteeing
/// `|r·2eb − d| ≤ eb` (paper §4.1). Works for `f32` and `f64` elements.
#[inline]
pub fn quantize<T: FloatData>(d: T, eb: f64) -> i64 {
    (d.to_f64() / (2.0 * eb)).round() as i64
}

/// Reconstruct one value from its quantization integer: `d' = r·2eb`.
#[inline]
pub fn dequantize<T: FloatData>(r: i64, eb: f64) -> T {
    T::from_f64(r as f64 * 2.0 * eb)
}

/// Quantize a block and (optionally) apply the Lorenzo transform in place:
/// `l_i = r_i − r_{i−1}` with `r_{−1} = 0`. Writes into `out[..block.len()]`.
///
/// The recurrence stays inside the block, which is what makes the step
/// embarrassingly parallel across blocks (paper §4.1).
pub fn quantize_block<T: FloatData>(block: &[T], eb: f64, lorenzo: bool, out: &mut [i64]) {
    debug_assert!(out.len() >= block.len());
    let mut prev = 0i64;
    for (i, &d) in block.iter().enumerate() {
        let r = quantize(d, eb);
        // Wrapping: saturated integers from non-finite inputs must not
        // abort in debug builds; release semantics are unchanged.
        out[i] = if lorenzo { r.wrapping_sub(prev) } else { r };
        if lorenzo {
            prev = r;
        }
    }
}

/// Invert [`quantize_block`]: recover quantization integers from Lorenzo
/// residuals (prefix sum) and dequantize into `out`.
pub fn reconstruct_block<T: FloatData>(residuals: &[i64], eb: f64, lorenzo: bool, out: &mut [T]) {
    debug_assert!(out.len() >= residuals.len());
    let mut acc = 0i64;
    for (i, &l) in residuals.iter().enumerate() {
        let r = if lorenzo {
            acc = acc.wrapping_add(l);
            acc
        } else {
            l
        };
        out[i] = dequantize(r, eb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_respects_bound() {
        let eb = 0.01;
        for d in [-5.0f32, -0.015, 0.0, 0.004, 1.0, 123.456] {
            let r = quantize(d, eb);
            let d2: f32 = dequantize(r, eb);
            assert!(
                (d as f64 - d2 as f64).abs() <= eb * (1.0 + 1e-6),
                "d={d} r={r} d2={d2}"
            );
        }
    }

    #[test]
    fn values_below_eb_quantize_to_zero() {
        let eb = 0.5;
        assert_eq!(quantize(0.4f32, eb), 0);
        assert_eq!(quantize(-0.49f32, eb), 0);
        assert_ne!(quantize(0.6f32, eb), 0);
    }

    #[test]
    fn lorenzo_roundtrip() {
        let block = [1.0f32, 1.1, 1.25, 1.19, 0.0, -3.0, -2.9, 100.0];
        let eb = 0.05;
        let mut resid = [0i64; 8];
        quantize_block(&block, eb, true, &mut resid);
        let mut recon = [0.0f32; 8];
        reconstruct_block(&resid, eb, true, &mut recon);
        for (d, d2) in block.iter().zip(&recon) {
            assert!((*d as f64 - *d2 as f64).abs() <= eb * (1.0 + 1e-6));
        }
    }

    #[test]
    fn lorenzo_shrinks_smooth_residuals() {
        // Paper Fig 4: on smooth data the residual magnitudes collapse.
        let block: Vec<f32> = (0..32).map(|i| 100.0 + i as f32 * 0.1).collect();
        let eb = 0.01;
        let mut with = [0i64; 32];
        let mut without = [0i64; 32];
        quantize_block(&block, eb, true, &mut with);
        quantize_block(&block, eb, false, &mut without);
        let max_with = with.iter().skip(1).map(|l| l.unsigned_abs()).max().unwrap();
        let max_without = without.iter().map(|l| l.unsigned_abs()).max().unwrap();
        assert!(
            max_with * 100 < max_without,
            "with {max_with} vs without {max_without}"
        );
    }

    #[test]
    fn no_lorenzo_roundtrip() {
        let block = [0.5f32, -0.5, 2.0];
        let eb = 0.1;
        let mut resid = [0i64; 3];
        quantize_block(&block, eb, false, &mut resid);
        let mut recon = [0.0f32; 3];
        reconstruct_block(&resid, eb, false, &mut recon);
        for (d, d2) in block.iter().zip(&recon) {
            assert!((*d as f64 - *d2 as f64).abs() <= eb * (1.0 + 1e-6));
        }
    }

    #[test]
    fn idempotent_at_fixed_point() {
        // Quantizing an already-reconstructed value reproduces it exactly.
        let eb = 0.01;
        let d = 7.7733f32;
        let d1: f32 = dequantize(quantize(d, eb), eb);
        let d2: f32 = dequantize(quantize(d1, eb), eb);
        assert_eq!(d1, d2);
    }
}
