//! Windowed structural similarity (SSIM) for 1-D to 4-D fields.
//!
//! Follows Wang et al. 2004 (the paper's reference \[35\]) with the standard
//! constants `K1 = 0.01`, `K2 = 0.03` and the original field's value range
//! as the dynamic range `L`. Windows are hypercubes slid with a stride, and
//! the global SSIM is the mean over windows — the same construction QCAT's
//! `calculateSSIM` uses for volumetric data.

/// Window edge length per axis.
pub const WINDOW: usize = 7;
/// Stride between window origins per axis.
pub const STRIDE: usize = 3;

const K1: f64 = 0.01;
const K2: f64 = 0.03;

/// Mean SSIM between `a` (original) and `b` (reconstruction) interpreted
/// with `shape` (row-major). Returns a value in `[-1, 1]`.
///
/// # Panics
/// Panics if the lengths disagree with the shape, or shape is empty.
pub fn ssim(a: &[f32], b: &[f32], shape: &[usize]) -> f64 {
    let n: usize = shape.iter().product();
    assert_eq!(a.len(), n, "a/shape mismatch");
    assert_eq!(b.len(), n, "b/shape mismatch");
    assert!(!shape.is_empty() && shape.len() <= 4);

    // Dynamic range from the original.
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in a {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = (hi - lo) as f64;
    if range == 0.0 {
        // Constant original: SSIM is 1 iff the reconstruction matches.
        return if a == b { 1.0 } else { 0.0 };
    }
    let c1 = (K1 * range) * (K1 * range);
    let c2 = (K2 * range) * (K2 * range);

    // Window geometry per axis (window clamped to the axis length).
    let ndim = shape.len();
    let mut win = [1usize; 4];
    let mut origins: Vec<Vec<usize>> = Vec::with_capacity(ndim);
    for (d, &len) in shape.iter().enumerate() {
        let w = WINDOW.min(len);
        win[d] = w;
        let mut o: Vec<usize> = (0..=len - w).step_by(STRIDE).collect();
        // Always include the last valid origin for full coverage.
        if *o.last().expect("nonempty origins") != len - w {
            o.push(len - w);
        }
        origins.push(o);
    }

    // Row-major strides.
    let mut strides = [0usize; 4];
    let mut acc = 1usize;
    for d in (0..ndim).rev() {
        strides[d] = acc;
        acc *= shape[d];
    }

    let mut total = 0.0f64;
    let mut count = 0usize;
    // Iterate the cartesian product of per-axis origins.
    let mut cursor = vec![0usize; ndim];
    'outer: loop {
        let origin: Vec<usize> = cursor
            .iter()
            .enumerate()
            .map(|(d, &c)| origins[d][c])
            .collect();
        total += window_ssim(a, b, &origin, &win[..ndim], &strides[..ndim], c1, c2);
        count += 1;

        // Odometer increment.
        for d in (0..ndim).rev() {
            cursor[d] += 1;
            if cursor[d] < origins[d].len() {
                continue 'outer;
            }
            cursor[d] = 0;
        }
        break;
    }
    total / count as f64
}

fn window_ssim(
    a: &[f32],
    b: &[f32],
    origin: &[usize],
    win: &[usize],
    strides: &[usize],
    c1: f64,
    c2: f64,
) -> f64 {
    let ndim = origin.len();
    let count: usize = win.iter().product();
    let mut sum_a = 0.0f64;
    let mut sum_b = 0.0f64;
    let mut sum_aa = 0.0f64;
    let mut sum_bb = 0.0f64;
    let mut sum_ab = 0.0f64;

    let mut cursor = vec![0usize; ndim];
    loop {
        let mut idx = 0usize;
        for d in 0..ndim {
            idx += (origin[d] + cursor[d]) * strides[d];
        }
        let (va, vb) = (a[idx] as f64, b[idx] as f64);
        sum_a += va;
        sum_b += vb;
        sum_aa += va * va;
        sum_bb += vb * vb;
        sum_ab += va * vb;

        let mut done = true;
        for d in (0..ndim).rev() {
            cursor[d] += 1;
            if cursor[d] < win[d] {
                done = false;
                break;
            }
            cursor[d] = 0;
        }
        if done {
            break;
        }
    }

    let nf = count as f64;
    let mu_a = sum_a / nf;
    let mu_b = sum_b / nf;
    let var_a = (sum_aa / nf - mu_a * mu_a).max(0.0);
    let var_b = (sum_bb / nf - mu_b * mu_b).max(0.0);
    let cov = sum_ab / nf - mu_a * mu_b;

    ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
        / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32).collect()
    }

    #[test]
    fn identical_is_one() {
        let d = ramp(100);
        assert!((ssim(&d, &d, &[10, 10]) - 1.0).abs() < 1e-12);
        assert!((ssim(&d, &d, &[100]) - 1.0).abs() < 1e-12);
        let d3 = ramp(4 * 5 * 5);
        assert!((ssim(&d3, &d3, &[4, 5, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_noise_close_to_one() {
        let a = ramp(400);
        let b: Vec<f32> = a.iter().map(|&v| v + 0.01).collect();
        let s = ssim(&a, &b, &[20, 20]);
        assert!(s > 0.99, "ssim {s}");
    }

    #[test]
    fn structured_damage_lowers_ssim_more_than_noise() {
        // Flattening (losing structure) should hurt SSIM badly.
        let a = ramp(400);
        let mean = 199.5f32;
        let flat = vec![mean; 400];
        let s_flat = ssim(&a, &flat, &[20, 20]);
        let jitter: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let s_jitter = ssim(&a, &jitter, &[20, 20]);
        assert!(s_flat < s_jitter, "flat {s_flat} vs jitter {s_jitter}");
        assert!(s_flat < 0.6);
    }

    #[test]
    fn constant_field_edge_cases() {
        let a = vec![3.0f32; 64];
        assert_eq!(ssim(&a, &a, &[8, 8]), 1.0);
        let b = vec![4.0f32; 64];
        assert_eq!(ssim(&a, &b, &[8, 8]), 0.0);
    }

    #[test]
    fn axes_shorter_than_window_are_clamped() {
        let a = ramp(3 * 50);
        let s = ssim(&a, &a, &[3, 50]);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_in_range_for_random_pair() {
        let a: Vec<f32> = (0..512)
            .map(|i| ((i * 2654435761usize) % 1000) as f32)
            .collect();
        let b: Vec<f32> = (0..512)
            .map(|i| ((i * 40503usize + 7) % 1000) as f32)
            .collect();
        let s = ssim(&a, &b, &[8, 8, 8]);
        assert!((-1.0..=1.0).contains(&s), "ssim {s}");
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        ssim(&[1.0; 10], &[1.0; 10], &[3, 3]);
    }
}
