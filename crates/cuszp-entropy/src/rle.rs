//! PackBits run-length coding.
//!
//! The classic byte-oriented scheme: a control byte `c` announces either
//! `c + 1` literal bytes (`c ≤ 127`) or `257 − c` repeats of the next
//! byte (`c ≥ 129`); `c = 128` is reserved and rejected on decode. The
//! encoder emits repeat runs only at length ≥ 3 (a 2-byte run breaks
//! even at best) and batches literals up to 128, so worst-case expansion
//! is one control byte per 128 literals — and the chunk layer falls back
//! to `Pass` before even that is stored.
//!
//! The encoder's two scans — "how far does this run extend?" and "where
//! does the next run of ≥ 3 start?" — are the hot loops, and both
//! vectorize as equality bitmaps: compare a window against its
//! one-byte-shifted self (`vpcmpeqb` + `vpmovmskb`, or the AVX-512 mask
//! compare), then a run boundary is the first zero bit
//! (`trailing_ones`) and a triple is the first set bit of `m & (m >>
//! 1)`. The tier selects only these scan kernels; every tier emits
//! byte-identical output (the cross-tier frame-identity contract), and
//! decode is tier-independent — it is `memcpy`/`fill` dominated already.

use crate::{EntropyError, Tier};

/// Append the PackBits coding of `raw` to `out` using `tier`'s scan
/// kernels. Never reads `out`'s existing contents; may append up to
/// `raw.len() + raw.len()/128 + 1` bytes (the caller compares sizes and
/// discards a losing encode).
pub(crate) fn encode(tier: Tier, raw: &[u8], out: &mut Vec<u8>) {
    match tier {
        Tier::Scalar => encode_impl(raw, out, run_end_scalar, next_triple_scalar),
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => encode_impl(raw, out, run_end_avx2_d, next_triple_avx2_d),
        #[cfg(target_arch = "x86_64")]
        Tier::Avx512 => encode_impl(raw, out, run_end_avx512_d, next_triple_avx512_d),
        #[cfg(not(target_arch = "x86_64"))]
        Tier::Avx2 | Tier::Avx512 => encode_impl(raw, out, run_end_scalar, next_triple_scalar),
    }
}

/// The mode-independent PackBits emitter. `run_end(raw, i, cap)` returns
/// the first index in `(i, cap]`… precisely: the smallest `j` in
/// `(i, cap)` with `raw[j] != raw[i]`, or `cap`. `next_triple(raw, from,
/// cap)` returns the smallest `j` in `[from, cap)` starting a run of ≥ 3
/// (`j + 2 < raw.len()` and three equal bytes), or `cap`.
fn encode_impl(
    raw: &[u8],
    out: &mut Vec<u8>,
    run_end: fn(&[u8], usize, usize) -> usize,
    next_triple: fn(&[u8], usize, usize) -> usize,
) {
    let mut i = 0usize;
    while i < raw.len() {
        let b = raw[i];
        let end = run_end(raw, i, (i + 128).min(raw.len()));
        let run = end - i;
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(b);
            i = end;
        } else {
            // Literal batch: until a run of ≥ 3 starts or 128 bytes.
            let start = i;
            i = next_triple(raw, i + run, (start + 128).min(raw.len()));
            out.push((i - start - 1) as u8);
            out.extend_from_slice(&raw[start..i]);
        }
    }
}

fn run_end_scalar(raw: &[u8], i: usize, cap: usize) -> usize {
    let b = raw[i];
    let mut j = i + 1;
    while j < cap && raw[j] == b {
        j += 1;
    }
    j
}

fn next_triple_scalar(raw: &[u8], from: usize, cap: usize) -> usize {
    let mut j = from;
    while j < cap {
        if j + 2 < raw.len() && raw[j] == raw[j + 1] && raw[j + 1] == raw[j + 2] {
            return j;
        }
        j += 1;
    }
    cap
}

#[cfg(target_arch = "x86_64")]
fn run_end_avx2_d(raw: &[u8], i: usize, cap: usize) -> usize {
    // SAFETY: dispatched on a detected/clamped tier ≥ Avx2.
    unsafe { run_end_avx2(raw, i, cap) }
}

#[cfg(target_arch = "x86_64")]
fn next_triple_avx2_d(raw: &[u8], from: usize, cap: usize) -> usize {
    // SAFETY: dispatched on a detected/clamped tier ≥ Avx2.
    unsafe { next_triple_avx2(raw, from, cap) }
}

#[cfg(target_arch = "x86_64")]
fn run_end_avx512_d(raw: &[u8], i: usize, cap: usize) -> usize {
    // SAFETY: dispatched on a detected/clamped tier ≥ Avx512.
    unsafe { run_end_avx512(raw, i, cap) }
}

#[cfg(target_arch = "x86_64")]
fn next_triple_avx512_d(raw: &[u8], from: usize, cap: usize) -> usize {
    // SAFETY: dispatched on a detected/clamped tier ≥ Avx512.
    unsafe { next_triple_avx512(raw, from, cap) }
}

/// Requires `avx2`. 32 bytes per probe against a splat of the run byte.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_end_avx2(raw: &[u8], i: usize, cap: usize) -> usize {
    use std::arch::x86_64::*;
    let splat = _mm256_set1_epi8(raw[i] as i8);
    let mut p = i + 1;
    while p + 32 <= cap {
        let v = _mm256_loadu_si256(raw.as_ptr().add(p).cast());
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, splat)) as u32;
        if m != u32::MAX {
            return p + m.trailing_ones() as usize;
        }
        p += 32;
    }
    run_end_scalar_from(raw, raw[i], p, cap)
}

/// Requires `avx2`. Bit `k` of the window mask is `raw[p+k] ==
/// raw[p+k+1]`; a triple at `p+k` is two adjacent set bits, `m & (m >>
/// 1)` — 31 usable positions per 32-byte window (bit 31 would need the
/// next window's first equality).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn next_triple_avx2(raw: &[u8], from: usize, cap: usize) -> usize {
    use std::arch::x86_64::*;
    let mut p = from;
    while p + 33 <= raw.len() && p < cap {
        let a = _mm256_loadu_si256(raw.as_ptr().add(p).cast());
        let b = _mm256_loadu_si256(raw.as_ptr().add(p + 1).cast());
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)) as u32;
        let t = m & (m >> 1);
        if t != 0 {
            let j = p + t.trailing_zeros() as usize;
            return j.min(cap);
        }
        p += 31;
    }
    next_triple_scalar(raw, p.min(cap), cap)
}

/// Requires `avx512bw`. 64 bytes per probe.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn run_end_avx512(raw: &[u8], i: usize, cap: usize) -> usize {
    use std::arch::x86_64::*;
    let splat = _mm512_set1_epi8(raw[i] as i8);
    let mut p = i + 1;
    while p + 64 <= cap {
        let v = _mm512_loadu_si512(raw.as_ptr().add(p).cast());
        let m = _mm512_cmpeq_epi8_mask(v, splat);
        if m != u64::MAX {
            return p + m.trailing_ones() as usize;
        }
        p += 64;
    }
    run_end_scalar_from(raw, raw[i], p, cap)
}

/// Requires `avx512bw`. 63 usable positions per 64-byte window.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn next_triple_avx512(raw: &[u8], from: usize, cap: usize) -> usize {
    use std::arch::x86_64::*;
    let mut p = from;
    while p + 65 <= raw.len() && p < cap {
        let a = _mm512_loadu_si512(raw.as_ptr().add(p).cast());
        let b = _mm512_loadu_si512(raw.as_ptr().add(p + 1).cast());
        let m = _mm512_cmpeq_epi8_mask(a, b);
        let t = m & (m >> 1);
        if t != 0 {
            let j = p + t.trailing_zeros() as usize;
            return j.min(cap);
        }
        p += 63;
    }
    next_triple_scalar(raw, p.min(cap), cap)
}

#[cfg(target_arch = "x86_64")]
fn run_end_scalar_from(raw: &[u8], b: u8, mut j: usize, cap: usize) -> usize {
    while j < cap && raw[j] == b {
        j += 1;
    }
    j
}

/// Decode PackBits bytes into `out`, whose length must equal the
/// original raw length exactly. Overruns, underruns, truncated runs, and
/// the reserved control byte are all typed errors.
pub(crate) fn decode(comp: &[u8], out: &mut [u8]) -> Result<(), EntropyError> {
    let mut i = 0usize;
    let mut o = 0usize;
    while i < comp.len() {
        let c = comp[i];
        i += 1;
        if c < 128 {
            let n = c as usize + 1;
            if i + n > comp.len() {
                return Err(EntropyError("rle literal run truncated"));
            }
            if o + n > out.len() {
                return Err(EntropyError("rle output overflow"));
            }
            out[o..o + n].copy_from_slice(&comp[i..i + n]);
            i += n;
            o += n;
        } else if c == 128 {
            return Err(EntropyError("rle reserved control byte"));
        } else {
            let n = 257 - c as usize;
            if i >= comp.len() {
                return Err(EntropyError("rle repeat run truncated"));
            }
            let b = comp[i];
            i += 1;
            if o + n > out.len() {
                return Err(EntropyError("rle output overflow"));
            }
            out[o..o + n].fill(b);
            o += n;
        }
    }
    if o != out.len() {
        return Err(EntropyError("rle output underflow"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) -> Vec<u8> {
        let mut comp = Vec::new();
        encode(Tier::detect(), raw, &mut comp);
        let mut back = vec![0xEEu8; raw.len()];
        decode(&comp, &mut back).unwrap();
        assert_eq!(back, raw);
        comp
    }

    #[test]
    fn runs_collapse() {
        let mut raw = vec![0u8; 1000];
        raw.extend_from_slice(&[1, 2, 3]);
        raw.extend(vec![7u8; 300]);
        let comp = roundtrip(&raw);
        assert!(comp.len() < 30, "got {}", comp.len());
    }

    #[test]
    fn literals_cost_one_control_per_128() {
        let raw: Vec<u8> = (0..=255u16).map(|i| (i % 251) as u8).collect();
        let comp = roundtrip(&raw);
        assert!(comp.len() <= raw.len() + raw.len() / 128 + 1);
    }

    #[test]
    fn run_lengths_around_the_batch_limit() {
        for n in [1usize, 2, 3, 127, 128, 129, 256, 257] {
            roundtrip(&vec![5u8; n]);
            let mut mixed: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
            mixed.extend(vec![9u8; n]);
            roundtrip(&mixed);
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn every_tier_emits_identical_bytes() {
        // Shapes chosen to land runs and triples on and around the
        // 31/63-position window boundaries of the vector scanners.
        let mut shapes: Vec<Vec<u8>> = vec![
            vec![],
            vec![1],
            vec![3; 2],
            vec![3; 3],
            (0..200u8).collect(),
        ];
        for period in [1usize, 2, 3, 5, 29, 31, 32, 33, 63, 64, 65, 127, 128, 129] {
            let raw: Vec<u8> = (0..5000).map(|i| ((i / period) % 7) as u8).collect();
            shapes.push(raw);
        }
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut noisy = Vec::with_capacity(4096);
        for _ in 0..4096 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            // Sparse alphabet so runs of 2 (encoder-ambiguous zone) occur.
            noisy.push(((seed >> 32) & 3) as u8);
        }
        shapes.push(noisy);
        for raw in &shapes {
            let mut want = Vec::new();
            encode(Tier::Scalar, raw, &mut want);
            for tier in Tier::ALL {
                if tier > Tier::detect() {
                    continue;
                }
                let mut got = Vec::new();
                encode(tier, raw, &mut got);
                assert_eq!(got, want, "tier {tier:?} diverged on len {}", raw.len());
            }
            let mut back = vec![0u8; raw.len()];
            decode(&want, &mut back).unwrap();
            assert_eq!(&back, raw);
        }
    }
}
