//! CESM-ATM stand-in (climate model atmosphere, 2-D 1800×3600 lat×lon,
//! 79 fields).
//!
//! CESM atmosphere fields are 2-D with strong zonal (east–west) banding —
//! values vary slowly along latitude circles. That is why cuSZx's
//! constant-block flush wins CR on CESM in Table 3 (long runs fit in one
//! constant block) while producing the horizontal stripe artifacts of
//! Fig 16. The 79-field archive mixes very smooth zonal fields, moderately
//! textured fields, and sparse precipitation-like fields; `FIELDS`
//! interleaves the families so prefix subsets stay representative.

use crate::field::Field;
use crate::spectral::{gaussian_random_field, k_for, rescale, seed_from, GrfSpec};

/// Fraction of the globe covered by the "ocean" mask.
const OCEAN_FRACTION: f64 = 0.55;

/// Fields that are constant over the ocean mask (surface fields coupled to
/// prescribed sea state in the atmosphere-only CESM configuration). These
/// exact-constant regions are why cuSZx's constant blocks win CESM-ATM at
/// *every* bound in Table 3 — cuSZp's zero blocks only fire for values
/// near 0, so a constant-nonzero region still costs it `F = log2(c/2eb)`
/// bits per value.
fn masked(name: &str) -> bool {
    matches!(name, "TS" | "T850" | "FLNS" | "QREFHT" | "CLDTOT")
}

/// Representative field names (the archive has 79; these 10 span the
/// smooth/textured/sparse families, interleaved).
pub const FIELDS: [&str; 10] = [
    "TS", "U200", "CLDTOT", "PS", "PRECT", "T850", "FLNS", "PRECSNO", "V200", "QREFHT",
];

/// Zonal-band weight: how much of the field is a function of latitude only.
fn zonal_weight(name: &str) -> f64 {
    match name {
        // CESM-ATM fields are dominated by their zonal structure; the
        // residual eddy texture is a few percent of the range. This is
        // what lets cuSZx's constant blocks survive along latitude rows
        // (Table 3) and what produces its Fig 16 stripes when it flushes
        // them.
        "TS" | "T850" | "PS" => 0.97,
        "U200" | "V200" => 0.55,
        "FLNS" | "QREFHT" | "CLDTOT" => 0.93,
        _ => 0.2, // precipitation: mostly local storms
    }
}

/// Generate one CESM-ATM field at `[nlat, nlon]`.
pub fn field(name: &str, shape: &[usize]) -> Field {
    assert_eq!(shape.len(), 2, "CESM-ATM fields are 2-D");
    let (nlat, nlon) = (shape[0], shape[1]);
    let seed = seed_from(&["cesm", name]);

    // Zonal profile: a smooth function of latitude only.
    let zonal = gaussian_random_field(
        &[nlat],
        &GrfSpec {
            modes: 24,
            slope: 4.5,
            k_max: k_for(&[nlat], 30.0),
            noise: 0.0,
            anisotropy: [4.0, 1.0, 1.0, 1.0],
        },
        seed ^ 0x51,
    );
    // Eddy texture: full 2-D variability, smooth at the sample scale.
    let eddy = gaussian_random_field(
        &[nlat, nlon],
        &GrfSpec {
            modes: 80,
            slope: 3.1,
            k_max: k_for(&[nlat, nlon], 30.0),
            noise: 3.0e-4,
            anisotropy: [4.0, 1.0, 1.0, 1.0],
        },
        seed ^ 0x52,
    );

    let w = zonal_weight(name);
    let mut data = vec![0.0f32; nlat * nlon];
    for (lat, &z) in zonal.iter().enumerate() {
        for lon in 0..nlon {
            let idx = lat * nlon + lon;
            data[idx] = (w * z as f64 + (1.0 - w) * eddy[idx] as f64) as f32;
        }
    }

    // Continents/ocean layout shared across fields (seeded independently
    // of the field so every field sees the same geography).
    let geography = gaussian_random_field(
        &[nlat, nlon],
        &GrfSpec {
            modes: 48,
            slope: 3.4,
            k_max: k_for(&[nlat, nlon], 130.0),
            noise: 0.0,
            anisotropy: [4.0, 1.0, 1.0, 1.0],
        },
        seed_from(&["cesm", "geography"]),
    );
    if masked(name) {
        let mut sorted: Vec<f32> = geography.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let threshold = sorted[(OCEAN_FRACTION * sorted.len() as f64) as usize];
        // Flush ocean cells to the field's areal 30th-percentile value.
        let mut field_sorted = data.clone();
        field_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let fill = field_sorted[field_sorted.len() * 3 / 10];
        for (v, &g) in data.iter_mut().zip(&geography) {
            if g < threshold {
                *v = fill;
            }
        }
    }

    match name {
        "PRECT" | "PRECSNO" => {
            // Sparse non-negative: storms only where the field spikes.
            for v in data.iter_mut() {
                *v = (*v - 1.4).max(0.0);
            }
            if data.iter().all(|&v| v == 0.0) {
                // Degenerate tiny grids: inject a single storm cell so the
                // field keeps a non-zero range.
                data[nlat * nlon / 2] = 1.0;
            }
            rescale(&mut data, 0.0, 4.6e-7);
        }
        "CLDTOT" => {
            // Cloud fraction in [0, 1] with saturation at both ends.
            for v in data.iter_mut() {
                *v = (0.5 + 0.6 * *v).clamp(0.0, 1.0);
            }
        }
        "TS" => rescale(&mut data, 193.0, 318.0),
        "T850" => rescale(&mut data, 230.0, 300.0),
        "PS" => rescale(&mut data, 51_000.0, 104_000.0),
        "U200" | "V200" => {
            crate::spectral::concentrate(&mut data, 1.8);
            crate::spectral::rescale_signed(&mut data, -65.0, 85.0)
        }
        "FLNS" => rescale(&mut data, -30.0, 180.0),
        _ => {
            // QREFHT: moisture, non-negative heavy right tail.
            crate::spectral::lognormalize(&mut data, 1.3);
            rescale(&mut data, 0.0, 0.02)
        }
    }
    Field::new(name, shape.to_vec(), data)
}

/// Generate the 10 representative fields at `shape`.
pub fn generate(shape: &[usize]) -> Vec<Field> {
    FIELDS.iter().map(|name| field(name, shape)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: [usize; 2] = [24, 48];

    #[test]
    fn ten_2d_fields() {
        let fields = generate(&SHAPE);
        assert_eq!(fields.len(), 10);
        assert!(fields.iter().all(|f| f.ndim() == 2));
    }

    #[test]
    fn prefix_mixes_families() {
        assert_eq!(&FIELDS[..3], &["TS", "U200", "CLDTOT"]);
    }

    #[test]
    fn zonal_fields_vary_less_along_longitude() {
        // PS is zonal and not ocean-masked, so the banding is untouched.
        let f = field("PS", &[32, 64]);
        // Variance along a latitude row << variance across latitudes.
        let nlon = 64;
        let row_var: f64 = (0..32)
            .map(|lat| {
                let row = &f.data[lat * nlon..(lat + 1) * nlon];
                let m = row.iter().map(|&v| v as f64).sum::<f64>() / nlon as f64;
                row.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / nlon as f64
            })
            .sum::<f64>()
            / 32.0;
        let all_m = f.data.iter().map(|&v| v as f64).sum::<f64>() / f.len() as f64;
        let all_var = f
            .data
            .iter()
            .map(|&v| (v as f64 - all_m).powi(2))
            .sum::<f64>()
            / f.len() as f64;
        assert!(row_var < all_var * 0.6, "row {row_var} vs all {all_var}");
    }

    #[test]
    fn precipitation_is_sparse_nonnegative() {
        let f = field("PRECT", &[48, 96]);
        assert!(f.data.iter().all(|&v| v >= 0.0));
        let zeros = f.data.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > f.len() / 2, "zeros {}/{}", zeros, f.len());
    }

    #[test]
    fn cloud_fraction_bounded() {
        let f = field("CLDTOT", &SHAPE);
        assert!(f.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic() {
        assert_eq!(field("PS", &SHAPE), field("PS", &SHAPE));
    }
}
