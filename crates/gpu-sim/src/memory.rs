//! Device memory: buffers, shared slices, and device atomics.
//!
//! A [`DeviceBuffer`] plays the role of a `cudaMalloc`'d allocation. Kernel
//! blocks access it through [`GpuSlice`], the moral equivalent of passing a
//! `T*` device pointer into a kernel: many blocks may hold slices to the
//! same buffer simultaneously, and — exactly as in CUDA — racing
//! *conflicting* accesses to the same element is a bug in the kernel. All
//! kernels in this repository write disjoint regions (each block owns its
//! output range, computed via prefix sums), so every access pattern that
//! occurs is race-free. Cross-block communication must go through
//! [`DeviceAtomics`].

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Marker for plain-old-data element types that may live in device buffers.
///
/// # Safety
/// Implementors must be `Copy` types with no interior mutability or drop
/// glue, valid for concurrent disjoint element access.
pub unsafe trait DeviceCopy: Copy + Send + Sync + Default + 'static {}

macro_rules! impl_device_copy {
    ($($t:ty),*) => { $(unsafe impl DeviceCopy for $t {})* };
}
impl_device_copy!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64, usize, bool);

/// One element slot; `Sync` so blocks on different workers can address the
/// same buffer. Disjointness of actual accesses is the kernel's contract.
#[repr(transparent)]
struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: access discipline is delegated to kernel code, mirroring device
// pointers in CUDA. See module docs.
unsafe impl<T: Send> Sync for SyncCell<T> {}

/// A linear device allocation of `T`.
pub struct DeviceBuffer<T: DeviceCopy> {
    cells: Box<[SyncCell<T>]>,
}

impl<T: DeviceCopy> DeviceBuffer<T> {
    /// Allocate `len` zero/default-initialized elements.
    pub fn zeroed(len: usize) -> Self {
        let cells = (0..len)
            .map(|_| SyncCell(UnsafeCell::new(T::default())))
            .collect();
        DeviceBuffer { cells }
    }

    /// Allocate and fill from a host slice (no simulated-time charge; use
    /// [`crate::Gpu::h2d`] to account for the PCIe transfer).
    pub fn from_host(host: &[T]) -> Self {
        let cells = host.iter().map(|v| SyncCell(UnsafeCell::new(*v))).collect();
        DeviceBuffer { cells }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.cells.len() * std::mem::size_of::<T>()) as u64
    }

    /// Obtain a device-pointer-like view usable inside kernels.
    pub fn slice(&self) -> GpuSlice<'_, T> {
        GpuSlice { cells: &self.cells }
    }

    /// Copy contents back to a host `Vec` (no simulated-time charge; use
    /// [`crate::Gpu::d2h`] to account for the PCIe transfer).
    pub fn to_host(&self) -> Vec<T> {
        self.cells.iter().map(|c| unsafe { *c.0.get() }).collect()
    }

    /// Overwrite contents from a host slice of identical length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn copy_from_host(&mut self, host: &[T]) {
        assert_eq!(host.len(), self.len(), "host/device length mismatch");
        for (cell, v) in self.cells.iter_mut().zip(host) {
            *cell.0.get_mut() = *v;
        }
    }
}

impl<T: DeviceCopy + std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeviceBuffer<{}>[len={}]",
            std::any::type_name::<T>(),
            self.len()
        )
    }
}

/// A shared, kernel-side view of a [`DeviceBuffer`] — the analogue of a raw
/// device pointer parameter.
#[derive(Clone, Copy)]
pub struct GpuSlice<'a, T> {
    cells: &'a [SyncCell<T>],
}

impl<'a, T: DeviceCopy> GpuSlice<'a, T> {
    /// Number of addressable elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Load element `i`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access (a kernel bug, as in `cuda-memcheck`).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        // SAFETY: kernels guarantee no concurrent conflicting access; see
        // module docs.
        unsafe { *self.cells[i].0.get() }
    }

    /// Store `v` into element `i`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        // SAFETY: as for `get`.
        unsafe { *self.cells[i].0.get() = v }
    }

    /// Copy a host-side slice into `[offset, offset + src.len())`.
    pub fn write_slice(&self, offset: usize, src: &[T]) {
        assert!(offset + src.len() <= self.len(), "GpuSlice write OOB");
        for (k, v) in src.iter().enumerate() {
            self.set(offset + k, *v);
        }
    }

    /// Read `[offset, offset + dst.len())` into a host-side slice.
    pub fn read_slice(&self, offset: usize, dst: &mut [T]) {
        assert!(offset + dst.len() <= self.len(), "GpuSlice read OOB");
        for (k, v) in dst.iter_mut().enumerate() {
            *v = self.get(offset + k);
        }
    }
}

/// A device-resident array of 64-bit atomics: the only sanctioned channel
/// for cross-block communication (scan lookback flags, grid-wide counters).
pub struct DeviceAtomics {
    slots: Box<[AtomicU64]>,
}

impl DeviceAtomics {
    /// Allocate `len` atomics initialized to zero.
    pub fn zeroed(len: usize) -> Self {
        let slots = (0..len).map(|_| AtomicU64::new(0)).collect();
        DeviceAtomics { slots }
    }

    /// Number of atomic slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Atomic load with acquire ordering.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Acquire)
    }

    /// Atomic store with release ordering.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.slots[i].store(v, Ordering::Release)
    }

    /// Atomic fetch-add (AcqRel), returning the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.slots[i].fetch_add(v, Ordering::AcqRel)
    }

    /// Atomic max (AcqRel), returning the previous value.
    #[inline]
    pub fn fetch_max(&self, i: usize, v: u64) -> u64 {
        self.slots[i].fetch_max(v, Ordering::AcqRel)
    }

    /// Reset every slot to zero (host-side, between launches).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_host_device() {
        let host = vec![1.5f32, -2.0, 3.25];
        let buf = DeviceBuffer::from_host(&host);
        assert_eq!(buf.to_host(), host);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.size_bytes(), 12);
    }

    #[test]
    fn zeroed_is_default() {
        let buf = DeviceBuffer::<u32>::zeroed(4);
        assert_eq!(buf.to_host(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn slice_get_set() {
        let buf = DeviceBuffer::<u64>::zeroed(8);
        let s = buf.slice();
        s.set(3, 42);
        assert_eq!(s.get(3), 42);
        s.write_slice(4, &[7, 8, 9]);
        let mut out = [0u64; 3];
        s.read_slice(4, &mut out);
        assert_eq!(out, [7, 8, 9]);
        assert_eq!(buf.to_host()[3], 42);
    }

    #[test]
    #[should_panic]
    fn slice_oob_panics() {
        let buf = DeviceBuffer::<u8>::zeroed(2);
        buf.slice().get(2);
    }

    #[test]
    fn copy_from_host_overwrites() {
        let mut buf = DeviceBuffer::<i32>::zeroed(3);
        buf.copy_from_host(&[-1, -2, -3]);
        assert_eq!(buf.to_host(), vec![-1, -2, -3]);
    }

    #[test]
    fn atomics_basics() {
        let a = DeviceAtomics::zeroed(2);
        assert_eq!(a.fetch_add(0, 5), 0);
        assert_eq!(a.fetch_add(0, 5), 5);
        assert_eq!(a.load(0), 10);
        a.store(1, 99);
        assert_eq!(a.fetch_max(1, 50), 99);
        assert_eq!(a.load(1), 99);
        a.reset();
        assert_eq!(a.load(0), 0);
        assert_eq!(a.load(1), 0);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let buf = DeviceBuffer::<usize>::zeroed(1024);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let s = buf.slice();
                scope.spawn(move || {
                    for i in (w..1024).step_by(4) {
                        s.set(i, i);
                    }
                });
            }
        });
        let host = buf.to_host();
        for (i, v) in host.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }
}
