//! The zero-allocation steady-state contract, proven executable: with
//! the counting allocator installed as this binary's global allocator,
//! the second `compress_into` / `decompress_into` call at a given shape
//! must perform **zero** heap operations.

use cuszp_core::{fast, CompressedRef, CuszpConfig, Scratch};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn wave(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.021).sin() * 55.0 + (i as f32 * 0.0013).cos() * 7.0)
        .collect()
}

/// Run `f` and return the number of heap operations it performed.
fn heap_ops_of(f: impl FnOnce()) -> u64 {
    let before = alloc_counter::snapshot();
    f();
    alloc_counter::snapshot().since(&before).heap_ops()
}

#[test]
fn second_call_allocates_nothing() {
    // The data allocation itself proves the counter is live — if the
    // counting allocator were not installed, the zero assertions below
    // would pass vacuously.
    let data = wave(10_000);
    assert!(
        alloc_counter::is_installed(),
        "counting allocator must be this binary's #[global_allocator]"
    );

    let cfg = CuszpConfig::default();
    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let mut restored = vec![0f32; data.len()];

    // Warm-up: grows the arena and the output buffer.
    fast::compress_into(&mut scratch, &data, 0.01, cfg, &mut stream);
    fast::decompress_into(
        CompressedRef::parse(&stream).expect("own output parses"),
        &mut scratch,
        &mut restored,
    );

    // Steady state, single-threaded: zero heap operations of any kind.
    let compress_ops = heap_ops_of(|| {
        fast::compress_into(&mut scratch, &data, 0.01, cfg, &mut stream);
    });
    assert_eq!(compress_ops, 0, "compress_into must not touch the heap");

    let decompress_ops = heap_ops_of(|| {
        fast::decompress_into(
            CompressedRef::parse(&stream).expect("own output parses"),
            &mut scratch,
            &mut restored,
        );
    });
    assert_eq!(decompress_ops, 0, "decompress_into must not touch the heap");
}

#[test]
fn steady_state_survives_content_changes() {
    // Same shape, different values (different per-block F / payload
    // sizes): capacity is shape-dependent only, so still zero heap ops.
    let cfg = CuszpConfig::default();
    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let n = 4096;
    let mut restored = vec![0f32; n];
    let signal = wave(n + 64);

    fast::compress_into(&mut scratch, &signal[..n], 0.01, cfg, &mut stream);
    fast::decompress_into(
        cuszp_core::CompressedRef::parse(&stream).expect("own output parses"),
        &mut scratch,
        &mut restored,
    );
    let ops = heap_ops_of(|| {
        for shift in 1..64 {
            let window = &signal[shift..shift + n];
            let r = fast::compress_into(&mut scratch, window, 0.01, cfg, &mut stream);
            fast::decompress_into(r, &mut scratch, &mut restored);
        }
    });
    assert_eq!(ops, 0, "63 same-shape round trips must not touch the heap");
}

#[test]
fn f64_steady_state_is_also_clean() {
    let data: Vec<f64> = (0..5000)
        .map(|i| (i as f64 * 0.017).sin() * 900.0)
        .collect();
    let cfg = CuszpConfig::default();
    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let mut restored = vec![0f64; data.len()];

    fast::compress_into(&mut scratch, &data, 0.05, cfg, &mut stream);
    fast::decompress_into(
        cuszp_core::CompressedRef::parse(&stream).expect("own output parses"),
        &mut scratch,
        &mut restored,
    );
    let ops = heap_ops_of(|| {
        let r = fast::compress_into(&mut scratch, &data, 0.05, cfg, &mut stream);
        fast::decompress_into(r, &mut scratch, &mut restored);
    });
    assert_eq!(ops, 0);
}

#[test]
fn warmed_arena_makes_even_the_first_call_free() {
    // `Scratch::warm_for` + a `max_stream_bytes` reservation move the
    // warm-up allocations to handshake time: the FIRST compress and
    // decompress at the declared shape already run allocation-free.
    let cfg = CuszpConfig::default();
    let data = wave(6000);
    let mut scratch = Scratch::new();
    scratch.warm_for::<f32>(data.len(), cfg);
    let mut stream = Vec::with_capacity(fast::max_stream_bytes::<f32>(data.len(), cfg));
    let mut restored = vec![0f32; data.len()];

    let first_compress = heap_ops_of(|| {
        fast::compress_into(&mut scratch, &data, 0.01, cfg, &mut stream);
    });
    assert_eq!(first_compress, 0, "warmed first compress must be free");
    let first_decompress = heap_ops_of(|| {
        fast::decompress_into(
            CompressedRef::parse(&stream).expect("own output parses"),
            &mut scratch,
            &mut restored,
        );
    });
    assert_eq!(first_decompress, 0, "warmed first decompress must be free");
}

#[test]
fn container_iteration_is_allocation_free() {
    // The wire-decode path of the service: walking a serialized CUSZPCH1
    // container with `chunk_ref_iter` and decoding every chunk must not
    // touch the heap once the arena is warm.
    let data = wave(4096);
    let container =
        cuszp_core::Cuszp::new().compress_chunked(&data, cuszp_core::ErrorBound::Abs(0.01), 1024);
    let bytes = container.to_bytes();
    let mut scratch = Scratch::new();
    let mut restored = vec![0f32; data.len()];

    let decode_all = |scratch: &mut Scratch, restored: &mut [f32]| {
        let mut at = 0usize;
        for chunk in cuszp_core::chunk_ref_iter(&bytes).expect("container parses") {
            let chunk = chunk.expect("chunk parses");
            let n = chunk.num_elements as usize;
            fast::decompress_into(chunk, scratch, &mut restored[at..at + n]);
            at += n;
        }
        assert_eq!(at, data.len());
    };
    decode_all(&mut scratch, &mut restored); // warm-up
    let ops = heap_ops_of(|| decode_all(&mut scratch, &mut restored));
    assert_eq!(ops, 0, "container walk + decode must not touch the heap");
}

#[test]
fn shrinking_the_shape_stays_clean() {
    // Monotonic growth means a smaller follow-up shape is already
    // covered by the warm arena — no resize in either direction.
    let cfg = CuszpConfig::default();
    let big = wave(8192);
    let small = wave(1024);
    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let mut restored = vec![0f32; big.len()];

    fast::compress_into(&mut scratch, &big, 0.01, cfg, &mut stream);
    fast::decompress_into(
        cuszp_core::CompressedRef::parse(&stream).expect("own output parses"),
        &mut scratch,
        &mut restored,
    );
    let ops = heap_ops_of(|| {
        let r = fast::compress_into(&mut scratch, &small, 0.01, cfg, &mut stream);
        fast::decompress_into(r, &mut scratch, &mut restored[..small.len()]);
    });
    assert_eq!(ops, 0, "smaller shape after a larger warm-up must be free");
}
