//! §6 discussion — cuSZp kernel compression throughput on lower-end GPUs.
//!
//! Paper: 100.34 (A100), 87.44 (V100), 80.13 (RTX 3080) GB/s on one RTM
//! snapshot; differences track memory-subsystem capability.

use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use baselines::common::CuszpAdapter;
use cuszp_core::ErrorBound;
use datasets::{rtm, DatasetId};
use gpu_sim::DeviceSpec;
use serde::Serialize;

/// Paper §6 values (GB/s).
pub const PAPER: [(&str, f64); 3] = [("A100", 100.34), ("V100", 87.44), ("RTX3080", 80.13)];

/// One GPU's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// GPU name.
    pub gpu: String,
    /// Kernel compression throughput, GB/s.
    pub kernel_gbps: f64,
    /// Paper value, GB/s.
    pub paper_gbps: f64,
}

/// Run the lower-end GPU experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "gpus",
        "cuSZp kernel throughput on A100 / V100 / RTX 3080 (RTM snapshot)",
        &ctx.out_dir,
    );
    let field = rtm::snapshot(1500, &ctx.scale.shape(DatasetId::Rtm));
    let eb = ErrorBound::Rel(1e-2).absolute(field.value_range() as f64);
    let comp = CuszpAdapter::new();

    let specs = [
        DeviceSpec::a100(),
        DeviceSpec::v100(),
        DeviceSpec::rtx3080(),
    ];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (spec, (name, paper)) in specs.into_iter().zip(PAPER) {
        let m = measure_pipeline(&spec, &comp, &field, eb);
        rows.push(vec![name.to_string(), f2(m.comp_kernel_gbps), f2(paper)]);
        out.push(Row {
            gpu: name.to_string(),
            kernel_gbps: m.comp_kernel_gbps,
            paper_gbps: paper,
        });
    }
    report.table(&["GPU", "kernel comp GB/s", "paper GB/s"], &rows);
    assert!(
        out[0].kernel_gbps > out[1].kernel_gbps && out[1].kernel_gbps > out[2].kernel_gbps,
        "ordering must follow memory capability"
    );
    report.line("\nordering A100 > V100 > RTX 3080 reproduced");
    report.save_json(&out);
    report.save_text();
}
