//! Differential property tests for partial decode: for random shapes,
//! bounds, and block ranges, `decode_blocks(range)` must be
//! **value-identical** to full-decode-then-slice — for every registered
//! codec, including ranges straddling chunk boundaries and the ragged
//! final block. The store-level region reader is held to the same oracle
//! over random 2-D shards.

use cuszp_repro::cuszp_store::{
    write_shard, CodecRegistry, CodecScratch, ErrorBoundedCodec, Shard, StoreScratch,
};
use proptest::prelude::*;

/// Lengths that stress ragged tails of every codec's block size
/// (cuSZp 32, cuSZx 128, cuZFP 4).
fn awkward_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(4usize),
        Just(31usize),
        Just(33usize),
        Just(127usize),
        Just(129usize),
        Just(255usize),
        2usize..900,
    ]
}

fn signal(n: usize, scale: f32, phase: f32) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as f32 + phase) * 0.11).sin() * scale + (i as f32 * 0.013).cos())
        .collect()
}

/// Check one codec: every sub-range of blocks decodes to the same values
/// as slicing the full decode, and reports a byte count consistent with
/// decoding the full frame.
fn check_codec(
    codec: &dyn ErrorBoundedCodec,
    data: &[f32],
    eb: f64,
    lo: usize,
    hi: usize,
    scratch: &mut CodecScratch,
) -> Result<(), TestCaseError> {
    let mut frame = Vec::new();
    codec.encode(data, eb, scratch, &mut frame);
    let n = data.len();
    let l = codec.block_len();
    let num_blocks = n.div_ceil(l);
    let mut full = vec![0f32; n];
    let full_bytes = codec
        .decode_into(&frame, scratch, &mut full)
        .expect("own frame decodes");

    // Map the random pair onto a valid block range (may be empty).
    let b0 = lo % (num_blocks + 1);
    let b1 = b0 + hi % (num_blocks - b0 + 1);
    let e0 = (b0 * l).min(n);
    let e1 = (b1 * l).min(n);
    let mut part = vec![0f32; e1 - e0];
    let part_bytes = codec
        .decode_blocks(&frame, b0..b1, scratch, &mut part)
        .expect("partial decode");
    // Bit-identical, not approximately equal: both paths run the same
    // reconstruction arithmetic.
    prop_assert_eq!(&part[..], &full[e0..e1], "codec {}", codec.name());
    prop_assert!(
        part_bytes <= full_bytes,
        "partial read {} bytes > full {}",
        part_bytes,
        full_bytes
    );
    if b0 == 0 && b1 == num_blocks {
        prop_assert_eq!(part_bytes, full_bytes);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decode_blocks_matches_full_decode_slice(
        n in awkward_len(),
        scale in 0.1f32..50.0,
        phase in 0.0f32..100.0,
        eb in prop_oneof![1e-5f64..1e-3, 1e-3f64..1e-1],
        lo in 0usize..10_000,
        hi in 0usize..10_000,
    ) {
        let data = signal(n, scale, phase);
        let registry = CodecRegistry::with_defaults();
        let mut scratch = CodecScratch::new();
        for codec in registry.codecs() {
            check_codec(codec, &data, eb, lo, hi, &mut scratch)?;
        }
    }

    #[test]
    fn region_reads_match_full_reads_2d(
        h in 1usize..48,
        w in 1usize..48,
        ch in 1usize..20,
        cw in 1usize..20,
        oy in 0usize..10_000,
        ox in 0usize..10_000,
        ey in 1usize..10_000,
        ex in 1usize..10_000,
        codec_pick in 0usize..3,
    ) {
        let data = signal(h * w, 10.0, 0.0);
        let registry = CodecRegistry::with_defaults();
        let codec = registry.codecs().nth(codec_pick).expect("three codecs");
        let bytes = write_shard(&data, &[h, w], &[ch, cw], codec, 1e-3).expect("write");
        let shard = Shard::open(&bytes).expect("open");
        let mut scratch = StoreScratch::new();
        let mut full = vec![0f32; h * w];
        shard.read_all(&registry, &mut scratch, &mut full).expect("full read");

        // Clamp the random region into the shard (always non-empty, and
        // biased to straddle chunk boundaries by spanning up to the full
        // shape).
        let oy = oy % h;
        let ox = ox % w;
        let ey = 1 + ey % (h - oy);
        let ex = 1 + ex % (w - ox);
        let mut region = vec![0f32; ey * ex];
        shard
            .read_region(&registry, &[oy, ox], &[ey, ex], &mut scratch, &mut region)
            .expect("region read");
        for y in 0..ey {
            let got = &region[y * ex..(y + 1) * ex];
            let want = &full[(oy + y) * w + ox..(oy + y) * w + ox + ex];
            prop_assert_eq!(got, want, "row {} of region ({},{})+({},{})", y, oy, ox, ey, ex);
        }
    }
}
