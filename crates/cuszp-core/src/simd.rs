//! Runtime-dispatched SIMD kernels — the arithmetic and bit-plane hot
//! loops of the host codec, at three interchangeable tiers.
//!
//! ## The tier model
//!
//! Every kernel here exists at up to three [`SimdLevel`] tiers that are
//! **byte-identical by contract** — the tier chooses instructions, never
//! results. [`resolve_level`] picks the tier: an explicit
//! [`CuszpConfig::simd`](crate::CuszpConfig::simd) override wins, then
//! the process-wide `CUSZP_SIMD` environment variable, then runtime
//! detection; whatever is requested is clamped **down** to what the host
//! can run, so an override can only ever disable vector paths.
//!
//! | kernel | scalar | AVX2 | AVX-512 |
//! |---|---|---|---|
//! | quantize + Lorenzo | ✓ | (scalar) | 8-lane `vcvtpd2qq` |
//! | dequantize | ✓ | (scalar) | 8-lane `vcvtqq2pd` |
//! | `L = 32` block encode | strip codec | `F ≤ 16` | `F ≤ 64` |
//! | `L = 32` block decode | strip codec | `F ≤ 16`, fused | `F ≤ 64`, fused |
//!
//! The AVX2 tier leaves quantize/dequantize scalar on purpose: AVX2 has
//! no exact `f64`↔`i64` vector converts, and an approximate one would
//! break byte identity. Its block *decoder* still dequantizes in-vector
//! because decoded residual magnitudes are bounded (`F ≤ 16` ⇒ Lorenzo
//! sums below 2²¹), where the magic-number `i64 → f64` conversion is
//! exact.
//!
//! ## Bit-exact vector quantization (AVX-512)
//!
//! The scalar quantizer (`(d / 2eb).round() as i64`) spends most of its
//! time in `f64::round` (round **half away from zero** has no direct x86
//! instruction) and in the saturating float→int cast. The vector path
//! reproduces both **bit-exactly**:
//!
//! - *Rounding*: `t = trunc(x)`, `r = x − t` (exact — Sterbenz for
//!   `|t| ≥ 1`, trivially exact for `t = 0` or integral `x`), add
//!   `copysign(1, x)` where `|r| ≥ 0.5`. Branch-free, one lane step, and
//!   exactly round-half-away-from-zero including the `x = 0.49999…94`
//!   cases the classic `trunc(x + 0.5)` trick gets wrong.
//! - *Saturation*: `vcvtpd2qq` yields `i64::MIN` for negative overflow
//!   (matching Rust's `as i64`) but also for positive overflow and NaN;
//!   two masked fix-ups restore `i64::MAX` / `0` for those lanes.
//!
//! ## Fused block decode
//!
//! The block decoders ([`decode_block32_to`]) run the inverse bit-plane
//! transposition *and* the dequantize multiply in registers, storing
//! finished `f32`/`f64` elements straight to the output array. The
//! q-integers never round-trip through a scratch tile, which halves the
//! decode path's L2 traffic (16 bytes of `i64` per element, gone) — the
//! host analogue of the paper's fused decompression kernel writing
//! reconstructed data directly from shared memory.
//!
//! Every public function here is a drop-in for the scalar loop it
//! replaces: same outputs for every input, only faster. The differential
//! suites (`fast` unit tests, `tests/fast_vs_ref.rs`,
//! `tests/simd_tiers.rs`) pin this down against [`crate::host_ref`],
//! which still runs the scalar forms.

use crate::config::SimdLevel;
use crate::dtype::{DType, FloatData};
use crate::quantize::{dequantize, quantize};

/// Whether the AVX-512 paths are usable on this host (F: arithmetic and
/// masks; DQ: the `f64`↔`i64` vector converts; BW: 512-bit byte masks;
/// VBMI: `vpermb`, the cross-lane byte permute that does a whole 8×8
/// byte transpose in one instruction). `is_x86_feature_detected!`
/// caches, so calling this per tile is free.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
        && std::arch::is_x86_feature_detected!("avx512bw")
        && std::arch::is_x86_feature_detected!("avx512vbmi")
}

/// The best [`SimdLevel`] this host can run. Cheap to call repeatedly
/// (feature detection is cached by the standard library).
pub fn detect_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512() {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// The `CUSZP_SIMD` override, read once per process. An unparseable
/// value warns on stderr and is ignored (treated as unset) rather than
/// aborting a library caller.
fn env_level() -> Option<SimdLevel> {
    static ENV: std::sync::OnceLock<Option<SimdLevel>> = std::sync::OnceLock::new();
    *ENV.get_or_init(|| {
        let s = std::env::var("CUSZP_SIMD").ok()?;
        if s.is_empty() {
            return None;
        }
        match SimdLevel::parse(&s) {
            Some(l) => Some(l),
            None => {
                eprintln!("cuszp: ignoring CUSZP_SIMD={s:?} (expected scalar, avx2, or avx512)");
                None
            }
        }
    })
}

/// Resolve the dispatch tier for a codec call: `forced` (the
/// [`CuszpConfig::simd`](crate::CuszpConfig::simd) field) wins, then
/// `CUSZP_SIMD`, then [`detect_level`] — and the result is clamped to
/// the detected tier, so forcing above the host's capability degrades
/// gracefully instead of faulting.
pub fn resolve_level(forced: Option<SimdLevel>) -> SimdLevel {
    let detected = detect_level();
    forced.or_else(env_level).unwrap_or(detected).min(detected)
}

/// Quantize `block` and apply the Lorenzo transform (`r₋₁ = 0` at the
/// block start), writing residuals into `resid[..block.len()]`. Returns
/// the maximum `unsigned_abs` over the residuals written. Dispatches at
/// the default-resolved tier ([`resolve_level`]`(None)`).
///
/// Bit-identical to [`crate::quantize::quantize_block`] plus a max scan.
pub fn quantize_lorenzo_block<T: FloatData>(
    block: &[T],
    eb: f64,
    lorenzo: bool,
    resid: &mut [i64],
) -> u64 {
    quantize_lorenzo_block_at(resolve_level(None), block, eb, lorenzo, resid)
}

/// [`quantize_lorenzo_block`] at an explicit tier (`level` must be at or
/// below [`detect_level`] — [`resolve_level`] guarantees this).
pub fn quantize_lorenzo_block_at<T: FloatData>(
    level: SimdLevel,
    block: &[T],
    eb: f64,
    lorenzo: bool,
    resid: &mut [i64],
) -> u64 {
    debug_assert!(resid.len() >= block.len());
    debug_assert!(level <= detect_level());
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: FloatData is sealed, so T::DTYPE faithfully tags the
        // element type; `level ≤ detect_level()` implies the features.
        SimdLevel::Avx512 => unsafe {
            match T::DTYPE {
                DType::F32 => avx512_impl::quantize_lorenzo_f32(
                    std::slice::from_raw_parts(block.as_ptr().cast::<f32>(), block.len()),
                    eb,
                    lorenzo,
                    resid,
                ),
                DType::F64 => avx512_impl::quantize_lorenzo_f64(
                    std::slice::from_raw_parts(block.as_ptr().cast::<f64>(), block.len()),
                    eb,
                    lorenzo,
                    resid,
                ),
            }
        },
        // The AVX2 tier quantizes scalar: no exact vector f64↔i64.
        _ => quantize_lorenzo_scalar(block, eb, lorenzo, resid, 0),
    }
}

/// Scalar form of [`quantize_lorenzo_block`], starting from predecessor
/// `prev` (the vector path uses it for tails mid-block).
fn quantize_lorenzo_scalar<T: FloatData>(
    block: &[T],
    eb: f64,
    lorenzo: bool,
    resid: &mut [i64],
    prev: i64,
) -> u64 {
    let mut prev = prev;
    let mut max_abs = 0u64;
    for (dst, &d) in resid.iter_mut().zip(block) {
        let q = quantize(d, eb);
        let v = if lorenzo { q.wrapping_sub(prev) } else { q };
        if lorenzo {
            prev = q;
        }
        max_abs = max_abs.max(v.unsigned_abs());
        *dst = v;
    }
    max_abs
}

/// Quantize + Lorenzo a run of whole blocks at tier `level`: `data`
/// covers blocks of length `l` (the last may be partial), `resid` holds
/// `max_abs.len() · l` residuals (tail block zero-padded), and
/// `max_abs[b]` receives block `b`'s maximum residual magnitude. The
/// Lorenzo predecessor resets at every block boundary.
pub fn quantize_blocks<T: FloatData>(
    level: SimdLevel,
    data: &[T],
    l: usize,
    eb: f64,
    lorenzo: bool,
    resid: &mut [i64],
    max_abs: &mut [u64],
) {
    debug_assert_eq!(resid.len(), max_abs.len() * l);
    debug_assert!(data.len() <= resid.len());
    let n = data.len();
    for (b, m) in max_abs.iter_mut().enumerate() {
        let start = b * l;
        let end = (start + l).min(n);
        let r = &mut resid[start..start + l];
        *m = quantize_lorenzo_block_at(level, &data[start..end], eb, lorenzo, r);
        for pad in r[end - start..].iter_mut() {
            *pad = 0; // tail padding lives in the residual domain
        }
    }
}

/// Dequantize `q[..]` into `out[..]` (`out[i] = qᵢ · 2eb`, narrowed to
/// `T`) at tier `level`. Bit-identical to a loop of
/// [`crate::quantize::dequantize`].
pub fn dequantize_slice<T: FloatData>(level: SimdLevel, q: &[i64], eb: f64, out: &mut [T]) {
    debug_assert!(q.len() >= out.len());
    debug_assert!(level <= detect_level());
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `quantize_lorenzo_block_at`.
        SimdLevel::Avx512 => unsafe {
            match T::DTYPE {
                DType::F32 => avx512_impl::dequantize_f32(
                    q,
                    eb,
                    std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<f32>(), out.len()),
                ),
                DType::F64 => avx512_impl::dequantize_f64(
                    q,
                    eb,
                    std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<f64>(), out.len()),
                ),
            }
        },
        _ => {
            for (dst, &r) in out.iter_mut().zip(q) {
                *dst = dequantize(r, eb);
            }
        }
    }
}

/// Largest per-block bit width `F` the `L = 32` vector block codec
/// handles at `level` (both directions); `0` means no vector block codec
/// at that tier. Blocks with a larger `F` — or any other block length —
/// take the portable word-parallel strip codec in [`crate::fast`].
pub fn block32_max_f(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Scalar => 0,
        // Magnitudes must fit u16 for the pack/movemask plane extraction.
        SimdLevel::Avx2 => 16,
        // The chunk-pair loop covers the full 64-bit magnitude strip.
        SimdLevel::Avx512 => 64,
    }
}

/// Encode one `L = 32` block (sign map + `f` bit planes, Fig 11 layout)
/// from `resid[..32]` into `out[..4 + 4f]` at tier `level`.
/// Byte-identical to the generic strip codec.
///
/// # Panics
/// Debug-asserts the preconditions; call only when
/// `1 ≤ f ≤ block32_max_f(level)` and `level ≤ detect_level()`.
pub fn encode_block32(level: SimdLevel, resid: &[i64], f: u8, out: &mut [u8]) {
    debug_assert!(level <= detect_level());
    debug_assert!(resid.len() == 32 && f >= 1 && f <= block32_max_f(level));
    debug_assert!(out.len() == 4 + 4 * f as usize);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level ≤ detect_level()` implies the features.
        SimdLevel::Avx512 => unsafe { avx512_impl::encode_block32(resid, f, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above; `f ≤ 16` bounds magnitudes to u16.
        SimdLevel::Avx2 => unsafe { avx2_impl::encode_block32(resid, f, out) },
        _ => unreachable!("no vector block codec at the {level} tier"),
    }
}

/// Decode one `L = 32` block payload **fused with dequantization**:
/// signs applied, Lorenzo prefix-summed when `lorenzo`, multiplied by
/// `2eb` and narrowed to `T` — all in registers — then stored to
/// `out[..32]`. Bit-identical to the generic decode followed by
/// [`dequantize_slice`].
///
/// # Panics
/// Debug-asserts the same preconditions as [`encode_block32`].
pub fn decode_block32_to<T: FloatData>(
    level: SimdLevel,
    payload: &[u8],
    f: u8,
    lorenzo: bool,
    eb: f64,
    out: &mut [T],
) {
    debug_assert!(level <= detect_level());
    debug_assert!(out.len() == 32 && f >= 1 && f <= block32_max_f(level));
    debug_assert!(payload.len() == 4 + 4 * f as usize);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: features implied by the level; FloatData is sealed so
        // T::DTYPE faithfully tags the element type.
        SimdLevel::Avx512 => unsafe {
            match T::DTYPE {
                DType::F32 => avx512_impl::decode_block32_f32(
                    payload,
                    f,
                    lorenzo,
                    eb,
                    std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<f32>(), out.len()),
                ),
                DType::F64 => avx512_impl::decode_block32_f64(
                    payload,
                    f,
                    lorenzo,
                    eb,
                    std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<f64>(), out.len()),
                ),
            }
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above; `f ≤ 16` bounds every decoded magnitude below
        // 2¹⁶ and Lorenzo sums below 2²¹, inside the exact range of the
        // magic-number i64→f64 conversion.
        SimdLevel::Avx2 => unsafe {
            match T::DTYPE {
                DType::F32 => avx2_impl::decode_block32_f32(
                    payload,
                    f,
                    lorenzo,
                    eb,
                    std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<f32>(), out.len()),
                ),
                DType::F64 => avx2_impl::decode_block32_f64(
                    payload,
                    f,
                    lorenzo,
                    eb,
                    std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<f64>(), out.len()),
                ),
            }
        },
        _ => unreachable!("no vector block codec at the {level} tier"),
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512_impl {
    use super::quantize_lorenzo_scalar;
    use std::arch::x86_64::*;

    /// Byte-transpose permutation for `vpermb`: byte `8t + i` reads byte
    /// `8i + t` (its own inverse).
    const BT_IDX: [u8; 64] = {
        let mut idx = [0u8; 64];
        let mut j = 0;
        while j < 64 {
            idx[j] = (((j & 7) << 3) | (j >> 3)) as u8;
            j += 1;
        }
        idx
    };

    /// Encode-side final permute: plane-layout byte `m = 4k + g`
    /// (pair-relative plane `k = 8t + c`, group `g`) reads transposed
    /// byte `32t + 8g + c`.
    const ENC_PLANES_IDX: [u8; 64] = {
        let mut idx = [0u8; 64];
        let mut m = 0;
        while m < 64 {
            let (t, c, g) = (m >> 5, (m >> 2) & 7, m & 3);
            idx[m] = (32 * t + 8 * g + c) as u8;
            m += 1;
        }
        idx
    };

    /// Decode-side inverse: transposed byte `j = 32t + 8g + c` reads
    /// plane-layout byte `32t + 4c + g`.
    const DEC_PLANES_IDX: [u8; 64] = {
        let mut idx = [0u8; 64];
        let mut j = 0;
        while j < 64 {
            let (t, g, c) = (j >> 5, (j >> 3) & 3, j & 7);
            idx[j] = (32 * t + 4 * c + g) as u8;
            j += 1;
        }
        idx
    };

    /// Narrow-decode interleave: after the bit transpose, value `v`'s
    /// low magnitude byte sits at byte `v` and its high byte at `32 + v`,
    /// so word `v` of the output reads bytes `(v, 32 + v)` — one `vpermb`
    /// turns the transposed pair into 32 little-endian `u16` magnitudes
    /// in value order.
    const INTERLEAVE_IDX: [u8; 64] = {
        let mut idx = [0u8; 64];
        let mut v = 0;
        while v < 32 {
            idx[2 * v] = v as u8;
            idx[2 * v + 1] = (32 + v) as u8;
            v += 1;
        }
        idx
    };

    /// Eight independent 8×8 bit-matrix transposes, one per qword lane —
    /// `transpose8x8`'s three masked delta-swaps lifted to 512 bits.
    ///
    /// # Safety
    /// Requires `avx512f`.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn transpose8x8_x8(mut z: __m512i) -> __m512i {
        let m1 = _mm512_set1_epi64(0x00AA_00AA_00AA_00AAu64 as i64);
        let t = _mm512_and_si512(_mm512_xor_si512(z, _mm512_srli_epi64(z, 7)), m1);
        z = _mm512_xor_si512(z, _mm512_xor_si512(t, _mm512_slli_epi64(t, 7)));
        let m2 = _mm512_set1_epi64(0x0000_CCCC_0000_CCCCu64 as i64);
        let t = _mm512_and_si512(_mm512_xor_si512(z, _mm512_srli_epi64(z, 14)), m2);
        z = _mm512_xor_si512(z, _mm512_xor_si512(t, _mm512_slli_epi64(t, 14)));
        let m3 = _mm512_set1_epi64(0x0000_0000_F0F0_F0F0u64 as i64);
        let t = _mm512_and_si512(_mm512_xor_si512(z, _mm512_srli_epi64(z, 28)), m3);
        _mm512_xor_si512(z, _mm512_xor_si512(t, _mm512_slli_epi64(t, 28)))
    }

    /// Encode at any `1 ≤ f ≤ 64`: planes are produced 16 at a time from
    /// one magnitude-byte *chunk pair* — for pair `p`, bytes `2p`/`2p+1`
    /// of all 32 magnitudes feed planes `16p .. 16p+16` through the same
    /// merge → bit-transpose → `vpermb` sequence the original `F ≤ 16`
    /// kernel ran once. Dense data (`F ≤ 16`) still runs exactly one
    /// iteration.
    ///
    /// # Safety
    /// Requires `avx512f`, `avx512dq`, `avx512bw`, `avx512vbmi`.
    #[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vbmi")]
    pub unsafe fn encode_block32(resid: &[i64], f: u8, out: &mut [u8]) {
        let bt = _mm512_loadu_si512(BT_IDX.as_ptr() as *const _);
        // Per value-group: sign mask straight off the qword sign bits,
        // then |v| byte-transposed so qword t holds chunk t's 8 bytes.
        let mut signs = 0u32;
        let mut limbs = [_mm512_setzero_si512(); 4];
        for (g, l) in limbs.iter_mut().enumerate() {
            let v = _mm512_loadu_si512(resid.as_ptr().add(8 * g) as *const _);
            signs |= (_mm512_movepi64_mask(v) as u32) << (8 * g);
            *l = _mm512_permutexvar_epi8(bt, _mm512_abs_epi64(v));
        }
        out[..4].copy_from_slice(&signs.to_le_bytes());
        let enc = _mm512_loadu_si512(ENC_PLANES_IDX.as_ptr() as *const _);
        let fu = f as usize;
        for p in 0..fu.div_ceil(16) {
            // Merge the four groups' chunk-2p/2p+1 qwords into one vector
            // laid out `[x₀₀ x₀₁ x₀₂ x₀₃ x₁₀ x₁₁ x₁₂ x₁₃]`
            // (x_{pair-relative chunk, group}).
            let c0 = 2 * p as i64;
            let sel = _mm512_setr_epi64(c0, 8 + c0, 0, 0, c0 + 1, 9 + c0, 0, 0);
            let p01 = _mm512_permutex2var_epi64(limbs[0], sel, limbs[1]);
            let p23 = _mm512_permutex2var_epi64(limbs[2], sel, limbs[3]);
            let z =
                _mm512_permutex2var_epi64(p01, _mm512_setr_epi64(0, 1, 8, 9, 4, 5, 12, 13), p23);
            // Eight bit transposes at once, then one byte permute lands
            // every plane byte at its Fig 11 position; a masked store
            // writes exactly the pair's `4·count` plane bytes.
            let y = transpose8x8_x8(z);
            let planes = _mm512_permutexvar_epi8(enc, y);
            let count = (fu - 16 * p).min(16);
            let mask: u64 = if count == 16 {
                !0
            } else {
                (1u64 << (4 * count)) - 1
            };
            _mm512_mask_storeu_epi8(out.as_mut_ptr().add(4 + 64 * p) as *mut _, mask, planes);
        }
    }

    /// Decode one block's 32 quantization integers into four 8-lane
    /// vectors (value groups in order): inverse plane permute +
    /// bit transpose per chunk pair, then per group the magnitude chunks
    /// are gathered, byte-untransposed, sign-applied, and Lorenzo
    /// prefix-summed. Shared by the fused `f32`/`f64` exits.
    ///
    /// # Safety
    /// Requires `avx512f`, `avx512dq`, `avx512bw`, `avx512vbmi`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vbmi")]
    unsafe fn decode_block32_groups(payload: &[u8], f: u8, lorenzo: bool) -> [__m512i; 4] {
        let dec = _mm512_loadu_si512(DEC_PLANES_IDX.as_ptr() as *const _);
        let fu = f as usize;
        let pairs = fu.div_ceil(16);
        // zs[p]: bit-transposed plane pair p — qword g holds chunk 2p's
        // group-g bytes, qword 4+g chunk 2p+1's. Unused pairs stay zero
        // (absent planes decode as zero magnitude bits).
        let mut zs = [_mm512_setzero_si512(); 4];
        for (p, z) in zs.iter_mut().enumerate().take(pairs) {
            let count = (fu - 16 * p).min(16);
            let mask: u64 = if count == 16 {
                !0
            } else {
                (1u64 << (4 * count)) - 1
            };
            let planes =
                _mm512_maskz_loadu_epi8(mask, payload.as_ptr().add(4 + 64 * p) as *const _);
            *z = transpose8x8_x8(_mm512_permutexvar_epi8(dec, planes));
        }
        let signs = u32::from_le_bytes(payload[..4].try_into().expect("sign map"));
        let bt = _mm512_loadu_si512(BT_IDX.as_ptr() as *const _);
        let zero = _mm512_setzero_si512();
        let mut carry = _mm512_setzero_si512();
        let mut out = [_mm512_setzero_si512(); 4];
        for (g, dst) in out.iter_mut().enumerate() {
            // Gather group g's magnitude chunks (qword t = chunk t), un-
            // transpose bytes, apply the sign map, then the Lorenzo scan.
            let gi = g as i64;
            let lo_idx = _mm512_setr_epi64(gi, 4 + gi, 8 + gi, 12 + gi, 0, 0, 0, 0);
            let mut limbs = _mm512_maskz_permutex2var_epi64(0x0F, zs[0], lo_idx, zs[1]);
            if pairs > 2 {
                let hi_idx = _mm512_setr_epi64(0, 0, 0, 0, gi, 4 + gi, 8 + gi, 12 + gi);
                limbs = _mm512_or_si512(
                    limbs,
                    _mm512_maskz_permutex2var_epi64(0xF0, zs[2], hi_idx, zs[3]),
                );
            }
            let abs = _mm512_permutexvar_epi8(bt, limbs);
            let smask = ((signs >> (8 * g)) & 0xFF) as u8;
            let mut v = _mm512_mask_sub_epi64(abs, smask, zero, abs);
            if lorenzo {
                // In-lane inclusive scan (three shifted adds) plus the
                // running carry from the previous group.
                v = _mm512_add_epi64(v, _mm512_alignr_epi64(v, zero, 7));
                v = _mm512_add_epi64(v, _mm512_alignr_epi64(v, zero, 6));
                v = _mm512_add_epi64(v, _mm512_alignr_epi64(v, zero, 4));
                v = _mm512_add_epi64(v, carry);
                carry = _mm512_permutexvar_epi64(_mm512_set1_epi64(7), v);
            }
            *dst = v;
        }
        out
    }

    /// Narrow decode for `f ≤ 16`: one block's 32 quantization integers
    /// as two 16-lane `i32` vectors (value order). With at most 16
    /// planes every magnitude fits `u16`, so after the single pair's
    /// inverse permute + bit transpose, one [`INTERLEAVE_IDX`] `vpermb`
    /// yields all 32 magnitudes at once — the per-group qword gathers
    /// and byte un-transposes of the wide path vanish, and the Lorenzo
    /// scan runs over 16 lanes in two rounds-of-five instead of four
    /// rounds-of-four. Prefix sums stay below `32 · 2¹⁶ < 2²¹`, so `i32`
    /// arithmetic is exact (identical to the scalar `i64` decode).
    ///
    /// # Safety
    /// Requires `avx512f`, `avx512dq`, `avx512bw`, `avx512vbmi`, and
    /// `1 ≤ f ≤ 16`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vbmi")]
    unsafe fn decode_block32_narrow(payload: &[u8], f: u8, lorenzo: bool) -> [__m512i; 2] {
        let fu = f as usize;
        let mask: u64 = if fu == 16 { !0 } else { (1u64 << (4 * fu)) - 1 };
        let planes = _mm512_maskz_loadu_epi8(mask, payload.as_ptr().add(4) as *const _);
        let dec = _mm512_loadu_si512(DEC_PLANES_IDX.as_ptr() as *const _);
        let z = transpose8x8_x8(_mm512_permutexvar_epi8(dec, planes));
        let inter = _mm512_loadu_si512(INTERLEAVE_IDX.as_ptr() as *const _);
        let mags = _mm512_permutexvar_epi8(inter, z);
        let signs = u32::from_le_bytes(payload[..4].try_into().expect("sign map"));
        let zero = _mm512_setzero_si512();
        let mut carry = zero;
        let mut out = [zero; 2];
        for (h, dst) in out.iter_mut().enumerate() {
            let half = if h == 0 {
                _mm512_castsi512_si256(mags)
            } else {
                _mm512_extracti64x4_epi64(mags, 1)
            };
            let w = _mm512_cvtepu16_epi32(half);
            let smask = ((signs >> (16 * h)) & 0xFFFF) as u16;
            let mut v = _mm512_mask_sub_epi32(w, smask, zero, w);
            if lorenzo {
                v = _mm512_add_epi32(v, _mm512_alignr_epi32(v, zero, 15));
                v = _mm512_add_epi32(v, _mm512_alignr_epi32(v, zero, 14));
                v = _mm512_add_epi32(v, _mm512_alignr_epi32(v, zero, 12));
                v = _mm512_add_epi32(v, _mm512_alignr_epi32(v, zero, 8));
                v = _mm512_add_epi32(v, carry);
                carry = _mm512_permutexvar_epi32(_mm512_set1_epi32(15), v);
            }
            *dst = v;
        }
        out
    }

    /// Fused decode + dequantize to `f32`.
    ///
    /// # Safety
    /// Requires `avx512f`, `avx512dq`, `avx512bw`, `avx512vbmi`.
    #[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vbmi")]
    pub unsafe fn decode_block32_f32(
        payload: &[u8],
        f: u8,
        lorenzo: bool,
        eb: f64,
        out: &mut [f32],
    ) {
        let veb = _mm512_set1_pd(2.0 * eb);
        if f <= 16 {
            let halves = decode_block32_narrow(payload, f, lorenzo);
            for (h, v) in halves.iter().enumerate() {
                let lo = _mm512_cvtepi32_pd(_mm512_castsi512_si256(*v));
                let hi = _mm512_cvtepi32_pd(_mm512_extracti64x4_epi64(*v, 1));
                let p = out.as_mut_ptr().add(16 * h);
                _mm256_storeu_ps(p, _mm512_cvtpd_ps(_mm512_mul_pd(lo, veb)));
                _mm256_storeu_ps(p.add(8), _mm512_cvtpd_ps(_mm512_mul_pd(hi, veb)));
            }
        } else {
            let groups = decode_block32_groups(payload, f, lorenzo);
            for (g, v) in groups.iter().enumerate() {
                let d = _mm512_mul_pd(_mm512_cvtepi64_pd(*v), veb);
                _mm256_storeu_ps(out.as_mut_ptr().add(8 * g), _mm512_cvtpd_ps(d));
            }
        }
    }

    /// Fused decode + dequantize to `f64`.
    ///
    /// # Safety
    /// Requires `avx512f`, `avx512dq`, `avx512bw`, `avx512vbmi`.
    #[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vbmi")]
    pub unsafe fn decode_block32_f64(
        payload: &[u8],
        f: u8,
        lorenzo: bool,
        eb: f64,
        out: &mut [f64],
    ) {
        let veb = _mm512_set1_pd(2.0 * eb);
        if f <= 16 {
            let halves = decode_block32_narrow(payload, f, lorenzo);
            for (h, v) in halves.iter().enumerate() {
                let lo = _mm512_cvtepi32_pd(_mm512_castsi512_si256(*v));
                let hi = _mm512_cvtepi32_pd(_mm512_extracti64x4_epi64(*v, 1));
                let p = out.as_mut_ptr().add(16 * h);
                _mm512_storeu_pd(p, _mm512_mul_pd(lo, veb));
                _mm512_storeu_pd(p.add(8), _mm512_mul_pd(hi, veb));
            }
        } else {
            let groups = decode_block32_groups(payload, f, lorenzo);
            for (g, v) in groups.iter().enumerate() {
                _mm512_storeu_pd(
                    out.as_mut_ptr().add(8 * g),
                    _mm512_mul_pd(_mm512_cvtepi64_pd(*v), veb),
                );
            }
        }
    }

    /// `round(x)` (half away from zero) for 8 lanes, then saturating-cast
    /// to `i64` with Rust `as` semantics.
    ///
    /// # Safety
    /// Requires `avx512f` and `avx512dq`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn round_to_i64(x: __m512d) -> __m512i {
        let absmask = _mm512_castsi512_pd(_mm512_set1_epi64(0x7FFF_FFFF_FFFF_FFFFu64 as i64));
        let t = _mm512_roundscale_pd(x, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
        let r = _mm512_sub_pd(x, t); // exact (see module docs)
        let m = _mm512_cmp_pd_mask(_mm512_and_pd(r, absmask), _mm512_set1_pd(0.5), _CMP_GE_OQ);
        let adj = _mm512_or_pd(_mm512_set1_pd(1.0), _mm512_andnot_pd(absmask, x));
        let rounded = _mm512_mask_add_pd(t, m, t, adj);
        let q = _mm512_cvt_roundpd_epi64(rounded, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
        // `as i64` saturation: +overflow → MAX (the convert already gives
        // MIN for −overflow), NaN → 0.
        let m_pos = _mm512_cmp_pd_mask(
            rounded,
            _mm512_set1_pd(9.223_372_036_854_776e18),
            _CMP_GE_OQ,
        );
        let m_nan = _mm512_cmp_pd_mask(rounded, rounded, _CMP_UNORD_Q);
        let q = _mm512_mask_mov_epi64(q, m_pos, _mm512_set1_epi64(i64::MAX));
        _mm512_mask_mov_epi64(q, m_nan, _mm512_setzero_si512())
    }

    macro_rules! quantize_lorenzo {
        ($name:ident, $elem:ty, $load:expr) => {
            /// # Safety
            /// Requires `avx512f` and `avx512dq`.
            #[target_feature(enable = "avx512f,avx512dq")]
            pub unsafe fn $name(block: &[$elem], eb: f64, lorenzo: bool, resid: &mut [i64]) -> u64 {
                let n = block.len();
                let veb = _mm512_set1_pd(2.0 * eb);
                let mut maxv = _mm512_setzero_si512();
                // Previous vector of quantization integers, for the
                // cross-lane Lorenzo shift; lane 7 seeds the next step.
                let mut prevv = _mm512_setzero_si512();
                let mut i = 0;
                while i + 8 <= n {
                    #[allow(clippy::redundant_closure_call)]
                    let x = _mm512_div_pd(($load)(block.as_ptr().add(i)), veb);
                    let q = round_to_i64(x);
                    let v = if lorenzo {
                        // [prev₇, q₀ … q₆] — the predecessor of each lane.
                        let shifted = _mm512_alignr_epi64(q, prevv, 7);
                        prevv = q;
                        _mm512_sub_epi64(q, shifted)
                    } else {
                        q
                    };
                    maxv = _mm512_max_epu64(maxv, _mm512_abs_epi64(v));
                    _mm512_storeu_si512(resid.as_mut_ptr().add(i) as *mut _, v);
                    i += 8;
                }
                let mut max_abs = _mm512_reduce_max_epu64(maxv) as u64;
                if i < n {
                    // Scalar tail, seeded with the last vector lane's q.
                    let mut lanes = [0i64; 8];
                    _mm512_storeu_si512(lanes.as_mut_ptr() as *mut _, prevv);
                    let tail_max = quantize_lorenzo_scalar(
                        &block[i..],
                        eb,
                        lorenzo,
                        &mut resid[i..n],
                        if i == 0 { 0 } else { lanes[7] },
                    );
                    max_abs = max_abs.max(tail_max);
                }
                max_abs
            }
        };
    }

    quantize_lorenzo!(quantize_lorenzo_f32, f32, |p: *const f32| {
        _mm512_cvtps_pd(_mm256_loadu_ps(p))
    });
    quantize_lorenzo!(quantize_lorenzo_f64, f64, |p: *const f64| {
        _mm512_loadu_pd(p)
    });

    /// # Safety
    /// Requires `avx512f` and `avx512dq`.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub unsafe fn dequantize_f32(q: &[i64], eb: f64, out: &mut [f32]) {
        let n = out.len();
        let veb = _mm512_set1_pd(2.0 * eb);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(q.as_ptr().add(i) as *const _);
            let d = _mm512_mul_pd(_mm512_cvtepi64_pd(v), veb);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm512_cvtpd_ps(d));
            i += 8;
        }
        for k in i..n {
            out[k] = (q[k] as f64 * 2.0 * eb) as f32;
        }
    }

    /// # Safety
    /// Requires `avx512f` and `avx512dq`.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub unsafe fn dequantize_f64(q: &[i64], eb: f64, out: &mut [f64]) {
        let n = out.len();
        let veb = _mm512_set1_pd(2.0 * eb);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(q.as_ptr().add(i) as *const _);
            _mm512_storeu_pd(
                out.as_mut_ptr().add(i),
                _mm512_mul_pd(_mm512_cvtepi64_pd(v), veb),
            );
            i += 8;
        }
        for k in i..n {
            out[k] = q[k] as f64 * 2.0 * eb;
        }
    }
}

/// 256-bit block codec for `L = 32`, `F ≤ 16`.
///
/// AVX2 has no `vpermb` and no 512-bit delta-swap, so the kernel takes a
/// different route to the same bytes: the 32 magnitudes (which fit `u16`
/// because `F ≤ 16`) are packed into two byte vectors — one per
/// magnitude byte — put into **value order** with a `vpermd` + `vpshufb`
/// pair, and then each bit plane falls out of one `vpmovmskb` per plane
/// (bit `j` of the 32-bit mask *is* plane bit `j` of value `j`, exactly
/// the Fig 11 plane word). Decoding inverts that with a broadcast +
/// `vpshufb` + byte-test per plane, then rebuilds `i64` lanes and runs a
/// 4-lane Lorenzo scan. Dequantization is fused via the magic-number
/// `i64 → f64` conversion, exact below 2⁵¹ (decoded Lorenzo sums stay
/// below 2²¹).
#[cfg(target_arch = "x86_64")]
mod avx2_impl {
    use std::arch::x86_64::*;

    /// Bring the pack result into value order, part 1: dword gather.
    /// After `vpackuswb(w_lo & FF, w_hi & FF)` the byte that belongs to
    /// value `j` sits at a fixed permutation of positions whose dwords
    /// regroup per 128-bit destination lane as `[0, 1, 4, 5 | 2, 3, 6, 7]`.
    ///
    /// # Safety
    /// Requires `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn value_order(x: __m256i) -> __m256i {
        let perm = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
        // Part 2: in-lane byte shuffle. Post-gather, lane byte `4i + l`
        // holds value `4i + l`'s byte at position `4l + i` — the same
        // 4×4 transpose in both lanes.
        let shuf = _mm256_setr_epi8(
            0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15, //
            0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,
        );
        _mm256_shuffle_epi8(_mm256_permutevar8x32_epi32(x, perm), shuf)
    }

    /// Store planes `base .. min(base+8, f)` from `x` (byte `j` = byte
    /// `base/8` of value `j`'s magnitude): one `vpmovmskb` per plane,
    /// walking bit 7 → 0 by per-byte doubling.
    ///
    /// # Safety
    /// Requires `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_planes(x: __m256i, base: u8, f: u8, out: &mut [u8]) {
        let mut s = x;
        for k in (0..8u8).rev() {
            let plane = base + k;
            if plane < f {
                let m = _mm256_movemask_epi8(s) as u32;
                out[4 + 4 * plane as usize..][..4].copy_from_slice(&m.to_le_bytes());
            }
            s = _mm256_add_epi8(s, s);
        }
    }

    /// # Safety
    /// Requires `avx2`; caller guarantees `resid.len() == 32`,
    /// `1 ≤ f ≤ 16` (so every `|residual| < 2¹⁶`), and
    /// `out.len() == 4 + 4f`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn encode_block32(resid: &[i64], f: u8, out: &mut [u8]) {
        let zero = _mm256_setzero_si256();
        let mut v = [zero; 8];
        let mut signs = 0u32;
        for (i, reg) in v.iter_mut().enumerate() {
            let x = _mm256_loadu_si256(resid.as_ptr().add(4 * i) as *const __m256i);
            // The i64 sign bit is the f64 sign bit — `vmovmskpd` reads it.
            signs |= (_mm256_movemask_pd(_mm256_castsi256_pd(x)) as u32) << (4 * i);
            let neg = _mm256_cmpgt_epi64(zero, x);
            *reg = _mm256_sub_epi64(_mm256_xor_si256(x, neg), neg);
        }
        out[..4].copy_from_slice(&signs.to_le_bytes());
        // Fold the 32 (≤16-bit) magnitudes into two u16 vectors: u16 slot
        // `4l + i` of w_lo holds value `4i + l` (i64 lane l survives, the
        // source register index i becomes the sub-slot).
        let w_lo = _mm256_or_si256(
            _mm256_or_si256(v[0], _mm256_slli_epi64(v[1], 16)),
            _mm256_or_si256(_mm256_slli_epi64(v[2], 32), _mm256_slli_epi64(v[3], 48)),
        );
        let w_hi = _mm256_or_si256(
            _mm256_or_si256(v[4], _mm256_slli_epi64(v[5], 16)),
            _mm256_or_si256(_mm256_slli_epi64(v[6], 32), _mm256_slli_epi64(v[7], 48)),
        );
        // Low magnitude bytes → planes 0..8; high bytes → planes 8..16.
        let ff = _mm256_set1_epi16(0x00FF);
        let lo = value_order(_mm256_packus_epi16(
            _mm256_and_si256(w_lo, ff),
            _mm256_and_si256(w_hi, ff),
        ));
        store_planes(lo, 0, f, out);
        if f > 8 {
            let hi = value_order(_mm256_packus_epi16(
                _mm256_srli_epi16(w_lo, 8),
                _mm256_srli_epi16(w_hi, 8),
            ));
            store_planes(hi, 8, f, out);
        }
    }

    /// Rebuild one magnitude byte (byte `base/8`, in value order) from
    /// planes `base .. min(base+8, f)`: per plane, broadcast the 32-bit
    /// plane word, replicate the byte that covers each value
    /// (`vpshufb`), test its bit, and accumulate `1 << k` where set.
    ///
    /// # Safety
    /// Requires `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn gather_planes(payload: &[u8], base: u8, f: u8) -> __m256i {
        // Byte j of the replicate shuffle picks plane-word byte j/8; the
        // plane word is broadcast per dword, so lane 1 (values 16..32)
        // indexes bytes 2..4.
        let rep_shuf = _mm256_setr_epi8(
            0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, //
            2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3,
        );
        let bits = _mm256_setr_epi8(
            1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128, //
            1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
        );
        let mut acc = _mm256_setzero_si256();
        for k in 0..(f - base).min(8) {
            let plane = (base + k) as usize;
            let p = u32::from_le_bytes(payload[4 + 4 * plane..][..4].try_into().expect("plane"));
            let rep = _mm256_shuffle_epi8(_mm256_set1_epi32(p as i32), rep_shuf);
            let has = _mm256_cmpeq_epi8(_mm256_and_si256(rep, bits), bits);
            acc = _mm256_or_si256(
                acc,
                _mm256_and_si256(has, _mm256_set1_epi8((1u8 << k) as i8)),
            );
        }
        acc
    }

    /// Exact `i64 → f64` for `|v| < 2⁵¹` (magic-number trick): embed the
    /// two's-complement value in the mantissa of `2⁵² + 2⁵¹`, subtract
    /// the magic back out. Decoded quantization integers are bounded by
    /// `32 · (2¹⁶ − 1) < 2²¹`, far inside the exact range.
    ///
    /// # Safety
    /// Requires `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn i64_to_f64(v: __m256i) -> __m256d {
        let magic_bits = _mm256_set1_epi64x(0x4338_0000_0000_0000);
        let magic = _mm256_set1_pd(6_755_399_441_055_744.0); // 2⁵² + 2⁵¹
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_add_epi64(v, magic_bits)), magic)
    }

    /// `[0, v₀, v₁, v₂]` — the 1-lane shift of the 4-lane inclusive scan.
    ///
    /// # Safety
    /// Requires `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_shift1(v: __m256i) -> __m256i {
        _mm256_blend_epi32(
            _mm256_permute4x64_epi64(v, 0b10_01_00_00),
            _mm256_setzero_si256(),
            0x03,
        )
    }

    /// `[0, 0, v₀, v₁]` — the 2-lane shift of the 4-lane inclusive scan.
    ///
    /// # Safety
    /// Requires `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_shift2(v: __m256i) -> __m256i {
        _mm256_blend_epi32(
            _mm256_permute4x64_epi64(v, 0b01_00_00_00),
            _mm256_setzero_si256(),
            0x0F,
        )
    }

    /// Decode the block's 32 quantization integers as eight 4-lane
    /// vectors (value order), signs applied and Lorenzo prefix-summed.
    ///
    /// # Safety
    /// Requires `avx2`; caller guarantees `1 ≤ f ≤ 16` and
    /// `payload.len() == 4 + 4f`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn decode_block32_q_v(payload: &[u8], f: u8, lorenzo: bool) -> [__m256i; 8] {
        let lo = gather_planes(payload, 0, f);
        let hi = if f > 8 {
            gather_planes(payload, 8, f)
        } else {
            _mm256_setzero_si256()
        };
        // Interleave the two magnitude bytes back into u16s; the 128-bit
        // halves come out as value runs [0..8 | 16..24] / [8..16 | 24..32].
        let m_lo = _mm256_unpacklo_epi8(lo, hi);
        let m_hi = _mm256_unpackhi_epi8(lo, hi);
        let xs: [__m128i; 4] = [
            _mm256_castsi256_si128(m_lo),      // values 0..8
            _mm256_castsi256_si128(m_hi),      // values 8..16
            _mm256_extracti128_si256(m_lo, 1), // values 16..24
            _mm256_extracti128_si256(m_hi, 1), // values 24..32
        ];
        let signs = u32::from_le_bytes(payload[..4].try_into().expect("sign map"));
        let sign_bits = _mm256_setr_epi64x(1, 2, 4, 8);
        let mut carry = _mm256_setzero_si256();
        let mut out = [_mm256_setzero_si256(); 8];
        for (r, dst) in out.iter_mut().enumerate() {
            let x = xs[r / 2];
            let q = _mm256_cvtepu16_epi64(if r % 2 == 0 { x } else { _mm_srli_si128(x, 8) });
            // Negate lanes whose sign-map bit (values 4r .. 4r+4) is set.
            let s = _mm256_set1_epi64x(((signs >> (4 * r)) & 0xF) as i64);
            let neg = _mm256_cmpeq_epi64(_mm256_and_si256(s, sign_bits), sign_bits);
            let mut v = _mm256_sub_epi64(_mm256_xor_si256(q, neg), neg);
            if lorenzo {
                v = _mm256_add_epi64(v, scan_shift1(v));
                v = _mm256_add_epi64(v, scan_shift2(v));
                v = _mm256_add_epi64(v, carry);
                carry = _mm256_permute4x64_epi64(v, 0xFF);
            }
            *dst = v;
        }
        out
    }

    /// Fused decode + dequantize to `f32`.
    ///
    /// # Safety
    /// As [`decode_block32_q_v`]; `out.len() == 32`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn decode_block32_f32(
        payload: &[u8],
        f: u8,
        lorenzo: bool,
        eb: f64,
        out: &mut [f32],
    ) {
        let vs = decode_block32_q_v(payload, f, lorenzo);
        let veb = _mm256_set1_pd(2.0 * eb);
        for (r, v) in vs.iter().enumerate() {
            let d = _mm256_mul_pd(i64_to_f64(*v), veb);
            _mm_storeu_ps(out.as_mut_ptr().add(4 * r), _mm256_cvtpd_ps(d));
        }
    }

    /// Fused decode + dequantize to `f64`.
    ///
    /// # Safety
    /// As [`decode_block32_q_v`]; `out.len() == 32`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn decode_block32_f64(
        payload: &[u8],
        f: u8,
        lorenzo: bool,
        eb: f64,
        out: &mut [f64],
    ) {
        let vs = decode_block32_q_v(payload, f, lorenzo);
        let veb = _mm256_set1_pd(2.0 * eb);
        for (r, v) in vs.iter().enumerate() {
            _mm256_storeu_pd(
                out.as_mut_ptr().add(4 * r),
                _mm256_mul_pd(i64_to_f64(*v), veb),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Awkward inputs for round-half-away + saturation: exact ties, the
    /// largest double below 0.5 (scaled), infinities, NaN, overflow.
    fn nasty_f64() -> Vec<f64> {
        let mut v = vec![
            0.0,
            -0.0,
            0.01,
            -0.01,
            0.03,
            -0.03,
            0.05,
            0.009_999_999_999_999_998,
            -0.009_999_999_999_999_998,
            1e30,
            -1e30,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            123.456,
            -987.654,
            1e17,
            -1e17,
            f64::MAX,
            f64::MIN,
        ];
        // A dense sweep so every vector lane position sees varied data.
        for i in 0..200 {
            v.push((i as f64 - 100.0) * 0.007_3);
        }
        v
    }

    #[test]
    fn quantize_matches_scalar_f64() {
        let data = nasty_f64();
        for level in SimdLevel::ALL {
            if level > detect_level() {
                continue;
            }
            for lorenzo in [false, true] {
                let mut fast = vec![0i64; data.len()];
                let got = quantize_lorenzo_block_at(level, &data, 0.01, lorenzo, &mut fast);
                let mut want = vec![0i64; data.len()];
                let want_max = quantize_lorenzo_scalar(&data, 0.01, lorenzo, &mut want, 0);
                assert_eq!(fast, want, "level={level} lorenzo={lorenzo}");
                assert_eq!(got, want_max);
            }
        }
    }

    #[test]
    fn quantize_matches_scalar_f32() {
        let data: Vec<f32> = nasty_f64().into_iter().map(|v| v as f32).collect();
        for lorenzo in [false, true] {
            for len in [0, 1, 7, 8, 9, 16, 31, data.len()] {
                let block = &data[..len];
                let mut fast = vec![0i64; len];
                let got = quantize_lorenzo_block(block, 0.05, lorenzo, &mut fast);
                let mut want = vec![0i64; len];
                let want_max = quantize_lorenzo_scalar(block, 0.05, lorenzo, &mut want, 0);
                assert_eq!(fast, want, "lorenzo={lorenzo} len={len}");
                assert_eq!(got, want_max, "lorenzo={lorenzo} len={len}");
            }
        }
    }

    #[test]
    fn dequantize_matches_scalar() {
        let q: Vec<i64> = vec![0, 1, -1, 7, -13, 1 << 40, -(1 << 52), i64::MAX, i64::MIN]
            .into_iter()
            .chain((0..100).map(|i| i * 37 - 1850))
            .collect();
        for level in SimdLevel::ALL {
            if level > detect_level() {
                continue;
            }
            let mut f32s = vec![0.0f32; q.len()];
            dequantize_slice(level, &q, 0.01, &mut f32s);
            let mut f64s = vec![0.0f64; q.len()];
            dequantize_slice(level, &q, 0.01, &mut f64s);
            for (i, &r) in q.iter().enumerate() {
                assert_eq!(f32s[i], dequantize::<f32>(r, 0.01), "f32 at {i} ({level})");
                assert_eq!(f64s[i], dequantize::<f64>(r, 0.01), "f64 at {i} ({level})");
            }
        }
    }

    #[test]
    fn tie_rounds_away_from_zero() {
        // 2eb = 0.5 exactly, so d = ±0.75 / ±1.25 are exact ±x.5 ties;
        // round half AWAY from zero (not to even) must come out.
        let data = [0.75f64, -0.75, 1.25, -1.25, 0.25, -0.25, 0.0, 0.0];
        let mut out = [0i64; 8];
        quantize_lorenzo_block(&data, 0.25, false, &mut out);
        assert_eq!(&out[..6], &[2, -2, 3, -3, 1, -1]);
    }

    #[test]
    fn resolve_clamps_to_detected() {
        let detected = detect_level();
        for level in SimdLevel::ALL {
            assert_eq!(resolve_level(Some(level)), level.min(detected));
        }
        assert_eq!(resolve_level(None).min(detected), resolve_level(None));
    }

    #[test]
    fn level_parse_roundtrip() {
        for level in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(level.name()), Some(level));
            assert_eq!(level.name().parse::<SimdLevel>(), Ok(level));
        }
        assert_eq!(SimdLevel::parse("AVX512"), Some(SimdLevel::Avx512));
        assert!(SimdLevel::parse("sse2").is_none());
        assert!("".parse::<SimdLevel>().is_err());
    }
}
