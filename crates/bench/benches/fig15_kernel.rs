//! Fig 15 workload: kernel-path round trips (compress + decompress) for
//! the two single-kernel compressors, whose kernel time *is* their
//! end-to-end time.

use bench::{bench_field, compressors, eb_for, roundtrip_once};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let field = bench_field(DatasetId::Nyx);
    let eb = eb_for(&field, 1e-2);
    let mut group = c.benchmark_group("fig15_kernel_roundtrip");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, comp) in compressors(8) {
        group.bench_function(name, |b| {
            b.iter(|| black_box(roundtrip_once(comp.as_ref(), black_box(&field), eb)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
