//! # cuszp-pipeline — batched, multi-stream compression
//!
//! cuSZp's headline numbers are single-kernel latencies, but production
//! use (checkpointing a simulation, archiving a campaign) compresses
//! *many* fields back-to-back. This crate overlaps those compressions the
//! way a CUDA application overlaps streams: a pool of workers — each the
//! software analogue of one stream — pulls fixed-size chunks from a
//! **bounded** submission queue and compresses them concurrently.
//!
//! - **Chunked container** — every submitted field becomes a
//!   [`ChunkedCompressed`], each chunk byte-identical to the single-shot
//!   path at the same absolute bound (see
//!   [`cuszp_core::Cuszp::compress_chunked`]).
//! - **Backpressure** — the submission queue holds at most
//!   [`PipelineConfig::queue_depth`] chunks; [`Pipeline::submit`] blocks
//!   once the pool falls behind, so peak memory is bounded by
//!   `queue_depth + workers` chunks regardless of batch size.
//! - **Per-stream counters** — every worker tracks chunks, bytes and busy
//!   time; in device mode each worker owns its own simulated GPU
//!   ([`gpu_sim::Gpu`]) and reports the simulated kernel seconds from its
//!   timeline, plugging the pipeline into gpu-sim's profiler.
//!
//! ```
//! use cuszp_pipeline::{Pipeline, PipelineConfig};
//! use cuszp_core::ErrorBound;
//!
//! let mut pipe = Pipeline::<f32>::new(PipelineConfig::default());
//! for i in 0..4 {
//!     let field: Vec<f32> = (0..50_000).map(|j| ((i + j) as f32 * 0.01).sin()).collect();
//!     pipe.submit(&format!("field{i}"), field, ErrorBound::Rel(1e-3));
//! }
//! let batch = pipe.finish();
//! assert_eq!(batch.fields.len(), 4);
//! assert!(batch.stats.ratio > 1.0);
//! ```

use cuszp_core::{fast, ChunkedCompressed, Compressed, CuszpConfig, ErrorBound, FloatData};
use gpu_sim::{DeviceSpec, Gpu};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

pub mod pool;
pub mod stats;

pub use pool::{JobSource, Submitter, WorkerPool};
pub use stats::{BatchStats, LatencyHistogram, ServiceMetrics, StreamStats};

/// Pipeline shape: worker count, queue bound, chunking, codec.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Worker threads (streams). Defaults to the host's parallelism.
    pub workers: usize,
    /// Bounded in-flight chunk queue; `submit` blocks when full.
    pub queue_depth: usize,
    /// Elements per chunk. Multiples of the block length keep chunk
    /// streams block-aligned with the single-shot path.
    pub chunk_elems: usize,
    /// Inner codec configuration (block length, Lorenzo).
    pub codec: CuszpConfig,
    /// `Some(spec)`: each worker owns a simulated GPU of this model and
    /// compresses with the fused device kernel, so per-stream stats carry
    /// simulated kernel time. `None`: host reference codec.
    pub device: Option<DeviceSpec>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        PipelineConfig {
            workers,
            queue_depth: 2 * workers,
            chunk_elems: 1 << 20,
            codec: CuszpConfig::default(),
            device: None,
        }
    }
}

impl PipelineConfig {
    /// Host-codec pipeline with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        PipelineConfig {
            workers,
            queue_depth: 2 * workers.max(1),
            ..Self::default()
        }
    }

    /// Panic on degenerate settings.
    pub fn validate(&self) {
        assert!(self.workers >= 1, "pipeline needs at least one worker");
        assert!(self.queue_depth >= 1, "queue depth must be at least 1");
        assert!(self.chunk_elems >= 1, "chunk_elems must be positive");
        self.codec.validate();
    }
}

/// One chunk of one submitted field, headed for a worker.
struct Job<T> {
    field: usize,
    chunk: usize,
    data: Arc<Vec<T>>,
    start: usize,
    end: usize,
    eb: f64,
    submitted: Instant,
}

/// A finished chunk, headed back to the collector.
struct Done {
    field: usize,
    chunk: usize,
    compressed: Compressed,
    latency_seconds: f64,
}

struct FieldMeta {
    name: String,
    num_chunks: usize,
    bytes_in: u64,
}

/// A compressed field out of the pipeline.
#[derive(Debug, Clone)]
pub struct CompressedField {
    /// Name given at submission.
    pub name: String,
    /// The chunked container (chunks in submission order).
    pub container: ChunkedCompressed,
    /// Original size in bytes.
    pub bytes_in: u64,
    /// Submit-to-last-chunk-complete latency, seconds.
    pub latency_seconds: f64,
}

/// Everything a finished batch yields.
#[derive(Debug)]
pub struct BatchResult {
    /// Compressed fields, in submission order.
    pub fields: Vec<CompressedField>,
    /// Batch-level and per-stream counters.
    pub stats: BatchStats,
}

/// A running compression pipeline. Submit fields, then [`finish`].
///
/// [`finish`]: Pipeline::finish
pub struct Pipeline<T: FloatData> {
    cfg: PipelineConfig,
    pool: Option<WorkerPool<Job<T>, StreamStats>>,
    done_rx: Receiver<Done>,
    fields: Vec<FieldMeta>,
    started: Instant,
    in_flight: Arc<AtomicUsize>,
}

impl<T: FloatData> Pipeline<T> {
    /// Spawn the worker pool (a [`WorkerPool`] shared with the socket
    /// service — same bounded admission queue, same drain semantics).
    pub fn new(cfg: PipelineConfig) -> Self {
        cfg.validate();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Done>();
        let in_flight = Arc::new(AtomicUsize::new(0));
        let worker_in_flight = Arc::clone(&in_flight);
        let codec = cfg.codec;
        let device = cfg.device.clone();
        let pool = WorkerPool::new(cfg.workers, cfg.queue_depth, move |id, src| {
            worker_loop(
                id,
                src,
                done_tx.clone(),
                Arc::clone(&worker_in_flight),
                codec,
                device.clone(),
            )
        });
        Pipeline {
            cfg,
            pool: Some(pool),
            done_rx,
            fields: Vec::new(),
            started: Instant::now(),
            in_flight,
        }
    }

    /// Chunk count at this pipeline's chunking for an `n`-element field.
    pub fn chunks_for(&self, n: usize) -> usize {
        n.div_ceil(self.cfg.chunk_elems)
    }

    /// Chunks currently queued or being compressed (bounded by
    /// `queue_depth + workers`).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Submit one field. Blocks while the in-flight queue is full
    /// (backpressure) and returns the field's index in the batch.
    ///
    /// The bound is resolved against the whole field before chunking, so
    /// REL means the same absolute tolerance as single-shot compression.
    pub fn submit(&mut self, name: &str, data: Vec<T>, bound: ErrorBound) -> usize {
        let idx = self.fields.len();
        let submitted = Instant::now();
        let num_chunks = data.len().div_ceil(self.cfg.chunk_elems.max(1));
        self.fields.push(FieldMeta {
            name: name.to_string(),
            num_chunks,
            bytes_in: std::mem::size_of_val(&data[..]) as u64,
        });
        if data.is_empty() {
            return idx;
        }
        let eb = bound.absolute(cuszp_core::value_range(&data));
        let data = Arc::new(data);
        let pool = self.pool.as_ref().expect("pipeline not finished");
        for chunk in 0..num_chunks {
            let start = chunk * self.cfg.chunk_elems;
            let end = (start + self.cfg.chunk_elems).min(data.len());
            self.in_flight.fetch_add(1, Ordering::Relaxed);
            pool.submit(Job {
                field: idx,
                chunk,
                data: Arc::clone(&data),
                start,
                end,
                eb,
                submitted,
            });
        }
        idx
    }

    /// Close the queue, drain the pool, and assemble the batch.
    pub fn finish(mut self) -> BatchResult {
        // Close the queue: workers drain every queued job, then exit.
        let streams = self.pool.take().expect("finish called once").close();
        let wall_seconds = self.started.elapsed().as_secs_f64();

        // Assemble per-field containers in submission/chunk order.
        let mut per_field: Vec<Vec<Option<Compressed>>> = self
            .fields
            .iter()
            .map(|m| (0..m.num_chunks).map(|_| None).collect())
            .collect();
        let mut latency: Vec<f64> = vec![0.0; self.fields.len()];
        let mut chunk_latencies = Vec::new();
        for done in self.done_rx.try_iter() {
            latency[done.field] = latency[done.field].max(done.latency_seconds);
            chunk_latencies.push(done.latency_seconds);
            per_field[done.field][done.chunk] = Some(done.compressed);
        }
        let fields: Vec<CompressedField> = self
            .fields
            .iter()
            .zip(per_field)
            .zip(&latency)
            .map(|((meta, chunks), &lat)| CompressedField {
                name: meta.name.clone(),
                container: ChunkedCompressed {
                    chunks: chunks
                        .into_iter()
                        .map(|c| c.expect("every submitted chunk completed"))
                        .collect(),
                },
                bytes_in: meta.bytes_in,
                latency_seconds: lat,
            })
            .collect();
        let stats = BatchStats::collect(wall_seconds, &fields, &chunk_latencies, streams);
        BatchResult { fields, stats }
    }
}

fn worker_loop<T: FloatData>(
    id: usize,
    src: JobSource<Job<T>>,
    tx: Sender<Done>,
    in_flight: Arc<AtomicUsize>,
    codec: CuszpConfig,
    device: Option<DeviceSpec>,
) -> StreamStats {
    let mut stats = StreamStats::new(id);
    // One simulated GPU per worker = one stream with its own timeline.
    let mut gpu = device.map(Gpu::new);
    // Long-lived per-worker arena: after the first chunk warms it up, the
    // host codec's only allocations per chunk are the two output Vecs the
    // result owns — no intermediate buffer is ever reallocated.
    let mut scratch = fast::Scratch::new();
    // `JobSource::next` holds the queue lock only while drawing one job,
    // never while compressing it.
    while let Some(job) = src.next() {
        let t0 = Instant::now();
        let slice = &job.data[job.start..job.end];
        let compressed = match gpu.as_mut() {
            Some(gpu) => {
                let input = gpu.h2d(slice);
                cuszp_core::compress_kernel(gpu, &input, job.eb, codec).to_host(gpu)
            }
            // Workers are already parallel across chunks, so each runs
            // the fast codec single-threaded (byte-identical to the
            // host_ref oracle either way), reusing this worker's arena.
            None => fast::compress_with(&mut scratch, slice, job.eb, codec, 1),
        };
        stats.chunks += 1;
        stats.bytes_in += std::mem::size_of_val(slice) as u64;
        stats.bytes_out += compressed.stream_bytes();
        stats.busy_seconds += t0.elapsed().as_secs_f64();
        in_flight.fetch_sub(1, Ordering::Relaxed);
        let done = Done {
            field: job.field,
            chunk: job.chunk,
            compressed,
            latency_seconds: job.submitted.elapsed().as_secs_f64(),
        };
        if tx.send(done).is_err() {
            break; // collector gone; nothing left to report to
        }
    }
    if let Some(gpu) = gpu.as_ref() {
        stats.sim_kernel_seconds = gpu.breakdown().total();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszp_core::Cuszp;

    fn wavy(n: usize, seed: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.013 + seed).sin() * 4.0)
            .collect()
    }

    fn small_cfg(workers: usize) -> PipelineConfig {
        PipelineConfig {
            workers,
            queue_depth: 2,
            chunk_elems: 1000,
            codec: CuszpConfig::default(),
            device: None,
        }
    }

    #[test]
    fn matches_sequential_chunked_path() {
        let data = wavy(10_123, 0.0);
        let mut pipe = Pipeline::new(small_cfg(3));
        pipe.submit("a", data.clone(), ErrorBound::Rel(1e-3));
        let batch = pipe.finish();
        let reference = Cuszp::new().compress_chunked(&data, ErrorBound::Rel(1e-3), 1000);
        assert_eq!(batch.fields[0].container, reference);
    }

    #[test]
    fn many_fields_keep_submission_order() {
        let mut pipe = Pipeline::new(small_cfg(4));
        for i in 0..8 {
            pipe.submit(
                &format!("f{i}"),
                wavy(2500, i as f32),
                ErrorBound::Abs(1e-3),
            );
        }
        let batch = pipe.finish();
        let names: Vec<&str> = batch.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"]);
        for f in &batch.fields {
            assert_eq!(f.container.num_chunks(), 3); // 2500 / 1000
            let back: Vec<f32> = Cuszp::new().decompress_chunked(&f.container);
            assert_eq!(back.len(), 2500);
        }
    }

    #[test]
    fn tiny_queue_makes_progress() {
        // queue_depth 1 with one worker: submit must block and resume
        // repeatedly without deadlocking.
        let mut pipe = Pipeline::new(PipelineConfig {
            workers: 1,
            queue_depth: 1,
            chunk_elems: 100,
            codec: CuszpConfig::default(),
            device: None,
        });
        pipe.submit("big", wavy(5_000, 0.3), ErrorBound::Abs(1e-3));
        let batch = pipe.finish();
        assert_eq!(batch.fields[0].container.num_chunks(), 50);
        assert_eq!(batch.stats.chunks(), 50);
        assert_eq!(pipe_len(&batch), 5_000);
    }

    fn pipe_len(batch: &BatchResult) -> u64 {
        batch
            .fields
            .iter()
            .map(|f| f.container.total_elements())
            .sum()
    }

    #[test]
    fn empty_field_yields_empty_container() {
        let mut pipe = Pipeline::<f32>::new(small_cfg(2));
        pipe.submit("nothing", Vec::new(), ErrorBound::Abs(1.0));
        let batch = pipe.finish();
        assert_eq!(batch.fields[0].container.num_chunks(), 0);
        assert_eq!(batch.fields[0].bytes_in, 0);
    }

    #[test]
    fn stats_account_for_all_bytes() {
        let mut pipe = Pipeline::new(small_cfg(2));
        pipe.submit("a", wavy(3000, 0.0), ErrorBound::Abs(1e-3));
        pipe.submit("b", wavy(1500, 1.0), ErrorBound::Abs(1e-3));
        let batch = pipe.finish();
        assert_eq!(batch.stats.bytes_in, 4500 * 4);
        let per_stream: u64 = batch.stats.streams.iter().map(|s| s.bytes_in).sum();
        assert_eq!(per_stream, 4500 * 4);
        assert!(batch.stats.ratio > 1.0);
        assert!(batch.stats.wall_seconds > 0.0);
        assert!(batch.stats.max_chunk_latency_s >= batch.stats.mean_chunk_latency_s);
    }

    #[test]
    fn f64_fields_supported() {
        let data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.01).cos()).collect();
        let mut pipe = Pipeline::new(small_cfg(2));
        pipe.submit("d", data.clone(), ErrorBound::Rel(1e-4));
        let batch = pipe.finish();
        let back: Vec<f64> = Cuszp::new().decompress_chunked(&batch.fields[0].container);
        let eb = batch.fields[0].container.chunks[0].eb;
        for (d, r) in data.iter().zip(&back) {
            assert!((d - r).abs() <= eb * (1.0 + 1e-6));
        }
    }

    #[test]
    fn device_mode_collects_sim_kernel_time() {
        let mut pipe = Pipeline::new(PipelineConfig {
            workers: 2,
            queue_depth: 2,
            chunk_elems: 1024,
            codec: CuszpConfig::default(),
            device: Some(DeviceSpec::a100()),
        });
        let data = wavy(4096, 0.0);
        pipe.submit("dev", data.clone(), ErrorBound::Abs(1e-3));
        let batch = pipe.finish();
        // Device streams are byte-identical to the host path, so the
        // container still matches the sequential reference.
        let reference = Cuszp::new().compress_chunked(&data, ErrorBound::Abs(1e-3), 1024);
        assert_eq!(batch.fields[0].container, reference);
        let sim: f64 = batch
            .stats
            .streams
            .iter()
            .map(|s| s.sim_kernel_seconds)
            .sum();
        assert!(sim > 0.0, "simulated kernel time recorded");
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        PipelineConfig {
            workers: 0,
            ..PipelineConfig::default()
        }
        .validate();
    }
}
