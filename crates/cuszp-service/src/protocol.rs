//! The `CUSZPSV1` wire protocol — byte-level framing shared by the
//! server and the blocking client.
//!
//! The normative specification lives in `docs/SERVICE.md`; this module
//! is the single in-tree implementation of it. All multi-byte integers
//! are **little-endian**, matching the `CUSZP1`/`CUSZPCH1` stream
//! formats (`docs/FORMAT.md`).
//!
//! A connection is one tenant session:
//!
//! 1. Client sends a 32-byte hello ([`Tenant::encode_hello`]) declaring
//!    its dtype, error bound, and largest request payload.
//! 2. Server replies with 8 bytes: accept/reject plus the *effective*
//!    payload cap (the tenant's ask clamped to the server's limit).
//! 3. Request/response frames flow until either side closes. Requests
//!    are `op:u8 | len:u32 | payload`; responses are
//!    `status:u8 | len:u32 | payload`.
//!
//! Compressed payloads on the wire are always single-chunk `CUSZPCH1`
//! containers, so a response can be stored to disk or handed to
//! [`cuszp_core::chunk_ref_iter`] as-is.

use cuszp_core::{DType, ErrorBound};

/// Handshake magic — first 8 bytes a client sends.
pub const HANDSHAKE_MAGIC: [u8; 8] = *b"CUSZPSV1";

/// Size of the client hello: magic(8) + tenant_id(8) + dtype(1) +
/// bound_mode(1) + flags(1) + reserved(1) + bound(8) + max_payload(4).
/// The flags byte currently defines bit 0 = hybrid second stage
/// ([`HELLO_FLAG_HYBRID`]); all other flag bits and the reserved byte
/// must be zero.
pub const HANDSHAKE_BYTES: usize = 32;

/// Hello flags-byte bit (byte 18, bit 0): opt this connection into the
/// `CUSZPHY1` hybrid second stage. Compress responses become raw hybrid
/// frames instead of single-chunk `CUSZPCH1` containers, and decompress
/// requests may carry either format.
pub const HELLO_FLAG_HYBRID: u8 = 1;

/// Size of the server's handshake reply: status(1) + code(1) +
/// reserved(2) + effective max_payload(4).
pub const HANDSHAKE_REPLY_BYTES: usize = 8;

/// Request frame header: op(1) + payload length(4).
pub const REQUEST_HEADER_BYTES: usize = 5;

/// Response frame header: status(1) + payload length(4).
pub const RESPONSE_HEADER_BYTES: usize = 5;

/// Request op: compress the payload (raw little-endian elements).
pub const OP_COMPRESS: u8 = b'C';
/// Request op: decompress the payload (one `CUSZPCH1` container).
pub const OP_DECOMPRESS: u8 = b'D';
/// Request op: return the plain-text metrics snapshot (empty payload).
pub const OP_METRICS: u8 = b'M';

/// Response status: success; payload is the result.
pub const STATUS_OK: u8 = 0;
/// Response status: admission queue full — request **not** processed,
/// payload empty; retry later.
pub const STATUS_BUSY: u8 = 1;
/// Response status: request rejected; payload is a UTF-8 message.
pub const STATUS_ERR: u8 = 2;

/// Hello `bound_mode` byte for [`ErrorBound::Abs`].
pub const BOUND_ABS: u8 = 0;
/// Hello `bound_mode` byte for [`ErrorBound::Rel`].
pub const BOUND_REL: u8 = 1;

/// Handshake reject code: hello did not start with [`HANDSHAKE_MAGIC`].
pub const HS_BAD_MAGIC: u8 = 1;
/// Handshake reject code: unknown dtype byte.
pub const HS_BAD_DTYPE: u8 = 2;
/// Handshake reject code: bound not finite/positive, or unknown mode,
/// or undefined flag bits / nonzero reserved byte.
pub const HS_BAD_BOUND: u8 = 3;
/// Handshake reject code: `max_payload` was zero.
pub const HS_BAD_CAP: u8 = 4;

/// Per-connection tenant configuration, as carried by the handshake.
///
/// `max_payload` bounds the raw-bytes side of every request on the
/// connection: a compress request's payload and a decompress request's
/// *decoded* size must both fit. The server clamps it to its own limit
/// and echoes the effective value in the handshake reply — it is also
/// the shape the connection's scratch arena is pre-warmed to, which is
/// what makes steady-state requests allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tenant {
    /// Operator-assigned tenant identity (opaque to the codec).
    pub tenant_id: u64,
    /// Element type of every payload on this connection.
    pub dtype: DType,
    /// Error bound applied to every compress request. REL bounds are
    /// resolved against each request's own value range.
    pub bound: ErrorBound,
    /// Largest raw payload (bytes) this connection will move.
    pub max_payload: u32,
    /// Opt into the `CUSZPHY1` hybrid second stage: compress responses
    /// are raw hybrid frames (when the entropy stage wins) and
    /// decompress requests may carry either a `CUSZPCH1` container or a
    /// hybrid frame. Carried as bit 0 of the hello flags byte.
    pub hybrid: bool,
}

impl Tenant {
    /// Serialize this tenant as the 32-byte client hello.
    pub fn encode_hello(&self) -> [u8; HANDSHAKE_BYTES] {
        let mut b = [0u8; HANDSHAKE_BYTES];
        b[0..8].copy_from_slice(&HANDSHAKE_MAGIC);
        b[8..16].copy_from_slice(&self.tenant_id.to_le_bytes());
        b[16] = self.dtype.to_byte();
        let (mode, bound) = match self.bound {
            ErrorBound::Abs(d) => (BOUND_ABS, d),
            ErrorBound::Rel(l) => (BOUND_REL, l),
        };
        b[17] = mode;
        b[18] = if self.hybrid { HELLO_FLAG_HYBRID } else { 0 };
        // b[19] reserved, zero.
        b[20..28].copy_from_slice(&bound.to_le_bytes());
        b[28..32].copy_from_slice(&self.max_payload.to_le_bytes());
        b
    }

    /// Parse and validate a client hello; `Err` is the handshake reject
    /// code to send back.
    pub fn decode_hello(b: &[u8; HANDSHAKE_BYTES]) -> Result<Tenant, u8> {
        if b[0..8] != HANDSHAKE_MAGIC {
            return Err(HS_BAD_MAGIC);
        }
        let tenant_id = u64::from_le_bytes(b[8..16].try_into().unwrap());
        let dtype = DType::from_byte(b[16]).ok_or(HS_BAD_DTYPE)?;
        let bound_raw = f64::from_le_bytes(b[20..28].try_into().unwrap());
        if b[18] & !HELLO_FLAG_HYBRID != 0
            || b[19] != 0
            || !bound_raw.is_finite()
            || bound_raw <= 0.0
        {
            return Err(HS_BAD_BOUND);
        }
        let hybrid = b[18] & HELLO_FLAG_HYBRID != 0;
        let bound = match b[17] {
            BOUND_ABS => ErrorBound::Abs(bound_raw),
            BOUND_REL => ErrorBound::Rel(bound_raw),
            _ => return Err(HS_BAD_BOUND),
        };
        let max_payload = u32::from_le_bytes(b[28..32].try_into().unwrap());
        if max_payload == 0 {
            return Err(HS_BAD_CAP);
        }
        Ok(Tenant {
            tenant_id,
            dtype,
            bound,
            max_payload,
            hybrid,
        })
    }
}

/// Serialize the server's handshake reply. An accepted handshake is
/// `(STATUS_OK, 0, effective_cap)`; a rejection is
/// `(STATUS_ERR, code, 0)` followed by connection close.
pub fn encode_handshake_reply(
    status: u8,
    code: u8,
    max_payload: u32,
) -> [u8; HANDSHAKE_REPLY_BYTES] {
    let mut b = [0u8; HANDSHAKE_REPLY_BYTES];
    b[0] = status;
    b[1] = code;
    b[4..8].copy_from_slice(&max_payload.to_le_bytes());
    b
}

/// Serialize a request frame header.
pub fn encode_request_header(op: u8, len: u32) -> [u8; REQUEST_HEADER_BYTES] {
    let mut b = [0u8; REQUEST_HEADER_BYTES];
    b[0] = op;
    b[1..5].copy_from_slice(&len.to_le_bytes());
    b
}

/// Serialize a response frame header.
pub fn encode_response_header(status: u8, len: u32) -> [u8; RESPONSE_HEADER_BYTES] {
    let mut b = [0u8; RESPONSE_HEADER_BYTES];
    b[0] = status;
    b[1..5].copy_from_slice(&len.to_le_bytes());
    b
}

/// Serialize the 20-byte `CUSZPCH1` header of a **single-chunk**
/// container whose one frame is `frame_len` bytes: container magic +
/// `num_chunks = 1` + the one-entry frame-length table. Writing this
/// header followed by the raw `CUSZP1` frame produces a byte stream
/// identical to [`cuszp_core::chunked::ChunkedCompressed::to_bytes`]
/// for a one-chunk container — without materializing it.
pub fn single_chunk_container_header(frame_len: u64) -> [u8; 20] {
    let mut b = [0u8; 20];
    b[0..8].copy_from_slice(&cuszp_core::chunked::CHUNK_MAGIC);
    b[8..12].copy_from_slice(&1u32.to_le_bytes());
    b[12..20].copy_from_slice(&frame_len.to_le_bytes());
    b
}

/// Total wire size of a single-chunk container around a `frame_len`-byte
/// `CUSZP1` frame.
pub fn single_chunk_container_len(frame_len: usize) -> usize {
    20 + frame_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let t = Tenant {
            tenant_id: 0xDEAD_BEEF_0042,
            dtype: DType::F64,
            bound: ErrorBound::Rel(1e-3),
            max_payload: 1 << 20,
            hybrid: false,
        };
        assert_eq!(Tenant::decode_hello(&t.encode_hello()), Ok(t));
        let abs = Tenant {
            bound: ErrorBound::Abs(0.5),
            dtype: DType::F32,
            ..t
        };
        assert_eq!(Tenant::decode_hello(&abs.encode_hello()), Ok(abs));
        let hybrid = Tenant { hybrid: true, ..t };
        let hello = hybrid.encode_hello();
        assert_eq!(hello[18], HELLO_FLAG_HYBRID);
        assert_eq!(Tenant::decode_hello(&hello), Ok(hybrid));
    }

    #[test]
    fn hello_rejects_each_bad_field() {
        let good = Tenant {
            tenant_id: 7,
            dtype: DType::F32,
            bound: ErrorBound::Abs(0.01),
            max_payload: 4096,
            hybrid: false,
        }
        .encode_hello();

        let mut b = good;
        b[0] = b'X';
        assert_eq!(Tenant::decode_hello(&b), Err(HS_BAD_MAGIC));

        let mut b = good;
        b[16] = 9;
        assert_eq!(Tenant::decode_hello(&b), Err(HS_BAD_DTYPE));

        let mut b = good;
        b[17] = 5; // unknown bound mode
        assert_eq!(Tenant::decode_hello(&b), Err(HS_BAD_BOUND));

        let mut b = good;
        b[18] = 2; // undefined flag bit
        assert_eq!(Tenant::decode_hello(&b), Err(HS_BAD_BOUND));

        let mut b = good;
        b[19] = 1; // reserved must be zero
        assert_eq!(Tenant::decode_hello(&b), Err(HS_BAD_BOUND));

        let mut b = good;
        b[20..28].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(Tenant::decode_hello(&b), Err(HS_BAD_BOUND));

        let mut b = good;
        b[20..28].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(Tenant::decode_hello(&b), Err(HS_BAD_BOUND));

        let mut b = good;
        b[28..32].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(Tenant::decode_hello(&b), Err(HS_BAD_CAP));
    }

    #[test]
    fn frame_headers_are_le() {
        let r = encode_request_header(OP_COMPRESS, 0x0102_0304);
        assert_eq!(r, [b'C', 0x04, 0x03, 0x02, 0x01]);
        let s = encode_response_header(STATUS_BUSY, 0);
        assert_eq!(s, [1, 0, 0, 0, 0]);
    }

    #[test]
    fn single_chunk_header_matches_container_serialization() {
        // Compare against the owned-container writer on a real stream.
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin()).collect();
        let c = cuszp_core::Cuszp::new().compress_chunked(&data, ErrorBound::Abs(0.01), 256);
        let owned = c.to_bytes();
        let frame = &owned[20..];
        let mut wire = Vec::new();
        wire.extend_from_slice(&single_chunk_container_header(frame.len() as u64));
        wire.extend_from_slice(frame);
        assert_eq!(wire, owned);
        assert_eq!(wire.len(), single_chunk_container_len(frame.len()));
    }
}
