//! Entropy-stage kernel throughput at every SIMD tier the host
//! supports: the multi-lane byte histogram, canonical Huffman one-way
//! vs. the four-stream interleaved `Huffman4` (both directions), and
//! the PackBits RLE scanner. These are the hot loops behind the hybrid
//! `CUSZPHY1` second stage; the harness experiment `repro hybrid_ratio`
//! records the end-to-end view into `BENCH_hybrid.json`, while this
//! target isolates the kernels themselves on a fixed 4 MiB chunk-shaped
//! corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use cuszp_entropy::{decode_chunk, encode_chunk_at, histogram, Mode, Tier};
use std::hint::black_box;

/// Skewed bytes shaped like a bit-shuffled residual plane: a few hot
/// symbols, a long zero tail, occasional runs — Huffman and RLE both
/// have real work to do.
fn skewed_bytes(n: usize) -> Vec<u8> {
    let mut s = 0x1234_5678_9abc_def0u64;
    (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if i % 97 < 40 {
                0
            } else {
                (s % 16) as u8
            }
        })
        .collect()
}

/// Run lengths long enough that the RLE scanner's vector path dominates.
fn runny_bytes(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i / 300) % 7) as u8).collect()
}

fn supported_tiers() -> Vec<Tier> {
    let detected = Tier::detect();
    Tier::ALL.into_iter().filter(|&t| t <= detected).collect()
}

fn bench_entropy(c: &mut Criterion) {
    let n = 4 << 20;
    let skewed = skewed_bytes(n);
    let runny = runny_bytes(n);
    let mut comp = Vec::new();
    let mut back = vec![0u8; n];

    let mut group = c.benchmark_group("entropy");
    for tier in supported_tiers() {
        group.bench_function(format!("histogram_{tier}"), |b| {
            b.iter(|| black_box(histogram(tier, black_box(&skewed))[0]))
        });

        group.bench_function(format!("huffman1_encode_{tier}"), |b| {
            b.iter(|| {
                comp.clear();
                let got = encode_chunk_at(tier, Mode::Huffman, black_box(&skewed), &mut comp);
                assert_eq!(got, Mode::Huffman);
                black_box(comp.len())
            })
        });
        comp.clear();
        encode_chunk_at(tier, Mode::Huffman, &skewed, &mut comp);
        group.bench_function(format!("huffman1_decode_{tier}"), |b| {
            b.iter(|| {
                decode_chunk(Mode::Huffman, black_box(&comp), &mut back).expect("own chunk");
                black_box(back[0])
            })
        });

        group.bench_function(format!("huffman4_encode_{tier}"), |b| {
            b.iter(|| {
                comp.clear();
                let got = encode_chunk_at(tier, Mode::Huffman4, black_box(&skewed), &mut comp);
                assert_eq!(got, Mode::Huffman4);
                black_box(comp.len())
            })
        });
        comp.clear();
        encode_chunk_at(tier, Mode::Huffman4, &skewed, &mut comp);
        group.bench_function(format!("huffman4_decode_{tier}"), |b| {
            b.iter(|| {
                decode_chunk(Mode::Huffman4, black_box(&comp), &mut back).expect("own chunk");
                black_box(back[0])
            })
        });

        group.bench_function(format!("rle_encode_{tier}"), |b| {
            b.iter(|| {
                comp.clear();
                let got = encode_chunk_at(tier, Mode::Rle, black_box(&runny), &mut comp);
                assert_eq!(got, Mode::Rle);
                black_box(comp.len())
            })
        });
        comp.clear();
        encode_chunk_at(tier, Mode::Rle, &runny, &mut comp);
        group.bench_function(format!("rle_decode_{tier}"), |b| {
            b.iter(|| {
                decode_chunk(Mode::Rle, black_box(&comp), &mut back).expect("own chunk");
                black_box(back[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_entropy);
criterion_main!(benches);
