//! The optimized host codec — byte-identical to [`crate::host_ref`],
//! restructured for speed.
//!
//! `host_ref` walks the pipeline step by step per block (quantize →
//! plan → sign map → abs pass → bit-by-bit shuffle) and grows the payload
//! `Vec` as it goes. This module instead mirrors the GPU kernel's own
//! **two-phase** structure on the host (paper §4.3):
//!
//! - **Phase 1** fuses quantize + Lorenzo + `(F, CmpL)` planning +
//!   encoding per *tile* of blocks: residuals live in a small reused
//!   scratch that stays cache-resident (never a data-sized buffer), the
//!   quantization arithmetic runs through [`crate::simd`] (AVX-512 when
//!   the host has it, bit-exact scalar otherwise), and each block's sign
//!   map + bit planes are emitted into the worker's staging buffer the
//!   moment they are planned — the host analogue of the GPU kernel
//!   encoding into shared memory before the global offsets exist.
//! - An exclusive **prefix sum** over the per-block `CmpL` table — the
//!   host edition of the paper's Global Synchronization step — fixes
//!   every block's payload offset.
//! - **Phase 2** places each worker's staged bytes at its scanned offset
//!   in the final payload. Staged bytes are already exactly the final
//!   bytes (fraction ⓑ is a plain concatenation), so placement is a
//!   bulk copy — and with one worker the staging buffer simply *becomes*
//!   the payload.
//!
//! The bit-plane work itself is word-parallel twice over: per 8-value
//! group, the magnitudes' byte matrix is transposed
//! ([`crate::bitshuffle::byte_transpose8x8`]) to expose each 8-plane
//! chunk as one `u64`, each chunk is bit-transposed
//! ([`crate::bitshuffle::transpose8x8`]), and a second byte transpose
//! across groups turns the results into whole plane *rows*, stored with
//! word writes instead of strided byte writes. Decoding runs the same
//! three transposes backwards (each is an involution).
//!
//! No per-block heap allocation happens in either direction. Because
//! blocks are independent once the offsets are known — the same argument
//! the paper's GS step makes for the GPU — both directions have an
//! opt-in multi-threaded form ([`compress_threaded`] /
//! [`decompress_threaded`]) whose output is **bit-identical to the
//! sequential path by construction**: workers own disjoint block ranges
//! and their staged bytes land at disjoint, precomputed byte ranges.

use crate::bitshuffle::{byte_transpose8x8, transpose8x8};
use crate::config::CuszpConfig;
use crate::dtype::FloatData;
use crate::encode::cmp_bytes_for;
use crate::format::Compressed;
use crate::simd;

/// Residual-scratch sizing: tiles hold about this many elements so the
/// working set (64 KiB of `i64`) stays in L2 instead of round-tripping a
/// data-sized buffer through DRAM.
const TILE_ELEMS: usize = 8192;

/// Resolve a requested worker count: `0` means the host's parallelism.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Split `num_blocks` into at most `threads` contiguous non-empty ranges.
fn block_ranges(num_blocks: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.min(num_blocks).max(1);
    let per = num_blocks / threads;
    let extra = num_blocks % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut at = 0;
    for t in 0..threads {
        let len = per + usize::from(t < extra);
        if len > 0 {
            ranges.push((at, at + len));
            at += len;
        }
    }
    ranges
}

/// Encode one block's sign map + bit planes into `out[..CmpL]`. Layout is
/// exactly `host_ref`'s (sign bytes, then the `F` bit planes of Fig 11);
/// only the traversal is word-parallel (see module docs).
fn encode_block(resid: &[i64], f: u8, out: &mut [u8]) {
    let bpp = resid.len() / 8; // bytes per plane = L/8
    let chunks = (f as usize).div_ceil(8);
    let (sign_bytes, planes) = out.split_at_mut(bpp);
    let mut j0 = 0usize;
    while j0 < bpp {
        let strip = (bpp - j0).min(8);
        // ys[t][g]: byte c = plane (8t+c) byte of strip group g.
        let mut ys = [[0u64; 8]; 8];
        for (g, group) in resid[8 * j0..8 * (j0 + strip)].chunks_exact(8).enumerate() {
            let mut s = 0u8;
            let mut m = [0u64; 8];
            for (i, &r) in group.iter().enumerate() {
                s |= u8::from(r < 0) << i;
                m[i] = r.unsigned_abs();
            }
            sign_bytes[j0 + g] = s;
            // limbs[t] = byte t of each of the 8 magnitudes — all eight
            // 8-plane chunks of the group from one byte transpose.
            let limbs = byte_transpose8x8(m);
            for (t, y) in ys.iter_mut().enumerate().take(chunks) {
                y[g] = transpose8x8(limbs[t]);
            }
        }
        // Across the strip: one more byte transpose turns per-group chunk
        // words into whole plane rows, stored with word-sized writes.
        for (t, y) in ys.iter().enumerate().take(chunks) {
            let rows = byte_transpose8x8(*y);
            let k0 = 8 * t;
            let n_planes = (f as usize - k0).min(8);
            for (c, row) in rows.iter().enumerate().take(n_planes) {
                planes[(k0 + c) * bpp + j0..][..strip].copy_from_slice(&row.to_le_bytes()[..strip]);
            }
        }
        j0 += strip;
    }
}

/// Phase 1 for blocks `[b0, b1)`: tile-fused quantize + Lorenzo + plan +
/// encode. Fills `fls`/`cmps` (the `(F, CmpL)` scratch table) and appends
/// every non-zero block's payload bytes to `staging` in block order.
#[allow(clippy::too_many_arguments)]
fn plan_and_encode<T: FloatData>(
    data: &[T],
    eb: f64,
    lorenzo: bool,
    l: usize,
    b0: usize,
    fls: &mut [u8],
    cmps: &mut [u32],
    staging: &mut Vec<u8>,
) {
    let blocks_per_tile = (TILE_ELEMS / l).max(1);
    let mut resid = vec![0i64; blocks_per_tile * l];
    let mut maxes = vec![0u64; blocks_per_tile];
    let num_blocks = fls.len();
    let n = data.len();
    let b32 = l == 32 && simd::block32_available();

    let mut i = 0;
    while i < num_blocks {
        let tile = (num_blocks - i).min(blocks_per_tile);
        let start = (b0 + i) * l;
        let end = (start + tile * l).min(n);
        simd::quantize_blocks(
            &data[start..end],
            l,
            eb,
            lorenzo,
            &mut resid[..tile * l],
            &mut maxes[..tile],
        );
        for (k, &max_abs) in maxes[..tile].iter().enumerate() {
            let f = (64 - max_abs.leading_zeros()) as u8;
            let cmp = cmp_bytes_for(f, l);
            fls[i + k] = f;
            cmps[i + k] = cmp;
            if f > 0 {
                let at = staging.len();
                staging.resize(at + cmp as usize, 0);
                let block = &resid[k * l..(k + 1) * l];
                if b32 && f <= 16 {
                    simd::encode_block32(block, f, &mut staging[at..]);
                } else {
                    encode_block(block, f, &mut staging[at..]);
                }
            }
        }
        i += tile;
    }
}

/// Compress `data` under an **absolute** error bound `eb`, sequentially.
/// Byte-identical to [`crate::host_ref::compress`].
pub fn compress<T: FloatData>(data: &[T], eb: f64, cfg: CuszpConfig) -> Compressed {
    compress_threaded(data, eb, cfg, 1)
}

/// Compress with `threads` workers (`0` ⇒ [`std::thread::available_parallelism`]).
///
/// Workers own disjoint block ranges and stage their payload fraction in
/// block order, and the prefix-sum offsets place each staged range
/// exactly, so the stream is **bit-identical** to the sequential path for
/// every thread count.
pub fn compress_threaded<T: FloatData>(
    data: &[T],
    eb: f64,
    cfg: CuszpConfig,
    threads: usize,
) -> Compressed {
    cfg.validate();
    assert!(
        eb.is_finite() && eb > 0.0,
        "absolute bound must be positive"
    );
    let l = cfg.block_len;
    let num_blocks = data.len().div_ceil(l);
    let threads = resolve_threads(threads);

    let mut fixed_lengths = vec![0u8; num_blocks];
    let mut cmps = vec![0u32; num_blocks];
    let ranges = block_ranges(num_blocks, threads);

    let payload = if ranges.len() <= 1 {
        // One worker: its staging buffer IS the payload.
        let mut staging = Vec::with_capacity(std::mem::size_of_val(data) / 8 + 64);
        if num_blocks > 0 {
            plan_and_encode(
                data,
                eb,
                cfg.lorenzo,
                l,
                0,
                &mut fixed_lengths,
                &mut cmps,
                &mut staging,
            );
        }
        staging
    } else {
        // Phase 1 in parallel: each worker fills its slice of the (F,
        // CmpL) table and stages its payload fraction.
        let mut stagings: Vec<Vec<u8>> = Vec::with_capacity(ranges.len());
        std::thread::scope(|s| {
            let mut fl_rest = &mut fixed_lengths[..];
            let mut cmp_rest = &mut cmps[..];
            let mut handles = Vec::with_capacity(ranges.len());
            for &(b0, b1) in &ranges {
                let (fls, flr) = fl_rest.split_at_mut(b1 - b0);
                fl_rest = flr;
                let (cs, cr) = cmp_rest.split_at_mut(b1 - b0);
                cmp_rest = cr;
                handles.push(s.spawn(move || {
                    let guess = (b1 - b0) * l * std::mem::size_of::<T>() / 8 + 64;
                    let mut staging = Vec::with_capacity(guess);
                    plan_and_encode(data, eb, cfg.lorenzo, l, b0, fls, cs, &mut staging);
                    staging
                }));
            }
            for h in handles {
                stagings.push(h.join().expect("codec worker panicked"));
            }
        });

        // Global Synchronization, host edition: the exclusive prefix sum
        // over CmpL fixes every block's offset; phase 2 places each
        // worker's staged bytes at its range's offset.
        let mut offsets = vec![0u64; num_blocks + 1];
        let mut acc = 0u64;
        for (b, &c) in cmps.iter().enumerate() {
            offsets[b] = acc;
            acc += c as u64;
        }
        offsets[num_blocks] = acc;

        let mut payload = Vec::with_capacity(acc as usize);
        for (&(b0, _), staged) in ranges.iter().zip(&stagings) {
            debug_assert_eq!(payload.len() as u64, offsets[b0]);
            payload.extend_from_slice(staged);
        }
        debug_assert_eq!(payload.len() as u64, acc);
        payload
    };

    Compressed {
        num_elements: data.len() as u64,
        block_len: l as u32,
        eb,
        lorenzo: cfg.lorenzo,
        dtype: T::DTYPE,
        fixed_lengths,
        payload,
    }
}

/// Decode one block's quantization integers from its payload bytes into
/// `q[..L]` — the exact inverse of [`encode_block`] plus the Lorenzo
/// prefix sum.
fn decode_block(payload: &[u8], f: u8, lorenzo: bool, l: usize, q: &mut [i64]) {
    let bpp = l / 8;
    let chunks = (f as usize).div_ceil(8);
    let (sign_bytes, planes) = payload.split_at(bpp);
    let mut acc = 0i64;
    let mut j0 = 0usize;
    while j0 < bpp {
        let strip = (bpp - j0).min(8);
        // Inverse of the encoder's strip step: plane rows → per-group
        // chunk words → per-group magnitude limbs.
        let mut ys = [[0u64; 8]; 8];
        for (t, y) in ys.iter_mut().enumerate().take(chunks) {
            let k0 = 8 * t;
            let n_planes = (f as usize - k0).min(8);
            let mut rows = [0u64; 8];
            for (c, row) in rows.iter_mut().enumerate().take(n_planes) {
                let mut bytes = [0u8; 8];
                bytes[..strip].copy_from_slice(&planes[(k0 + c) * bpp + j0..][..strip]);
                *row = u64::from_le_bytes(bytes);
            }
            *y = byte_transpose8x8(rows);
        }
        for g in 0..strip {
            let mut limbs = [0u64; 8];
            for (t, y) in ys.iter().enumerate().take(chunks) {
                limbs[t] = transpose8x8(y[g]);
            }
            let m = byte_transpose8x8(limbs); // m[i] = |residual i|
            let s = sign_bytes[j0 + g];
            let dst = &mut q[8 * (j0 + g)..8 * (j0 + g) + 8];
            for (i, out) in dst.iter_mut().enumerate() {
                let v = m[i] as i64;
                let r = if s & (1 << i) != 0 {
                    v.wrapping_neg()
                } else {
                    v
                };
                *out = if lorenzo {
                    acc = acc.wrapping_add(r);
                    acc
                } else {
                    r
                };
            }
        }
        j0 += strip;
    }
}

/// Decode blocks `[b0, b1)` from `payload` into `out` (the slice covering
/// elements `b0·L .. min(b1·L, N)`), tile by tile: blocks decode into a
/// cache-resident integer scratch, then one batch dequantize per tile.
#[allow(clippy::too_many_arguments)]
fn decode_blocks<T: FloatData>(
    fls: &[u8],
    offsets: &[u64],
    payload: &[u8],
    l: usize,
    b0: usize,
    n: usize,
    eb: f64,
    lorenzo: bool,
    out: &mut [T],
) {
    let blocks_per_tile = (TILE_ELEMS / l).max(1);
    let mut q = vec![0i64; blocks_per_tile * l];
    let num_blocks = fls.len();
    let out_base = b0 * l;
    let b32 = l == 32 && simd::block32_available();

    let mut i = 0;
    while i < num_blocks {
        let tile = (num_blocks - i).min(blocks_per_tile);
        for (k, &f) in fls[i..i + tile].iter().enumerate() {
            let qb = &mut q[k * l..(k + 1) * l];
            if f == 0 {
                qb.fill(0); // zero block: every quantization integer is 0
                continue;
            }
            let off = offsets[b0 + i + k] as usize;
            let bytes = &payload[off..off + cmp_bytes_for(f, l) as usize];
            if b32 && f <= 16 {
                simd::decode_block32(bytes, f, lorenzo, qb);
            } else {
                decode_block(bytes, f, lorenzo, l, qb);
            }
        }
        let start = (b0 + i) * l;
        let end = (start + tile * l).min(n);
        simd::dequantize_slice(&q, eb, &mut out[start - out_base..end - out_base]);
        i += tile;
    }
}

/// Decompress a stream sequentially. Identical output to
/// [`crate::host_ref::decompress`].
///
/// # Panics
/// Panics if the stream is structurally invalid or was compressed from a
/// different element type than `T`.
pub fn decompress<T: FloatData>(c: &Compressed) -> Vec<T> {
    decompress_threaded(c, 1)
}

/// Decompress with `threads` workers (`0` ⇒ host parallelism). Blocks
/// decode independently at Eq-2 offsets, so the output is identical for
/// every thread count.
pub fn decompress_threaded<T: FloatData>(c: &Compressed, threads: usize) -> Vec<T> {
    // The exact-length payload check matters here: block offsets are
    // trusted for direct slicing below.
    c.validate().expect("invalid stream");
    assert_eq!(c.dtype, T::DTYPE, "stream element type mismatch");
    let l = c.block_len as usize;
    let n = c.num_elements as usize;
    let num_blocks = c.num_blocks();
    let threads = resolve_threads(threads);

    // Rebuild the offset table from fraction ⓐ via Eq 2 (Fig 2's offsets
    // are never stored).
    let mut offsets = vec![0u64; num_blocks + 1];
    let mut acc = 0u64;
    for (b, &f) in c.fixed_lengths.iter().enumerate() {
        offsets[b] = acc;
        acc += cmp_bytes_for(f, l) as u64;
    }
    offsets[num_blocks] = acc;

    let mut out = vec![T::default(); n];
    let ranges = block_ranges(num_blocks, threads);
    if ranges.len() <= 1 {
        if num_blocks > 0 {
            decode_blocks(
                &c.fixed_lengths,
                &offsets,
                &c.payload,
                l,
                0,
                n,
                c.eb,
                c.lorenzo,
                &mut out,
            );
        }
    } else {
        let offsets = &offsets[..];
        std::thread::scope(|s| {
            let mut out_rest = &mut out[..];
            let mut consumed = 0usize;
            for &(b0, b1) in &ranges {
                let end = (b1 * l).min(n);
                let (mine, rest) = out_rest.split_at_mut(end - consumed);
                out_rest = rest;
                consumed = end;
                let fls = &c.fixed_lengths[b0..b1];
                s.spawn(move || {
                    decode_blocks(fls, offsets, &c.payload, l, b0, n, c.eb, c.lorenzo, mine)
                });
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_ref;

    fn wave(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.02).sin() * 40.0 + (i as f32 * 0.11).cos() * 3.0)
            .collect()
    }

    fn assert_identical(data: &[f32], eb: f64, cfg: CuszpConfig) {
        let reference = host_ref::compress(data, eb, cfg);
        for threads in [1usize, 2, 5] {
            let fast = compress_threaded(data, eb, cfg, threads);
            assert_eq!(fast, reference, "compress threads={threads}");
            let back: Vec<f32> = decompress_threaded(&fast, threads);
            assert_eq!(
                back,
                host_ref::decompress::<f32>(&reference),
                "decompress threads={threads}"
            );
        }
    }

    #[test]
    fn byte_identical_to_host_ref() {
        assert_identical(&wave(5000), 0.01, CuszpConfig::default());
    }

    #[test]
    fn tail_blocks_identical() {
        for n in [1usize, 7, 31, 32, 33, 100, 1023] {
            assert_identical(&wave(n), 0.005, CuszpConfig::default());
        }
    }

    #[test]
    fn no_lorenzo_identical() {
        let cfg = CuszpConfig {
            lorenzo: false,
            ..Default::default()
        };
        assert_identical(&wave(777), 0.02, cfg);
    }

    #[test]
    fn block_len_variants_identical() {
        for l in [8usize, 16, 64, 128] {
            let cfg = CuszpConfig {
                block_len: l,
                lorenzo: true,
            };
            assert_identical(&wave(530), 0.01, cfg);
        }
    }

    #[test]
    fn spans_many_tiles_identical() {
        // > TILE_ELEMS elements so tiling boundaries are exercised.
        assert_identical(&wave(3 * TILE_ELEMS + 17), 0.01, CuszpConfig::default());
    }

    #[test]
    fn wide_residuals_identical() {
        // Large magnitudes + tiny bound pushes F past one 8-plane chunk.
        let data: Vec<f32> = (0..640).map(|i| (i as f32 * 0.37).sin() * 3.0e7).collect();
        assert_identical(&data, 1e-4, CuszpConfig::default());
    }

    #[test]
    fn empty_input() {
        let c = compress::<f32>(&[], 0.1, CuszpConfig::default());
        assert_eq!(c.num_blocks(), 0);
        assert!(decompress::<f32>(&c).is_empty());
    }

    #[test]
    fn all_zero_blocks() {
        let data = vec![0.0f32; 256];
        let c = compress(&data, 0.001, CuszpConfig::default());
        assert!(c.payload.is_empty());
        assert_eq!(decompress::<f32>(&c), data);
    }

    #[test]
    fn f64_identical() {
        let data: Vec<f64> = (0..900).map(|i| (i as f64 * 0.013).sin() * 1e5).collect();
        let reference = host_ref::compress(&data, 0.5, CuszpConfig::default());
        let fast = compress_threaded(&data, 0.5, CuszpConfig::default(), 3);
        assert_eq!(fast, reference);
        let back: Vec<f64> = decompress_threaded(&fast, 3);
        assert_eq!(back, host_ref::decompress::<f64>(&reference));
    }

    #[test]
    fn auto_thread_count_works() {
        let data = wave(2048);
        let c = compress_threaded(&data, 0.01, CuszpConfig::default(), 0);
        assert_eq!(c, host_ref::compress(&data, 0.01, CuszpConfig::default()));
        let back: Vec<f32> = decompress_threaded(&c, 0);
        assert_eq!(back, host_ref::decompress::<f32>(&c));
    }

    #[test]
    fn block32_codec_matches_generic() {
        if !simd::block32_available() {
            return; // vector block codec not usable on this host
        }
        // Deterministic pseudo-random residuals exercising every f,
        // signs, zeros, and the exact 2^f−1 magnitude boundaries.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for f in 1u8..=16 {
            for trial in 0..50 {
                let top = (1u64 << f) - 1;
                let resid: Vec<i64> = (0..32)
                    .map(|i| {
                        let mag = if trial == 0 && i < 4 {
                            top
                        } else {
                            rng() & top
                        };
                        let v = mag as i64;
                        if rng() & 1 == 0 {
                            -v
                        } else {
                            v
                        }
                    })
                    .collect();
                let cmp = cmp_bytes_for(f, 32) as usize;
                let mut want = vec![0u8; cmp];
                encode_block(&resid, f, &mut want);
                let mut got = vec![0u8; cmp];
                simd::encode_block32(&resid, f, &mut got);
                assert_eq!(got, want, "encode f={f} trial={trial}");

                for lorenzo in [false, true] {
                    let mut q_want = vec![0i64; 32];
                    decode_block(&want, f, lorenzo, 32, &mut q_want);
                    let mut q_got = vec![0i64; 32];
                    simd::decode_block32(&want, f, lorenzo, &mut q_got);
                    assert_eq!(q_got, q_want, "decode f={f} lorenzo={lorenzo}");
                }
            }
        }
    }

    #[test]
    fn more_threads_than_blocks() {
        let data = wave(40); // 2 blocks
        assert_identical(&data, 0.01, CuszpConfig::default());
        let c = compress_threaded(&data, 0.01, CuszpConfig::default(), 16);
        assert_eq!(c, host_ref::compress(&data, 0.01, CuszpConfig::default()));
    }
}
