//! Archive a whole dataset: compress every field of a synthetic NYX
//! snapshot into one `.cuszpar` container, write it to disk, reload it,
//! and verify every field — the batch workflow a simulation campaign would
//! use for post-hoc analysis storage.
//!
//! ```text
//! cargo run --release --example archive_dataset
//! ```

use cuszp_core::{Archive, CuszpConfig, ErrorBound};
use datasets::{generate, DatasetId, Scale};

fn main() {
    let fields = generate(DatasetId::Nyx, Scale::Small);
    let bound = ErrorBound::Rel(1e-3);

    let mut archive = Archive::new();
    for field in &fields {
        archive.push(
            field.name.clone(),
            field.shape.clone(),
            &field.data,
            bound,
            CuszpConfig::default(),
        );
        let e = archive.entries.last().expect("just pushed");
        println!(
            "  {:<22} {:>9} -> {:>9} bytes ({:.2}x, eb {:.3e})",
            field.name,
            field.size_bytes(),
            e.stream.stream_bytes(),
            field.size_bytes() as f64 / e.stream.stream_bytes() as f64,
            e.stream.eb
        );
    }

    let path = std::env::temp_dir().join("nyx_snapshot.cuszpar");
    std::fs::write(&path, archive.to_bytes()).expect("write archive");
    println!(
        "\narchived {} fields: {:.1} MB -> {:.1} MB ({:.2}x) at {}",
        archive.entries.len(),
        archive.original_bytes() as f64 / 1e6,
        archive.stream_bytes() as f64 / 1e6,
        archive.original_bytes() as f64 / archive.stream_bytes() as f64,
        path.display()
    );

    // Reload and verify every field against its own bound.
    let bytes = std::fs::read(&path).expect("read archive");
    let reloaded = Archive::from_bytes(&bytes).expect("parse archive");
    for field in &fields {
        let restored: Vec<f32> = reloaded
            .decompress(&field.name)
            .expect("field present in archive");
        let entry = reloaded.get(&field.name).expect("entry present");
        assert!(
            cuszp_core::verify::check_bound(&field.data, &restored, entry.stream.eb),
            "{} violated its bound after the disk round trip",
            field.name
        );
    }
    println!(
        "all {} fields verified within bound after reload",
        fields.len()
    );
    std::fs::remove_file(&path).ok();
}
