//! Canonical, length-limited Huffman coding over bytes.
//!
//! The chunk layout is a 128-byte packed-nibble code-length table (one
//! 4-bit length per symbol, low nibble = even symbol) followed by the
//! MSB-first bitstream. Lengths are capped at
//! [`HUFFMAN_MAX_CODE_LEN`] = 12 bits so the decoder is a single lookup
//! into a 4096-entry table — the table-driven decode the hybrid frame's
//! throughput numbers depend on. Codes are *canonical*: the lengths fully
//! determine the codebook (assigned in `(length, symbol)` order), so the
//! table is the entire header and encoder and decoder can never disagree
//! on code values.
//!
//! The builder is the classic two-queue merge over frequency-sorted
//! leaves (linear after the sort), followed by a Kraft-sum repair that
//! deepens the longest under-limit code until the capped lengths are
//! prefix-decodable again. Everything runs in fixed-size stack arrays —
//! no allocation, no recursion.

use crate::EntropyError;

/// Size of the packed-nibble code-length table that heads every chunk.
pub const HUFFMAN_TABLE_BYTES: usize = 128;

/// Maximum code length in bits; also the decode-table index width.
pub const HUFFMAN_MAX_CODE_LEN: u32 = 12;

const LIMIT: u8 = HUFFMAN_MAX_CODE_LEN as u8;
const TABLE_SIZE: usize = 1 << HUFFMAN_MAX_CODE_LEN;

/// Append the coded form of `raw` (table + bitstream) to `out` **iff** it
/// is strictly smaller than `raw`; returns whether it was appended. The
/// exact coded size is known from the code lengths before any byte is
/// written, so a losing encode costs the histogram pass only.
pub(crate) fn encode(raw: &[u8], out: &mut Vec<u8>) -> bool {
    debug_assert!(!raw.is_empty());
    let mut freq = [0u32; 256];
    for &b in raw {
        freq[b as usize] += 1;
    }
    let mut lens = [0u8; 256];
    build_lengths(&freq, &mut lens);

    let total_bits: u64 = freq
        .iter()
        .zip(lens.iter())
        .map(|(&f, &l)| u64::from(f) * u64::from(l))
        .sum();
    let coded = HUFFMAN_TABLE_BYTES as u64 + total_bits.div_ceil(8);
    if coded >= raw.len() as u64 {
        return false;
    }

    out.reserve(coded as usize);
    for i in 0..HUFFMAN_TABLE_BYTES {
        out.push(lens[2 * i] | (lens[2 * i + 1] << 4));
    }
    let codes = assign_codes(&lens);
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &b in raw {
        acc = (acc << lens[b as usize]) | u64::from(codes[b as usize]);
        nbits += u32::from(lens[b as usize]);
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        out.push((acc << (8 - nbits)) as u8);
    }
    true
}

/// Decode a chunk produced by [`encode`] into `out` (whose length is the
/// chunk's recorded raw length). Every malformation — truncated table,
/// over-limit or Kraft-overfull lengths, a bit pattern matching no code,
/// a bitstream that ends early or carries unused bytes or non-zero
/// padding — is a typed [`EntropyError`].
pub(crate) fn decode(comp: &[u8], out: &mut [u8]) -> Result<(), EntropyError> {
    if comp.len() < HUFFMAN_TABLE_BYTES {
        return Err(EntropyError("huffman table truncated"));
    }
    let mut lens = [0u8; 256];
    for (i, &b) in comp[..HUFFMAN_TABLE_BYTES].iter().enumerate() {
        lens[2 * i] = b & 0x0F;
        lens[2 * i + 1] = b >> 4;
    }
    let mut kraft: u64 = 0;
    let mut nonzero = 0u32;
    for &l in &lens {
        if l > LIMIT {
            return Err(EntropyError("huffman code length exceeds limit"));
        }
        if l > 0 {
            kraft += 1u64 << (LIMIT - l);
            nonzero += 1;
        }
    }
    let bits = &comp[HUFFMAN_TABLE_BYTES..];
    if out.is_empty() {
        return if bits.is_empty() {
            Ok(())
        } else {
            Err(EntropyError("huffman trailing bytes"))
        };
    }
    if nonzero == 0 {
        return Err(EntropyError("huffman table empty"));
    }
    if kraft > 1u64 << LIMIT {
        return Err(EntropyError("huffman table overfull"));
    }

    // Flat decode table: every 12-bit prefix maps to (symbol, length);
    // length 0 marks a gap no valid stream can hit.
    let codes = assign_codes(&lens);
    let mut sym_tab = [0u8; TABLE_SIZE];
    let mut len_tab = [0u8; TABLE_SIZE];
    for s in 0..256 {
        let l = lens[s];
        if l == 0 {
            continue;
        }
        let span = 1usize << (LIMIT - l);
        let base = (codes[s] as usize) << (LIMIT - l);
        // Kraft ≤ 1 guarantees canonical codes fit; belt and suspenders.
        if base + span > TABLE_SIZE {
            return Err(EntropyError("huffman table overfull"));
        }
        for e in &mut sym_tab[base..base + span] {
            *e = s as u8;
        }
        for e in &mut len_tab[base..base + span] {
            *e = l;
        }
    }

    let mut acc: u64 = 0;
    let mut have: u32 = 0;
    let mut next = 0usize;
    for slot in out.iter_mut() {
        while have < HUFFMAN_MAX_CODE_LEN && next < bits.len() {
            acc = (acc << 8) | u64::from(bits[next]);
            next += 1;
            have += 8;
        }
        let peek = if have >= HUFFMAN_MAX_CODE_LEN {
            (acc >> (have - HUFFMAN_MAX_CODE_LEN)) as usize & (TABLE_SIZE - 1)
        } else {
            (acc << (HUFFMAN_MAX_CODE_LEN - have)) as usize & (TABLE_SIZE - 1)
        };
        let l = u32::from(len_tab[peek]);
        if l == 0 {
            return Err(EntropyError("invalid huffman code"));
        }
        if l > have {
            return Err(EntropyError("huffman bitstream truncated"));
        }
        have -= l;
        *slot = sym_tab[peek];
    }
    // All bytes must be consumed (modulo final-byte padding, which must
    // be zero as the encoder writes it).
    if next != bits.len() || have >= 8 {
        return Err(EntropyError("huffman trailing bytes"));
    }
    if have > 0 && acc & ((1u64 << have) - 1) != 0 {
        return Err(EntropyError("huffman padding not zero"));
    }
    Ok(())
}

/// Optimal code lengths for `freq`, then capped to [`LIMIT`] with a
/// Kraft-sum repair. Zero-frequency symbols get length 0.
fn build_lengths(freq: &[u32; 256], lens: &mut [u8; 256]) {
    let mut leaves = [(0u32, 0u16); 256];
    let mut n = 0usize;
    for (s, &f) in freq.iter().enumerate() {
        if f > 0 {
            leaves[n] = (f, s as u16);
            n += 1;
        }
    }
    if n == 0 {
        return;
    }
    if n == 1 {
        lens[leaves[0].1 as usize] = 1;
        return;
    }
    leaves[..n].sort_unstable();

    // Two-queue merge: leaves ascending in 0..n, internal nodes appended
    // in creation (hence weight) order — both queues stay sorted, so the
    // two global minima are always at one of the two fronts.
    let total = 2 * n - 1;
    let mut weight = [0u64; 511];
    let mut parent = [0u16; 511];
    for (i, &(f, _)) in leaves[..n].iter().enumerate() {
        weight[i] = u64::from(f);
    }
    let mut leaf = 0usize;
    let mut node = n;
    for next in n..total {
        let mut take = |next: usize| {
            if leaf < n && (node >= next || weight[leaf] <= weight[node]) {
                leaf += 1;
                leaf - 1
            } else {
                node += 1;
                node - 1
            }
        };
        let a = take(next);
        let b = take(next);
        weight[next] = weight[a] + weight[b];
        parent[a] = next as u16;
        parent[b] = next as u16;
    }
    // Children precede parents, so one reverse sweep yields all depths.
    let mut depth = [0u8; 511];
    for i in (0..total - 1).rev() {
        depth[i] = depth[parent[i] as usize] + 1;
    }
    for (i, &(_, s)) in leaves[..n].iter().enumerate() {
        lens[s as usize] = depth[i].min(LIMIT);
    }

    // Capping can overfill the Kraft sum; deepen the longest under-limit
    // code until Σ 2^(LIMIT−len) ≤ 2^LIMIT again. Each step frees
    // 2^(LIMIT−l−1), and while overfull some code sits below the limit,
    // so this terminates with prefix-decodable lengths.
    let mut kraft: u64 = lens
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| 1u64 << (LIMIT - l))
        .sum();
    while kraft > 1u64 << LIMIT {
        let mut pick = (0u8, 0usize);
        for (s, &l) in lens.iter().enumerate() {
            if l > pick.0 && l < LIMIT {
                pick = (l, s);
            }
        }
        debug_assert!(pick.0 > 0, "overfull Kraft sum with all codes at limit");
        lens[pick.1] += 1;
        kraft -= 1u64 << (LIMIT - pick.0 - 1);
    }
}

/// Canonical code values from lengths: codes are assigned in `(length,
/// symbol)` order, the shortest length starting at 0.
fn assign_codes(lens: &[u8; 256]) -> [u16; 256] {
    let mut bl_count = [0u32; LIMIT as usize + 1];
    for &l in lens {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next = [0u32; LIMIT as usize + 1];
    let mut code = 0u32;
    for l in 1..=LIMIT as usize {
        code = (code + bl_count[l - 1]) << 1;
        next[l] = code;
    }
    let mut codes = [0u16; 256];
    for (s, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[s] = next[l as usize] as u16;
            next[l as usize] += 1;
        }
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) -> Option<Vec<u8>> {
        let mut comp = Vec::new();
        if !encode(raw, &mut comp) {
            return None;
        }
        assert!(comp.len() < raw.len());
        let mut back = vec![0u8; raw.len()];
        decode(&comp, &mut back).unwrap();
        assert_eq!(back, raw);
        Some(comp)
    }

    #[test]
    fn skewed_bytes_compress_and_roundtrip() {
        let raw: Vec<u8> = (0..4096u32).map(|i| (i % 7).pow(2) as u8).collect();
        let comp = roundtrip(&raw).expect("skewed data must compress");
        assert!(comp.len() < raw.len() / 2);
    }

    #[test]
    fn single_symbol_stream_roundtrips() {
        let raw = vec![200u8; 3000];
        roundtrip(&raw).expect("one-symbol data compresses to ~n/8");
    }

    #[test]
    fn uniform_bytes_refuse_to_encode() {
        let raw: Vec<u8> = (0..2048u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        let mut comp = Vec::new();
        assert!(!encode(&raw, &mut comp), "8-bit-entropy data cannot win");
        assert!(comp.is_empty(), "a refused encode must append nothing");
    }

    #[test]
    fn lengths_never_exceed_limit() {
        // An exponential histogram drives unlimited Huffman depths far
        // past 12; the repair must cap every length and keep Kraft ≤ 1.
        let mut freq = [0u32; 256];
        let mut f = 1u32;
        for slot in freq.iter_mut().take(30) {
            *slot = f;
            f = f.saturating_mul(2);
        }
        let mut lens = [0u8; 256];
        build_lengths(&freq, &mut lens);
        let mut kraft = 0u64;
        for &l in &lens {
            assert!(l <= LIMIT);
            if l > 0 {
                kraft += 1 << (LIMIT - l);
            }
        }
        assert!(kraft <= 1 << LIMIT, "repaired lengths must satisfy Kraft");
        // And a stream drawn from that distribution still round trips.
        let mut raw = Vec::new();
        for s in 0..30u8 {
            raw.extend(std::iter::repeat_n(s, (s as usize + 1) * 3));
        }
        roundtrip(&raw);
    }

    #[test]
    fn empty_bitstream_rules() {
        let table = vec![0u8; HUFFMAN_TABLE_BYTES];
        let mut none: [u8; 0] = [];
        decode(&table, &mut none).unwrap();
        let mut one = [0u8; 1];
        assert_eq!(
            decode(&table, &mut one),
            Err(EntropyError("huffman table empty"))
        );
    }

    #[test]
    fn nonzero_padding_rejected() {
        let raw: Vec<u8> = (0..600u32).map(|i| (i % 5) as u8).collect();
        let mut comp = Vec::new();
        assert!(encode(&raw, &mut comp));
        let last = comp.len() - 1;
        comp[last] |= 1; // encode pads the final byte with zero bits
        let mut back = vec![0u8; raw.len()];
        assert!(decode(&comp, &mut back).is_err());
    }
}
