//! NYX stand-in (cosmological hydrodynamics, 3-D 512³, 6 fields).
//!
//! NYX fields split into two statistical families the paper's results hinge
//! on: *density-like* fields (`baryon_density`, `dark_matter_density`,
//! `temperature`) are log-normal with enormous dynamic range — under a REL
//! error bound most of the volume quantizes to zero, giving the very high
//! max CRs in Table 3 (up to 127.99) — while *velocity* fields are smooth
//! signed fields whose range comes from localized infall flows. Field
//! order interleaves the families so prefix subsets stay representative.

use crate::field::Field;
use crate::spectral::{
    concentrate, gaussian_random_field, k_for, lognormalize, rescale, rescale_signed, seed_from,
    GrfSpec,
};

/// Field names, matching SDRBench's NYX archive (interleaved families).
pub const FIELDS: [&str; 6] = [
    "baryon_density",
    "velocity_x",
    "temperature",
    "velocity_y",
    "dark_matter_density",
    "velocity_z",
];

/// Generate one NYX field at the given grid shape.
pub fn field(name: &str, shape: &[usize]) -> Field {
    let seed = seed_from(&["nyx", name]);
    let data = match name {
        "baryon_density" => {
            let spec = GrfSpec {
                modes: 96,
                slope: 3.0,
                k_max: k_for(shape, 40.0),
                noise: 0.0,
                anisotropy: [1.8, 1.8, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            lognormalize(&mut d, 4.5);
            rescale(&mut d, 0.0856, 48_156.0);
            d
        }
        "dark_matter_density" => {
            let spec = GrfSpec {
                modes: 96,
                slope: 2.8,
                k_max: k_for(shape, 36.0),
                noise: 0.0,
                anisotropy: [1.8, 1.8, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            lognormalize(&mut d, 4.8);
            // Dark-matter density has a hard floor at 0 with a large
            // near-empty volume fraction.
            let cut = 1.0;
            for v in d.iter_mut() {
                *v = (*v - cut).max(0.0);
            }
            rescale(&mut d, 0.0, 13_779.0);
            d
        }
        "temperature" => {
            let spec = GrfSpec {
                modes: 80,
                slope: 3.2,
                k_max: k_for(shape, 36.0),
                noise: 1.0e-4,
                anisotropy: [1.8, 1.8, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            lognormalize(&mut d, 2.6);
            rescale(&mut d, 2_281.0, 4_782_583.0);
            d
        }
        // Velocities: smooth flows whose *magnitude* is log-normally
        // modulated — quiescent voids move slowly, infall streams near
        // halos carry the range. The same mechanism as the density fields,
        // signed.
        _ => {
            let spec = GrfSpec {
                modes: 72,
                slope: 3.6,
                k_max: k_for(shape, 32.0),
                noise: 2.0e-4,
                anisotropy: [1.8, 1.8, 1.0, 1.0],
            };
            let mut d = gaussian_random_field(shape, &spec, seed);
            let mag = gaussian_random_field(
                shape,
                &GrfSpec {
                    modes: 64,
                    slope: 3.2,
                    k_max: k_for(shape, 40.0),
                    noise: 0.0,
                    anisotropy: [1.8, 1.8, 1.0, 1.0],
                },
                seed ^ 0x7777,
            );
            for (v, &m) in d.iter_mut().zip(&mag) {
                *v *= (1.8 * m).exp();
            }
            concentrate(&mut d, 1.4);
            rescale_signed(&mut d, -8.3e6, 9.1e6);
            d
        }
    };
    Field::new(name, shape.to_vec(), data)
}

/// Generate the full 6-field dataset at `shape`.
pub fn generate(shape: &[usize]) -> Vec<Field> {
    FIELDS.iter().map(|name| field(name, shape)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_fields_with_shape() {
        let fields = generate(&[8, 8, 8]);
        assert_eq!(fields.len(), 6);
        assert!(fields.iter().all(|f| f.len() == 512));
    }

    #[test]
    fn densities_are_nonnegative_heavy_tailed() {
        let f = field("baryon_density", &[16, 16, 16]);
        assert!(f.data.iter().all(|&v| v >= 0.0));
        let (lo, hi) = f.min_max();
        assert!(hi / lo.max(1e-3) > 1_000.0, "needs huge dynamic range");
        // Median far below the mean (heavy right tail).
        let mut sorted = f.data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2] as f64;
        let mean = f.data.iter().map(|&v| v as f64).sum::<f64>() / f.len() as f64;
        assert!(median < mean);
    }

    #[test]
    fn dark_matter_has_empty_voids() {
        let f = field("dark_matter_density", &[16, 16, 16]);
        let zeros = f.data.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > f.len() / 10, "voids expected, got {zeros}");
    }

    #[test]
    fn velocity_is_signed_and_concentrated() {
        let f = field("velocity_x", &[16, 16, 16]);
        assert!(f.data.iter().any(|&v| v < 0.0));
        assert!(f.data.iter().any(|&v| v > 0.0));
        let range = f.value_range();
        let small = f.data.iter().filter(|v| v.abs() < 0.1 * range).count();
        assert!(small > f.len() / 2, "bulk should sit near zero");
    }

    #[test]
    fn deterministic_per_field() {
        assert_eq!(
            field("temperature", &[8, 8, 8]),
            field("temperature", &[8, 8, 8])
        );
        assert_ne!(
            field("velocity_x", &[8, 8, 8]).data,
            field("velocity_y", &[8, 8, 8]).data
        );
    }

    #[test]
    fn prefix_mixes_families() {
        assert_eq!(&FIELDS[..2], &["baryon_density", "velocity_x"]);
    }
}
