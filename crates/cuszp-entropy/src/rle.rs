//! PackBits run-length coding.
//!
//! The classic byte-oriented scheme: a control byte `c` announces either
//! `c + 1` literal bytes (`c ≤ 127`) or `257 − c` repeats of the next
//! byte (`c ≥ 129`); `c = 128` is reserved and rejected on decode. The
//! encoder emits repeat runs only at length ≥ 3 (a 2-byte run breaks
//! even at best) and batches literals up to 128, so worst-case expansion
//! is one control byte per 128 literals — and the chunk layer falls back
//! to `Pass` before even that is stored.

use crate::EntropyError;

/// Append the PackBits coding of `raw` to `out`. Never reads `out`'s
/// existing contents; may append up to `raw.len() + raw.len()/128 + 1`
/// bytes (the caller compares sizes and discards a losing encode).
pub(crate) fn encode(raw: &[u8], out: &mut Vec<u8>) {
    let mut i = 0usize;
    while i < raw.len() {
        let b = raw[i];
        let mut run = 1usize;
        while i + run < raw.len() && raw[i + run] == b && run < 128 {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(b);
            i += run;
        } else {
            // Literal batch: until a run of ≥ 3 starts or 128 bytes.
            let start = i;
            i += run;
            while i < raw.len() && i - start < 128 {
                if i + 2 < raw.len() && raw[i] == raw[i + 1] && raw[i + 1] == raw[i + 2] {
                    break;
                }
                i += 1;
            }
            out.push((i - start - 1) as u8);
            out.extend_from_slice(&raw[start..i]);
        }
    }
}

/// Decode PackBits bytes into `out`, whose length must equal the
/// original raw length exactly. Overruns, underruns, truncated runs, and
/// the reserved control byte are all typed errors.
pub(crate) fn decode(comp: &[u8], out: &mut [u8]) -> Result<(), EntropyError> {
    let mut i = 0usize;
    let mut o = 0usize;
    while i < comp.len() {
        let c = comp[i];
        i += 1;
        if c < 128 {
            let n = c as usize + 1;
            if i + n > comp.len() {
                return Err(EntropyError("rle literal run truncated"));
            }
            if o + n > out.len() {
                return Err(EntropyError("rle output overflow"));
            }
            out[o..o + n].copy_from_slice(&comp[i..i + n]);
            i += n;
            o += n;
        } else if c == 128 {
            return Err(EntropyError("rle reserved control byte"));
        } else {
            let n = 257 - c as usize;
            if i >= comp.len() {
                return Err(EntropyError("rle repeat run truncated"));
            }
            let b = comp[i];
            i += 1;
            if o + n > out.len() {
                return Err(EntropyError("rle output overflow"));
            }
            out[o..o + n].fill(b);
            o += n;
        }
    }
    if o != out.len() {
        return Err(EntropyError("rle output underflow"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) -> Vec<u8> {
        let mut comp = Vec::new();
        encode(raw, &mut comp);
        let mut back = vec![0xEEu8; raw.len()];
        decode(&comp, &mut back).unwrap();
        assert_eq!(back, raw);
        comp
    }

    #[test]
    fn runs_collapse() {
        let mut raw = vec![0u8; 1000];
        raw.extend_from_slice(&[1, 2, 3]);
        raw.extend(vec![7u8; 300]);
        let comp = roundtrip(&raw);
        assert!(comp.len() < 30, "got {}", comp.len());
    }

    #[test]
    fn literals_cost_one_control_per_128() {
        let raw: Vec<u8> = (0..=255u16).map(|i| (i % 251) as u8).collect();
        let comp = roundtrip(&raw);
        assert!(comp.len() <= raw.len() + raw.len() / 128 + 1);
    }

    #[test]
    fn run_lengths_around_the_batch_limit() {
        for n in [1usize, 2, 3, 127, 128, 129, 256, 257] {
            roundtrip(&vec![5u8; n]);
            let mut mixed: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
            mixed.extend(vec![9u8; n]);
            roundtrip(&mixed);
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(roundtrip(&[]).is_empty());
    }
}
