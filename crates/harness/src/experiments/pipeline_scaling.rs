//! Pipeline scaling — batched multi-stream compression throughput vs
//! worker count.
//!
//! Not a paper figure: cuSZp's evaluation is single-kernel, but §6's
//! use cases (checkpoint compression, time-varying RTM) are batch
//! workloads. This experiment drives `cuszp-pipeline` over a batch of
//! NYX fields with 1, 2, 4, … workers and reports aggregate throughput,
//! speedup over one worker, and chunk latency. Scaling tops out at the
//! host's core count — on a single-core runner every row lands near 1×.

use super::Ctx;
use crate::report::{f2, Report};
use cuszp_core::ErrorBound;
use cuszp_pipeline::{Pipeline, PipelineConfig};
use datasets::{generate_subset, DatasetId};
use serde::Serialize;

/// One measured row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Worker/stream count.
    pub workers: usize,
    /// Aggregate wall-clock throughput, GB/s.
    pub throughput_gbps: f64,
    /// Speedup over the 1-worker run.
    pub speedup: f64,
    /// Batch compression ratio (same for every row).
    pub ratio: f64,
    /// Mean chunk submit-to-complete latency, milliseconds.
    pub mean_latency_ms: f64,
    /// Worst chunk latency, milliseconds.
    pub max_latency_ms: f64,
}

/// Run the pipeline-scaling experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "pipeline",
        "Batched multi-stream pipeline scaling vs worker count",
        &ctx.out_dir,
    );
    let fields = generate_subset(DatasetId::Nyx, ctx.scale, ctx.max_fields);
    let total_bytes: u64 = fields.iter().map(|f| f.size_bytes()).sum();
    let cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    report.line(&format!(
        "batch: {} NYX fields, {:.1} MB total; host parallelism: {cores}",
        fields.len(),
        total_bytes as f64 / 1.0e6
    ));

    // Chunks small enough that even a Tiny field splits across workers.
    let chunk_elems = (fields[0].len() / 4).clamp(1, 1 << 20);
    let mut rows = Vec::new();
    let mut base_gbps = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let mut pipe = Pipeline::new(PipelineConfig {
            chunk_elems,
            ..PipelineConfig::with_workers(workers)
        });
        for f in &fields {
            pipe.submit(&f.name, f.data.clone(), ErrorBound::Rel(1e-2));
        }
        let batch = pipe.finish();
        if workers == 1 {
            base_gbps = batch.stats.throughput_gbps;
        }
        rows.push(Row {
            workers,
            throughput_gbps: batch.stats.throughput_gbps,
            speedup: if base_gbps > 0.0 {
                batch.stats.throughput_gbps / base_gbps
            } else {
                0.0
            },
            ratio: batch.stats.ratio,
            mean_latency_ms: batch.stats.mean_chunk_latency_s * 1e3,
            max_latency_ms: batch.stats.max_chunk_latency_s * 1e3,
        });
    }

    report.table(
        &[
            "workers",
            "GB/s",
            "speedup",
            "ratio",
            "mean lat (ms)",
            "max lat (ms)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workers.to_string(),
                    format!("{:.3}", r.throughput_gbps),
                    f2(r.speedup),
                    f2(r.ratio),
                    f2(r.mean_latency_ms),
                    f2(r.max_latency_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    report.save_json(&rows);
    report.save_text();
}
