//! `qcat` — the quality-assessment toolbox from the paper's artifact
//! appendix (compareData, calculateSSIM, PlotSliceImage), in one binary.
//!
//! ```text
//! cargo run --release --example qcat -- compareData <orig.f32> <recon.f32>
//! cargo run --release --example qcat -- calculateSSIM <orig.f32> <recon.f32> <d1> [d2 [d3]]
//! cargo run --release --example qcat -- PlotSliceImage <data.f32> <d1> <d2> [d3] <slice> <out.ppm>
//! ```

use std::path::Path;
use std::process::ExitCode;

// Zero-copy load: qcat inputs are often full-size SDRBench fields, and
// every subcommand only reads them — a memory-mapped view avoids the
// read-to-Vec copy entirely (with a transparent buffered-read fallback).
fn load(path: &str) -> Result<datasets::MappedSlice<f32>, String> {
    datasets::mmap::map_f32_le(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn compare_data(orig: &str, recon: &str) -> Result<(), String> {
    let a = load(orig)?;
    let b = load(recon)?;
    if a.len() != b.len() {
        return Err(format!("length mismatch: {} vs {}", a.len(), b.len()));
    }
    let stats = metrics::ErrorStats::compute(&a, &b);
    let (lo, hi) = a
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    println!("This is little-endian system.");
    println!("reading data from {orig}");
    println!("Min = {lo}, Max = {hi}, range = {}", stats.value_range);
    println!("Max absolute error = {:.10}", stats.max_abs_error);
    println!("Max relative error = {:.6}", stats.max_rel_error);
    println!("PSNR = {:.6}, NRMSE = {:.19e}", stats.psnr, stats.nrmse);
    println!("pearson coeff = {:.6}", stats.pearson);
    Ok(())
}

fn calculate_ssim(orig: &str, recon: &str, dims: &[usize]) -> Result<(), String> {
    let a = load(orig)?;
    let b = load(recon)?;
    let n: usize = dims.iter().product();
    if n != a.len() || n != b.len() {
        return Err(format!(
            "dims {:?} = {} values, files have {}",
            dims,
            n,
            a.len()
        ));
    }
    println!("This is little-endian system.");
    println!("reading data from {orig}");
    println!("calcaulting....");
    let s = metrics::ssim::ssim(&a, &b, dims);
    println!("ssim = {s:.6}");
    Ok(())
}

fn plot_slice(data: &str, dims: &[usize], slice: usize, out: &str) -> Result<(), String> {
    let a = load(data)?;
    let n: usize = dims.iter().product();
    if n != a.len() {
        return Err(format!(
            "dims {:?} = {} values, file has {}",
            dims,
            n,
            a.len()
        ));
    }
    let field = datasets::Field::new("plot", dims.to_vec(), a.to_vec());
    let (h, w, plane) = field.slice2d(slice);
    metrics::image::write_ppm(Path::new(out), h, w, &plane).map_err(|e| e.to_string())?;
    println!("Image file is plotted and put here: {out}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse_dims = |xs: &[String]| -> Result<Vec<usize>, String> {
        xs.iter()
            .map(|s| s.parse::<usize>().map_err(|_| format!("bad dim {s}")))
            .collect()
    };
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "compareData" && rest.len() == 2 => {
            compare_data(&rest[0], &rest[1])
        }
        Some((cmd, rest)) if cmd == "calculateSSIM" && (3..=5).contains(&rest.len()) => {
            match parse_dims(&rest[2..]) {
                Ok(dims) => calculate_ssim(&rest[0], &rest[1], &dims),
                Err(e) => Err(e),
            }
        }
        Some((cmd, rest)) if cmd == "PlotSliceImage" && (4..=6).contains(&rest.len()) => {
            let out = rest.last().expect("arity checked").clone();
            let slice_and_dims = &rest[1..rest.len() - 1];
            match parse_dims(slice_and_dims) {
                Ok(nums) if nums.len() >= 2 => {
                    let (slice, dims) = nums.split_last().expect("len checked");
                    plot_slice(&rest[0], dims, *slice, &out)
                }
                Ok(_) => Err("need at least one dim + slice".into()),
                Err(e) => Err(e),
            }
        }
        _ => Err("usage: qcat compareData|calculateSSIM|PlotSliceImage ...".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
