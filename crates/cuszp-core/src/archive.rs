//! Multi-field archives: one container for a whole dataset's compressed
//! fields (the workflow of the paper's artifact, which compresses each
//! SDRBench field file of a dataset in turn).
//!
//! Layout: a small header, then per entry a name, the logical shape, and a
//! standard [`Compressed`] stream. Entries keep their own error bounds and
//! element types, so mixed-precision datasets archive cleanly.

use crate::dtype::FloatData;
use crate::format::{Compressed, FormatError};
use crate::host_ref;
use crate::{CuszpConfig, ErrorBound};
use serde::{Deserialize, Serialize};

/// Archive magic bytes.
pub const ARCHIVE_MAGIC: [u8; 8] = *b"CUSZPAR1";

/// One named, shaped compressed field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// Field name (e.g. `"temperature"`).
    pub name: String,
    /// Logical shape, row-major.
    pub shape: Vec<usize>,
    /// The compressed stream.
    pub stream: Compressed,
}

/// A collection of compressed fields.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Archive {
    /// The entries, in insertion order.
    pub entries: Vec<Entry>,
}

impl Archive {
    /// Empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compress and append one field. The REL denominator is this field's
    /// own value range, as in the per-file artifact workflow.
    pub fn push<T: FloatData>(
        &mut self,
        name: impl Into<String>,
        shape: Vec<usize>,
        data: &[T],
        bound: ErrorBound,
        cfg: CuszpConfig,
    ) {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "shape/data mismatch");
        let eb = bound.absolute(crate::value_range(data));
        self.entries.push(Entry {
            name: name.into(),
            shape,
            stream: host_ref::compress(data, eb, cfg),
        });
    }

    /// Find an entry by name.
    pub fn get(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Decompress one entry to its element type.
    ///
    /// # Panics
    /// Panics if `T` mismatches the entry's stored type.
    pub fn decompress<T: FloatData>(&self, name: &str) -> Option<Vec<T>> {
        self.get(name).map(|e| host_ref::decompress(&e.stream))
    }

    /// Total compressed payload (the CR denominator across the dataset).
    pub fn stream_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.stream.stream_bytes()).sum()
    }

    /// Total original bytes.
    pub fn original_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.stream.num_elements * e.stream.dtype.size() as u64)
            .sum()
    }

    /// Serialize the archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&ARCHIVE_MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            let name = e.name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            out.push(e.shape.len() as u8);
            for &d in &e.shape {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            let stream = e.stream.to_bytes();
            out.extend_from_slice(&(stream.len() as u64).to_le_bytes());
            out.extend_from_slice(&stream);
        }
        out
    }

    /// Parse an archive produced by [`Archive::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Archive, FormatError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], FormatError> {
            if *pos + n > bytes.len() {
                return Err(FormatError::Truncated);
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != ARCHIVE_MAGIC {
            return Err(FormatError::BadMagic);
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len checked"));
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len =
                u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("len checked")) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| FormatError::Corrupt("entry name not UTF-8"))?;
            let ndim = take(&mut pos, 1)?[0] as usize;
            if !(1..=4).contains(&ndim) {
                return Err(FormatError::Corrupt("bad entry rank"));
            }
            let mut shape = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                shape.push(
                    u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len checked"))
                        as usize,
                );
            }
            let stream_len =
                u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len checked")) as usize;
            let stream = Compressed::from_bytes(take(&mut pos, stream_len)?)?;
            let n: usize = shape.iter().product();
            if n as u64 != stream.num_elements {
                return Err(FormatError::Corrupt("entry shape vs stream length"));
            }
            entries.push(Entry {
                name,
                shape,
                stream,
            });
        }
        if pos != bytes.len() {
            return Err(FormatError::Corrupt("trailing bytes after archive"));
        }
        Ok(Archive { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Archive {
        let mut ar = Archive::new();
        let a: Vec<f32> = (0..240).map(|i| (i as f32 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..60).map(|i| i as f64 * 7.5).collect();
        ar.push(
            "alpha",
            vec![8, 30],
            &a,
            ErrorBound::Rel(1e-3),
            CuszpConfig::default(),
        );
        ar.push(
            "beta",
            vec![60],
            &b,
            ErrorBound::Abs(0.01),
            CuszpConfig::default(),
        );
        ar
    }

    #[test]
    fn push_and_lookup() {
        let ar = sample();
        assert_eq!(ar.entries.len(), 2);
        assert!(ar.get("alpha").is_some());
        assert!(ar.get("gamma").is_none());
        assert_eq!(ar.original_bytes(), 240 * 4 + 60 * 8);
        assert!(ar.stream_bytes() > 0);
    }

    #[test]
    fn mixed_precision_roundtrip() {
        let ar = sample();
        let a: Vec<f32> = ar.decompress("alpha").unwrap();
        assert_eq!(a.len(), 240);
        let b: Vec<f64> = ar.decompress("beta").unwrap();
        for (i, &v) in b.iter().enumerate() {
            assert!((v - i as f64 * 7.5).abs() <= 0.01 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let ar = sample();
        let bytes = ar.to_bytes();
        let back = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(back, ar);
    }

    #[test]
    fn corruption_detected() {
        let bytes = sample().to_bytes();
        assert_eq!(
            Archive::from_bytes(&bytes[..bytes.len() - 3]),
            Err(FormatError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Archive::from_bytes(&bad), Err(FormatError::BadMagic));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            Archive::from_bytes(&trailing),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_rejected() {
        let mut ar = Archive::new();
        ar.push(
            "x",
            vec![10],
            &[0.0f32; 9],
            ErrorBound::Abs(0.1),
            CuszpConfig::default(),
        );
    }
}
