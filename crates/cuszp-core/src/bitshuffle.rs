//! Step ④ — block bit-shuffle (paper §4.4, Fig 11).
//!
//! Rather than packing each value's `F` bits contiguously (which needs
//! irregular cross-byte shifts whenever `F % 8 ≠ 0`), cuSZp transposes the
//! bit matrix: output byte `k·L/8 + j` collects bit `k` of values
//! `8j .. 8j+8`. Every output byte is then built from exactly 8 single-bit
//! extracts — branch-free and uniform across lanes, which is the property
//! that makes the step GPU-friendly.

/// Bit-transpose `values[..L]` (each using `f` significant bits) into
/// `out[..f·L/8]` bytes. `values.len()` must be a multiple of 8.
pub fn shuffle(values: &[u64], f: u8, out: &mut [u8]) {
    let l = values.len();
    debug_assert_eq!(l % 8, 0);
    let bytes_per_plane = l / 8;
    debug_assert!(out.len() >= f as usize * bytes_per_plane);
    for k in 0..f as usize {
        for j in 0..bytes_per_plane {
            let mut byte = 0u8;
            for b in 0..8 {
                let v = values[8 * j + b];
                byte |= (((v >> k) & 1) as u8) << b;
            }
            out[k * bytes_per_plane + j] = byte;
        }
    }
}

/// Invert [`shuffle`]: rebuild `values[..L]` from `f` bit planes.
pub fn unshuffle(planes: &[u8], f: u8, values: &mut [u64]) {
    let l = values.len();
    debug_assert_eq!(l % 8, 0);
    let bytes_per_plane = l / 8;
    debug_assert!(planes.len() >= f as usize * bytes_per_plane);
    for v in values.iter_mut() {
        *v = 0;
    }
    for k in 0..f as usize {
        for j in 0..bytes_per_plane {
            let byte = planes[k * bytes_per_plane + j];
            for b in 0..8 {
                values[8 * j + b] |= (((byte >> b) & 1) as u64) << k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let values: Vec<u64> = vec![123, 15, 134, 85, 77, 4, 5, 9];
        let f = 8u8;
        let mut planes = vec![0u8; f as usize];
        shuffle(&values, f, &mut planes);
        let mut back = vec![0u64; 8];
        unshuffle(&planes, f, &mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn fig11_plane_layout() {
        // Byte 0 must hold the first bit of each of the 8 values.
        let values: Vec<u64> = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let mut planes = vec![0u8; 1];
        shuffle(&values, 1, &mut planes);
        assert_eq!(planes[0], 0b0100_1101);
    }

    #[test]
    fn values_above_f_bits_are_truncated() {
        // Only F bits survive — the encoder guarantees max|v| < 2^F, so
        // truncation never loses data in practice; this documents the
        // contract.
        let values: Vec<u64> = vec![0b1111, 0, 0, 0, 0, 0, 0, 0];
        let mut planes = vec![0u8; 2];
        shuffle(&values, 2, &mut planes);
        let mut back = vec![0u64; 8];
        unshuffle(&planes, 2, &mut back);
        assert_eq!(back[0], 0b11);
    }

    #[test]
    fn wide_block_roundtrip() {
        let values: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) % (1 << 20)).collect();
        let f = 20u8;
        let mut planes = vec![0u8; f as usize * 8];
        shuffle(&values, f, &mut planes);
        let mut back = vec![0u64; 64];
        unshuffle(&planes, f, &mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn f_zero_writes_nothing() {
        let values = vec![0u64; 8];
        let mut planes: Vec<u8> = vec![];
        shuffle(&values, 0, &mut planes);
        let mut back = vec![7u64; 8];
        unshuffle(&planes, 0, &mut back);
        assert_eq!(back, vec![0u64; 8]);
    }

    #[test]
    fn full_64_bit_roundtrip() {
        let values: Vec<u64> = vec![u64::MAX, 0, 1, u64::MAX / 3, 42, 7, 1 << 63, 12345];
        let f = 64u8;
        let mut planes = vec![0u8; 64];
        shuffle(&values, f, &mut planes);
        let mut back = vec![0u64; 8];
        unshuffle(&planes, f, &mut back);
        assert_eq!(back, values);
    }
}
