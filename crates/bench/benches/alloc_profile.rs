//! Allocating codec API vs the zero-allocation arena API on small,
//! repeated payloads — the service shape the `Scratch` arena targets.
//! The harness experiment `repro alloc_profile` records the same
//! comparison into `BENCH_alloc_profile.json`; this criterion target
//! gives the statistically careful local view.

use criterion::{criterion_group, criterion_main, Criterion};
use cuszp_core::{fast, CuszpConfig, Scratch};
use std::hint::black_box;

fn corpus(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.023).sin() * 60.0 + (i as f32 * 0.0017).cos() * 9.0)
        .collect()
}

fn bench_payload(c: &mut Criterion, kib: usize) {
    let elems = kib * 1024 / 4;
    let data = corpus(elems);
    let eb = 0.01;
    let cfg = CuszpConfig::default();

    let owned = fast::compress(&data, eb, cfg);
    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let mut restored = vec![0f32; elems];
    fast::compress_into(&mut scratch, &data, eb, cfg, &mut stream);
    assert_eq!(
        stream,
        owned.to_bytes(),
        "arena stream must be byte-identical"
    );

    let mut group = c.benchmark_group(format!("alloc_profile_{kib}kib"));

    group.bench_function("compress_alloc", |b| {
        b.iter(|| black_box(fast::compress(black_box(&data), eb, cfg).to_bytes()))
    });
    group.bench_function("compress_arena", |b| {
        b.iter(|| {
            fast::compress_into(&mut scratch, black_box(&data), eb, cfg, &mut stream);
            black_box(stream.len())
        })
    });
    group.bench_function("decompress_alloc", |b| {
        b.iter(|| {
            // Seed behavior: fresh buffers and a zeroed output per call.
            let mut fresh = Scratch::new();
            let mut v = vec![0f32; elems];
            fast::decompress_into(black_box(owned.as_ref()), &mut fresh, &mut v);
            black_box(v.len())
        })
    });
    group.bench_function("decompress_arena", |b| {
        b.iter(|| {
            fast::decompress_into(black_box(owned.as_ref()), &mut scratch, &mut restored);
            black_box(restored[0])
        })
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    for kib in [4, 64, 1024] {
        bench_payload(c, kib);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
