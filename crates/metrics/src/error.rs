//! Pointwise reconstruction-error statistics (the paper's `compareData`).

use serde::{Deserialize, Serialize};

/// Summary statistics comparing a reconstruction against its original.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErrorStats {
    /// `max_i |d_i − d'_i|` — what an ABS error bound limits.
    pub max_abs_error: f64,
    /// `max_abs_error / (max − min)` — what a REL error bound limits.
    pub max_rel_error: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// RMSE normalized by the value range.
    pub nrmse: f64,
    /// Peak signal-to-noise ratio in dB: `20·log10(range / rmse)`.
    pub psnr: f64,
    /// Pearson correlation coefficient between original and reconstruction.
    pub pearson: f64,
    /// Value range (max − min) of the original.
    pub value_range: f64,
}

impl ErrorStats {
    /// Compute statistics over paired samples.
    ///
    /// # Panics
    /// Panics if lengths differ or the input is empty.
    pub fn compute(original: &[f32], reconstructed: &[f32]) -> Self {
        assert_eq!(original.len(), reconstructed.len(), "length mismatch");
        assert!(!original.is_empty(), "empty input");
        let n = original.len() as f64;

        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut max_abs = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut sum_o = 0.0f64;
        let mut sum_r = 0.0f64;
        for (&o, &r) in original.iter().zip(reconstructed) {
            let (o, r) = (o as f64, r as f64);
            lo = lo.min(o);
            hi = hi.max(o);
            let e = (o - r).abs();
            max_abs = max_abs.max(e);
            sq_sum += e * e;
            sum_o += o;
            sum_r += r;
        }
        let range = hi - lo;
        let rmse = (sq_sum / n).sqrt();
        let (mean_o, mean_r) = (sum_o / n, sum_r / n);

        let mut cov = 0.0f64;
        let mut var_o = 0.0f64;
        let mut var_r = 0.0f64;
        for (&o, &r) in original.iter().zip(reconstructed) {
            let (do_, dr) = (o as f64 - mean_o, r as f64 - mean_r);
            cov += do_ * dr;
            var_o += do_ * do_;
            var_r += dr * dr;
        }
        let pearson = if var_o > 0.0 && var_r > 0.0 {
            cov / (var_o.sqrt() * var_r.sqrt())
        } else if var_o == var_r {
            1.0
        } else {
            0.0
        };

        let psnr = if rmse > 0.0 && range > 0.0 {
            20.0 * (range / rmse).log10()
        } else {
            f64::INFINITY
        };
        ErrorStats {
            max_abs_error: max_abs,
            max_rel_error: if range > 0.0 { max_abs / range } else { 0.0 },
            rmse,
            nrmse: if range > 0.0 { rmse / range } else { 0.0 },
            psnr,
            pearson,
            value_range: range,
        }
    }

    /// True iff every pointwise error is within `bound` (with a one-ULP-ish
    /// slack for the `f32` round trip, as real compressors' checkers use).
    pub fn within_bound(&self, bound: f64) -> bool {
        self.max_abs_error <= bound * (1.0 + 1e-6) + f64::EPSILON
    }
}

/// Assert the error-bound contract, with a readable message.
///
/// # Panics
/// Panics when any element violates the bound.
pub fn assert_error_bound(original: &[f32], reconstructed: &[f32], bound: f64) {
    for (i, (&o, &r)) in original.iter().zip(reconstructed).enumerate() {
        let e = (o as f64 - r as f64).abs();
        assert!(
            e <= bound * (1.0 + 1e-6) + f64::EPSILON,
            "error bound violated at index {i}: |{o} - {r}| = {e} > {bound}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction() {
        let d = vec![1.0f32, 2.0, 3.0];
        let s = ErrorStats::compute(&d, &d);
        assert_eq!(s.max_abs_error, 0.0);
        assert!(s.psnr.is_infinite());
        assert!((s.pearson - 1.0).abs() < 1e-12);
        assert!(s.within_bound(0.0));
    }

    #[test]
    fn known_errors() {
        let o = vec![0.0f32, 1.0, 2.0, 3.0];
        let r = vec![0.1f32, 0.9, 2.1, 2.9];
        let s = ErrorStats::compute(&o, &r);
        assert!((s.max_abs_error - 0.1).abs() < 1e-6);
        assert!((s.value_range - 3.0).abs() < 1e-12);
        assert!((s.max_rel_error - 0.1 / 3.0).abs() < 1e-6);
        assert!((s.rmse - 0.1).abs() < 1e-6);
        // PSNR = 20 log10(3 / 0.1) ≈ 29.54 dB.
        assert!((s.psnr - 29.5424).abs() < 0.01);
        assert!(s.within_bound(0.1000001));
        assert!(!s.within_bound(0.05));
    }

    #[test]
    fn pearson_detects_anticorrelation() {
        let o = vec![0.0f32, 1.0, 2.0, 3.0];
        let r = vec![3.0f32, 2.0, 1.0, 0.0];
        let s = ErrorStats::compute(&o, &r);
        assert!((s.pearson + 1.0).abs() < 1e-12);
    }

    #[test]
    fn assert_bound_passes_and_fails() {
        let o = vec![1.0f32, 2.0];
        let r = vec![1.05f32, 1.95];
        assert_error_bound(&o, &r, 0.051);
        let result = std::panic::catch_unwind(|| assert_error_bound(&o, &r, 0.01));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        ErrorStats::compute(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn constant_field_edge_case() {
        let o = vec![5.0f32; 10];
        let s = ErrorStats::compute(&o, &o);
        assert_eq!(s.value_range, 0.0);
        assert_eq!(s.max_rel_error, 0.0);
        assert!((s.pearson - 1.0).abs() < 1e-12);
    }
}
