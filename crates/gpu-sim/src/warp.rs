//! Warp-synchronous primitives over `[T; 32]` lane arrays.
//!
//! cuSZp's warp-level prefix sums use CUDA's `__shfl_up_sync`: lanes
//! exchange registers without touching memory. We model a warp as an array
//! of 32 lane values transformed in lock-step — the idiomatic way to express
//! warp-synchronous algorithms without a full SIMT interpreter. Each helper
//! returns the number of simulated lane-ops performed so callers can charge
//! the cost model (shuffles are register-speed, so the counts are small).

/// Number of lanes in a warp.
pub const WARP: usize = 32;

/// `__shfl_up_sync`: every lane `i ≥ delta` receives lane `i − delta`'s
/// value; lanes below `delta` receive `fill`.
#[allow(clippy::manual_memcpy)] // spelled as the per-lane shuffle it models
pub fn shfl_up<T: Copy>(lanes: &[T; WARP], delta: usize, fill: T) -> [T; WARP] {
    let mut out = [fill; WARP];
    for i in delta..WARP {
        out[i] = lanes[i - delta];
    }
    out
}

/// `__shfl_down_sync`: every lane `i < WARP − delta` receives lane
/// `i + delta`'s value; the rest receive `fill`.
#[allow(clippy::manual_memcpy)] // spelled as the per-lane shuffle it models
pub fn shfl_down<T: Copy>(lanes: &[T; WARP], delta: usize, fill: T) -> [T; WARP] {
    let mut out = [fill; WARP];
    for i in 0..WARP - delta {
        out[i] = lanes[i + delta];
    }
    out
}

/// `__ballot_sync`: bit `i` of the result is lane `i`'s predicate.
pub fn ballot(preds: &[bool; WARP]) -> u32 {
    let mut mask = 0u32;
    for (i, &p) in preds.iter().enumerate() {
        if p {
            mask |= 1 << i;
        }
    }
    mask
}

/// Inclusive warp scan (Hillis–Steele over shuffles) with a caller-supplied
/// associative combiner. Returns `(scanned lanes, simulated ops)`.
pub fn inclusive_scan_by<T: Copy>(
    mut lanes: [T; WARP],
    combine: impl Fn(T, T) -> T,
) -> ([T; WARP], u64) {
    let mut ops = 0u64;
    let mut delta = 1;
    while delta < WARP {
        let shifted = shfl_up(&lanes, delta, lanes[0]);
        for i in delta..WARP {
            lanes[i] = combine(shifted[i], lanes[i]);
        }
        ops += WARP as u64;
        delta <<= 1;
    }
    (lanes, ops)
}

/// Inclusive warp scan of `u64` sums. Returns `(scanned, ops)`.
pub fn inclusive_scan_u64(lanes: [u64; WARP]) -> ([u64; WARP], u64) {
    inclusive_scan_by(lanes, |a, b| a + b)
}

/// Exclusive warp scan of `u64` sums: lane `i` receives the sum of lanes
/// `[0, i)`. Returns `(scanned, warp total, ops)`.
#[allow(clippy::manual_memcpy)] // spelled as the per-lane shift it models
pub fn exclusive_scan_u64(lanes: [u64; WARP]) -> ([u64; WARP], u64, u64) {
    let (incl, ops) = inclusive_scan_u64(lanes);
    let total = incl[WARP - 1];
    let mut excl = [0u64; WARP];
    for i in 1..WARP {
        excl[i] = incl[i - 1];
    }
    (excl, total, ops + WARP as u64)
}

/// Warp-wide maximum via butterfly reduction. Returns `(max, ops)`.
pub fn reduce_max_u32(lanes: &[u32; WARP]) -> (u32, u64) {
    let mut vals = *lanes;
    let mut ops = 0u64;
    let mut delta = WARP / 2;
    while delta > 0 {
        let shifted = shfl_down(&vals, delta, 0);
        for i in 0..WARP {
            vals[i] = vals[i].max(shifted[i]);
        }
        ops += WARP as u64;
        delta >>= 1;
    }
    (vals[0], ops)
}

/// Warp-wide sum via butterfly reduction. Returns `(sum, ops)`.
pub fn reduce_sum_u64(lanes: &[u64; WARP]) -> (u64, u64) {
    let mut vals = *lanes;
    let mut ops = 0u64;
    let mut delta = WARP / 2;
    while delta > 0 {
        let shifted = shfl_down(&vals, delta, 0);
        for i in 0..WARP {
            vals[i] += shifted[i];
        }
        ops += WARP as u64;
        delta >>= 1;
    }
    (vals[0], ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes_iota_u64() -> [u64; WARP] {
        std::array::from_fn(|i| i as u64)
    }

    #[test]
    fn shfl_up_shifts_and_fills() {
        let lanes: [u32; WARP] = std::array::from_fn(|i| i as u32);
        let out = shfl_up(&lanes, 3, 999);
        assert_eq!(out[0], 999);
        assert_eq!(out[2], 999);
        assert_eq!(out[3], 0);
        assert_eq!(out[31], 28);
    }

    #[test]
    fn shfl_down_shifts_and_fills() {
        let lanes: [u32; WARP] = std::array::from_fn(|i| i as u32);
        let out = shfl_down(&lanes, 5, 777);
        assert_eq!(out[0], 5);
        assert_eq!(out[26], 31);
        assert_eq!(out[27], 777);
    }

    #[test]
    fn ballot_packs_bits() {
        let mut preds = [false; WARP];
        preds[0] = true;
        preds[5] = true;
        preds[31] = true;
        assert_eq!(ballot(&preds), 1 | (1 << 5) | (1 << 31));
    }

    #[test]
    fn inclusive_scan_matches_sequential() {
        let (scanned, ops) = inclusive_scan_u64(lanes_iota_u64());
        let mut expect = 0u64;
        for (i, v) in scanned.iter().enumerate() {
            expect += i as u64;
            assert_eq!(*v, expect);
        }
        assert!(ops > 0);
    }

    #[test]
    fn exclusive_scan_matches_sequential() {
        let (scanned, total, _) = exclusive_scan_u64(lanes_iota_u64());
        assert_eq!(scanned[0], 0);
        let mut expect = 0u64;
        for (i, v) in scanned.iter().enumerate() {
            assert_eq!(*v, expect);
            expect += i as u64;
        }
        assert_eq!(total, (0..32u64).sum());
    }

    #[test]
    fn reduce_max_finds_max() {
        let mut lanes = [0u32; WARP];
        lanes[17] = 12345;
        lanes[3] = 99;
        let (m, _) = reduce_max_u32(&lanes);
        assert_eq!(m, 12345);
    }

    #[test]
    fn reduce_sum_sums() {
        let (s, _) = reduce_sum_u64(&lanes_iota_u64());
        assert_eq!(s, (0..32u64).sum());
    }
}
