//! Step ② — fixed-length encoding (paper §4.2, Fig 5).
//!
//! Inside each block the residuals are split into a sign bitmap and their
//! absolute values; the block's *fixed length* `F` is the bit position of
//! the highest set bit of the largest absolute value, and every value keeps
//! exactly `F` bits. An all-zero block ("zero block") stores nothing beyond
//! its fixed-length byte `F = 0`. The compressed size follows Eq 2:
//! `CmpL = (F + 1) · L / 8` bytes (`F·L/8` payload bits + `L/8` sign bytes).

/// Per-block encoding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPlan {
    /// Fixed length `F` in bits (0 ⇒ zero block). At most 64.
    pub fixed_len: u8,
    /// Compressed byte count `CmpL` for this block (Eq 2), 0 for zero
    /// blocks.
    pub cmp_bytes: u32,
}

/// Compute `F` and `CmpL` for a block of Lorenzo residuals.
pub fn plan_block(residuals: &[i64], block_len: usize) -> BlockPlan {
    debug_assert_eq!(residuals.len(), block_len);
    let mut max_abs: u64 = 0;
    for &l in residuals {
        max_abs = max_abs.max(l.unsigned_abs());
    }
    let fixed_len = (64 - max_abs.leading_zeros()) as u8; // 0 when all zero
    let cmp_bytes = cmp_bytes_for(fixed_len, block_len);
    BlockPlan {
        fixed_len,
        cmp_bytes,
    }
}

/// Eq 2: compressed bytes for a block with fixed length `f` (0 ⇒ 0 bytes).
#[inline]
pub fn cmp_bytes_for(f: u8, block_len: usize) -> u32 {
    if f == 0 {
        0
    } else {
        ((f as usize + 1) * block_len / 8) as u32
    }
}

/// Build the sign bitmap of a block: bit `e % 8` of byte `e / 8` is 1 iff
/// `residuals[e]` is negative (paper: "if this integer is positive, cuSZp
/// will mark it using the bit 0, otherwise bit 1").
pub fn sign_map(residuals: &[i64], out: &mut [u8]) {
    debug_assert_eq!(out.len(), residuals.len() / 8);
    for b in out.iter_mut() {
        *b = 0;
    }
    for (e, &l) in residuals.iter().enumerate() {
        if l < 0 {
            out[e / 8] |= 1 << (e % 8);
        }
    }
}

/// Apply a sign bitmap to absolute values, recovering signed residuals.
pub fn apply_sign_map(abs_vals: &[u64], signs: &[u8], out: &mut [i64]) {
    debug_assert_eq!(signs.len(), abs_vals.len() / 8);
    for (e, &a) in abs_vals.iter().enumerate() {
        let neg = signs[e / 8] & (1 << (e % 8)) != 0;
        let v = a as i64;
        out[e] = if neg { v.wrapping_neg() } else { v };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig5_example() {
        // Block of 8 with max |l| = 134 ⇒ F = 8, CmpL = (8+1)·8/8 = 9.
        let residuals = [123i64, -15, 134, -85, 77, 4, -5, 9];
        let plan = plan_block(&residuals, 8);
        assert_eq!(plan.fixed_len, 8);
        assert_eq!(plan.cmp_bytes, 9);
    }

    #[test]
    fn paper_sec42_example() {
        // {1,2,5,11,2,0,0,1} → max 11 ⇒ F = 4.
        let residuals = [1i64, 2, 5, 11, 2, 0, 0, 1];
        let plan = plan_block(&residuals, 8);
        assert_eq!(plan.fixed_len, 4);
        assert_eq!(plan.cmp_bytes, 5);
    }

    #[test]
    fn zero_block_costs_nothing() {
        let residuals = [0i64; 32];
        let plan = plan_block(&residuals, 32);
        assert_eq!(plan.fixed_len, 0);
        assert_eq!(plan.cmp_bytes, 0);
    }

    #[test]
    fn eq2_for_default_block() {
        // L = 32: CmpL = 4·(F+1).
        for f in 1..=34u8 {
            assert_eq!(cmp_bytes_for(f, 32), 4 * (f as u32 + 1));
        }
    }

    #[test]
    fn i64_min_handled() {
        let residuals = [i64::MIN, 0, 0, 0, 0, 0, 0, 0];
        let plan = plan_block(&residuals, 8);
        assert_eq!(plan.fixed_len, 64);
    }

    #[test]
    fn sign_map_roundtrip() {
        let residuals = [3i64, -7, 0, -1, 100, -100, 42, -42];
        let mut signs = [0u8; 1];
        sign_map(&residuals, &mut signs);
        assert_eq!(signs[0], 0b1010_1010);
        let abs_vals: Vec<u64> = residuals.iter().map(|l| l.unsigned_abs()).collect();
        let mut back = [0i64; 8];
        apply_sign_map(&abs_vals, &signs, &mut back);
        assert_eq!(back, residuals);
    }

    #[test]
    fn negative_zero_is_positive() {
        // l = 0 must never set a sign bit (decoder would produce -0 = 0
        // anyway, but the bitmap should be canonical).
        let residuals = [0i64; 8];
        let mut signs = [0xFFu8; 1];
        sign_map(&residuals, &mut signs);
        assert_eq!(signs[0], 0);
    }
}
