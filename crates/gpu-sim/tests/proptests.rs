//! Property-based tests for the gpu-sim substrate: the device-wide scan
//! must agree with a sequential scan for arbitrary inputs, worker counts
//! and grid geometries, and warp primitives must match their sequential
//! definitions.

use gpu_sim::warp::{
    ballot, exclusive_scan_u64, inclusive_scan_by, reduce_max_u32, reduce_sum_u64, shfl_down,
    shfl_up,
};
use gpu_sim::{scan, DeviceBuffer, DeviceSpec, Gpu, WARP};
use proptest::prelude::*;

fn host_exclusive_scan(input: &[u32]) -> (Vec<u32>, u64) {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = 0u64;
    for &v in input {
        out.push(acc as u32);
        acc += v as u64;
    }
    (out, acc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn device_scan_matches_sequential(
        input in proptest::collection::vec(0u32..10_000, 0..2000),
        workers in 1usize..5,
    ) {
        let mut gpu = Gpu::new(DeviceSpec::a100()).with_workers(workers);
        let inp = DeviceBuffer::from_host(&input);
        let out = DeviceBuffer::<u32>::zeroed(input.len());
        let total = scan::exclusive_scan_u32(&mut gpu, &inp, &out, "scan");
        let (expect, expect_total) = host_exclusive_scan(&input);
        prop_assert_eq!(out.to_host(), expect);
        prop_assert_eq!(total, expect_total);
    }

    #[test]
    fn warp_inclusive_scan_matches_sequential(vals in proptest::array::uniform32(0u64..1u64<<40)) {
        let (scanned, _) = inclusive_scan_by(vals, |a, b| a + b);
        let mut acc = 0u64;
        for i in 0..WARP {
            acc += vals[i];
            prop_assert_eq!(scanned[i], acc);
        }
    }

    #[test]
    fn warp_exclusive_scan_matches_sequential(vals in proptest::array::uniform32(0u64..1u64<<40)) {
        let (scanned, total, _) = exclusive_scan_u64(vals);
        let mut acc = 0u64;
        for i in 0..WARP {
            prop_assert_eq!(scanned[i], acc);
            acc += vals[i];
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn warp_reductions_match_iterators(vals in proptest::array::uniform32(0u32..u32::MAX/64)) {
        let (m, _) = reduce_max_u32(&vals);
        prop_assert_eq!(m, *vals.iter().max().unwrap());
        let wide: [u64; WARP] = std::array::from_fn(|i| vals[i] as u64);
        let (s, _) = reduce_sum_u64(&wide);
        prop_assert_eq!(s, wide.iter().sum::<u64>());
    }

    #[test]
    fn shuffles_are_inverse_ish(vals in proptest::array::uniform32(0i64..1000), delta in 0usize..32) {
        // shfl_down(shfl_up(x, d), d) restores lanes [0, 32-d) of... actually
        // lanes [d, 32) shifted back: lane i in [0, 32-d) gets original lane i.
        let up = shfl_up(&vals, delta, -1);
        let back = shfl_down(&up, delta, -1);
        for i in 0..WARP - delta {
            prop_assert_eq!(back[i], vals[i]);
        }
    }

    #[test]
    fn ballot_bit_per_lane(bits in 0u32..) {
        let preds: [bool; WARP] = std::array::from_fn(|i| bits & (1 << i) != 0);
        prop_assert_eq!(ballot(&preds), bits);
    }
}
