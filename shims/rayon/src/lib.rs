//! Offline shim for `rayon` — eager parallel iterators on scoped threads.
//!
//! The subset this workspace uses: `par_iter()` over slices,
//! `into_par_iter()` over vectors and integer ranges, `.map(..)`,
//! `.collect()`. Execution model: the item list is materialized, split
//! into `available_parallelism()` contiguous chunks, and mapped on scoped
//! `std::thread`s — order-preserving, so results are identical to the
//! sequential ones.

use std::ops::{Range, RangeInclusive};

/// Number of worker threads to fan out to (overridable for tests via
/// `RAYON_NUM_THREADS`, like upstream rayon).
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over an owned item list.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = current_num_threads();
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let m = items.len();
    let chunk = m.div_ceil(workers);
    let mut slots: Vec<Option<R>> = (0..m).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut items = items;
        let f = &f;
        for slot_chunk in slots.chunks_mut(chunk) {
            let take: Vec<T> = items.drain(..slot_chunk.len()).collect();
            s.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(take) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("worker filled slot"))
        .collect()
}

/// A materialized parallel iterator (the shim's only source node).
pub struct IterBase<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator.
pub struct Map<P, F> {
    base: P,
    f: F,
}

/// The parallel-iterator operations the workspace uses.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Execute and return the results in order.
    fn run(self) -> Vec<Self::Item>;

    /// Map each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Execute and collect (only `Vec<_>` targets are supported).
    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        C::from(self.run())
    }

    /// Sum of the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    /// Execute `f` for each element (parallel side effects).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        par_apply(self.run(), f);
    }
}

impl<T: Send> ParallelIterator for IterBase<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_apply(self.base.run(), self.f)
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterBase<T>;
    fn into_par_iter(self) -> IterBase<T> {
        IterBase { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = IterBase<$t>;
            fn into_par_iter(self) -> IterBase<$t> {
                IterBase { items: self.collect() }
            }
        }
        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            type Iter = IterBase<$t>;
            fn into_par_iter(self) -> IterBase<$t> {
                IterBase { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Borrowing counterpart of [`IntoParallelIterator`] (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IterBase<&'a T>;
    fn par_iter(&'a self) -> IterBase<&'a T> {
        IterBase {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IterBase<&'a T>;
    fn par_iter(&'a self) -> IterBase<&'a T> {
        IterBase {
            items: self.iter().collect(),
        }
    }
}

/// What `use rayon::prelude::*` brings in.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn slice_par_iter() {
        let names = ["a", "bb", "ccc"];
        let lens: Vec<usize> = names.par_iter().map(|n| n.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn inclusive_range() {
        let v: Vec<usize> = (1..=36usize).into_par_iter().map(|i| i * 100).collect();
        assert_eq!(v.len(), 36);
        assert_eq!(v[0], 100);
        assert_eq!(v[35], 3600);
    }
}
