//! Block-granular random access through the `cuszp-store` shard layer
//! (ISSUE 7).
//!
//! cuSZp's Eq-2 prefix sum gives exact per-block byte offsets, so a
//! range read should touch only the compressed bytes of the blocks that
//! overlap it — never the whole stream. This experiment stores a field
//! as a chunked shard and measures, for every registered codec, what a
//! 1-block / 1% / 10% / full read actually costs: wall latency,
//! compressed **bytes touched** (from [`cuszp_store::ReadStats`] — the
//! decoder's own accounting of payload bytes it dereferenced), blocks
//! decoded, and steady-state heap operations (0 with a warm scratch when
//! the counting allocator is installed). Every partial read is verified
//! value-identical to the full-decode oracle before timing.
//!
//! Written as `BENCH_partial_read.json` at the repository root. Hard
//! assertions (the ISSUE 7 acceptance criteria):
//!
//! * a single-block read decodes exactly the blocks overlapping the
//!   request — one block, one chunk — and touches a vanishing fraction
//!   of the payload;
//! * bytes touched scale with the requested fraction, not the shard
//!   size;
//! * heap ops per warm partial read are 0 (when the counter is live).

use super::Ctx;
use crate::report::Report;
use cuszp_store::{write_shard, CodecRegistry, Shard, StoreScratch};
use datasets::Scale;
use serde::Serialize;
use std::time::Instant;

/// One codec × read-size measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Codec name.
    pub codec: String,
    /// Read label: `1-block`, `1%`, `10%`, `full`.
    pub read: String,
    /// Elements returned by the read.
    pub elements: usize,
    /// Compressed payload bytes dereferenced to serve it.
    pub bytes_touched: usize,
    /// `bytes_touched` as a fraction of the full read's.
    pub payload_fraction: f64,
    /// Codec blocks decoded.
    pub blocks_decoded: usize,
    /// Chunks opened.
    pub chunks_touched: usize,
    /// Best-of-N wall latency, microseconds.
    pub latency_us: f64,
    /// Logical (decoded f32) throughput, MB/s.
    pub mbps: f64,
    /// Heap operations per warm read (0 when the counting allocator is
    /// installed; meaningless otherwise).
    pub heap_ops: u64,
}

/// The checked-in benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct BenchFile {
    /// Artifact schema tag.
    pub experiment: String,
    /// Shard element count.
    pub elements: usize,
    /// Chunk element count.
    pub chunk_elements: usize,
    /// Whether heap-op counts are live.
    pub counting_allocator_installed: bool,
    /// Timing samples per measurement.
    pub samples: usize,
    /// All codec × read-size rows.
    pub rows: Vec<Row>,
    /// Max heap ops across all warm partial reads (target 0).
    pub max_heap_ops: u64,
    /// Max payload fraction a 1-block read touched (target ≪ 1% for
    /// granule-1 codecs; the hybrid codec's bound scales with its
    /// 256-block entropy-chunk granule).
    pub one_block_max_payload_fraction: f64,
}

struct BestOf {
    best: f64,
}

impl BestOf {
    fn new() -> Self {
        BestOf {
            best: f64::INFINITY,
        }
    }
    fn sample(&mut self, reps: usize, mut f: impl FnMut()) {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        self.best = self.best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
}

/// Run the partial-read experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "partial_read",
        "Block-granular random access: bytes touched and latency vs read size",
        &ctx.out_dir,
    );
    let (n, samples) = match ctx.scale {
        Scale::Tiny => (1usize << 18, 5usize),
        Scale::Small => (1 << 20, 20),
        Scale::Medium => (1 << 22, 40),
    };
    let chunk = 65_536usize.min(n);
    let installed = alloc_counter::is_installed();
    report.line(&format!(
        "shard: {n} f32 elements, {chunk}-element chunks; best of {samples} samples; \
         counting allocator {}",
        if installed {
            "installed"
        } else {
            "NOT installed (heap-op counts inert)"
        }
    ));

    let data: Vec<f32> = (0..n)
        .map(|i| (i as f32 * 0.0021).sin() * 30.0 + (i as f32 * 0.00013).cos() * 4.0)
        .collect();
    let registry = CodecRegistry::with_defaults();
    let mut rows = Vec::new();

    for codec in registry.codecs() {
        let shard_bytes = write_shard(&data, &[n], &[chunk], codec, 1e-3).expect("write shard");
        let shard = Shard::open(&shard_bytes).expect("own shard opens");
        let mut scratch = StoreScratch::new();
        let mut full = vec![0f32; n];
        let full_stats = shard
            .read_all(&registry, &mut scratch, &mut full)
            .expect("full read");

        let l = codec.block_len();
        // (label, origin, extent): one codec block, 1%, 10%, all — each
        // placed mid-shard so chunk-boundary handling is in play.
        let reads = [
            ("1-block", n / 2, l),
            ("1%", n / 4, (n / 100).max(l)),
            ("10%", n / 8, n / 10),
            ("full", 0usize, n),
        ];
        for (label, origin, extent) in reads {
            let mut out = vec![0f32; extent];
            let stats = shard
                .read_region(&registry, &[origin], &[extent], &mut scratch, &mut out)
                .expect("partial read");
            // Oracle: value-identical to full-decode-then-slice.
            assert_eq!(
                out,
                full[origin..origin + extent],
                "{} / {label}: partial read must equal the full-decode slice",
                codec.name()
            );
            // Bytes-touched accounting (ISSUE 7 acceptance).
            if label == "1-block" {
                assert_eq!(
                    stats.blocks_decoded,
                    1,
                    "{}: a 1-block read must decode exactly 1 block",
                    codec.name()
                );
                assert_eq!(stats.chunks_touched, 1, "{}", codec.name());
                // Allowed payload: the codec's random-access granule
                // (hybrid entropy chunks decode whole, so one block costs
                // its 256-block group), floored at the legacy 1% bound
                // that granule-1 codecs must keep meeting.
                let total_blocks = n.div_ceil(l).max(1);
                let granule = full_stats.payload_bytes_read * 2 * codec.access_granularity_blocks()
                    / total_blocks;
                let allowed = granule.max(full_stats.payload_bytes_read / 100);
                assert!(
                    stats.payload_bytes_read <= allowed,
                    "{}: 1-block read touched {} of {} payload bytes (allowed {})",
                    codec.name(),
                    stats.payload_bytes_read,
                    full_stats.payload_bytes_read,
                    allowed
                );
            }

            let before = alloc_counter::snapshot();
            shard
                .read_region(&registry, &[origin], &[extent], &mut scratch, &mut out)
                .expect("warm read");
            let heap_ops = alloc_counter::snapshot().since(&before).heap_ops();
            if installed {
                assert_eq!(
                    heap_ops,
                    0,
                    "{} / {label}: warm partial read must not touch the heap",
                    codec.name()
                );
            }

            let reps = ((1 << 22) / (extent * 4).max(1)).clamp(1, 512);
            let mut best = BestOf::new();
            for _ in 0..samples {
                best.sample(reps, || {
                    shard
                        .read_region(&registry, &[origin], &[extent], &mut scratch, &mut out)
                        .expect("timed read");
                    std::hint::black_box(out[0]);
                });
            }
            rows.push(Row {
                codec: codec.name().to_string(),
                read: label.to_string(),
                elements: extent,
                bytes_touched: stats.payload_bytes_read,
                payload_fraction: stats.payload_bytes_read as f64
                    / full_stats.payload_bytes_read.max(1) as f64,
                blocks_decoded: stats.blocks_decoded,
                chunks_touched: stats.chunks_touched,
                latency_us: best.best * 1e6,
                mbps: (extent * 4) as f64 / best.best / 1e6,
                heap_ops,
            });
        }
    }

    report.table(
        &[
            "codec",
            "read",
            "elements",
            "bytes touched",
            "payload frac",
            "blocks",
            "latency",
            "MB/s",
            "heap ops",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.codec.clone(),
                    r.read.clone(),
                    format!("{}", r.elements),
                    format!("{}", r.bytes_touched),
                    format!("{:.4}%", r.payload_fraction * 100.0),
                    format!("{}", r.blocks_decoded),
                    format!("{:.1} us", r.latency_us),
                    format!("{:.0}", r.mbps),
                    format!("{}", r.heap_ops),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let max_heap_ops = rows.iter().map(|r| r.heap_ops).max().unwrap_or(0);
    let one_block_max_payload_fraction = rows
        .iter()
        .filter(|r| r.read == "1-block")
        .map(|r| r.payload_fraction)
        .fold(0.0f64, f64::max);
    report.line(&format!(
        "1-block reads touch <= {:.5}% of the payload; max warm-read heap ops: {max_heap_ops} (target 0)",
        one_block_max_payload_fraction * 100.0
    ));

    let bench = BenchFile {
        experiment: "partial_read".to_string(),
        elements: n,
        chunk_elements: chunk,
        counting_allocator_installed: installed,
        samples,
        rows: rows.clone(),
        max_heap_ops,
        one_block_max_payload_fraction,
    };

    report.save_json(&rows);
    report.save_text();

    let root = ctx.out_dir.parent().unwrap_or(std::path::Path::new("."));
    let path = root.join("BENCH_partial_read.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench file");
    std::fs::write(&path, json).expect("write BENCH_partial_read.json");
    report.line(&format!(
        "benchmark trajectory written to {}",
        path.display()
    ));
}
