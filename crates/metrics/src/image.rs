//! Slice rendering to PPM (QCAT's `PlotSliceImage` equivalent) and the
//! stripe-artifact score used to quantify Fig 16's cuSZx banding.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Map `t ∈ [0,1]` through a compact viridis-like perceptual colormap.
fn colormap(t: f64) -> [u8; 3] {
    // Piecewise-linear fit through five viridis anchors.
    const ANCHORS: [(f64, [f64; 3]); 5] = [
        (0.00, [68.0, 1.0, 84.0]),
        (0.25, [59.0, 82.0, 139.0]),
        (0.50, [33.0, 145.0, 140.0]),
        (0.75, [94.0, 201.0, 98.0]),
        (1.00, [253.0, 231.0, 37.0]),
    ];
    let t = t.clamp(0.0, 1.0);
    for w in ANCHORS.windows(2) {
        let (t0, c0) = w[0];
        let (t1, c1) = w[1];
        if t <= t1 {
            let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
            return [
                (c0[0] + f * (c1[0] - c0[0])) as u8,
                (c0[1] + f * (c1[1] - c0[1])) as u8,
                (c0[2] + f * (c1[2] - c0[2])) as u8,
            ];
        }
    }
    [253, 231, 37]
}

/// Render a `height × width` scalar plane to a binary PPM (P6) file,
/// normalizing values into the colormap range.
pub fn write_ppm(path: &Path, height: usize, width: usize, plane: &[f32]) -> io::Result<()> {
    assert_eq!(plane.len(), height * width, "plane/shape mismatch");
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in plane {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(f32::MIN_POSITIVE) as f64;

    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P6\n{width} {height}\n255\n")?;
    for &v in plane {
        let t = ((v - lo) as f64) / span;
        w.write_all(&colormap(t))?;
    }
    w.flush()
}

/// Stripe-artifact score in `[0, 1]`: the fraction of pixels that sit in a
/// horizontal run of ≥ `min_run` *exactly equal* values.
///
/// cuSZx's constant-block flush replaces entire blocks with their range
/// midpoint; on smooth 2-D data that manifests as long constant horizontal
/// runs — the Fig 16 stripes. Original scientific data and cuSZp output
/// score near 0; cuSZx output under a loose bound scores high.
pub fn stripe_score(height: usize, width: usize, plane: &[f32], min_run: usize) -> f64 {
    assert_eq!(plane.len(), height * width);
    assert!(min_run >= 2);
    let mut striped = 0usize;
    for row in 0..height {
        let r = &plane[row * width..(row + 1) * width];
        let mut start = 0usize;
        for i in 1..=width {
            if i == width || r[i] != r[start] {
                let run = i - start;
                if run >= min_run {
                    striped += run;
                }
                start = i;
            }
        }
    }
    striped as f64 / (height * width) as f64
}

/// Banding score in `[0, 1]`: how spatially *coherent* the reconstruction
/// error is over row segments of `segment` pixels.
///
/// Computed as `RMS(segment-mean error) / RMS(error)`. A compressor that
/// flushes whole blocks to a constant (cuSZx) leaves each segment's error
/// sharing one sign and magnitude → score near 1 → visible stripes
/// (Fig 16). A predictor-based compressor's error oscillates inside the
/// segment → the segment means cancel → score near `1/sqrt(segment)`.
pub fn banding_score(original: &[f32], reconstructed: &[f32], segment: usize) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    assert!(segment >= 2);
    let mut err_sq = 0.0f64;
    let mut seg_sq = 0.0f64;
    let mut segments = 0usize;
    for (o_chunk, r_chunk) in original.chunks(segment).zip(reconstructed.chunks(segment)) {
        let mut sum = 0.0f64;
        for (&o, &r) in o_chunk.iter().zip(r_chunk) {
            let e = r as f64 - o as f64;
            err_sq += e * e;
            sum += e;
        }
        let mean = sum / o_chunk.len() as f64;
        seg_sq += mean * mean;
        segments += 1;
    }
    let rms_err = (err_sq / original.len() as f64).sqrt();
    let rms_seg = (seg_sq / segments as f64).sqrt();
    if rms_err > 0.0 {
        (rms_seg / rms_err).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banding_high_for_flush_error() {
        // Error = constant +1 over each segment (flush-style).
        let orig: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let recon: Vec<f32> = orig.iter().map(|&v| v + 1.0).collect();
        assert!(banding_score(&orig, &recon, 32) > 0.99);
    }

    #[test]
    fn banding_low_for_oscillating_error() {
        let orig: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let recon: Vec<f32> = orig
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(banding_score(&orig, &recon, 32) < 0.1);
    }

    #[test]
    fn banding_zero_for_exact() {
        let orig: Vec<f32> = (0..64).map(|i| i as f32).collect();
        assert_eq!(banding_score(&orig, &orig, 8), 0.0);
    }

    #[test]
    fn colormap_endpoints() {
        assert_eq!(colormap(0.0), [68, 1, 84]);
        assert_eq!(colormap(1.0), [253, 231, 37]);
        // Clamped.
        assert_eq!(colormap(-5.0), colormap(0.0));
        assert_eq!(colormap(5.0), colormap(1.0));
    }

    #[test]
    fn ppm_writes_header_and_pixels() {
        let mut path = std::env::temp_dir();
        path.push(format!("cuszp_ppm_test_{}.ppm", std::process::id()));
        let plane: Vec<f32> = (0..12).map(|v| v as f32).collect();
        write_ppm(&path, 3, 4, &plane).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(bytes.len(), 11 + 12 * 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stripe_score_zero_on_gradient() {
        let plane: Vec<f32> = (0..100).map(|v| v as f32).collect();
        assert_eq!(stripe_score(10, 10, &plane, 4), 0.0);
    }

    #[test]
    fn stripe_score_one_on_constant_rows() {
        let mut plane = vec![0.0f32; 100];
        for (i, v) in plane.iter_mut().enumerate() {
            *v = (i / 10) as f32; // each row constant
        }
        assert_eq!(stripe_score(10, 10, &plane, 4), 1.0);
    }

    #[test]
    fn stripe_score_partial() {
        // One half-constant row out of two rows.
        let mut plane: Vec<f32> = (0..20).map(|v| v as f32).collect();
        for v in plane.iter_mut().take(5) {
            *v = 7.0;
        }
        let s = stripe_score(2, 10, &plane, 4);
        assert!((s - 0.25).abs() < 1e-12, "score {s}");
    }
}
