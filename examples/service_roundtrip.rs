//! `service_roundtrip` — the socket service end to end in one process:
//! start a server, connect as a tenant, run compress/decompress round
//! trips over real TCP, scrape the live metrics, shut down gracefully.
//!
//! ```text
//! cargo run --release --example service_roundtrip -- [payload-elems] [requests]
//! ```
//!
//! This is the worked migration from the in-process `zero_alloc_service`
//! example to the wire: the same arena discipline, but the `Scratch`
//! lives server-side per connection, warmed at handshake from the
//! tenant's declared payload cap, and every payload crosses a socket as
//! a `CUSZPCH1` container (docs/SERVICE.md walks through the mapping).

use cuszp_core::{DType, ErrorBound};
use cuszp_service::{Client, Server, ServiceConfig, Tenant};
use std::time::Instant;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn main() {
    let mut args = std::env::args().skip(1);
    let elems: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16 * 1024); // 64 KiB payloads by default
    let requests: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);

    let server = Server::start(ServiceConfig::default()).expect("bind service");
    println!("service listening on {}", server.addr());

    let tenant = Tenant {
        tenant_id: 1,
        dtype: DType::F32,
        bound: ErrorBound::Abs(1e-2),
        max_payload: (elems * 4) as u32,
        hybrid: false,
    };
    let mut client = Client::connect(server.addr(), tenant).expect("connect");
    println!(
        "tenant {} connected: dtype f32, bound ABS 1e-2, payload cap {} KiB",
        tenant.tenant_id,
        client.effective_max_payload() / 1024
    );

    let data: Vec<f32> = (0..elems)
        .map(|i| (i as f32 * 0.03).sin() * 25.0 + (i as f32 * 0.0011).cos() * 140.0)
        .collect();
    let mut container = Vec::new();
    let mut restored: Vec<f32> = Vec::new();

    // Warm-up round trip (the handshake already warmed the server side;
    // this warms the client's reusable buffers).
    container.extend_from_slice(client.compress_f32(&data).expect("compress"));
    client
        .decompress_f32(&container, &mut restored)
        .expect("decompress");

    let before = alloc_counter::snapshot();
    let t0 = Instant::now();
    for _ in 0..requests {
        let c = client.compress_f32(&data).expect("compress");
        container.clear();
        container.extend_from_slice(c);
        client
            .decompress_f32(&container, &mut restored)
            .expect("decompress");
    }
    let dt = t0.elapsed().as_secs_f64();
    let delta = alloc_counter::snapshot().since(&before);

    let mb = (requests * elems * 4) as f64 / 1e6;
    println!(
        "{} round trips over TCP: {:.1} MB/s, ratio {:.2}x",
        requests,
        2.0 * mb / dt, // compress + decompress both move the raw payload
        (elems * 4) as f64 / container.len() as f64
    );
    println!(
        "steady-state heap ops across server + client: {}",
        delta.heap_ops()
    );

    let mut metrics = String::new();
    client.metrics_into(&mut metrics).expect("metrics scrape");
    println!("--- /metrics ---");
    for line in metrics.lines().filter(|l| !l.starts_with('#')) {
        println!("{line}");
    }

    drop(client);
    let jobs = server.shutdown();
    println!("--- shutdown: drained, {jobs} jobs served ---");

    // Smoke-test contract (CI runs this example): traffic flowed, the
    // bound held, and the steady state stayed off the heap.
    assert_eq!(jobs as usize, 2 * (requests + 1));
    assert!(
        cuszp_core::verify::check_bound(&data, &restored, 1e-2),
        "error bound violated"
    );
    assert_eq!(delta.heap_ops(), 0, "steady state must not touch the heap");
    println!("service round trip: verified");
}
