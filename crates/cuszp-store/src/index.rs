//! The persisted shard index (`CUSZPIX1`) and end-of-shard footer
//! (`CUSZPFT1`).
//!
//! Shard layout (all integers little-endian; normative spec in
//! `docs/FORMAT.md`, validation order mirrored by the corruption tests):
//!
//! ```text
//! frames        chunk 0 .. chunk num_chunks−1, back to back from byte 0
//! index         magic          8 B   "CUSZPIX1"
//!               ndim           1 B   1..=MAX_DIMS
//!               dtype          1 B   element type (0 = f32, 1 = f64)
//!               shape          ndim × 8 B   u64, each ≥ 1
//!               chunk_shape    ndim × 8 B   u64, each ≥ 1
//!               num_chunks     4 B   u32 == Π ⌈shape/chunk_shape⌉
//!               entries        num_chunks × 28 B (see below)
//! footer        index_offset   8 B   u64, absolute byte offset of index
//!               magic          8 B   "CUSZPFT1"
//! ```
//!
//! One entry per chunk, in C-order over the chunk grid:
//!
//! ```text
//! offset        8 B   u64, frame start (absolute)
//! len           8 B   u64, frame bytes
//! num_elements  8 B   u64 == Π min(chunk_shape, shape − origin)
//! format_id     4 B   codec id ([`FormatId`])
//! ```
//!
//! The footer sits at the *end* so a writer streams frames first and
//! appends the index once sizes are known — a reader seeks to
//! `len − 16`, validates the footer, then jumps to the index. Frames must
//! be non-overlapping and in offset order, wholly inside
//! `[0, index_offset)`; gaps are permitted (a writer may align frames).

use crate::codec::FormatId;
use crate::error::StoreError;
use cuszp_core::DType;

/// Index magic.
pub const INDEX_MAGIC: [u8; 8] = *b"CUSZPIX1";
/// Footer magic.
pub const FOOTER_MAGIC: [u8; 8] = *b"CUSZPFT1";
/// Footer size: index_offset (u64 LE) + magic.
pub const FOOTER_BYTES: usize = 16;
/// Bytes per chunk entry.
pub const ENTRY_BYTES: usize = 28;
/// Maximum dimensionality of a shard.
pub const MAX_DIMS: usize = 8;
/// Cap on the chunk count (2^24), bounding index allocation before the
/// entry table is trusted.
pub const MAX_CHUNKS: usize = 1 << 24;

/// One chunk's entry in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Absolute byte offset of the chunk's frame.
    pub offset: u64,
    /// Frame length in bytes.
    pub len: u64,
    /// Elements the chunk covers (edge chunks are smaller).
    pub num_elements: u64,
    /// Codec that encoded the frame.
    pub format_id: FormatId,
}

/// Parsed, validated shard index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIndex {
    /// Logical array shape.
    pub shape: Vec<usize>,
    /// Chunk shape (edge chunks clamp to the array bounds).
    pub chunk_shape: Vec<usize>,
    /// Element type of every chunk in the shard.
    pub dtype: DType,
    /// Per-chunk entries, C-order over the chunk grid.
    pub entries: Vec<ChunkEntry>,
}

impl ShardIndex {
    /// Chunks along each axis (`⌈shape/chunk_shape⌉`).
    pub fn grid(&self) -> Vec<usize> {
        self.shape
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&s, &c)| s.div_ceil(c))
            .collect()
    }

    /// Element count of chunk `coords` (clamped at the array edge).
    pub fn chunk_elements(&self, coords: &[usize]) -> usize {
        coords
            .iter()
            .zip(self.shape.iter().zip(&self.chunk_shape))
            .map(|(&c, (&s, &cs))| cs.min(s - c * cs))
            .product()
    }

    /// Serialized index size for `ndim` axes and `num_chunks` chunks
    /// (magic + ndim + dtype + shapes + count + entries).
    pub fn index_bytes(ndim: usize, num_chunks: usize) -> usize {
        8 + 1 + 1 + 2 * ndim * 8 + 4 + num_chunks * ENTRY_BYTES
    }

    /// Append the serialized index followed by the footer to `out`
    /// (which already holds the frames; the index starts at the current
    /// length).
    pub fn append_to(&self, out: &mut Vec<u8>) {
        let index_offset = out.len() as u64;
        out.extend_from_slice(&INDEX_MAGIC);
        out.push(self.shape.len() as u8);
        out.push(self.dtype.to_byte());
        for &s in &self.shape {
            out.extend_from_slice(&(s as u64).to_le_bytes());
        }
        for &c in &self.chunk_shape {
            out.extend_from_slice(&(c as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.num_elements.to_le_bytes());
            out.extend_from_slice(&e.format_id);
        }
        out.extend_from_slice(&index_offset.to_le_bytes());
        out.extend_from_slice(&FOOTER_MAGIC);
    }

    /// Parse and fully validate the index of `shard` (the complete shard
    /// byte slice). Validation order is normative — the corruption tests
    /// pin it:
    ///
    /// 1. `shard.len() ≥ 16` — else [`StoreError::Truncated`].
    /// 2. Footer magic — else [`StoreError::BadMagic`].
    /// 3. `index_offset` leaves room for a minimal index before the
    ///    footer — else [`StoreError::Corrupt`].
    /// 4. Index magic — else [`StoreError::BadMagic`].
    /// 5. `ndim ∈ [1, 8]`; the dtype byte is a known element type
    ///    (0 = f32, 1 = f64); shape and chunk dims ≥ 1; the total element
    ///    count `Π shape` fits in `usize` — else [`StoreError::Corrupt`].
    /// 6. `num_chunks` ≤ 2^24 and equals the grid product — else
    ///    [`StoreError::Corrupt`].
    /// 7. The index ends exactly at the footer — else
    ///    [`StoreError::Corrupt`] (overlong) / [`StoreError::Truncated`]
    ///    (short).
    /// 8. Per entry, in order: `offset + len ≤ index_offset` — else
    ///    [`StoreError::IndexOutOfBounds`]; `offset ≥` previous entry's
    ///    end — else [`StoreError::IndexOverlap`]; `num_elements` matches
    ///    the chunk geometry — else [`StoreError::Corrupt`].
    pub fn parse(shard: &[u8]) -> Result<ShardIndex, StoreError> {
        // 1–2: footer.
        if shard.len() < FOOTER_BYTES {
            return Err(StoreError::Truncated);
        }
        let footer = &shard[shard.len() - FOOTER_BYTES..];
        if footer[8..] != FOOTER_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let index_offset = u64::from_le_bytes(footer[..8].try_into().expect("len checked"));
        // 3: the smallest legal index (1-D, 0 chunks) must fit. Widen to
        // u128 so the check cannot be masked by saturation or wraparound
        // (a shard shorter than `min_index + FOOTER_BYTES` must reject
        // every index_offset, including 0).
        let body_end = shard.len() - FOOTER_BYTES;
        let min_index = Self::index_bytes(1, 0);
        if index_offset as u128 + min_index as u128 > body_end as u128 {
            return Err(StoreError::Corrupt("index offset out of bounds"));
        }
        let index = &shard[index_offset as usize..body_end];
        // 4: index magic.
        if index[..8] != INDEX_MAGIC {
            return Err(StoreError::BadMagic);
        }
        // 5: geometry.
        let ndim = index[8] as usize;
        if !(1..=MAX_DIMS).contains(&ndim) {
            return Err(StoreError::Corrupt("dimensionality out of range"));
        }
        let dtype =
            DType::from_byte(index[9]).ok_or(StoreError::Corrupt("unknown element dtype"))?;
        let shapes_end = 10 + 2 * ndim * 8;
        if index.len() < shapes_end + 4 {
            return Err(StoreError::Truncated);
        }
        let read_dims = |base: usize| -> Result<Vec<usize>, StoreError> {
            (0..ndim)
                .map(|i| {
                    let off = base + i * 8;
                    let v =
                        u64::from_le_bytes(index[off..off + 8].try_into().expect("len checked"));
                    match usize::try_from(v) {
                        Ok(v) if v >= 1 => Ok(v),
                        _ => Err(StoreError::Corrupt("zero or oversize dimension")),
                    }
                })
                .collect()
        };
        let shape = read_dims(10)?;
        let chunk_shape = read_dims(10 + ndim * 8)?;
        // Untrusted 64-bit dims: the total element count must fit in
        // usize, or downstream products (grid strides, chunk_elements,
        // Shard::num_elements) could wrap — a debug panic and, in
        // release, a geometry-validation bypass. Every later product is
        // bounded by Π shape (each grid axis ≤ shape axis since chunk
        // dims are ≥ 1, and clamped chunk extents are ≤ shape axes), so
        // this single checked product covers them all.
        shape
            .iter()
            .try_fold(1usize, |acc, &s| acc.checked_mul(s))
            .ok_or(StoreError::Corrupt("element count overflow"))?;
        // 6: chunk count.
        let num_chunks = u32::from_le_bytes(
            index[shapes_end..shapes_end + 4]
                .try_into()
                .expect("len checked"),
        ) as usize;
        if num_chunks > MAX_CHUNKS {
            return Err(StoreError::Corrupt("chunk count exceeds cap"));
        }
        let expected_chunks: usize = shape
            .iter()
            .zip(&chunk_shape)
            .map(|(&s, &c)| s.div_ceil(c))
            .product();
        if num_chunks != expected_chunks {
            return Err(StoreError::Corrupt("chunk count vs grid"));
        }
        // 7: exact index size.
        let want = Self::index_bytes(ndim, num_chunks);
        if index.len() < want {
            return Err(StoreError::Truncated);
        }
        if index.len() > want {
            return Err(StoreError::Corrupt("trailing bytes in index"));
        }
        // 8: entries.
        let mut idx = ShardIndex {
            shape,
            chunk_shape,
            dtype,
            entries: Vec::with_capacity(num_chunks),
        };
        let grid = idx.grid();
        let mut coords = vec![0usize; ndim];
        let mut prev_end = 0u64;
        for chunk in 0..num_chunks {
            let base = shapes_end + 4 + chunk * ENTRY_BYTES;
            let e = &index[base..base + ENTRY_BYTES];
            let offset = u64::from_le_bytes(e[..8].try_into().expect("len checked"));
            let len = u64::from_le_bytes(e[8..16].try_into().expect("len checked"));
            let num_elements = u64::from_le_bytes(e[16..24].try_into().expect("len checked"));
            let format_id: FormatId = e[24..28].try_into().expect("len checked");
            let end = offset
                .checked_add(len)
                .ok_or(StoreError::IndexOutOfBounds { chunk })?;
            if end > index_offset {
                return Err(StoreError::IndexOutOfBounds { chunk });
            }
            if offset < prev_end {
                return Err(StoreError::IndexOverlap { chunk });
            }
            prev_end = end;
            if num_elements != idx.chunk_elements(&coords) as u64 {
                return Err(StoreError::Corrupt("chunk element count vs geometry"));
            }
            idx.entries.push(ChunkEntry {
                offset,
                len,
                num_elements,
                format_id,
            });
            // Advance C-order chunk coordinates.
            for axis in (0..ndim).rev() {
                coords[axis] += 1;
                if coords[axis] < grid[axis] {
                    break;
                }
                coords[axis] = 0;
            }
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<u8>, ShardIndex) {
        // 2-D 5×6 array, 4×4 chunks → 2×2 grid, edge chunks clamp.
        let idx = ShardIndex {
            shape: vec![5, 6],
            chunk_shape: vec![4, 4],
            dtype: DType::F32,
            entries: vec![
                ChunkEntry {
                    offset: 0,
                    len: 10,
                    num_elements: 16,
                    format_id: *b"CZP1",
                },
                ChunkEntry {
                    offset: 10,
                    len: 7,
                    num_elements: 8,
                    format_id: *b"CZP1",
                },
                ChunkEntry {
                    offset: 17,
                    len: 5,
                    num_elements: 4,
                    format_id: *b"CZX1",
                },
                ChunkEntry {
                    offset: 22,
                    len: 3,
                    num_elements: 2,
                    format_id: *b"CZF1",
                },
            ],
        };
        let mut shard = vec![0xAAu8; 25]; // frame region
        idx.append_to(&mut shard);
        (shard, idx)
    }

    #[test]
    fn roundtrip() {
        let (shard, idx) = sample();
        let back = ShardIndex::parse(&shard).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.grid(), vec![2, 2]);
        assert_eq!(back.chunk_elements(&[0, 0]), 16);
        assert_eq!(back.chunk_elements(&[1, 1]), 2);
    }

    #[test]
    fn truncated_footer() {
        let (shard, _) = sample();
        assert_eq!(ShardIndex::parse(&shard[..10]), Err(StoreError::Truncated));
        assert_eq!(ShardIndex::parse(&[]), Err(StoreError::Truncated));
        // Shaving any tail byte breaks the footer magic.
        assert_eq!(
            ShardIndex::parse(&shard[..shard.len() - 1]),
            Err(StoreError::BadMagic)
        );
    }

    #[test]
    fn bad_magics() {
        let (mut shard, _) = sample();
        let last = shard.len() - 1;
        shard[last] = b'X';
        assert_eq!(ShardIndex::parse(&shard), Err(StoreError::BadMagic));
        let (mut shard, _) = sample();
        shard[25] = b'X'; // index magic
        assert_eq!(ShardIndex::parse(&shard), Err(StoreError::BadMagic));
    }

    #[test]
    fn index_offset_out_of_bounds() {
        let (mut shard, _) = sample();
        let pos = shard.len() - FOOTER_BYTES;
        shard[pos..pos + 8].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert_eq!(
            ShardIndex::parse(&shard),
            Err(StoreError::Corrupt("index offset out of bounds"))
        );
    }

    #[test]
    fn tiny_shards_reject_index_offset() {
        // 16 bytes: a bare footer with index_offset = 0 and no room for
        // any index. A saturating bound check would let offset 0 through
        // and panic slicing the (empty) index region.
        let mut tiny = vec![0u8; 8];
        tiny.extend_from_slice(&FOOTER_MAGIC);
        assert_eq!(
            ShardIndex::parse(&tiny),
            Err(StoreError::Corrupt("index offset out of bounds"))
        );
        // 24 bytes: a valid index magic at offset 0 followed directly by
        // the footer — too short for even a minimal index, so it must be
        // rejected at step 3, before the magic is ever read.
        let mut tiny = INDEX_MAGIC.to_vec();
        tiny.extend_from_slice(&0u64.to_le_bytes());
        tiny.extend_from_slice(&FOOTER_MAGIC);
        assert_eq!(
            ShardIndex::parse(&tiny),
            Err(StoreError::Corrupt("index offset out of bounds"))
        );
    }

    #[test]
    fn oversize_shape_rejected() {
        // Claimed dims whose element-count product overflows usize must
        // be rejected, not wrapped (wraparound would let a tiny entry
        // table validate against an astronomically large claimed shape).
        let mut bytes = Vec::new();
        let io = bytes.len() as u64;
        bytes.extend_from_slice(&INDEX_MAGIC);
        bytes.push(2);
        bytes.push(0); // dtype f32
        let huge = usize::MAX as u64;
        bytes.extend_from_slice(&huge.to_le_bytes()); // shape[0]
        bytes.extend_from_slice(&huge.to_le_bytes()); // shape[1]
        bytes.extend_from_slice(&1u64.to_le_bytes()); // chunk_shape[0]
        bytes.extend_from_slice(&1u64.to_le_bytes()); // chunk_shape[1]
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&io.to_le_bytes());
        bytes.extend_from_slice(&FOOTER_MAGIC);
        assert_eq!(
            ShardIndex::parse(&bytes),
            Err(StoreError::Corrupt("element count overflow"))
        );
    }

    #[test]
    fn entry_past_payload_end() {
        let (shard, mut idx) = sample();
        idx.entries[3].len = 1000; // past index_offset
        let mut bad = shard[..25].to_vec();
        idx.append_to(&mut bad);
        assert_eq!(
            ShardIndex::parse(&bad),
            Err(StoreError::IndexOutOfBounds { chunk: 3 })
        );
    }

    #[test]
    fn overlapping_entries() {
        let (shard, mut idx) = sample();
        idx.entries[2].offset = 9; // overlaps entry 1's [10, 17)
        let mut bad = shard[..25].to_vec();
        idx.append_to(&mut bad);
        assert_eq!(
            ShardIndex::parse(&bad),
            Err(StoreError::IndexOverlap { chunk: 2 })
        );
    }

    #[test]
    fn geometry_mismatches() {
        let (shard, mut idx) = sample();
        idx.entries[1].num_elements = 99;
        let mut bad = shard[..25].to_vec();
        idx.append_to(&mut bad);
        assert_eq!(
            ShardIndex::parse(&bad),
            Err(StoreError::Corrupt("chunk element count vs geometry"))
        );

        // A zero chunk dim must be rejected; build the bytes by hand since
        // `append_to` never produces one.
        let mut bytes = vec![0u8; 4];
        let io = bytes.len() as u64;
        bytes.extend_from_slice(&INDEX_MAGIC);
        bytes.push(1);
        bytes.push(0); // dtype f32
        bytes.extend_from_slice(&3u64.to_le_bytes()); // shape
        bytes.extend_from_slice(&0u64.to_le_bytes()); // chunk_shape = 0
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&io.to_le_bytes());
        bytes.extend_from_slice(&FOOTER_MAGIC);
        assert_eq!(
            ShardIndex::parse(&bytes),
            Err(StoreError::Corrupt("zero or oversize dimension"))
        );
    }

    #[test]
    fn chunk_count_vs_grid() {
        // num_chunks field lies about the grid.
        let mut bytes = Vec::new();
        let io = bytes.len() as u64;
        bytes.extend_from_slice(&INDEX_MAGIC);
        bytes.push(1);
        bytes.push(0); // dtype f32
        bytes.extend_from_slice(&10u64.to_le_bytes()); // shape 10
        bytes.extend_from_slice(&4u64.to_le_bytes()); // chunks of 4 → 3
        bytes.extend_from_slice(&2u32.to_le_bytes()); // claims 2
        bytes.extend_from_slice(&io.to_le_bytes());
        bytes.extend_from_slice(&FOOTER_MAGIC);
        assert_eq!(
            ShardIndex::parse(&bytes),
            Err(StoreError::Corrupt("chunk count vs grid"))
        );
    }

    #[test]
    fn trailing_and_missing_index_bytes() {
        let (shard, idx) = sample();
        // Extra byte between index and footer.
        let mut long = shard[..shard.len() - FOOTER_BYTES].to_vec();
        long.push(0);
        long.extend_from_slice(&25u64.to_le_bytes());
        long.extend_from_slice(&FOOTER_MAGIC);
        assert_eq!(
            ShardIndex::parse(&long),
            Err(StoreError::Corrupt("trailing bytes in index"))
        );
        // Missing entry bytes.
        let mut short = shard[..shard.len() - FOOTER_BYTES - ENTRY_BYTES].to_vec();
        short.extend_from_slice(&25u64.to_le_bytes());
        short.extend_from_slice(&FOOTER_MAGIC);
        assert_eq!(ShardIndex::parse(&short), Err(StoreError::Truncated));
        let _ = idx;
    }

    #[test]
    fn dtype_byte_roundtrips_and_rejects_unknown() {
        // An f64 shard index survives a roundtrip intact.
        let (_, mut idx) = sample();
        idx.dtype = DType::F64;
        let mut shard = vec![0xAAu8; 25];
        idx.append_to(&mut shard);
        let back = ShardIndex::parse(&shard).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.dtype, DType::F64);
        // An unknown dtype byte must be rejected before any shape is read.
        shard[25 + 9] = 7; // the dtype byte inside the index
        assert_eq!(
            ShardIndex::parse(&shard),
            Err(StoreError::Corrupt("unknown element dtype"))
        );
    }

    #[test]
    fn bad_ndim_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&INDEX_MAGIC);
        bytes.push(9); // > MAX_DIMS
        bytes.resize(bytes.len() + 1 + 2 * 9 * 8 + 4, 0);
        let io = 0u64;
        bytes.extend_from_slice(&io.to_le_bytes());
        bytes.extend_from_slice(&FOOTER_MAGIC);
        assert_eq!(
            ShardIndex::parse(&bytes),
            Err(StoreError::Corrupt("dimensionality out of range"))
        );
    }
}
