//! `Huffman4` — four interleaved canonical-Huffman bitstreams.
//!
//! The 1-way Huffman decoder is latency-bound, not throughput-bound: each
//! table lookup's *address* depends on the bit position left by the
//! previous lookup, so decode speed is one `L1-hit + shift` dependency
//! chain, ~5–6 cycles per symbol no matter how wide the core is. The
//! classic fix (Fabian Giesen's "reading bits in far too many ways";
//! the same shape cuSZ uses across GPU warps, here across issue ports)
//! is to split the symbols round-robin across N independent bitstreams
//! and run N decoders in one loop — the chains interleave in the
//! out-of-order window and per-symbol cost drops toward the reciprocal
//! throughput of the lookup.
//!
//! N = 4 is the sweet spot for this format: 4 chains of ~5 cycles
//! already cover the ~1-cycle reciprocal throughput of a load+shift
//! chain on any x86 this targets, while the header cost is only three
//! `u32` stream boundaries (the fourth ends at the chunk). N = 8 would
//! double that header for no additional latency hiding and spill the
//! reader state out of registers.
//!
//! ## Chunk layout (`Mode::Huffman4`, wire byte 4)
//!
//! ```text
//! [128 B packed-nibble code-length table]   — same table as Mode::Huffman
//! [3 × u32 LE: end0, end1, end2]            — byte offsets, relative to
//!                                             the streams region, of the
//!                                             ends of streams 0, 1, 2
//! [stream 0][stream 1][stream 2][stream 3]  — streams region
//! ```
//!
//! Stream `s` codes symbols `raw[i]` with `i % 4 == s`, each stream
//! MSB-first with zero padding in its final partial byte, exactly like
//! the 1-way bitstream. One shared code table covers all four streams —
//! symbol statistics do not depend on `i % 4` — so the only overhead
//! versus 1-way is the 12 offset bytes plus at most 3 extra partial-byte
//! paddings.
//!
//! Decode validates in a fixed order (header size → offsets monotone and
//! in-bounds → code-length table → per-stream bitstreams), so corrupt
//! frames fail with a typed [`EntropyError`] before any stream work.

use crate::huffman::{
    assign_codes, build_lengths, parse_lens_table, push_lens_table, BitReader, DecodeTable,
    WideWriter, HUFFMAN_TABLE_BYTES,
};
use crate::{histogram, EntropyError, Tier};

/// Number of interleaved bitstreams in a `Huffman4` chunk.
pub const HUFFMAN4_STREAMS: usize = 4;

/// Fixed header of a `Huffman4` chunk: the 128-byte code-length table
/// plus three little-endian `u32` stream-end offsets.
pub const HUFFMAN4_HEADER_BYTES: usize = HUFFMAN_TABLE_BYTES + 12;

/// Append the `Huffman4` coding of `raw` (header + 4 streams) to `out`
/// **iff** it is strictly smaller than `raw`; returns whether it was
/// appended. Stream sizes are computed from the code lengths before any
/// byte is written, so a losing encode costs the histogram pass only.
pub(crate) fn encode(tier: Tier, raw: &[u8], out: &mut Vec<u8>) -> bool {
    debug_assert!(!raw.is_empty());
    // One counting pass yields both the shared frequency table and the
    // exact per-stream bit totals: the multi-lane histogram's lanes are
    // already a positional partition, so no separate length-summing
    // sweep over `raw` is needed.
    let lanes = histogram::stride4_histograms(tier, raw);
    let mut freq = [0u32; 256];
    for b in 0..256 {
        freq[b] = lanes[0][b] + lanes[1][b] + lanes[2][b] + lanes[3][b];
    }
    let mut lens = [0u8; 256];
    build_lengths(&freq, &mut lens);

    let bits: [u64; HUFFMAN4_STREAMS] = std::array::from_fn(|s| {
        lanes[s]
            .iter()
            .zip(lens.iter())
            .map(|(&f, &l)| u64::from(f) * u64::from(l))
            .sum()
    });
    let sizes: [u64; HUFFMAN4_STREAMS] = std::array::from_fn(|s| bits[s].div_ceil(8));
    let region: u64 = sizes.iter().sum();
    if HUFFMAN4_HEADER_BYTES as u64 + region >= raw.len() as u64 {
        return false;
    }

    let mark = out.len();
    out.reserve(HUFFMAN4_HEADER_BYTES + region as usize);
    push_lens_table(&lens, out);
    let mut end = 0u64;
    for &sz in sizes.iter().take(3) {
        end += sz;
        out.extend_from_slice(&(end as u32).to_le_bytes());
    }

    // One sequential branchless pass per stream. The streams MUST be
    // written in order: each `WideWriter` store may spill up to 7 zero
    // bytes past its stream's end, which is legal only because the next
    // stream (written afterwards) overwrites them — and the last stream
    // spills into 7 bytes of scratch padding truncated below. A
    // stride-4 read per pass re-touches every cache line of `raw`, but
    // chunks are L1/L2-sized and the branchless writer more than pays
    // for the extra traffic.
    let base = out.len();
    out.resize(base + region as usize + 7, 0);
    let codes = assign_codes(&lens);
    let mut start = base;
    for (s, &sz) in sizes.iter().enumerate() {
        let mut w = WideWriter::at(start);
        for &b in raw.iter().skip(s).step_by(HUFFMAN4_STREAMS) {
            w.put(lens[b as usize], codes[b as usize], out);
        }
        start += sz as usize;
        debug_assert_eq!(w.end(), start, "stream size precomputation");
    }
    out.truncate(base + region as usize);
    debug_assert!(out.len() - mark < raw.len());
    true
}

/// Decode a `Huffman4` chunk into `out` (whose length is the chunk's
/// recorded raw length). Every malformation is a typed [`EntropyError`];
/// no input panics.
pub(crate) fn decode(comp: &[u8], out: &mut [u8]) -> Result<(), EntropyError> {
    if comp.len() < HUFFMAN4_HEADER_BYTES {
        return Err(EntropyError("huffman4 header truncated"));
    }
    let region = &comp[HUFFMAN4_HEADER_BYTES..];
    let mut ends = [0usize; HUFFMAN4_STREAMS];
    for (s, end) in ends.iter_mut().take(3).enumerate() {
        let at = HUFFMAN_TABLE_BYTES + 4 * s;
        *end = u32::from_le_bytes(comp[at..at + 4].try_into().expect("header sized")) as usize;
    }
    ends[3] = region.len();
    if ends[0] > ends[1] || ends[1] > ends[2] || ends[2] > ends[3] {
        return Err(EntropyError("huffman4 stream offsets out of order"));
    }

    let (lens, nonzero) = parse_lens_table(&comp[..HUFFMAN_TABLE_BYTES])?;
    if out.is_empty() {
        return if region.is_empty() {
            Ok(())
        } else {
            Err(EntropyError("huffman trailing bytes"))
        };
    }
    if nonzero == 0 {
        return Err(EntropyError("huffman table empty"));
    }
    let tab = DecodeTable::build(&lens, out.len() >= DecodeTable::GRAFT_MIN_SYMBOLS)?;

    let n = out.len();
    let streams: [&[u8]; HUFFMAN4_STREAMS] =
        std::array::from_fn(|s| &region[if s == 0 { 0 } else { ends[s - 1] }..ends[s]]);

    // Per-stream state as scalar locals: an indexed `[BitReader; 4]`
    // keeps the whole state in memory (the compiler cannot promote an
    // array that is re-indexed each round to registers), which chains
    // the four decoders through store-to-load forwarding and erases the
    // ILP this mode exists for. `step!` is one refill + lookup + store
    // for one stream; the four expansions per round carry no data
    // dependencies on each other.
    let (bits0, bits1, bits2, bits3) = (streams[0], streams[1], streams[2], streams[3]);
    let (mut acc0, mut have0, mut next0, mut idx0) = (0u64, 0u32, 0usize, 0usize);
    let (mut acc1, mut have1, mut next1, mut idx1) = (0u64, 0u32, 0usize, 1usize);
    let (mut acc2, mut have2, mut next2, mut idx2) = (0u64, 0u32, 0usize, 2usize);
    let (mut acc3, mut have3, mut next3, mut idx3) = (0u64, 0u32, 0usize, 3usize);

    const MAX: u32 = crate::HUFFMAN_MAX_CODE_LEN;
    macro_rules! step {
        ($acc:ident, $have:ident, $next:ident, $idx:ident, $rem:ident, $bits:ident,
         $( $guard:tt )*) => {{
            if $have < MAX {
                if $next + 4 <= $bits.len() {
                    let w = u32::from_be_bytes(
                        $bits[$next..$next + 4].try_into().expect("bounds checked"),
                    );
                    $acc = ($acc << 32) | u64::from(w);
                    $next += 4;
                    $have += 32;
                } else {
                    while $have < MAX && $next < $bits.len() {
                        $acc = ($acc << 8) | u64::from($bits[$next]);
                        $next += 1;
                        $have += 8;
                    }
                }
            }
            let peek = if $have >= MAX {
                ($acc >> ($have - MAX)) as usize & (crate::huffman::TABLE_SIZE - 1)
            } else {
                (($acc << (MAX - $have)) as usize) & (crate::huffman::TABLE_SIZE - 1)
            };
            let e = tab.entry(peek);
            if e == 0 {
                return Err(EntropyError("invalid huffman code"));
            }
            let ltot = (e >> 20) & 0x1F;
            if e & (1 << 25) != 0 && ltot <= $have $( $guard )* {
                out[$idx] = e as u8;
                out[$idx + 4] = (e >> 8) as u8;
                $idx += 8;
                $rem -= 2;
                $have -= ltot;
            } else {
                let l1 = (e >> 16) & 0xF;
                if l1 > $have {
                    return Err(EntropyError("huffman bitstream truncated"));
                }
                out[$idx] = e as u8;
                $idx += 4;
                $rem -= 1;
                $have -= l1;
            }
        }};
    }

    // Fast interleaved loop: branchless refill (Giesen-style — one
    // unconditional 8-byte big-endian load per lookup, accumulator
    // left-aligned so the next bit is bit 63) and an unconditional
    // two-byte store per lookup. The refill-needed and 1-vs-2-symbol
    // branches of the careful `step!` path are data-dependent; their
    // mispredicts flush the pipeline and stall all four chains at once,
    // which is why the interleave shows no win without this. Here the
    // only per-round branches are the loop bound (predictable) and the
    // rare invalid-code exit.
    //
    // Safety of the shortcuts, per stream and round:
    // * `next + 8 ≤ len` ⇒ every loaded byte is real stream data, and
    //   `have ≥ 56 − 12 ≥ 44` after any consume, so `ltot ≤ 12 ≤ have`
    //   always — the truncation check is vacuous in this loop.
    // * `idx < n − 4` ⇒ symbols `idx` and `idx + 4` both exist, so the
    //   second store is in bounds (and the compiler can see it is, from
    //   the loop condition); for a 1-symbol entry it writes a
    //   placeholder the next store to that slot overwrites.
    // * An entry consumes `ltot` bits whether it carries one symbol or
    //   two (1-symbol entries have `ltot == l1`).
    //
    // The fast loop deliberately carries no `rem` counters: sixteen
    // mutable locals already fill the GPR file, and the position limit
    // `idx < lim` answers "≥ 2 symbols left" for free.
    macro_rules! fast_step {
        ($acc:ident, $have:ident, $next:ident, $idx:ident, $bits:ident) => {{
            let w = u64::from_be_bytes($bits[$next..$next + 8].try_into().expect("bounds checked"));
            $acc |= w >> $have;
            $next += ((63 - $have) >> 3) as usize;
            $have |= 56;
            let e = tab.entry(($acc >> (64 - MAX)) as usize);
            if e == 0 {
                return Err(EntropyError("invalid huffman code"));
            }
            let ltot = (e >> 20) & 0x1F;
            out[$idx] = e as u8;
            out[$idx + 4] = (e >> 8) as u8;
            $idx += 4 + 4 * ((e >> 25) & 1) as usize;
            $acc <<= ltot;
            $have -= ltot;
        }};
    }
    // Wide rounds first: one branchless refill buys ≥ 56 bits, and a
    // lookup consumes ≤ 12, so four lookups per stream run between
    // refills (before lookup j the stream still holds ≥ 56 − 12j ≥ 20
    // bits). This amortizes the refill and the loop conditions 4×.
    // Guards, per stream and round: `next + 8 ≤ len` covers the round's
    // single load, and `idx < n − 28` keeps every sub-lookup's
    // unconditional two-byte store in bounds (the cursor grows ≤ 8 per
    // lookup, so it is < n − 4 even before the fourth).
    macro_rules! refill {
        ($acc:ident, $have:ident, $next:ident, $bits:ident) => {{
            let w = u64::from_be_bytes($bits[$next..$next + 8].try_into().expect("bounds checked"));
            $acc |= w >> $have;
            $next += ((63 - $have) >> 3) as usize;
            $have |= 56;
        }};
    }
    macro_rules! lookup {
        ($acc:ident, $have:ident, $idx:ident) => {{
            let e = tab.entry(($acc >> (64 - MAX)) as usize);
            if e == 0 {
                return Err(EntropyError("invalid huffman code"));
            }
            let ltot = (e >> 20) & 0x1F;
            out[$idx] = e as u8;
            out[$idx + 4] = (e >> 8) as u8;
            $idx += 4 + 4 * ((e >> 25) & 1) as usize;
            $acc <<= ltot;
            $have -= ltot;
        }};
    }
    let wide = n.saturating_sub(28);
    while idx0 < wide
        && idx1 < wide
        && idx2 < wide
        && idx3 < wide
        && next0 + 8 <= bits0.len()
        && next1 + 8 <= bits1.len()
        && next2 + 8 <= bits2.len()
        && next3 + 8 <= bits3.len()
    {
        refill!(acc0, have0, next0, bits0);
        refill!(acc1, have1, next1, bits1);
        refill!(acc2, have2, next2, bits2);
        refill!(acc3, have3, next3, bits3);
        lookup!(acc0, have0, idx0);
        lookup!(acc1, have1, idx1);
        lookup!(acc2, have2, idx2);
        lookup!(acc3, have3, idx3);
        lookup!(acc0, have0, idx0);
        lookup!(acc1, have1, idx1);
        lookup!(acc2, have2, idx2);
        lookup!(acc3, have3, idx3);
        lookup!(acc0, have0, idx0);
        lookup!(acc1, have1, idx1);
        lookup!(acc2, have2, idx2);
        lookup!(acc3, have3, idx3);
        lookup!(acc0, have0, idx0);
        lookup!(acc1, have1, idx1);
        lookup!(acc2, have2, idx2);
        lookup!(acc3, have3, idx3);
    }
    let lim = n.saturating_sub(4);
    while idx0 < lim
        && idx1 < lim
        && idx2 < lim
        && idx3 < lim
        && next0 + 8 <= bits0.len()
        && next1 + 8 <= bits1.len()
        && next2 + 8 <= bits2.len()
        && next3 + 8 <= bits3.len()
    {
        fast_step!(acc0, have0, next0, idx0, bits0);
        fast_step!(acc1, have1, next1, idx1, bits1);
        fast_step!(acc2, have2, next2, idx2, bits2);
        fast_step!(acc3, have3, next3, idx3, bits3);
    }
    // Convert each left-aligned accumulator back to the low-aligned form
    // the careful tail expects. The counted bits and the consumed-bit
    // total (8·next − have) are identical in both forms, so the tail's
    // exact end-of-stream checks are unaffected. Outstanding symbol
    // counts are recovered from the positions: stream `s` still owes the
    // positions `idx, idx+4, …` below `n`.
    acc0 = if have0 > 0 { acc0 >> (64 - have0) } else { 0 };
    acc1 = if have1 > 0 { acc1 >> (64 - have1) } else { 0 };
    acc2 = if have2 > 0 { acc2 >> (64 - have2) } else { 0 };
    acc3 = if have3 > 0 { acc3 >> (64 - have3) } else { 0 };
    let mut rem0 = n.saturating_sub(idx0).div_ceil(4);
    let mut rem1 = n.saturating_sub(idx1).div_ceil(4);
    let mut rem2 = n.saturating_sub(idx2).div_ceil(4);
    let mut rem3 = n.saturating_sub(idx3).div_ceil(4);
    // Tail: remaining per-stream symbol counts differ by at most 2; the
    // two-symbol fast path now also needs `rem ≥ 2` so the final odd
    // symbol is not overshot.
    macro_rules! tail {
        ($acc:ident, $have:ident, $next:ident, $idx:ident, $rem:ident, $bits:ident) => {{
            while $rem > 0 {
                step!($acc, $have, $next, $idx, $rem, $bits, &&$rem >= 2);
            }
            let fin = BitReader {
                acc: $acc,
                have: $have,
                next: $next,
            };
            fin.finish($bits)?;
        }};
    }
    tail!(acc0, have0, next0, idx0, rem0, bits0);
    tail!(acc1, have1, next1, idx1, rem1, bits1);
    tail!(acc2, have2, next2, idx2, rem2, bits2);
    tail!(acc3, have3, next3, idx3, rem3, bits3);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(len: usize, mut seed: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 32) as u8
            })
            .collect()
    }

    fn skewed(len: usize, seed: u64) -> Vec<u8> {
        noise(len, seed)
            .into_iter()
            .map(|b| if b < 200 { 0 } else { b & 0x07 })
            .collect()
    }

    fn roundtrip(raw: &[u8]) -> Option<Vec<u8>> {
        let mut comp = Vec::new();
        if !encode(Tier::detect(), raw, &mut comp) {
            return None;
        }
        assert!(comp.len() < raw.len());
        let mut back = vec![0xA5u8; raw.len()];
        decode(&comp, &mut back).unwrap();
        assert_eq!(back, raw);
        Some(comp)
    }

    #[test]
    fn skewed_bytes_roundtrip_at_every_length_mod_4() {
        for extra in 0..4usize {
            let raw = skewed(8192 + extra, 21 + extra as u64);
            roundtrip(&raw).expect("skewed data must compress");
        }
    }

    #[test]
    fn overhead_versus_oneway_is_bounded() {
        let raw = skewed(65_536, 5);
        let four = roundtrip(&raw).unwrap();
        let mut one = Vec::new();
        assert!(crate::huffman::encode(Tier::detect(), &raw, &mut one));
        // 12 offset bytes + ≤ 3 extra partial-byte paddings.
        assert!(
            four.len() <= one.len() + 15,
            "{} vs {}",
            four.len(),
            one.len()
        );
    }

    #[test]
    fn tiny_and_degenerate_inputs() {
        // Tiny inputs lose to the 140-byte header and refuse; constant
        // input compresses enormously (~n/8 bits per stream).
        for n in 1..12usize {
            let mut comp = Vec::new();
            assert!(!encode(Tier::detect(), &vec![1u8; n], &mut comp));
            assert!(comp.is_empty());
        }
        roundtrip(&vec![200u8; 4096]).expect("constant input wins");
    }

    #[test]
    fn uniform_bytes_refuse_to_encode() {
        let raw = noise(4096, 77);
        let mut comp = Vec::new();
        assert!(!encode(Tier::detect(), &raw, &mut comp));
    }

    #[test]
    fn corruption_is_typed_on_every_prefix() {
        let raw = skewed(20_000, 9);
        let comp = roundtrip(&raw).unwrap();
        let mut out = vec![0u8; raw.len()];
        for cut in 0..comp.len() {
            assert!(
                decode(&comp[..cut], &mut out).is_err(),
                "prefix of {cut} bytes must fail"
            );
        }
        // Trailing bytes (growing any one stream) must also fail.
        let mut long = comp;
        long.push(0);
        assert!(decode(&long, &mut out).is_err());
    }

    #[test]
    fn offset_corruption_is_typed() {
        let raw = skewed(20_000, 13);
        let comp = roundtrip(&raw).unwrap();
        let mut out = vec![0u8; raw.len()];
        for at in 0..3usize {
            // Out-of-order / out-of-bounds stream ends.
            let mut bad = comp.clone();
            bad[HUFFMAN_TABLE_BYTES + 4 * at..HUFFMAN_TABLE_BYTES + 4 * at + 4]
                .copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(decode(&bad, &mut out).is_err());
            let mut bad = comp.clone();
            bad[HUFFMAN_TABLE_BYTES + 4 * at..HUFFMAN_TABLE_BYTES + 4 * at + 4]
                .copy_from_slice(&0u32.to_le_bytes());
            // Zeroing an end either reorders offsets or truncates a
            // stream — both must be typed errors (stream 0 may legally
            // be empty only when it codes zero symbols).
            assert!(decode(&bad, &mut out).is_err());
        }
    }

    #[test]
    fn padding_corruption_is_typed() {
        let raw = skewed(20_000, 17);
        let comp = roundtrip(&raw).unwrap();
        let mut out = vec![0u8; raw.len()];
        // Flip the lowest bit of each stream's final byte: if the
        // encoder left padding bits there, decode must reject it.
        let region = HUFFMAN4_HEADER_BYTES;
        let mut ends = [0usize; 4];
        for (s, end) in ends.iter_mut().take(3).enumerate() {
            let at = HUFFMAN_TABLE_BYTES + 4 * s;
            *end = u32::from_le_bytes(comp[at..at + 4].try_into().unwrap()) as usize;
        }
        ends[3] = comp.len() - region;
        let mut rejected = 0;
        for &end in &ends {
            let mut bad = comp.clone();
            bad[region + end - 1] ^= 1;
            if decode(&bad, &mut out).is_err() {
                rejected += 1;
            }
        }
        // A flipped low bit is either nonzero padding (typed) or a
        // changed final code (caught by the per-stream end checks) —
        // but a final code of trailing zeros could legally absorb it,
        // so just require that most streams reject.
        assert!(rejected >= 2, "only {rejected}/4 streams rejected");
    }

    #[test]
    fn empty_output_rules() {
        let mut header = vec![0u8; HUFFMAN4_HEADER_BYTES];
        let mut none: [u8; 0] = [];
        decode(&header, &mut none).unwrap();
        let mut one = [0u8; 1];
        assert_eq!(
            decode(&header, &mut one),
            Err(EntropyError("huffman table empty"))
        );
        header.push(0);
        let mut none: [u8; 0] = [];
        assert!(decode(&header, &mut none).is_err());
    }
}
