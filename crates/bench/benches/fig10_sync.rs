//! Fig 10 workload: the hierarchical device-wide prefix sum (Global
//! Synchronization) over block-size arrays of the four profiled datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{DeviceBuffer, DeviceSpec, Gpu};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_global_sync");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [4_096usize, 65_536] {
        let sizes: Vec<u32> = (0..n as u32).map(|i| 68 + (i % 61)).collect();
        group.bench_function(format!("exclusive_scan/{n}"), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(DeviceSpec::a100());
                let inp = gpu.h2d(&sizes);
                let out = DeviceBuffer::<u32>::zeroed(n);
                black_box(gpu_sim::scan::exclusive_scan_u32(
                    &mut gpu,
                    black_box(&inp),
                    &out,
                    "scan",
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
