//! `zero_alloc_service` — the steady-state arena API in the shape it was
//! built for: a long-running service compressing a stream of small
//! payloads (telemetry windows, MPI halo exchanges, per-timestep deltas).
//!
//! ```text
//! cargo run --release --example zero_alloc_service -- [payload-elems] [iterations]
//! ```
//!
//! One [`cuszp_core::Scratch`] arena and one output buffer serve every
//! request. The first request warms them up; after that, each
//! compress + decompress round trip touches the heap **zero** times —
//! which the installed counting allocator proves live, alongside the
//! throughput next to the allocating API on the same payloads.

use cuszp_core::{fast, Cuszp, ErrorBound, Scratch};
use std::time::Instant;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn main() {
    let mut args = std::env::args().skip(1);
    let elems: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16 * 1024 / 4); // 16 KiB payloads by default
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);

    let codec = Cuszp::new();
    // A drifting sensor-like signal; each "request" is a shifted window.
    let signal: Vec<f32> = (0..elems + iters)
        .map(|i| (i as f32 * 0.03).sin() * 25.0 + (i as f32 * 0.0011).cos() * 140.0)
        .collect();

    let mut scratch = Scratch::new();
    let mut stream = Vec::new();
    let mut restored = vec![0f32; elems];

    // Warm-up request: grows every buffer to its steady-state size.
    codec.compress_into(
        &mut scratch,
        &signal[..elems],
        ErrorBound::Rel(1e-3),
        &mut stream,
    );
    fast::decompress_into(
        cuszp_core::CompressedRef::parse(&stream).expect("own output parses"),
        &mut scratch,
        &mut restored,
    );

    // Steady state: count heap operations across every remaining request.
    let before = alloc_counter::snapshot();
    let t0 = Instant::now();
    let mut stream_bytes = 0u64;
    for w in 1..iters {
        let window = &signal[w..w + elems];
        let r = codec.compress_into(&mut scratch, window, ErrorBound::Rel(1e-3), &mut stream);
        stream_bytes += r.stream_bytes();
        fast::decompress_into(r, &mut scratch, &mut restored);
    }
    let dt = t0.elapsed().as_secs_f64();
    let delta = alloc_counter::snapshot().since(&before);

    let mb = ((iters - 1) * elems * 4) as f64 / 1e6;
    println!(
        "payload: {} elems ({} KiB)   requests: {}",
        elems,
        elems * 4 / 1024,
        iters - 1
    );
    println!(
        "round-trip throughput: {:.1} MB/s   mean ratio: {:.2}x",
        mb / dt,
        ((iters - 1) * elems * 4) as f64 / stream_bytes as f64
    );
    println!(
        "heap ops in steady state: {} allocs, {} deallocs, {} reallocs ({} requests)",
        delta.allocations,
        delta.deallocations,
        delta.reallocations,
        iters - 1
    );
    println!("arena footprint: {} KiB", scratch.capacity_bytes() / 1024);
    assert_eq!(delta.heap_ops(), 0, "steady state must not touch the heap");
    println!("zero-allocation steady state: verified");
}
