//! Fig 15 — kernel-only throughput for all four compressors.
//!
//! The contrast with Fig 13 is the paper's core message: cuSZ and cuSZx
//! have *fast kernels* (paper: cuSZx averages 161.51 / 164.40 GB/s,
//! cuSZ 46.39 / 59.44 GB/s) — their end-to-end collapse comes entirely
//! from host work and transfers. cuSZp and cuZFP have identical kernel and
//! end-to-end numbers by construction.

use super::fig13_end_to_end::{measure, render};
use super::Ctx;
use crate::report::Report;

/// Run the Fig 15 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new("fig15", "Kernel throughput (GB/s)", &ctx.out_dir);
    let cells = measure(ctx, true);
    render(&mut report, &cells, "Kernel");
    report.line(
        "\npaper: cuSZx kernels avg 161.51 (comp) / 164.40 (decomp) GB/s; \
cuSZ 46.39 / 59.44; cuSZp and cuZFP equal their end-to-end numbers \
(single kernel); cuSZp kernel throughput is >2x cuSZ's",
    );
    report.save_json(&cells);
    report.save_text();
}
