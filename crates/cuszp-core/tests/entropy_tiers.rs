//! Differential tests for the entropy SIMD tier ladder (ISSUE 10).
//!
//! The ladder's core contract: a tier selects *kernels*, never output.
//! `hybrid::encode_with_at` must emit byte-identical `CUSZPHY1` frames
//! at every [`SimdLevel`] the host supports, for the adaptive estimator
//! and for every forced mode — including the four-stream `Huffman4`
//! mode this PR adds. On top of that, two compatibility directions are
//! pinned with golden bytes:
//!
//! * **old frames, new decoder** — PR-9-era frames (checked into
//!   `tests/data/`) still parse and decode byte-for-byte;
//! * **new frames, old mode set** — a frame carrying `Huffman4` chunks
//!   misread under the previous mode ids yields a typed error, never a
//!   panic, and truncation of such a frame is caught at every prefix.

use cuszp_core::hybrid::{
    self, HybridRef, HybridScratch, Mode, DEFAULT_CHUNK_BLOCKS, HYBRID_HEADER_BYTES,
    TABLE_ENTRY_BYTES,
};
use cuszp_core::{fast, simd, CompressedRef, CuszpConfig, SimdLevel};
use proptest::prelude::*;

/// Every tier the running host can execute (the ladder clamps to the
/// detected level, so asking for more would silently re-test scalar).
fn supported_tiers() -> Vec<SimdLevel> {
    let detected = simd::detect_level();
    SimdLevel::ALL
        .into_iter()
        .filter(|&l| l <= detected)
        .collect()
}

/// Compress `data` to a plain stream, then hybrid-encode it at `level`.
fn encode_frame_at(
    plain: &[u8],
    chunk_blocks: usize,
    force: Option<Mode>,
    level: SimdLevel,
) -> Vec<u8> {
    let r = CompressedRef::parse(plain).expect("own plain stream parses");
    let mut hs = HybridScratch::new();
    let mut frame = Vec::new();
    hybrid::encode_with_at(&r, chunk_blocks, force, level, &mut hs, &mut frame);
    frame
}

fn compress_plain(data: &[f32], eb: f64) -> Vec<u8> {
    let mut scratch = fast::Scratch::new();
    let mut plain = Vec::new();
    fast::compress_into(&mut scratch, data, eb, CuszpConfig::default(), &mut plain);
    plain
}

/// Smooth, skewed data: residual planes compress well, so Huffman-style
/// modes actually run (uniform noise would collapse everything to Pass).
fn skewed_field(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.004).sin() * 8.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Frames are byte-identical across every supported tier, for the
    /// adaptive estimator and every forced mode.
    #[test]
    fn tiers_emit_identical_frames(
        data in proptest::collection::vec(
            prop_oneof![
                3 => -1.0e5f32..1.0e5,
                1 => -1.0f32..1.0,
                1 => Just(0.0f32),
            ],
            1..3000,
        ),
        chunk_blocks in prop_oneof![Just(1usize), Just(3), Just(256)],
        force in prop_oneof![
            Just(None),
            Just(Some(Mode::Pass)),
            Just(Some(Mode::Constant)),
            Just(Some(Mode::Rle)),
            Just(Some(Mode::Huffman)),
            Just(Some(Mode::Huffman4)),
        ],
    ) {
        let plain = compress_plain(&data, 0.01);
        let tiers = supported_tiers();
        let baseline = encode_frame_at(&plain, chunk_blocks, force, tiers[0]);
        for &level in &tiers[1..] {
            let frame = encode_frame_at(&plain, chunk_blocks, force, level);
            prop_assert_eq!(
                &baseline, &frame,
                "tier {} diverged from {} (force {:?})", level, tiers[0], force
            );
        }
        // And the frame actually inverts, whatever tier wrote it.
        let r = HybridRef::parse(&baseline).expect("own frame parses");
        let mut hs = HybridScratch::new();
        let mut back = Vec::new();
        hybrid::decode_stream_bytes(&r, &mut hs, &mut back).expect("own frame decodes");
        prop_assert_eq!(&back, &plain);
    }
}

/// A large skewed field drives the estimator into `Huffman4` (chunks
/// clear [`cuszp_entropy::HUFFMAN4_MIN_CHUNK`]), and the frames still
/// match across every tier byte-for-byte and invert to the plain
/// stream.
#[test]
fn adaptive_huffman4_frames_identical_across_tiers() {
    let data = skewed_field(400_000);
    let plain = compress_plain(&data, 1e-3);
    let tiers = supported_tiers();
    let baseline = encode_frame_at(&plain, DEFAULT_CHUNK_BLOCKS, None, tiers[0]);
    for &level in &tiers[1..] {
        let frame = encode_frame_at(&plain, DEFAULT_CHUNK_BLOCKS, None, level);
        assert_eq!(baseline, frame, "tier {level} diverged on the large field");
    }
    let r = HybridRef::parse(&baseline).expect("own frame parses");
    let hist = r.mode_histogram();
    assert!(
        hist[Mode::Huffman4.to_byte() as usize] > 0,
        "large skewed chunks must upgrade to Huffman4, got {hist:?}"
    );
    let mut hs = HybridScratch::new();
    let mut back = Vec::new();
    hybrid::decode_stream_bytes(&r, &mut hs, &mut back).expect("own frame decodes");
    assert_eq!(
        back, plain,
        "Huffman4 frame must invert to the plain stream"
    );
}

/// PR-9-era golden frames decode unchanged: the adaptive frame and a
/// forced-RLE frame, both written before the `Huffman4` mode existed,
/// parse and invert byte-for-byte to the golden plain stream, and their
/// mode tables read back exactly as written.
#[test]
fn pr9_golden_frames_decode_unchanged() {
    let plain: &[u8] = include_bytes!("data/pr9_plain_stream.bin");
    for (frame, want_hist) in [
        (
            &include_bytes!("data/pr9_hybrid_frame.bin")[..],
            [4usize, 4, 0, 12, 0],
        ),
        (
            &include_bytes!("data/pr9_hybrid_frame_rle.bin")[..],
            [1, 0, 19, 0, 0],
        ),
    ] {
        let r = HybridRef::parse(frame).expect("golden frame parses");
        assert_eq!(
            r.mode_histogram(),
            want_hist,
            "golden frame's mode table must read back as written"
        );
        let mut hs = HybridScratch::new();
        let mut back = Vec::new();
        hybrid::decode_stream_bytes(&r, &mut hs, &mut back).expect("golden frame decodes");
        assert_eq!(
            back, plain,
            "golden frame must invert to the golden plain stream"
        );
        // The value path agrees with the plain first-stage decoder.
        let plain_ref = CompressedRef::parse(plain).expect("golden plain stream parses");
        let mut scratch = fast::Scratch::new();
        let mut vals = vec![0f32; r.num_elements as usize];
        hybrid::decode_into(&r, &mut hs, &mut scratch, &mut vals).expect("values decode");
        let mut plain_vals = vec![0f32; r.num_elements as usize];
        fast::decompress_into(plain_ref, &mut scratch, &mut plain_vals);
        assert_eq!(vals, plain_vals);
    }
}

/// Build a frame guaranteed to carry at least one `Huffman4` chunk and
/// return it with the table index of that chunk.
fn huffman4_frame() -> (Vec<u8>, usize) {
    let data = skewed_field(8_000);
    let plain = compress_plain(&data, 1e-3);
    let frame = encode_frame_at(
        &plain,
        DEFAULT_CHUNK_BLOCKS,
        Some(Mode::Huffman4),
        SimdLevel::Scalar,
    );
    let r = HybridRef::parse(&frame).expect("own frame parses");
    let hist = r.mode_histogram();
    assert!(
        hist[Mode::Huffman4.to_byte() as usize] > 0,
        "forced Huffman4 must stick on skewed data, got {hist:?}"
    );
    let chunks = hist.iter().sum::<usize>();
    let idx = (0..chunks)
        .find(|c| frame[HYBRID_HEADER_BYTES + c * TABLE_ENTRY_BYTES] == Mode::Huffman4.to_byte())
        .expect("a Huffman4 table entry exists");
    (frame, idx)
}

/// A `Huffman4` frame misread under the old mode ids fails with a typed
/// error — never a panic, never silent success. This emulates what a
/// PR-9 decoder would do with the new frames: its mode table rejects
/// byte 4 at parse time (`UnknownHybridMode`), and even if a chunk's
/// payload were reinterpreted under an old mode id the decode is caught.
#[test]
fn huffman4_frames_fail_typed_under_old_mode_set() {
    let (frame, idx) = huffman4_frame();
    let mode_at = HYBRID_HEADER_BYTES + idx * TABLE_ENTRY_BYTES;

    for old_mode in [
        Mode::Pass.to_byte(),
        Mode::Constant.to_byte(),
        Mode::Rle.to_byte(),
        Mode::Huffman.to_byte(),
    ] {
        let mut warped = frame.clone();
        warped[mode_at] = old_mode;
        let outcome = HybridRef::parse(&warped).map(|r| {
            let mut hs = HybridScratch::new();
            let mut back = Vec::new();
            hybrid::decode_stream_bytes(&r, &mut hs, &mut back)
        });
        match outcome {
            Err(_) | Ok(Err(_)) => {}
            Ok(Ok(())) => panic!("Huffman4 payload decoded cleanly as mode {old_mode}"),
        }
    }

    // The next unassigned id is still rejected at parse time, so future
    // mode additions keep failing closed on today's decoder.
    let mut warped = frame;
    warped[mode_at] = 5;
    assert!(HybridRef::parse(&warped).is_err());
}

/// Truncation of a `Huffman4`-bearing frame is caught at parse time for
/// every strict prefix, and every single-byte corruption of the frame
/// yields a typed error or a still-consistent decode — never a panic.
#[test]
fn huffman4_frame_corruption_is_typed_on_every_prefix() {
    let (frame, _) = huffman4_frame();
    for cut in 0..frame.len() {
        assert!(
            HybridRef::parse(&frame[..cut]).is_err(),
            "prefix {cut} of {} parsed",
            frame.len()
        );
    }
    let mut hs = HybridScratch::new();
    let mut back = Vec::new();
    for pos in 0..frame.len() {
        let mut warped = frame.clone();
        warped[pos] ^= 0x41;
        if let Ok(r) = HybridRef::parse(&warped) {
            let _ = hybrid::decode_stream_bytes(&r, &mut hs, &mut back);
        }
    }
}
