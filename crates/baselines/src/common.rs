//! The uniform compressor interface the experiment harness drives, plus
//! the cuSZp adapter.

use cuszp_core::{Cuszp, CuszpConfig};
use gpu_sim::{DeviceBuffer, Gpu};
use std::any::Any;

/// An opaque compressed stream held by a [`Compressor`] implementation.
pub trait Stream: Any {
    /// Compressed size in bytes (the CR numerator's denominator).
    fn stream_bytes(&self) -> u64;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
}

/// Which of the four evaluated compressors an object implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressorKind {
    /// This paper's contribution.
    Cuszp,
    /// The cuSZ-like baseline.
    Cusz,
    /// The cuSZx-like baseline.
    Cuszx,
    /// The cuZFP-like baseline.
    Cuzfp,
}

impl CompressorKind {
    /// Paper display name.
    pub fn name(&self) -> &'static str {
        match self {
            CompressorKind::Cuszp => "cuSZp",
            CompressorKind::Cusz => "cuSZ",
            CompressorKind::Cuszx => "cuSZx",
            CompressorKind::Cuzfp => "cuZFP",
        }
    }
}

/// A GPU lossy compressor as the harness sees it: full pipelines starting
/// and ending with device-resident data, every kernel / host-compute /
/// PCIe event charged to the [`Gpu`] timeline.
pub trait Compressor {
    /// Which compressor this is.
    fn kind(&self) -> CompressorKind;

    /// True for error-bounded compressors (`eb` is honoured); false for
    /// fixed-rate ones (`eb` is ignored, as with cuZFP).
    fn is_error_bounded(&self) -> bool;

    /// Run the complete compression pipeline. `shape` gives the field's
    /// logical dimensions (multi-dimensional predictors/transforms use it;
    /// block-wise 1-D designs ignore it). `eb` is the absolute bound.
    fn compress(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<f32>,
        shape: &[usize],
        eb: f64,
    ) -> Box<dyn Stream>;

    /// Run the complete decompression pipeline back to device memory.
    fn decompress(&self, gpu: &mut Gpu, stream: &dyn Stream) -> DeviceBuffer<f32>;
}

/// cuSZp exposed through the uniform interface (single fused kernel per
/// direction; see `cuszp-core`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CuszpAdapter {
    codec: Cuszp,
}

impl CuszpAdapter {
    /// Adapter with the paper-default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adapter with a custom configuration (ablations).
    pub fn with_config(config: CuszpConfig) -> Self {
        CuszpAdapter {
            codec: Cuszp::with_config(config),
        }
    }
}

impl Stream for cuszp_core::DeviceCompressed {
    fn stream_bytes(&self) -> u64 {
        self.stream_bytes()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Compressor for CuszpAdapter {
    fn kind(&self) -> CompressorKind {
        CompressorKind::Cuszp
    }

    fn is_error_bounded(&self) -> bool {
        true
    }

    fn compress(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<f32>,
        _shape: &[usize],
        eb: f64,
    ) -> Box<dyn Stream> {
        Box::new(self.codec.compress_device(gpu, input, eb))
    }

    fn decompress(&self, gpu: &mut Gpu, stream: &dyn Stream) -> DeviceBuffer<f32> {
        let dc = stream
            .as_any()
            .downcast_ref::<cuszp_core::DeviceCompressed>()
            .expect("stream produced by a different compressor");
        self.codec.decompress_device(gpu, dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn adapter_roundtrip() {
        let data: Vec<f32> = (0..4000).map(|i| (i as f32 * 0.01).sin() * 10.0).collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        let comp = CuszpAdapter::new();
        assert_eq!(comp.kind().name(), "cuSZp");
        assert!(comp.is_error_bounded());
        let stream = comp.compress(&mut gpu, &input, &[4000], 0.01);
        assert!(stream.stream_bytes() > 0);
        assert!(stream.stream_bytes() < 16000);
        let out = comp.decompress(&mut gpu, stream.as_ref());
        let recon = gpu.d2h(&out);
        for (&d, &r) in data.iter().zip(&recon) {
            assert!(
                (d as f64 - r as f64).abs()
                    <= 0.01 * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7
            );
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(CompressorKind::Cusz.name(), "cuSZ");
        assert_eq!(CompressorKind::Cuszx.name(), "cuSZx");
        assert_eq!(CompressorKind::Cuzfp.name(), "cuZFP");
    }
}
