//! Pipeline measurement: run one compressor over one field and collect the
//! paper's metrics (end-to-end + kernel throughput, breakdowns, CR,
//! quality).
//!
//! Measurement methodology mirrors §2.2/§5.1.3: the clock starts with the
//! original data already resident in GPU memory and stops when the
//! compressed (resp. reconstructed) data is back in GPU memory, so the
//! initial H2D upload is *not* part of either window. Kernel throughput
//! counts kernel time only.

use baselines::Compressor;
use cuszp_core::ErrorBound;
use datasets::Field;
use gpu_sim::{Breakdown, DeviceSpec, Gpu};
use serde::{Deserialize, Serialize};

/// Everything one pipeline run yields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Compressor display name.
    pub compressor: String,
    /// Field name.
    pub field: String,
    /// Absolute error bound used (0 for fixed-rate compressors).
    pub eb_abs: f64,
    /// Compressed bytes.
    pub compressed_bytes: u64,
    /// Compression ratio.
    pub ratio: f64,
    /// Bits per value in the compressed stream.
    pub bit_rate: f64,
    /// End-to-end compression throughput, GB/s.
    pub comp_e2e_gbps: f64,
    /// End-to-end decompression throughput, GB/s.
    pub decomp_e2e_gbps: f64,
    /// Kernel-only compression throughput, GB/s.
    pub comp_kernel_gbps: f64,
    /// Kernel-only decompression throughput, GB/s.
    pub decomp_kernel_gbps: f64,
    /// Compression-window breakdown (GPU/CPU/Memcpy + per-step).
    pub comp_breakdown: Breakdown,
    /// Decompression-window breakdown.
    pub decomp_breakdown: Breakdown,
    /// PSNR of the reconstruction, dB.
    pub psnr: f64,
    /// Max absolute error of the reconstruction.
    pub max_abs_error: f64,
    /// The reconstruction (for further quality analysis); dropped from
    /// JSON output.
    #[serde(skip)]
    pub reconstruction: Vec<f32>,
}

/// Resolve an [`ErrorBound`] against a field's value range.
pub fn resolve_bound(field: &Field, bound: ErrorBound) -> f64 {
    bound.absolute(field.value_range() as f64)
}

/// Run `comp` over `field` on a fresh device of `spec` and measure
/// everything. `eb_abs` is the absolute bound (ignored by fixed-rate
/// compressors but recorded).
pub fn measure_pipeline(
    spec: &DeviceSpec,
    comp: &dyn Compressor,
    field: &Field,
    eb_abs: f64,
) -> Measurement {
    let mut gpu = Gpu::new(spec.clone());
    let input = gpu.h2d(&field.data);
    let bytes = field.size_bytes();

    // Compression window.
    gpu.reset_timeline();
    let stream = comp.compress(&mut gpu, &input, &field.shape, eb_abs);
    let comp_e2e = gpu.end_to_end_throughput_gbps(bytes);
    let comp_kernel = gpu.kernel_throughput_gbps(bytes);
    let comp_breakdown = gpu.breakdown();
    let compressed_bytes = stream.stream_bytes();

    // Decompression window.
    gpu.reset_timeline();
    let out = comp.decompress(&mut gpu, stream.as_ref());
    let decomp_e2e = gpu.end_to_end_throughput_gbps(bytes);
    let decomp_kernel = gpu.kernel_throughput_gbps(bytes);
    let decomp_breakdown = gpu.breakdown();

    let reconstruction = gpu.d2h(&out);
    let stats = metrics::ErrorStats::compute(&field.data, &reconstruction);
    let cr = metrics::CompressionStats::for_f32(field.len(), compressed_bytes);

    Measurement {
        compressor: comp.kind().name().to_string(),
        field: field.name.clone(),
        eb_abs,
        compressed_bytes,
        ratio: cr.ratio(),
        bit_rate: cr.bit_rate(),
        comp_e2e_gbps: comp_e2e,
        decomp_e2e_gbps: decomp_e2e,
        comp_kernel_gbps: comp_kernel,
        decomp_kernel_gbps: decomp_kernel,
        comp_breakdown,
        decomp_breakdown,
        psnr: stats.psnr,
        max_abs_error: stats.max_abs_error,
        reconstruction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::common::CuszpAdapter;

    #[test]
    fn measurement_is_complete() {
        let field = datasets::nyx::field("velocity_x", &[12, 12, 12]);
        let comp = CuszpAdapter::new();
        let eb = resolve_bound(&field, ErrorBound::Rel(1e-2));
        let m = measure_pipeline(&DeviceSpec::a100(), &comp, &field, eb);
        assert!(m.comp_e2e_gbps > 0.0);
        assert!(m.decomp_e2e_gbps > 0.0);
        assert!(m.ratio > 1.0);
        assert!(m.psnr > 20.0);
        assert!(m.max_abs_error <= eb * (1.0 + 1e-6));
        assert_eq!(m.reconstruction.len(), field.len());
        // Single-kernel design: e2e == kernel throughput.
        assert!((m.comp_e2e_gbps - m.comp_kernel_gbps).abs() / m.comp_kernel_gbps < 1e-9);
    }

    #[test]
    fn rel_bound_resolution_uses_range() {
        let field = Field::new("x", vec![2], vec![0.0, 100.0]);
        assert!((resolve_bound(&field, ErrorBound::Rel(1e-2)) - 1.0).abs() < 1e-9);
    }
}
