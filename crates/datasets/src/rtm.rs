//! RTM stand-in (reverse-time-migration seismic wavefields, 3-D
//! 449×449×235, 36 snapshot fields).
//!
//! A forward-modelled RTM snapshot at time `t` is a band-limited wavefront
//! expanding from the source, plus boundary reflections and diffractor
//! scatter that progressively fill the volume. Early snapshots are mostly
//! exact zeros (⇒ many cuSZp zero blocks ⇒ very high CR and throughput);
//! late snapshots are reverberation-filled with decayed amplitude. That
//! exact progression is what Fig 22 measures (throughput falls from ~150
//! to ~105 GB/s across timesteps) and what gives RTM its Table 3 spread
//! (max CR 127.59: an almost-empty early snapshot).

use crate::field::Field;

/// The simulated shot runs this many timesteps (paper §6: 3600).
pub const TOTAL_TIMESTEPS: usize = 3600;

/// Ricker wavelet (the standard seismic source signature).
fn ricker(tau: f64, freq: f64) -> f64 {
    let a = (std::f64::consts::PI * freq * tau).powi(2);
    (1.0 - 2.0 * a) * (-a).exp()
}

/// Generate the wavefield snapshot at timestep `t` (0..=[`TOTAL_TIMESTEPS`])
/// on a grid of `shape`.
pub fn snapshot(t: usize, shape: &[usize]) -> Field {
    assert_eq!(shape.len(), 3, "RTM snapshots are 3-D");
    let (nz, ny, nx) = (shape[0], shape[1], shape[2]);
    let mut data = vec![0.0f32; nz * ny * nx];

    let progress = t as f64 / TOTAL_TIMESTEPS as f64; // 0..1
                                                      // Primary front radius sweeps past the far corner by t ≈ 60% of the run.
    let front_r = progress * 1.8;
    // Source amplitude decays with propagation (value range shrinks with t,
    // per the paper's explanation of Fig 22).
    let amp0 = 1.0 / (1.0 + 3.0 * progress);
    let freq = 6.0; // wavelet dominant frequency in domain units
    let wavelength = 1.0 / freq;

    // Primary source at the surface centre + mirror sources for boundary
    // reflections (activated once the primary front reaches a boundary).
    let mut sources: Vec<([f64; 3], f64, f64)> = vec![([0.0, 0.5, 0.5], front_r, amp0)];
    if front_r > 1.0 {
        let refl_r = front_r - 1.0;
        let refl_amp = amp0 * 0.55;
        sources.push(([2.0, 0.5, 0.5], refl_r + 1.0, refl_amp)); // bottom mirror
        sources.push(([0.0, -1.0, 0.5], refl_r + 1.0, refl_amp)); // side mirrors
        sources.push(([0.0, 2.0, 0.5], refl_r + 1.0, refl_amp));
        sources.push(([0.0, 0.5, -1.0], refl_r + 1.0, refl_amp));
        sources.push(([0.0, 0.5, 2.0], refl_r + 1.0, refl_amp));
    }
    // Point diffractors re-radiate once the front passes them, filling the
    // volume with coda at later timesteps.
    let diffractors: [[f64; 3]; 5] = [
        [0.35, 0.25, 0.6],
        [0.55, 0.7, 0.3],
        [0.75, 0.45, 0.75],
        [0.25, 0.8, 0.8],
        [0.65, 0.2, 0.2],
    ];
    for d in diffractors {
        let dist_from_src = ((d[0]).powi(2) + (d[1] - 0.5).powi(2) + (d[2] - 0.5).powi(2)).sqrt();
        if front_r > dist_from_src {
            sources.push((d, front_r - dist_from_src, amp0 * 0.35));
        }
    }

    let band = 1.5 * wavelength; // support half-width of the wavelet shell
    for z in 0..nz {
        let pz = z as f64 / nz as f64;
        for y in 0..ny {
            let py = y as f64 / ny as f64;
            for x in 0..nx {
                let px = x as f64 / nx as f64;
                let mut acc = 0.0f64;
                for (c, r, a) in &sources {
                    let dist =
                        ((pz - c[0]).powi(2) + (py - c[1]).powi(2) + (px - c[2]).powi(2)).sqrt();
                    let tau = dist - r;
                    if tau.abs() < band {
                        // Geometric spreading ∝ 1/r.
                        acc += a * ricker(tau, freq) / (0.15 + dist);
                    }
                }
                data[(z * ny + y) * nx + x] = acc as f32;
            }
        }
    }
    Field::new(format!("snapshot_{t}"), shape.to_vec(), data)
}

/// Generate the paper's 36 snapshot fields (1 per 100 timesteps).
pub fn generate(shape: &[usize]) -> Vec<Field> {
    (1..=36).map(|i| snapshot(i * 100, shape)).collect()
}

/// Fraction of exactly-zero values in a snapshot (drives Fig 22's shape).
pub fn zero_fraction(f: &Field) -> f64 {
    f.data.iter().filter(|&&v| v == 0.0).count() as f64 / f.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: [usize; 3] = [16, 16, 16];

    #[test]
    fn early_snapshots_are_sparse() {
        let early = snapshot(200, &SHAPE);
        let late = snapshot(3200, &SHAPE);
        assert!(
            zero_fraction(&early) > zero_fraction(&late),
            "early {} vs late {}",
            zero_fraction(&early),
            zero_fraction(&late)
        );
        assert!(zero_fraction(&early) > 0.5);
    }

    #[test]
    fn amplitude_decays_with_time() {
        let early = snapshot(400, &[24, 24, 24]);
        let late = snapshot(3400, &[24, 24, 24]);
        assert!(early.value_range() > late.value_range());
    }

    #[test]
    fn thirty_six_snapshots() {
        let fields = generate(&[6, 6, 6]);
        assert_eq!(fields.len(), 36);
        assert_eq!(fields[0].name, "snapshot_100");
        assert_eq!(fields[35].name, "snapshot_3600");
    }

    #[test]
    fn deterministic() {
        assert_eq!(snapshot(1000, &SHAPE), snapshot(1000, &SHAPE));
    }

    #[test]
    fn wavefront_is_signed() {
        let f = snapshot(1500, &SHAPE);
        assert!(f.data.iter().any(|&v| v > 0.0));
        assert!(f.data.iter().any(|&v| v < 0.0));
    }

    #[test]
    fn ricker_peak_at_zero() {
        assert!((ricker(0.0, 6.0) - 1.0).abs() < 1e-12);
        assert!(ricker(0.05, 6.0) < 1.0);
    }
}
