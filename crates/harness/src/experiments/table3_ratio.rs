//! Table 3 — compression ratios of the three error-bounded compressors
//! over six datasets × four REL bounds, reported as min/max/avg across
//! fields.
//!
//! The paper's shape claims this reproduces:
//! * cuSZp achieves the highest average CR in most cells (16/24 in the
//!   paper) and its max CR saturates at ~128 on sparse fields (the
//!   1-byte-per-zero-block ceiling).
//! * cuSZx wins HACC at REL 1e-1/1e-2 and CESM-ATM (wide value ranges ⇒
//!   constant blocks), but collapses at tight bounds (no predictor).
//! * cuSZ sits in a narrow 8–31 band (entropy-coding floor ≈ 1 bit/value,
//!   codebook + outlier overhead).
//! * Every compressor's CR decreases monotonically as the bound tightens.
//!
//! A fourth, informational compressor — `cuSZp-hybrid`, the opt-in
//! `CUSZPHY1` entropy second stage — is measured alongside but excluded
//! from the win tallies, which compare the paper's fixed-length
//! compressors.

use super::Ctx;
use crate::error_bounded_compressors;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use cuszp_core::ErrorBound;
use datasets::{generate_subset, DatasetId};
use gpu_sim::DeviceSpec;
use metrics::rate::RatioSummary;
use serde::Serialize;

/// Paper Table 3 average CRs, indexed `[compressor][dataset][bound]` with
/// bounds ordered 1e-1, 1e-2, 1e-3, 1e-4 and datasets in Table 2 order.
/// `None` marks the paper's "n/a" (cuSZ crashes).
pub const PAPER_AVG: [[[Option<f64>; 4]; 6]; 3] = [
    // cuSZp
    [
        [Some(75.45), Some(38.71), Some(22.32), Some(14.36)],
        [Some(99.11), Some(66.74), Some(38.46), Some(22.15)],
        [Some(91.73), Some(17.35), Some(8.08), Some(4.68)],
        [Some(108.48), Some(67.06), Some(42.40), Some(27.56)],
        [Some(34.30), Some(7.63), Some(4.31), Some(2.96)],
        [Some(27.40), Some(14.21), Some(9.82), Some(7.35)],
    ],
    // cuSZ
    [
        [Some(28.73), Some(22.53), Some(15.97), Some(8.36)],
        [Some(31.47), Some(30.22), None, Some(16.22)],
        [Some(21.41), Some(14.53), Some(10.98), None],
        [Some(30.45), None, None, Some(11.63)],
        [Some(30.81), None, None, None],
        [Some(24.63), Some(22.89), Some(18.48), Some(12.47)],
    ],
    // cuSZx
    [
        [Some(74.19), Some(21.67), Some(13.47), Some(10.29)],
        [Some(110.74), Some(61.40), Some(30.37), Some(15.12)],
        [Some(47.40), Some(5.88), Some(3.34), Some(2.26)],
        [Some(76.69), Some(37.51), Some(23.74), Some(18.46)],
        [Some(70.41), Some(44.37), Some(3.00), Some(2.13)],
        [Some(74.30), Some(31.85), Some(24.24), Some(22.57)],
    ],
];

/// One Table 3 cell.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Compressor name.
    pub compressor: String,
    /// Dataset name.
    pub dataset: String,
    /// REL bound.
    pub rel: f64,
    /// Min CR across fields.
    pub min: f64,
    /// Max CR.
    pub max: f64,
    /// Mean CR.
    pub avg: f64,
    /// The paper's reported average for this cell (None = n/a).
    pub paper_avg: Option<f64>,
}

/// Measure the full Table 3 grid.
pub fn measure(ctx: &Ctx) -> Vec<Cell> {
    let spec = DeviceSpec::a100();
    let bounds = ErrorBound::paper_rel_set();
    let mut cells = Vec::new();
    for (di, id) in DatasetId::all().into_iter().enumerate() {
        let fields = generate_subset(id, ctx.scale, ctx.max_fields);
        for (ci, comp) in error_bounded_compressors().iter().enumerate() {
            for (bi, bound) in bounds.iter().enumerate() {
                let rel = match bound {
                    ErrorBound::Rel(r) => *r,
                    ErrorBound::Abs(_) => unreachable!("paper set is REL"),
                };
                let ratios: Vec<f64> = fields
                    .iter()
                    .map(|field| {
                        let eb = bound.absolute(field.value_range() as f64);
                        measure_pipeline(&spec, comp.as_ref(), field, eb).ratio
                    })
                    .collect();
                let summary = RatioSummary::of(&ratios);
                cells.push(Cell {
                    compressor: comp.kind().name().to_string(),
                    dataset: id.name().to_string(),
                    rel,
                    min: summary.min,
                    max: summary.max,
                    avg: summary.avg,
                    paper_avg: PAPER_AVG[ci][di][bi],
                });
            }
        }
        // The opt-in CUSZPHY1 second stage, as shipped (whole-frame
        // fallback keeps it >= plain cuSZp). Informational cells only:
        // excluded from the win tallies below, since the paper's Table 3
        // compares the fixed-length compressors.
        let hybrid_codec = cuszp_core::Cuszp::with_config(cuszp_core::CuszpConfig {
            hybrid: true,
            ..cuszp_core::CuszpConfig::default()
        });
        for bound in bounds.iter() {
            let rel = match bound {
                ErrorBound::Rel(r) => *r,
                ErrorBound::Abs(_) => unreachable!("paper set is REL"),
            };
            let ratios: Vec<f64> = fields
                .iter()
                .map(|field| {
                    let eb = bound.absolute(field.value_range() as f64);
                    let stream = hybrid_codec.compress_serialized(&field.data, ErrorBound::Abs(eb));
                    field.size_bytes() as f64 / stream.len() as f64
                })
                .collect();
            let summary = RatioSummary::of(&ratios);
            cells.push(Cell {
                compressor: "cuSZp-hybrid".to_string(),
                dataset: id.name().to_string(),
                rel,
                min: summary.min,
                max: summary.max,
                avg: summary.avg,
                paper_avg: None,
            });
        }
    }
    cells
}

/// Run the Table 3 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "table3",
        "Compression ratios (min/max/avg), error-bounded compressors",
        &ctx.out_dir,
    );
    let cells = measure(ctx);

    for comp in ["cuSZp", "cuSZp-hybrid", "cuSZ", "cuSZx"] {
        report.line(&format!("\n{comp}"));
        let mut rows = Vec::new();
        for id in DatasetId::all() {
            for rel in [1e-1, 1e-2, 1e-3, 1e-4] {
                let c = cells
                    .iter()
                    .find(|c| c.compressor == comp && c.dataset == id.name() && c.rel == rel)
                    .expect("cell measured");
                rows.push(vec![
                    id.name().to_string(),
                    format!("{rel:.0e}"),
                    f2(c.min),
                    f2(c.max),
                    f2(c.avg),
                    c.paper_avg.map_or("n/a".into(), f2),
                ]);
            }
        }
        report.table(&["dataset", "REL", "min", "max", "avg", "paper-avg"], &rows);
    }

    // Who wins each (dataset, bound) cell on average CR?
    let mut cuszp_wins = 0;
    let mut total = 0;
    for id in DatasetId::all() {
        for rel in [1e-1, 1e-2, 1e-3, 1e-4] {
            let best = cells
                .iter()
                .filter(|c| {
                    c.dataset == id.name() && c.rel == rel && c.compressor != "cuSZp-hybrid"
                })
                .max_by(|a, b| a.avg.partial_cmp(&b.avg).expect("finite"))
                .expect("cells exist");
            if best.compressor == "cuSZp" {
                cuszp_wins += 1;
            }
            total += 1;
        }
    }
    report.line(&format!(
        "\ncuSZp has the best average CR in {cuszp_wins}/{total} cells (paper: 16/24)"
    ));

    // Second tally: the paper's cuSZ artifact *crashed* on 7 of the 24
    // cells ("n/a" in Table 3, a codebook-storage bug its authors
    // confirmed); our from-scratch cuSZ does not crash and its
    // near-entropy Huffman is stronger than the 2021 artifact. Scoring
    // only against configurations the paper's cuSZ survived:
    let mut wins_vs_surviving = 0;
    for id in DatasetId::all() {
        for (bi, rel) in [1e-1, 1e-2, 1e-3, 1e-4].into_iter().enumerate() {
            let di = DatasetId::all()
                .iter()
                .position(|d| d.name() == id.name())
                .expect("dataset indexed");
            let cusz_survived = PAPER_AVG[1][di][bi].is_some();
            let best = cells
                .iter()
                .filter(|c| {
                    c.dataset == id.name()
                        && c.rel == rel
                        && c.compressor != "cuSZp-hybrid"
                        && (cusz_survived || c.compressor != "cuSZ")
                })
                .max_by(|a, b| a.avg.partial_cmp(&b.avg).expect("finite"))
                .expect("cells exist");
            if best.compressor == "cuSZp" {
                wins_vs_surviving += 1;
            }
        }
    }
    report.line(&format!(
        "counting cuSZ only where the paper's artifact survived: cuSZp best in \
{wins_vs_surviving}/{total} cells"
    ));
    report.save_json(&cells);
    report.save_text();
}
