//! cuSZx-like compressor: constant-block flush + fixed-length encoding,
//! with **CPU-side global synchronization** (paper refs \[39\], §5.3).
//!
//! Design reproduced from the paper's description:
//!
//! * The dataset is split into blocks of 128 values. If a block's value
//!   range fits within the bound (`(max − min) / 2 ≤ eb`), the whole block
//!   is flushed to its **range midpoint** and stored as one `f32` — the
//!   "constant block" design that inflates CRs on wide-range data under
//!   loose REL bounds (Table 3, HACC 1e-1/1e-2, CESM-ATM) and causes the
//!   horizontal stripe artifacts of Fig 16.
//! * Non-constant blocks quantize against the block midpoint and store a
//!   sign map plus fixed-length bit planes, nibble-aligned for SZx's
//!   byte-level operations (no Lorenzo, coarser widths — why cuSZp beats
//!   it at tight bounds).
//! * The per-block offsets are resolved **on the host**: sizes are copied
//!   D2H, prefix-summed by the CPU, and copied back before a compaction
//!   kernel — plus CPU pre/post-processing. These round-trips are exactly
//!   why its end-to-end throughput collapses to ~2 GB/s (Fig 13/14) while
//!   its kernel throughput stays high (Fig 15).

use crate::common::{Compressor, CompressorKind, Stream};
use cuszp_core::bitshuffle::{shuffle, unshuffle};
use gpu_sim::{DeviceBuffer, Gpu, LaunchConfig};
use std::any::Any;

/// SZx block length (the reference uses 128).
pub const BLOCK: usize = 128;
/// Descriptor value marking a constant block.
pub const CONSTANT: u8 = 0xFF;
/// Worst-case per-block payload: mid (4) + signs (16) + 64 planes × 16.
const MAX_BLOCK_BYTES: usize = 4 + BLOCK / 8 + 64 * BLOCK / 8;

/// Step labels for the breakdown profiler.
pub const STEP_STATS: &str = "block-stats";
/// Encode step label.
pub const STEP_ENC: &str = "encode";
/// Compaction step label.
pub const STEP_COMPACT: &str = "compact";
/// Decode step label.
pub const STEP_DEC: &str = "decode";

/// Device-resident cuSZx stream.
pub struct CuszxStream {
    /// Per-block descriptor: [`CONSTANT`] or the fixed length `F ∈ [1,64]`.
    pub descriptors: DeviceBuffer<u8>,
    /// Compacted payload.
    pub payload: DeviceBuffer<u8>,
    /// Valid payload bytes.
    pub payload_len: usize,
    /// Original element count.
    pub num_elements: usize,
    /// Absolute error bound used.
    pub eb: f64,
}

impl CuszxStream {
    /// Payload bytes a block with descriptor `d` occupies.
    pub fn block_bytes(d: u8) -> usize {
        if d == CONSTANT {
            4
        } else {
            4 + BLOCK / 8 + d as usize * BLOCK / 8
        }
    }
}

impl Stream for CuszxStream {
    fn stream_bytes(&self) -> u64 {
        (self.descriptors.len() + self.payload_len) as u64
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The cuSZx-like compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuszxLike;

impl CuszxLike {
    /// Construct with the reference block size.
    pub fn new() -> Self {
        CuszxLike
    }
}

fn encode_block(block: &[f32], eb: f64, scratch: &mut Vec<u8>) -> u8 {
    // Block statistics.
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in block {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let mid = (lo as f64 + hi as f64) / 2.0;
    scratch.clear();
    if (hi as f64 - lo as f64) / 2.0 <= eb {
        // Constant block: every value is replaced by the midpoint.
        scratch.extend_from_slice(&(mid as f32).to_le_bytes());
        return CONSTANT;
    }
    // Non-constant: quantize against the midpoint, fixed-length encode.
    let mut resid = [0i64; BLOCK];
    for (i, &v) in block.iter().enumerate() {
        resid[i] = ((v as f64 - mid) / (2.0 * eb)).round() as i64;
    }
    // Tail-short blocks: remaining residuals stay zero.
    let mut max_abs = 0u64;
    for &r in resid.iter() {
        max_abs = max_abs.max(r.unsigned_abs());
    }
    let f = (64 - max_abs.leading_zeros()) as u8;
    // SZx's "lightweight bit-level operations" work at nibble/byte
    // granularity for speed, so the per-value width is rounded up to a
    // multiple of 4 bits — the ratio cost of its ultra-fast kernel design
    // (visible in Table 3: cuSZx trails cuSZp at tight bounds despite the
    // same block machinery).
    let f = f.div_ceil(4).max(1) * 4;
    scratch.extend_from_slice(&(mid as f32).to_le_bytes());
    let mut signs = [0u8; BLOCK / 8];
    for (e, &r) in resid.iter().enumerate() {
        if r < 0 {
            signs[e / 8] |= 1 << (e % 8);
        }
    }
    scratch.extend_from_slice(&signs);
    let abs_vals: Vec<u64> = resid.iter().map(|r| r.unsigned_abs()).collect();
    let plane_off = scratch.len();
    scratch.resize(plane_off + f as usize * BLOCK / 8, 0);
    shuffle(&abs_vals, f, &mut scratch[plane_off..]);
    f
}

fn decode_block(
    descriptor: u8,
    bytes: &[u8],
    eb: f64,
    abs_vals: &mut [u64; BLOCK],
    out: &mut [f32],
) {
    let mid = f32::from_le_bytes(bytes[..4].try_into().expect("block too short")) as f64;
    if descriptor == CONSTANT {
        for v in out.iter_mut() {
            *v = mid as f32;
        }
        return;
    }
    let f = descriptor;
    let signs = &bytes[4..4 + BLOCK / 8];
    abs_vals.fill(0);
    unshuffle(&bytes[4 + BLOCK / 8..], f, abs_vals);
    for (e, v) in out.iter_mut().enumerate() {
        let neg = signs[e / 8] & (1 << (e % 8)) != 0;
        let q = abs_vals[e] as i64;
        // Wrapping: an absolute value of 2^63 (a saturated ±Inf residual,
        // or hostile payload bits) must negate to i64::MIN, not panic.
        let q = if neg { q.wrapping_neg() } else { q };
        *v = (mid + q as f64 * 2.0 * eb) as f32;
    }
}

impl Compressor for CuszxLike {
    fn kind(&self) -> CompressorKind {
        CompressorKind::Cuszx
    }

    fn is_error_bounded(&self) -> bool {
        true
    }

    fn compress(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<f32>,
        _shape: &[usize],
        eb: f64,
    ) -> Box<dyn Stream> {
        assert!(eb.is_finite() && eb > 0.0, "bound must be positive");
        let n = input.len();
        let num_blocks = n.div_ceil(BLOCK);

        // CPU preprocessing (radius/config setup in the reference).
        gpu.cpu_work("cuszx-preprocess", (num_blocks as u64) * 16 + 20_000);

        let descriptors = gpu.alloc::<u8>(num_blocks);
        let scratch = gpu.alloc::<u8>(num_blocks * MAX_BLOCK_BYTES);

        // Kernel 1: per-block stats + encode into worst-case scratch slots.
        gpu.launch("cuszx_encode", LaunchConfig::cover(num_blocks, 32), |ctx| {
            let inp = input.slice();
            let desc = descriptors.slice();
            let scr = scratch.slice();
            let b0 = ctx.block * 32;
            let mut buf = Vec::with_capacity(MAX_BLOCK_BYTES);
            let mut block = [0.0f32; BLOCK];
            let mut elems = 0usize;
            let mut payload = 0u64;
            for b in b0..(b0 + 32).min(num_blocks) {
                let start = b * BLOCK;
                let end = (start + BLOCK).min(n);
                for (k, v) in block.iter_mut().enumerate() {
                    *v = if start + k < end {
                        inp.get(start + k)
                    } else {
                        0.0
                    };
                }
                // Tail blocks re-use value 0 padding; midpoint math still
                // bounds the real elements.
                let d = encode_block(&block[..], eb, &mut buf);
                desc.set(b, d);
                scr.write_slice(b * MAX_BLOCK_BYTES, &buf);
                elems += end - start;
                payload += buf.len() as u64;
            }
            ctx.read(STEP_STATS, (elems * 4) as u64);
            ctx.ops(STEP_STATS, (elems * 3) as u64);
            ctx.ops(STEP_ENC, (elems * 10) as u64);
            ctx.write_strided(STEP_ENC, payload);
            ctx.write(STEP_ENC, 32.min(num_blocks.saturating_sub(b0)) as u64);
        });

        // CPU global synchronization + concatenation (paper §4.3: "Existing
        // GPU lossy compressors, such as cuSZx, generally perform this step
        // in the CPU"): the per-block encodings are copied D2H through
        // pageable memory, the host prefix-sums the sizes and concatenates,
        // and the final stream is copied back H2D.
        let desc_host = gpu.d2h(&descriptors);
        let payload_len: usize = desc_host.iter().map(|&d| CuszxStream::block_bytes(d)).sum();
        // Charge the pageable D2H of the used block bytes (the scratch is
        // block-strided on device; the reference copies exactly the used
        // prefix of each block slot).
        let _staged: Vec<u8> = gpu.d2h_prefix_pageable(&scratch, payload_len.min(scratch.len()));
        // Host-side concatenation into the final stream layout.
        let scr = scratch.slice();
        let mut payload_host = vec![0u8; payload_len.max(1)];
        let mut acc = 0usize;
        for (b, &d) in desc_host.iter().enumerate() {
            let bytes = CuszxStream::block_bytes(d);
            for k in 0..bytes {
                payload_host[acc + k] = scr.get(b * MAX_BLOCK_BYTES + k);
            }
            acc += bytes;
        }
        gpu.cpu_work(
            "cuszx-global-sync",
            payload_len as u64 / 2 + num_blocks as u64 * 8,
        );
        // Host postprocessing: the reference repackages headers and
        // validates block metadata element-wise before the stream is final.
        gpu.cpu_work("cuszx-postprocess", n as u64);
        let payload = gpu.h2d_pageable(&payload_host);

        Box::new(CuszxStream {
            descriptors,
            payload,
            payload_len,
            num_elements: n,
            eb,
        })
    }

    fn decompress(&self, gpu: &mut Gpu, stream: &dyn Stream) -> DeviceBuffer<f32> {
        let s = stream
            .as_any()
            .downcast_ref::<CuszxStream>()
            .expect("not a cuSZx stream");
        let n = s.num_elements;
        let num_blocks = n.div_ceil(BLOCK);

        // CPU preprocessing: the reference parses the compressed stream on
        // the host (pageable D2H), rebuilds the per-block offsets there,
        // and stages the stream back for the decode kernel. Decompression
        // therefore has a *larger* CPU share than compression (Fig 14b).
        gpu.cpu_work("cuszx-preprocess", n as u64 / 2 + 20_000);
        let staged = gpu.d2h_prefix_pageable(&s.payload, s.payload_len.min(s.payload.len()));
        let desc_host = gpu.d2h(&s.descriptors);
        let mut offsets_host = vec![0u32; num_blocks];
        let mut acc = 0u32;
        for (b, &d) in desc_host.iter().enumerate() {
            offsets_host[b] = acc;
            acc += CuszxStream::block_bytes(d) as u32;
        }
        gpu.cpu_work(
            "cuszx-global-sync",
            s.payload_len as u64 / 2 + (num_blocks as u64) * 8,
        );
        let offsets = gpu.h2d(&offsets_host);
        let payload = if staged.is_empty() {
            gpu.h2d_pageable(&[0u8])
        } else {
            gpu.h2d_pageable(&staged)
        };

        let output = gpu.alloc::<f32>(n);
        let eb = s.eb;
        gpu.launch("cuszx_decode", LaunchConfig::cover(num_blocks, 32), |ctx| {
            let desc = s.descriptors.slice();
            let off = offsets.slice();
            let pay = payload.slice();
            let out = output.slice();
            let b0 = ctx.block * 32;
            let mut moved = 0u64;
            let mut elems = 0usize;
            let mut block = [0.0f32; BLOCK];
            let mut bytes_buf = vec![0u8; MAX_BLOCK_BYTES];
            let mut abs_vals = [0u64; BLOCK];
            for b in b0..(b0 + 32).min(num_blocks) {
                let d = desc.get(b);
                let nbytes = CuszxStream::block_bytes(d);
                let src = off.get(b) as usize;
                for (k, byte) in bytes_buf[..nbytes].iter_mut().enumerate() {
                    *byte = pay.get(src + k);
                }
                decode_block(d, &bytes_buf[..nbytes], eb, &mut abs_vals, &mut block);
                let start = b * BLOCK;
                let end = (start + BLOCK).min(n);
                for (k, &v) in block.iter().take(end - start).enumerate() {
                    out.set(start + k, v);
                }
                moved += nbytes as u64;
                elems += end - start;
            }
            ctx.read_strided(STEP_DEC, moved);
            ctx.ops(STEP_DEC, (elems * 10) as u64);
            ctx.write(STEP_DEC, (elems * 4) as u64);
        });

        // CPU postprocessing (the reference validates/repackages on host —
        // the reason decompression has a *larger* CPU share in Fig 14b).
        gpu.cpu_work("cuszx-postprocess", (n as u64) / 2 + 20_000);

        output
    }
}

/// Host-side `CUSZXH1` byte-stream form of the cuSZx-like codec, with
/// block-granular partial decode for the store layer.
///
/// Layout (all integers little-endian):
///
/// ```text
/// magic            8 B   "CUSZXH1\0"
/// eb               8 B   f64, absolute bound (finite, > 0)
/// num_elements     8 B   u64
/// descriptors      ⌈N/128⌉ B   0xFF = constant, else F ∈ [1, 64]
/// payload          Σ block_bytes(descriptor)   exact — no trailing bytes
/// ```
///
/// The per-block offsets are *not* stored; like cuSZp's Eq-2 table they
/// are recomputed by prefix-summing `block_bytes` over the descriptor
/// array, so a partial reader scans one byte per block and slices only
/// the payload bytes of the blocks it needs.
pub mod host {
    use super::{decode_block, encode_block, CuszxStream, BLOCK, CONSTANT, MAX_BLOCK_BYTES};
    use cuszp_core::FormatError;
    use std::ops::Range;

    /// Stream magic.
    pub const MAGIC: [u8; 8] = *b"CUSZXH1\0";
    /// Header size: magic + eb (f64 LE) + num_elements (u64 LE).
    pub const HEADER_BYTES: usize = 24;

    /// Compress `data` into a self-describing `CUSZXH1` stream, replacing
    /// the contents of `out` (capacity is reused across calls).
    pub fn compress(data: &[f32], eb: f64, out: &mut Vec<u8>) {
        assert!(eb.is_finite() && eb > 0.0, "bound must be positive");
        let num_blocks = data.len().div_ceil(BLOCK);
        out.clear();
        out.reserve(HEADER_BYTES + num_blocks * (1 + MAX_BLOCK_BYTES));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&eb.to_le_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        let desc_off = out.len();
        out.resize(desc_off + num_blocks, 0);
        let mut buf = Vec::with_capacity(MAX_BLOCK_BYTES);
        let mut block = [0.0f32; BLOCK];
        for b in 0..num_blocks {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(data.len());
            block[..end - start].copy_from_slice(&data[start..end]);
            // Tail blocks pad with 0.0, matching the kernel path — the
            // midpoint math still bounds the real elements.
            block[end - start..].fill(0.0);
            out[desc_off + b] = encode_block(&block, eb, &mut buf);
            out.extend_from_slice(&buf);
        }
    }

    /// Borrowed, fully validated view of a `CUSZXH1` stream.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct HostStream<'a> {
        /// Absolute error bound the stream was quantized with.
        pub eb: f64,
        /// Element count of the original array.
        pub num_elements: usize,
        /// Per-block descriptors ([`CONSTANT`] or `F`).
        pub descriptors: &'a [u8],
        /// Concatenated block payload.
        pub payload: &'a [u8],
    }

    impl<'a> HostStream<'a> {
        /// Parse `bytes`, validating every descriptor and that the
        /// payload length matches the descriptor accounting **exactly**
        /// (the partial decoder slices at prefix-summed offsets without
        /// further bounds checks).
        pub fn parse(bytes: &'a [u8]) -> Result<HostStream<'a>, FormatError> {
            if bytes.len() < HEADER_BYTES {
                return Err(FormatError::Truncated);
            }
            if bytes[..8] != MAGIC {
                return Err(FormatError::BadMagic);
            }
            let eb = f64::from_le_bytes(bytes[8..16].try_into().expect("len checked"));
            if !(eb.is_finite() && eb > 0.0) {
                return Err(FormatError::Corrupt("bad error bound"));
            }
            let n = u64::from_le_bytes(bytes[16..24].try_into().expect("len checked"));
            let n = usize::try_from(n).map_err(|_| FormatError::Truncated)?;
            let num_blocks = n.div_ceil(BLOCK);
            let desc_end = HEADER_BYTES
                .checked_add(num_blocks)
                .ok_or(FormatError::Truncated)?;
            if bytes.len() < desc_end {
                return Err(FormatError::Truncated);
            }
            let descriptors = &bytes[HEADER_BYTES..desc_end];
            let payload = &bytes[desc_end..];
            let mut expected = 0u64;
            for &d in descriptors {
                if d != CONSTANT && !(1..=64).contains(&d) {
                    return Err(FormatError::Corrupt("bad block descriptor"));
                }
                expected += CuszxStream::block_bytes(d) as u64;
            }
            if (payload.len() as u64) < expected {
                return Err(FormatError::Truncated);
            }
            if (payload.len() as u64) > expected {
                return Err(FormatError::Corrupt("trailing bytes"));
            }
            Ok(HostStream {
                eb,
                num_elements: n,
                descriptors,
                payload,
            })
        }

        /// Number of 128-value blocks.
        pub fn num_blocks(&self) -> usize {
            self.descriptors.len()
        }

        /// Decode blocks `blocks` into `out` (which must hold exactly the
        /// elements those blocks cover, the final block being ragged).
        /// Returns the payload bytes read. Allocates nothing.
        pub fn decode_blocks(&self, blocks: Range<usize>, out: &mut [f32]) -> usize {
            let (b0, b1) = (blocks.start, blocks.end);
            assert!(
                b0 <= b1 && b1 <= self.num_blocks(),
                "block range out of bounds"
            );
            let covered = (b1 * BLOCK).min(self.num_elements) - (b0 * BLOCK).min(self.num_elements);
            assert_eq!(out.len(), covered, "output slice length");
            let mut off = 0usize;
            for &d in &self.descriptors[..b0] {
                off += CuszxStream::block_bytes(d);
            }
            let start_off = off;
            let mut abs_vals = [0u64; BLOCK];
            let mut written = 0usize;
            for &d in &self.descriptors[b0..b1] {
                let nbytes = CuszxStream::block_bytes(d);
                let take = BLOCK.min(out.len() - written);
                decode_block(
                    d,
                    &self.payload[off..off + nbytes],
                    self.eb,
                    &mut abs_vals,
                    &mut out[written..written + take],
                );
                off += nbytes;
                written += take;
            }
            off - start_off
        }

        /// Decode the whole stream; `out.len()` must equal
        /// [`HostStream::num_elements`].
        pub fn decode_into(&self, out: &mut [f32]) -> usize {
            self.decode_blocks(0..self.num_blocks(), out)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn wave(n: usize) -> Vec<f32> {
            (0..n).map(|i| (i as f32 * 0.03).sin() * 40.0).collect()
        }

        #[test]
        fn roundtrip_respects_bound_and_exact_length() {
            let data = wave(5000);
            let eb = 0.05;
            let mut bytes = Vec::new();
            compress(&data, eb, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            assert_eq!(s.num_elements, 5000);
            let mut out = vec![0f32; 5000];
            s.decode_into(&mut out);
            for (i, (&d, &r)) in data.iter().zip(&out).enumerate() {
                assert!(
                    (d as f64 - r as f64).abs()
                        <= eb * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7,
                    "idx {i}: {d} vs {r}"
                );
            }
        }

        #[test]
        fn matches_gpu_sim_reconstruction() {
            use crate::common::Compressor;
            use gpu_sim::{DeviceSpec, Gpu};
            let data = wave(1300);
            let eb = 0.02;
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.h2d(&data);
            let comp = super::super::CuszxLike::new();
            let stream = comp.compress(&mut gpu, &input, &[data.len()], eb);
            let sim_dev = comp.decompress(&mut gpu, stream.as_ref());
            let sim = gpu.d2h(&sim_dev);
            let mut bytes = Vec::new();
            compress(&data, eb, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            let mut host_out = vec![0f32; data.len()];
            s.decode_into(&mut host_out);
            assert_eq!(sim, host_out, "host codec must mirror the kernel path");
        }

        #[test]
        fn partial_decode_matches_full_slices() {
            let data = wave(1000); // 8 blocks, ragged tail of 1000 − 7·128
            let mut bytes = Vec::new();
            compress(&data, 0.01, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            let mut full = vec![0f32; 1000];
            let total = s.decode_into(&mut full);
            assert_eq!(total, s.payload.len());
            for range in [0..1, 2..5, 7..8, 0..8, 3..3] {
                let lo = (range.start * BLOCK).min(1000);
                let hi = (range.end * BLOCK).min(1000);
                let mut part = vec![0f32; hi - lo];
                s.decode_blocks(range, &mut part);
                assert_eq!(part, full[lo..hi]);
            }
        }

        #[test]
        fn corruption_rejected() {
            let mut bytes = Vec::new();
            compress(&wave(300), 0.01, &mut bytes);
            assert!(HostStream::parse(&bytes[..HEADER_BYTES - 1]).is_err());
            assert_eq!(
                HostStream::parse(&bytes[..bytes.len() - 1]),
                Err(FormatError::Truncated),
            );
            let mut magic = bytes.clone();
            magic[0] = b'X';
            assert_eq!(HostStream::parse(&magic), Err(FormatError::BadMagic));
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert!(matches!(
                HostStream::parse(&trailing),
                Err(FormatError::Corrupt(_))
            ));
            let mut bad_desc = bytes.clone();
            bad_desc[HEADER_BYTES] = 0x80; // 128 bits: impossible width
            assert!(matches!(
                HostStream::parse(&bad_desc),
                Err(FormatError::Corrupt(_))
            ));
            let mut bad_eb = bytes;
            bad_eb[8..16].copy_from_slice(&f64::NAN.to_le_bytes());
            assert!(matches!(
                HostStream::parse(&bad_eb),
                Err(FormatError::Corrupt(_))
            ));
        }

        #[test]
        fn empty_and_constant_inputs() {
            let mut bytes = Vec::new();
            compress(&[], 0.1, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            assert_eq!(s.num_elements, 0);
            assert_eq!(s.num_blocks(), 0);
            s.decode_into(&mut []);

            compress(&[7.25f32; 200], 0.1, &mut bytes);
            let s = HostStream::parse(&bytes).unwrap();
            let mut out = vec![0f32; 200];
            s.decode_into(&mut out);
            assert!(out.iter().all(|&v| (v - 7.25).abs() <= 0.1 + 1e-6));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn run(data: &[f32], eb: f64) -> (Vec<f32>, u64, Gpu) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(data);
        let comp = CuszxLike::new();
        let stream = comp.compress(&mut gpu, &input, &[data.len()], eb);
        let bytes = stream.stream_bytes();
        let out = comp.decompress(&mut gpu, stream.as_ref());
        let recon = gpu.d2h(&out);
        (recon, bytes, gpu)
    }

    #[test]
    fn roundtrip_respects_bound() {
        let data: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.01).sin() * 20.0).collect();
        let eb = 0.05;
        let (recon, _, _) = run(&data, eb);
        for (i, (&d, &r)) in data.iter().zip(&recon).enumerate() {
            assert!(
                (d as f64 - r as f64).abs()
                    <= eb * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7,
                "idx {i}: {d} vs {r}"
            );
        }
    }

    #[test]
    fn smooth_blocks_become_constant() {
        // Slowly varying data + loose bound ⇒ nearly everything constant.
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 1e-4).sin()).collect();
        let eb = 0.1;
        let (recon, bytes, _) = run(&data, eb);
        // ~5 bytes per 128-value block.
        assert!(bytes < 4096 / 128 * 8, "bytes {bytes}");
        // Constant flush ⇒ runs of identical values (the stripe artifact).
        let mut runs = 0;
        for w in recon.windows(2) {
            if w[0] == w[1] {
                runs += 1;
            }
        }
        assert!(runs > recon.len() / 2, "expected constant runs, got {runs}");
    }

    #[test]
    fn rough_data_uses_nonconstant_blocks() {
        let data: Vec<f32> = (0..2048)
            .map(|i| (((i * 2654435761usize) % 1000) as f32) - 500.0)
            .collect();
        let eb = 0.5;
        let (recon, bytes, _) = run(&data, eb);
        assert!(bytes > 2048, "rough data can't be all-constant: {bytes}");
        for (&d, &r) in data.iter().zip(&recon) {
            assert!(
                (d as f64 - r as f64).abs()
                    <= eb * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7
            );
        }
    }

    #[test]
    fn pipeline_round_trips_through_host() {
        // The defining cost structure: ≥2 kernels + D2H/H2D + CPU work per
        // direction.
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.02).cos()).collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        gpu.reset_timeline();
        let comp = CuszxLike::new();
        let stream = comp.compress(&mut gpu, &input, &[4096], 0.01);
        assert!(gpu.timeline().kernel_count() >= 1);
        assert!(gpu.timeline().memcpy_time() > 0.0, "needs host round-trip");
        assert!(gpu.timeline().cpu_time() > 0.0, "needs CPU work");
        // The host round-trip must dominate end-to-end time (Fig 13/14).
        let b = gpu.breakdown();
        assert!(
            b.gpu_fraction() < 0.5,
            "GPU fraction {:.2}",
            b.gpu_fraction()
        );
        let _ = stream;
    }

    #[test]
    fn tail_block_handled() {
        let data: Vec<f32> = (0..130).map(|i| i as f32).collect();
        let (recon, _, _) = run(&data, 0.5);
        assert_eq!(recon.len(), 130);
        for (&d, &r) in data.iter().zip(&recon) {
            assert!(
                (d as f64 - r as f64).abs()
                    <= 0.5 * (1.0 + 1e-6) + (d.abs().max(r.abs()) as f64) * 1.3e-7
            );
        }
    }

    #[test]
    fn constant_block_flushes_to_midpoint() {
        // One block, range 0.08 ≤ 2·eb: everything becomes (lo+hi)/2.
        let mut data = vec![1.0f32; 128];
        data[5] = 1.08;
        let (recon, bytes, _) = run(&data, 0.05);
        assert_eq!(bytes, 1 + 4);
        assert!(recon.iter().all(|&v| (v - 1.04).abs() < 1e-6));
    }
}
