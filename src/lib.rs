//! # cuszp-repro — umbrella crate for the cuSZp (SC '23) reproduction
//!
//! Re-exports the workspace's public surface so examples and downstream
//! users can depend on one crate:
//!
//! * [`cuszp_core`] — the cuSZp compressor (single fused kernel on the
//!   simulated device, plus a host reference codec).
//! * [`cuszp_pipeline`] — batched multi-stream compression with a bounded
//!   submission queue and per-stream counters.
//! * [`baselines`] — cuSZ-, cuSZx-, and cuZFP-like comparison compressors.
//! * [`cuszp_store`] — block-granular random-access store: the
//!   `ErrorBoundedCodec` trait, the runtime codec registry, and the
//!   sharded chunk container with partial (`decode_blocks`) reads.
//! * [`gpu_sim`] — the CUDA-like execution substrate and timing model.
//! * [`datasets`] — synthetic SDRBench-equivalent data generators.
//! * [`metrics`] — PSNR/SSIM/CDF/rate/visualization metrics.
//! * [`harness`] — the `repro` experiment runner (one module per paper
//!   table/figure).
//!
//! See `README.md` for a walkthrough and `DESIGN.md` for the system
//! inventory and experiment index.

pub use baselines;
pub use cuszp_core;
pub use cuszp_pipeline;
pub use cuszp_store;
pub use datasets;
pub use gpu_sim;
pub use harness;
pub use metrics;

/// Convenience: compress + decompress one field with cuSZp on a simulated
/// A100 and return `(compression ratio, end-to-end GB/s comp, GB/s decomp,
/// max abs error)`.
///
/// ```
/// let field = cuszp_repro::datasets::nyx::field("velocity_x", &[16, 16, 16]);
/// let (ratio, comp, decomp, err) =
///     cuszp_repro::roundtrip_cuszp(&field, cuszp_core::ErrorBound::Rel(1e-3));
/// assert!(ratio > 1.0 && comp > 0.0 && decomp > 0.0);
/// assert!(err <= 1e-3 * field.value_range() as f64 * 1.000001);
/// ```
pub fn roundtrip_cuszp(
    field: &datasets::Field,
    bound: cuszp_core::ErrorBound,
) -> (f64, f64, f64, f64) {
    use baselines::common::CuszpAdapter;
    let m = harness::measure_pipeline(
        &gpu_sim::DeviceSpec::a100(),
        &CuszpAdapter::new(),
        field,
        bound.absolute(field.value_range() as f64),
    );
    (m.ratio, m.comp_e2e_gbps, m.decomp_e2e_gbps, m.max_abs_error)
}
