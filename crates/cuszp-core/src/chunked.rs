//! Chunked container format: many independent cuSZp streams in one frame.
//!
//! The single-stream layout ([`crate::format`]) compresses one array with
//! one header. Batch workloads — many fields, or one huge field split for
//! pipelined compression — need a container that holds *several* streams
//! while keeping each chunk independently decodable. The layout is a
//! framed header plus a per-chunk length table:
//!
//! ```text
//! magic "CUSZPCH1"            8 bytes
//! num_chunks                  u32 LE
//! frame_len[num_chunks]       u64 LE each
//! frame[0] .. frame[n-1]      each exactly Compressed::to_bytes()
//! ```
//!
//! Chunk byte offsets are not stored — they are the prefix sum of the
//! length table, mirroring how the per-block offsets of the inner format
//! are recomputed from fixed lengths (Eq 2) rather than serialized.
//!
//! Every chunk is byte-identical to what the single-shot path would
//! produce for that slice at the same absolute bound, so a one-chunk
//! container is the existing format plus a 20-byte frame. Chunks may
//! differ in dtype, block length, and bound — a container can hold a
//! whole batch of unrelated fields.

use crate::format::{Compressed, CompressedRef, FormatError, HEADER_BYTES};
use std::io::{self, Read, Write};

/// Magic bytes of the chunked container serialization.
pub const CHUNK_MAGIC: [u8; 8] = *b"CUSZPCH1";
/// Fixed container header size (magic + chunk count), before the length
/// table.
pub const CONTAINER_HEADER_BYTES: usize = 8 + 4;
/// Hard cap on the serialized chunk count — rejects absurd headers before
/// allocating a length table for them.
pub const MAX_CHUNKS: u32 = 1 << 24;

/// A sequence of independent compressed streams with a shared frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChunkedCompressed {
    /// The chunks, in order. Decompression concatenates them.
    pub chunks: Vec<Compressed>,
}

impl ChunkedCompressed {
    /// Empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Container holding exactly one stream.
    pub fn single(c: Compressed) -> Self {
        ChunkedCompressed { chunks: vec![c] }
    }

    /// Append a chunk.
    pub fn push(&mut self, c: Compressed) {
        self.chunks.push(c);
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total element count across all chunks.
    pub fn total_elements(&self) -> u64 {
        self.chunks.iter().map(|c| c.num_elements).sum()
    }

    /// The paper's compressed size summed over chunks (fixed-length bytes
    /// + payload; what compression ratios are computed from).
    pub fn stream_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.stream_bytes()).sum()
    }

    /// Full serialized size: container header + length table + frames.
    pub fn container_bytes(&self) -> u64 {
        CONTAINER_HEADER_BYTES as u64
            + self.chunks.len() as u64 * 8
            + self.chunks.iter().map(|c| c.total_bytes()).sum::<u64>()
    }

    /// Serialize to a standalone byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.container_bytes() as usize);
        out.extend_from_slice(&CHUNK_MAGIC);
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.total_bytes().to_le_bytes());
        }
        for c in &self.chunks {
            out.extend_from_slice(&c.to_bytes());
        }
        out
    }

    /// Deserialize a container produced by [`ChunkedCompressed::to_bytes`].
    ///
    /// Malformed input — wrong magic, truncation anywhere, a length table
    /// whose sum disagrees with the buffer, or a corrupt inner frame —
    /// returns an error; it never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<ChunkedCompressed, FormatError> {
        Ok(ChunkedCompressed {
            chunks: chunk_refs(bytes)?.iter().map(|r| r.to_owned()).collect(),
        })
    }

    /// Serialize to a [`Write`] sink without materializing the container:
    /// identical bytes to [`ChunkedCompressed::to_bytes`], but the only
    /// buffering is the sink's own, so a multi-GB archive streams through
    /// constant memory.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&CHUNK_MAGIC)?;
        w.write_all(&(self.chunks.len() as u32).to_le_bytes())?;
        for c in &self.chunks {
            w.write_all(&c.total_bytes().to_le_bytes())?;
        }
        for c in &self.chunks {
            c.write_to(w)?;
        }
        Ok(())
    }

    /// Deserialize a container from a [`Read`] source (the inverse of
    /// [`ChunkedCompressed::write_to`]). Reads exactly the container and
    /// no further, so containers can be embedded in larger streams.
    /// Malformed input surfaces as [`io::ErrorKind::InvalidData`].
    ///
    /// For sequential chunk-at-a-time processing in constant memory, use
    /// [`ChunkedReader`] instead — this method holds every decoded chunk.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<ChunkedCompressed> {
        let mut reader = ChunkedReader::new(r)?;
        let mut chunks = Vec::with_capacity(reader.remaining_chunks().min(1024));
        while let Some(c) = reader.next_chunk()? {
            chunks.push(c.to_owned());
        }
        Ok(ChunkedCompressed { chunks })
    }

    /// Structural sanity check of every chunk (payload accounting, Eq 2).
    pub fn validate(&self) -> Result<(), FormatError> {
        for c in &self.chunks {
            c.validate()?;
        }
        Ok(())
    }
}

/// Parse a serialized container into **borrowed** chunk views — the
/// copy-free decode path. Each [`CompressedRef`] slices directly into
/// `bytes`; nothing from the frames is copied, so decoding a chunk
/// ([`crate::fast::decompress_into`]) reads payload bytes straight out of
/// the container buffer (which may itself be a memory-mapped file).
///
/// Validation is identical to [`ChunkedCompressed::from_bytes`] — in fact
/// `from_bytes` is this plus a deep copy per chunk. The only allocation
/// is the returned `Vec` itself; a steady-state consumer that must not
/// touch the heap at all iterates with [`chunk_ref_iter`] instead.
pub fn chunk_refs(bytes: &[u8]) -> Result<Vec<CompressedRef<'_>>, FormatError> {
    chunk_ref_iter(bytes)?.collect()
}

/// Walk a serialized container's chunks **without allocating**: the
/// framing (magic, count, length table, total size) is validated up
/// front, then each call to [`Iterator::next`] parses one frame into a
/// borrowed [`CompressedRef`]. This is the wire-decode path of the
/// zero-allocation service — a request holding a container is decoded
/// chunk by chunk with no heap traffic.
///
/// A corrupt *frame* (as opposed to corrupt framing) surfaces as an
/// `Err` item at its position; iteration is fused after the last chunk.
///
/// ```
/// use cuszp_core::{chunked, Cuszp, ErrorBound};
/// let codec = Cuszp::new();
/// let data: Vec<f32> = (0..500).map(|i| (i as f32 * 0.1).sin()).collect();
/// let bytes = codec.compress_chunked(&data, ErrorBound::Abs(1e-3), 200).to_bytes();
/// let mut elems = 0;
/// for chunk in chunked::chunk_ref_iter(&bytes)? {
///     elems += chunk?.num_elements;
/// }
/// assert_eq!(elems, 500);
/// # Ok::<(), cuszp_core::FormatError>(())
/// ```
pub fn chunk_ref_iter(bytes: &[u8]) -> Result<ChunkRefIter<'_>, FormatError> {
    if bytes.len() < CONTAINER_HEADER_BYTES {
        return Err(FormatError::Truncated);
    }
    if bytes[..8] != CHUNK_MAGIC {
        return Err(FormatError::BadMagic);
    }
    let n = u32::from_le_bytes(bytes[8..12].try_into().expect("len checked"));
    if n > MAX_CHUNKS {
        return Err(FormatError::Corrupt("chunk count exceeds MAX_CHUNKS"));
    }
    let n = n as usize;
    let table_end = CONTAINER_HEADER_BYTES + n * 8;
    if bytes.len() < table_end {
        return Err(FormatError::Truncated);
    }
    // Validate the whole frame accounting up front (one arithmetic pass,
    // no allocation), so framing errors surface before any chunk parses.
    let mut at = table_end as u64;
    for i in 0..n {
        let entry = CONTAINER_HEADER_BYTES + i * 8;
        let len = u64::from_le_bytes(bytes[entry..entry + 8].try_into().expect("len checked"));
        if len < HEADER_BYTES as u64 {
            return Err(FormatError::Corrupt("chunk frame shorter than a header"));
        }
        let end = at
            .checked_add(len)
            .ok_or(FormatError::Corrupt("chunk offset overflow"))?;
        if end > bytes.len() as u64 {
            return Err(FormatError::Truncated);
        }
        at = end;
    }
    if at != bytes.len() as u64 {
        return Err(FormatError::Corrupt("trailing bytes after last chunk"));
    }
    Ok(ChunkRefIter {
        bytes,
        num_chunks: n,
        next: 0,
        at: table_end,
    })
}

/// Allocation-free iterator over a serialized container's chunks; see
/// [`chunk_ref_iter`].
#[derive(Debug, Clone)]
pub struct ChunkRefIter<'a> {
    bytes: &'a [u8],
    num_chunks: usize,
    next: usize,
    /// Byte offset of the next frame (framing pre-validated, so this
    /// always stays in bounds).
    at: usize,
}

impl<'a> ChunkRefIter<'a> {
    /// Total chunks in the container.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Chunks not yet yielded.
    pub fn remaining_chunks(&self) -> usize {
        self.num_chunks - self.next
    }
}

impl<'a> Iterator for ChunkRefIter<'a> {
    type Item = Result<CompressedRef<'a>, FormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.num_chunks {
            return None;
        }
        let entry = CONTAINER_HEADER_BYTES + self.next * 8;
        let len = u64::from_le_bytes(
            self.bytes[entry..entry + 8]
                .try_into()
                .expect("table bounds pre-validated"),
        ) as usize;
        let frame = &self.bytes[self.at..self.at + len];
        self.next += 1;
        self.at += len;
        Some(CompressedRef::parse(frame))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining_chunks();
        (rem, Some(rem))
    }
}

/// Sequential chunk-at-a-time container reader over any [`Read`] source.
///
/// Holds the length table plus **one frame at a time** in a reused buffer
/// — peak memory is the largest single frame, independent of container
/// size, which is what lets a multi-GB archive decode through constant
/// memory. Each [`ChunkedReader::next_chunk`] call overwrites the frame
/// buffer, handing back a [`CompressedRef`] borrowing it (a *lending*
/// iterator — decode or copy the chunk before requesting the next one).
pub struct ChunkedReader<'r, R: Read> {
    src: &'r mut R,
    /// Frame lengths still to be read, in order (drained front to back).
    lens: Vec<u64>,
    next: usize,
    /// Reused frame buffer; grown monotonically to the largest frame seen.
    frame: Vec<u8>,
}

impl<'r, R: Read> ChunkedReader<'r, R> {
    /// Read and validate the container header + length table, leaving the
    /// source positioned at the first frame.
    pub fn new(src: &'r mut R) -> io::Result<Self> {
        let bad = |msg: &'static str| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut head = [0u8; CONTAINER_HEADER_BYTES];
        src.read_exact(&mut head)?;
        if head[..8] != CHUNK_MAGIC {
            return Err(bad("bad container magic"));
        }
        let n = u32::from_le_bytes(head[8..12].try_into().expect("len checked"));
        if n > MAX_CHUNKS {
            return Err(bad("chunk count exceeds MAX_CHUNKS"));
        }
        let mut lens = Vec::with_capacity(n as usize);
        let mut entry = [0u8; 8];
        for _ in 0..n {
            src.read_exact(&mut entry)?;
            let len = u64::from_le_bytes(entry);
            if len < HEADER_BYTES as u64 {
                return Err(bad("chunk frame shorter than a header"));
            }
            lens.push(len);
        }
        Ok(ChunkedReader {
            src,
            lens,
            next: 0,
            frame: Vec::new(),
        })
    }

    /// Total number of chunks in the container.
    pub fn num_chunks(&self) -> usize {
        self.lens.len()
    }

    /// Chunks not yet yielded.
    pub fn remaining_chunks(&self) -> usize {
        self.lens.len() - self.next
    }

    /// Read the next frame into the internal buffer and parse it.
    /// Returns `Ok(None)` once every chunk has been yielded.
    pub fn next_chunk(&mut self) -> io::Result<Option<CompressedRef<'_>>> {
        let Some(&len) = self.lens.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "chunk frame too large"))?;
        self.frame.resize(len, 0);
        self.src.read_exact(&mut self.frame)?;
        CompressedRef::parse(&self.frame)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CuszpConfig;
    use crate::host_ref;

    fn chunk(n: usize, seed: f32) -> Compressed {
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01 + seed).sin()).collect();
        host_ref::compress(&data, 1e-3, CuszpConfig::default())
    }

    #[test]
    fn roundtrip_multi() {
        let c = ChunkedCompressed {
            chunks: vec![chunk(100, 0.0), chunk(33, 1.0), chunk(1, 2.0)],
        };
        let bytes = c.to_bytes();
        assert_eq!(bytes.len() as u64, c.container_bytes());
        assert_eq!(ChunkedCompressed::from_bytes(&bytes).unwrap(), c);
    }

    #[test]
    fn roundtrip_empty() {
        let c = ChunkedCompressed::new();
        let back = ChunkedCompressed::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.num_chunks(), 0);
        assert_eq!(back, c);
    }

    #[test]
    fn single_chunk_is_inner_format_plus_frame() {
        let inner = chunk(64, 0.5);
        let container = ChunkedCompressed::single(inner.clone());
        let bytes = container.to_bytes();
        // Frame = magic + count + one length entry, then the inner stream
        // verbatim.
        assert_eq!(&bytes[CONTAINER_HEADER_BYTES + 8..], &inner.to_bytes()[..]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = ChunkedCompressed::single(chunk(8, 0.0)).to_bytes();
        bytes[0] = b'Z';
        assert_eq!(
            ChunkedCompressed::from_bytes(&bytes),
            Err(FormatError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = ChunkedCompressed {
            chunks: vec![chunk(40, 0.0), chunk(40, 1.0)],
        }
        .to_bytes();
        for cut in [3, CONTAINER_HEADER_BYTES + 3, bytes.len() - 1] {
            assert!(
                ChunkedCompressed::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ChunkedCompressed::single(chunk(8, 0.0)).to_bytes();
        bytes.push(0);
        assert!(matches!(
            ChunkedCompressed::from_bytes(&bytes),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_chunk_count_rejected() {
        let mut bytes = CHUNK_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            ChunkedCompressed::from_bytes(&bytes),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn chunk_refs_borrow_the_container() {
        let c = ChunkedCompressed {
            chunks: vec![chunk(100, 0.0), chunk(33, 1.0)],
        };
        let bytes = c.to_bytes();
        let refs = chunk_refs(&bytes).unwrap();
        assert_eq!(refs.len(), 2);
        let range = bytes.as_ptr_range();
        for (r, owned) in refs.iter().zip(&c.chunks) {
            assert_eq!(&r.to_owned(), owned);
            // Copy-free: the view's payload points inside `bytes`.
            assert!(owned.payload.is_empty() || range.contains(&r.payload.as_ptr()));
        }
        // And the same malformed inputs fail identically.
        assert_eq!(chunk_refs(&bytes[..5]).unwrap_err(), FormatError::Truncated);
    }

    #[test]
    fn chunk_ref_iter_matches_chunk_refs_without_allocating() {
        let c = ChunkedCompressed {
            chunks: vec![chunk(100, 0.0), chunk(33, 1.0), chunk(1, 2.0)],
        };
        let bytes = c.to_bytes();
        let it = chunk_ref_iter(&bytes).unwrap();
        assert_eq!(it.num_chunks(), 3);
        let via_iter: Vec<_> = it.map(|r| r.unwrap().to_owned()).collect();
        assert_eq!(via_iter, c.chunks);
        // Framing errors surface at construction, same as chunk_refs.
        assert_eq!(
            chunk_ref_iter(&bytes[..5]).unwrap_err(),
            FormatError::Truncated
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            chunk_ref_iter(&trailing),
            Err(FormatError::Corrupt(_))
        ));
        // A corrupt frame surfaces as an Err item at its position.
        let mut bad_frame = bytes.clone();
        let first_frame_at = CONTAINER_HEADER_BYTES + 3 * 8;
        bad_frame[first_frame_at] = b'X'; // break the first chunk's magic
        let items: Vec<_> = chunk_ref_iter(&bad_frame).unwrap().collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], Err(FormatError::BadMagic));
        assert!(items[1].is_ok() && items[2].is_ok());
    }

    #[test]
    fn streaming_roundtrip_matches_to_bytes() {
        for c in [
            ChunkedCompressed::new(),
            ChunkedCompressed {
                chunks: vec![chunk(100, 0.0), chunk(33, 1.0), chunk(1, 2.0)],
            },
        ] {
            let mut streamed = Vec::new();
            c.write_to(&mut streamed).unwrap();
            assert_eq!(streamed, c.to_bytes());
            let back = ChunkedCompressed::read_from(&mut streamed.as_slice()).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn read_from_stops_at_container_end() {
        let c = ChunkedCompressed::single(chunk(40, 0.0));
        let mut bytes = c.to_bytes();
        bytes.extend_from_slice(b"suffix"); // embedded in a larger stream
        let mut src = bytes.as_slice();
        assert_eq!(ChunkedCompressed::read_from(&mut src).unwrap(), c);
        assert_eq!(src, b"suffix");
    }

    #[test]
    fn chunked_reader_yields_in_order_constant_memory() {
        let c = ChunkedCompressed {
            chunks: vec![chunk(200, 0.0), chunk(7, 1.0), chunk(64, 2.0)],
        };
        let bytes = c.to_bytes();
        let mut src = bytes.as_slice();
        let mut reader = ChunkedReader::new(&mut src).unwrap();
        assert_eq!(reader.num_chunks(), 3);
        let mut seen = 0;
        while let Some(r) = reader.next_chunk().unwrap() {
            assert_eq!(r.to_owned(), c.chunks[seen]);
            seen += 1;
        }
        assert_eq!(seen, 3);
        assert_eq!(reader.remaining_chunks(), 0);
        assert!(reader.next_chunk().unwrap().is_none());
    }

    #[test]
    fn chunked_reader_rejects_truncated_frames() {
        let bytes = ChunkedCompressed::single(chunk(40, 0.0)).to_bytes();
        let mut src = &bytes[..bytes.len() - 1];
        let mut reader = ChunkedReader::new(&mut src).unwrap();
        assert!(reader.next_chunk().is_err());
    }
}
