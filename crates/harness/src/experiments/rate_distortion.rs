//! Figs 17 & 18 — rate-distortion curves (PSNR and SSIM vs bit rate) for
//! all four compressors over the six datasets.
//!
//! Shape claims reproduced:
//! * cuSZp and cuSZ trace the upper envelope (error-bounded prediction
//!   beats fixed-rate truncation), with cuSZ strongest at very low rates
//!   (Huffman) and cuSZp close while being ~100x faster.
//! * cuSZx sits below both at matched rates (midpoint flush).
//! * cuZFP is competitive on smooth multi-D data (Hurricane/NYX) but
//!   collapses on the 1-D HACC (paper: 28.77 dB / 0.1465 SSIM at rate 4,
//!   vs 60.42 dB / 0.7892 for cuSZp at the same rate).

use super::Ctx;
use crate::measure::measure_pipeline;
use crate::report::{f2, Report};
use crate::{error_bounded_compressors, CUZFP_RATES};
use baselines::{Compressor, CuzfpLike};
use cuszp_core::ErrorBound;
use datasets::{generate_subset, DatasetId};
use gpu_sim::DeviceSpec;
use metrics::ssim::ssim;
use serde::Serialize;

/// One rate-distortion point.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Dataset name.
    pub dataset: String,
    /// Compressor name.
    pub compressor: String,
    /// Bit rate (bits per value).
    pub bit_rate: f64,
    /// PSNR, dB.
    pub psnr: f64,
    /// SSIM.
    pub ssim: f64,
}

/// Measure the rate-distortion grid (one representative field per
/// dataset, as the paper plots per-field curves).
pub fn measure(ctx: &Ctx) -> Vec<Point> {
    let spec = DeviceSpec::a100();
    let mut points = Vec::new();
    for id in DatasetId::all() {
        let field = generate_subset(id, ctx.scale, 1).remove(0);
        for comp in error_bounded_compressors() {
            for bound in ErrorBound::paper_rel_set() {
                let eb = bound.absolute(field.value_range() as f64);
                let m = measure_pipeline(&spec, comp.as_ref(), &field, eb);
                let s = ssim(&field.data, &m.reconstruction, &field.shape);
                points.push(Point {
                    dataset: id.name().to_string(),
                    compressor: comp.kind().name().to_string(),
                    bit_rate: m.bit_rate,
                    psnr: m.psnr,
                    ssim: s,
                });
            }
        }
        for rate in CUZFP_RATES {
            let comp = CuzfpLike::new(rate);
            let m = measure_pipeline(&spec, &comp, &field, 0.0);
            let s = ssim(&field.data, &m.reconstruction, &field.shape);
            points.push(Point {
                dataset: id.name().to_string(),
                compressor: comp.kind().name().to_string(),
                bit_rate: m.bit_rate,
                psnr: m.psnr,
                ssim: s,
            });
        }
    }
    points
}

/// Run the Fig 17/18 experiment.
pub fn run(ctx: &Ctx) {
    let mut report = Report::new(
        "fig17",
        "Rate distortion: PSNR (Fig 17) and SSIM (Fig 18)",
        &ctx.out_dir,
    );
    let points = measure(ctx);

    for id in DatasetId::all() {
        report.line(&format!("\n{}", id.name()));
        let mut rows = Vec::new();
        for comp in ["cuSZp", "cuSZ", "cuSZx", "cuZFP"] {
            let mut series: Vec<&Point> = points
                .iter()
                .filter(|p| p.dataset == id.name() && p.compressor == comp)
                .collect();
            series.sort_by(|a, b| a.bit_rate.partial_cmp(&b.bit_rate).expect("finite"));
            for p in series {
                rows.push(vec![
                    comp.to_string(),
                    f2(p.bit_rate),
                    f2(p.psnr),
                    format!("{:.4}", p.ssim),
                ]);
            }
        }
        report.table(&["compressor", "bit-rate", "PSNR (dB)", "SSIM"], &rows);
    }

    // The headline HACC contrast.
    let hacc_cuzfp = points
        .iter()
        .filter(|p| p.dataset == "HACC" && p.compressor == "cuZFP")
        .min_by(|a, b| a.bit_rate.partial_cmp(&b.bit_rate).expect("finite"));
    let hacc_cuszp = points
        .iter()
        .filter(|p| p.dataset == "HACC" && p.compressor == "cuSZp")
        .min_by(|a, b| a.bit_rate.partial_cmp(&b.bit_rate).expect("finite"));
    if let (Some(z), Some(p)) = (hacc_cuzfp, hacc_cuszp) {
        report.line(&format!(
            "\nHACC low-rate contrast: cuZFP {:.2} dB / {:.4} SSIM at {:.1} bits vs \
cuSZp {:.2} dB / {:.4} SSIM at {:.1} bits (paper: 28.77 dB/0.1465 vs 60.42 dB/0.7892)",
            z.psnr, z.ssim, z.bit_rate, p.psnr, p.ssim, p.bit_rate
        ));
    }
    report.save_json(&points);
    report.save_text();
}
