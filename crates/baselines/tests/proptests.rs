//! Property tests for the baseline compressors: error-bounded round trips
//! for cuSZ/cuSZx on arbitrary data, exact fixed-rate accounting for cuZFP.

use baselines::{Compressor, CuszLike, CuszxLike, CuzfpLike};
use gpu_sim::{DeviceSpec, Gpu};
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        prop_oneof![
            3 => -1.0e5f32..1.0e5,
            1 => -1.0f32..1.0,
            1 => Just(0.0f32),
        ],
        16..400,
    )
}

fn check_bound(data: &[f32], recon: &[f32], eb: f64) -> Result<(), TestCaseError> {
    for (i, (&d, &r)) in data.iter().zip(recon).enumerate() {
        let err = (d as f64 - r as f64).abs();
        let slack = (d.abs().max(r.abs()) as f64) * 1.3e-7;
        prop_assert!(
            err <= eb * (1.0 + 1e-6) + slack + f64::EPSILON,
            "index {}: |{} - {}| = {} > {}",
            i,
            d,
            r,
            err,
            eb
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cuszx_roundtrip_bound(data in data_strategy(), eb in prop_oneof![Just(0.01f64), Just(1.0), Just(50.0)]) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        let comp = CuszxLike::new();
        let stream = comp.compress(&mut gpu, &input, &[data.len()], eb);
        let out = comp.decompress(&mut gpu, stream.as_ref());
        let recon = gpu.d2h(&out);
        check_bound(&data, &recon, eb)?;
    }

    #[test]
    fn cusz_roundtrip_bound(data in data_strategy(), eb in prop_oneof![Just(0.01f64), Just(1.0), Just(50.0)]) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        let comp = CuszLike::new();
        let stream = comp.compress(&mut gpu, &input, &[data.len()], eb);
        let out = comp.decompress(&mut gpu, stream.as_ref());
        let recon = gpu.d2h(&out);
        check_bound(&data, &recon, eb)?;
    }

    #[test]
    fn cusz_roundtrip_bound_2d(rows in 4usize..12, cols in 4usize..12, eb in 0.01f64..10.0) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i / cols) as f32 * 0.37).sin() * 100.0 + ((i % cols) as f32 * 0.11).cos() * 40.0)
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        let comp = CuszLike::new();
        let stream = comp.compress(&mut gpu, &input, &[rows, cols], eb);
        let out = comp.decompress(&mut gpu, stream.as_ref());
        let recon = gpu.d2h(&out);
        check_bound(&data, &recon, eb)?;
    }

    #[test]
    // 1-D blocks hold 4 values, and 16 budget bits go to the exponent, so
    // the minimum representable 1-D rate is 5 bits/value.
    fn cuzfp_size_is_exactly_rate(data in data_strategy(), rate in 5u32..24) {
        let n = data.len();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.h2d(&data);
        let comp = CuzfpLike::new(rate);
        let stream = comp.compress(&mut gpu, &input, &[n], 0.0);
        let blocks = n.div_ceil(4);
        let expect = blocks as u64 * ((rate as u64 * 4).div_ceil(8));
        prop_assert_eq!(stream.stream_bytes(), expect);
        // And it must still decode to the right length.
        let out = comp.decompress(&mut gpu, stream.as_ref());
        prop_assert_eq!(out.len(), n);
    }

    #[test]
    fn cuzfp_quality_improves_with_rate(seed in 0u64..1000) {
        let data: Vec<f32> = (0..256)
            .map(|i| (((i as u64 + seed) as f32) * 0.13).sin() * 100.0)
            .collect();
        let mut rmse = Vec::new();
        for rate in [6u32, 12, 24] {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.h2d(&data);
            let comp = CuzfpLike::new(rate);
            let stream = comp.compress(&mut gpu, &input, &[16, 16], 0.0);
            let out = comp.decompress(&mut gpu, stream.as_ref());
            let recon = gpu.d2h(&out);
            let e = (data
                .iter()
                .zip(&recon)
                .map(|(&d, &r)| ((d - r) as f64).powi(2))
                .sum::<f64>()
                / 256.0)
                .sqrt();
            rmse.push(e);
        }
        prop_assert!(rmse[2] <= rmse[1] + 1e-9 && rmse[1] <= rmse[0] + 1e-9, "rmse {:?}", rmse);
    }
}
