//! Offline shim for `rand` 0.8 — the subset this workspace uses.
//!
//! Provides [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] /
//! [`rngs::StdRng`] (both xoshiro256**, seeded via SplitMix64), and the
//! [`Rng`] extension trait with `gen_range`, `gen`, `gen_bool`. The
//! numeric streams differ from upstream rand, but are deterministic per
//! seed, which is all the workspace's seeded generators rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = splitmix64(&mut sm);
        }
        // Avoid the all-zero state (xoshiro's single fixed point).
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// Fast non-crypto generator (upstream: small-state xoshiro).
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    /// Default "standard" generator (upstream: ChaCha12; here xoshiro).
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed ^ 0x5EED_5EED_5EED_5EED))
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_range<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                // Clamp: rounding at the top of the range must not yield `hi`.
                if v as $t >= hi { lo } else { v as $t }
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_range_inclusive_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard {
    /// Draw one standard sample.
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for bool {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        f32::sample_range(rng, 0.0, 1.0)
    }
}

impl Standard for f64 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        f64::sample_range(rng, 0.0, 1.0)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// The user-facing extension trait (auto-implemented for every RngCore).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Standard-distribution sample (uniform `[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<G: RngCore> Rng for G {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i32 = rng.gen_range(4..32);
            assert!((4..32).contains(&i));
            let j: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&j));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
