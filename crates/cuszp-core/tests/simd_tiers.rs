//! Forced-dispatch differential suite: every [`SimdLevel`] tier the host
//! can run must produce streams and reconstructions **byte-identical**
//! to the scalar [`host_ref`] oracle — across element types, ragged
//! tails, non-finite inputs, wide residuals (the `F > 16` planes only
//! the AVX-512 chunk-pair kernels touch), and sparse zero-block data
//! (the fused decoders' fill exit). The tier is forced per call through
//! [`CuszpConfig::simd`] / the `_at` entry points, so all tiers are
//! exercised in one process regardless of `CUSZP_SIMD` (the env override
//! itself is covered by the forced-tier CI jobs).

use cuszp_core::{fast, host_ref, simd, CuszpConfig, FloatData, Scratch, SimdLevel};
use proptest::prelude::*;

/// The tiers this host can actually run (forcing above the detected
/// tier clamps down, which would silently test the same kernels twice).
fn tiers() -> Vec<SimdLevel> {
    SimdLevel::ALL
        .into_iter()
        .filter(|&l| l <= simd::detect_level())
        .collect()
}

/// Compress + decompress (owned and arena forms) at every runnable tier
/// and compare each against the scalar reference oracle.
fn assert_tiers_match_ref<T: FloatData + Default + Copy>(
    data: &[T],
    eb: f64,
    base: CuszpConfig,
) -> Result<(), TestCaseError> {
    let reference = host_ref::compress(data, eb, base);
    let ref_back: Vec<T> = host_ref::decompress(&reference);
    let mut scratch = Scratch::new();
    for level in tiers() {
        let cfg = CuszpConfig {
            simd: Some(level),
            ..base
        };
        let c = fast::compress(data, eb, cfg);
        prop_assert_eq!(&c, &reference, "compress differs at {}", level);
        let back = fast::decompress_threaded_at::<T>(&c, 1, Some(level));
        prop_assert_eq!(&back, &ref_back, "decompress differs at {}", level);
        // The arena path too, with the one scratch shared across tiers
        // (a dirty arena must never leak one tier's state into another).
        let mut into_back = vec![T::default(); data.len()];
        fast::decompress_into_at(c.as_ref(), &mut scratch, Some(level), &mut into_back);
        prop_assert_eq!(
            &into_back,
            &ref_back,
            "decompress_into differs at {}",
            level
        );
    }
    Ok(())
}

/// Lengths on, just before, and just after block boundaries.
fn awkward_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..700,
        Just(31usize),
        Just(32),
        Just(33),
        Just(255),
        Just(256),
        Just(257),
        Just(4096),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn f32_tiers_byte_identical(
        len in awkward_len(),
        seed in any::<u64>(),
        eb in 1e-5f64..1.0,
        lorenzo in any::<bool>(),
    ) {
        let mut s = seed | 1;
        let data: Vec<f32> = (0..len).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 20_000) as f32 - 10_000.0) * 0.37
        }).collect();
        assert_tiers_match_ref(&data, eb, CuszpConfig { lorenzo, ..Default::default() })?;
    }

    #[test]
    fn f64_tiers_byte_identical(
        len in awkward_len(),
        seed in any::<u64>(),
        eb in 1e-6f64..0.5,
        lorenzo in any::<bool>(),
    ) {
        let mut s = seed | 1;
        let data: Vec<f64> = (0..len).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 2_000_000) as f64 - 1_000_000.0) * 1.3e-2
        }).collect();
        assert_tiers_match_ref(&data, eb, CuszpConfig { lorenzo, ..Default::default() })?;
    }

    #[test]
    fn wide_residual_f64_tiers_identical(
        len in awkward_len(),
        seed in any::<u64>(),
        // Amplitudes up to 1e17 with bounds down to 1e-6 push F through
        // every chunk pair up to the 64-plane cap (and into quantizer
        // saturation) — the planes only the wide-F kernels handle.
        amp in prop_oneof![Just(1e6f64), Just(1e9), Just(1e13), Just(1e17)],
        eb in prop_oneof![Just(1e-6f64), Just(1e-3), Just(1.0)],
    ) {
        let mut s = seed | 1;
        let data: Vec<f64> = (0..len).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 2_000_001) as f64 / 1_000_000.0 - 1.0) * amp
        }).collect();
        assert_tiers_match_ref(&data, eb, CuszpConfig::default())?;
    }

    #[test]
    fn non_finite_inputs_tiers_identical(
        len in 32usize..600,
        seed in any::<u64>(),
        eb in 1e-4f64..0.5,
    ) {
        // NaN and ±∞ scattered through otherwise ordinary data: the
        // saturating quantize fix-ups must agree with scalar `as` casts
        // at every tier, in every lane position.
        let mut s = seed | 1;
        let data: Vec<f32> = (0..len).map(|i| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            match (s >> 24) % 11 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => f32::MAX * if i % 2 == 0 { 1.0 } else { -1.0 },
                _ => ((s % 9_000) as f32 - 4_500.0) * 0.21,
            }
        }).collect();
        assert_tiers_match_ref(&data, eb, CuszpConfig::default())?;
    }

    #[test]
    fn sparse_data_tiers_identical(
        len in awkward_len(),
        seed in any::<u64>(),
    ) {
        // Mostly zero blocks with occasional spikes: exercises the fused
        // decoders' zero-fill exit against blocks that do decode.
        let mut s = seed | 1;
        let data: Vec<f64> = (0..len).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            if s.is_multiple_of(97) { ((s % 1_000) as f64 - 500.0) * 0.3 } else { 0.0 }
        }).collect();
        assert_tiers_match_ref(&data, 0.01, CuszpConfig::default())?;
    }

    #[test]
    fn non_default_block_len_tiers_identical(
        seed in any::<u64>(),
        block_len in prop_oneof![Just(8usize), Just(16), Just(64), Just(128)],
    ) {
        // Any L ≠ 32 must fall back to the portable strip codec at every
        // tier (the vector block codec is L = 32 only) — same bytes.
        let mut s = seed | 1;
        let data: Vec<f32> = (0..777).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 30_000) as f32 - 15_000.0) * 0.11
        }).collect();
        assert_tiers_match_ref(&data, 0.01, CuszpConfig { block_len, ..Default::default() })?;
    }
}

#[test]
fn forcing_above_detected_clamps_down() {
    // Requesting a tier the host lacks must degrade gracefully (clamp to
    // the detected tier), never fault — and still match the oracle.
    let data: Vec<f32> = (0..500).map(|i| (i as f32 * 0.1).sin() * 50.0).collect();
    assert_tiers_match_ref(&data, 0.01, CuszpConfig::default()).unwrap();
    let forced = CuszpConfig {
        simd: Some(SimdLevel::Avx512),
        ..Default::default()
    };
    let c = fast::compress(&data, 0.01, forced);
    assert_eq!(c, host_ref::compress(&data, 0.01, CuszpConfig::default()));
}

#[test]
fn empty_and_constant_inputs_all_tiers() {
    assert_tiers_match_ref::<f32>(&[], 0.1, CuszpConfig::default()).unwrap();
    for v in [0.0f64, 1.25, -7.5] {
        let data = vec![v; 300];
        assert_tiers_match_ref(&data, 0.01, CuszpConfig::default()).unwrap();
    }
}
