//! Compression-ratio and bit-rate accounting (Table 3, Figs 17/18 x-axes).

use serde::{Deserialize, Serialize};

/// Size accounting for one compression run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Original size in bytes.
    pub original_bytes: u64,
    /// Compressed size in bytes.
    pub compressed_bytes: u64,
}

impl CompressionStats {
    /// From element count (assumes `f32` data) and a compressed byte count.
    pub fn for_f32(elements: usize, compressed_bytes: u64) -> Self {
        CompressionStats {
            original_bytes: (elements * 4) as u64,
            compressed_bytes,
        }
    }

    /// Compression ratio `original / compressed` (paper §2.1).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            f64::INFINITY
        } else {
            self.original_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Bit rate: mean compressed bits per data point (32 / ratio for `f32`).
    pub fn bit_rate(&self) -> f64 {
        if self.original_bytes == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 * 8.0 / (self.original_bytes as f64 / 4.0)
        }
    }
}

/// `(min, max, mean)` summary of a set of ratios — one Table 3 cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RatioSummary {
    /// Smallest per-field ratio.
    pub min: f64,
    /// Largest per-field ratio.
    pub max: f64,
    /// Mean per-field ratio.
    pub avg: f64,
}

impl RatioSummary {
    /// Summarize a non-empty slice of ratios.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn of(ratios: &[f64]) -> Self {
        assert!(!ratios.is_empty(), "no ratios to summarize");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &r in ratios {
            min = min.min(r);
            max = max.max(r);
            sum += r;
        }
        RatioSummary {
            min,
            max,
            avg: sum / ratios.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bit_rate() {
        let s = CompressionStats::for_f32(1000, 500);
        assert_eq!(s.original_bytes, 4000);
        assert!((s.ratio() - 8.0).abs() < 1e-12);
        assert!((s.bit_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bit_rate_inverse_of_ratio() {
        let s = CompressionStats::for_f32(4096, 1024);
        assert!((s.bit_rate() * s.ratio() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn zero_compressed_is_infinite_ratio() {
        let s = CompressionStats::for_f32(10, 0);
        assert!(s.ratio().is_infinite());
    }

    #[test]
    fn summary() {
        let r = RatioSummary::of(&[2.0, 8.0, 5.0]);
        assert_eq!(r.min, 2.0);
        assert_eq!(r.max, 8.0);
        assert!((r.avg - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_summary_panics() {
        RatioSummary::of(&[]);
    }
}
