//! Kernel launch machinery: grid configuration, per-block context, and the
//! in-order dynamic block scheduler.
//!
//! ## Scheduling guarantee
//!
//! Chained-scan ("StreamScan", decoupled-lookback) algorithms — including
//! cuSZp's in-kernel Global Synchronization — require that when a thread
//! block begins executing, every lower-numbered block has already *started*
//! (so spinning on a predecessor's flag terminates). Real GPUs provide this
//! by dispatching blocks in `blockIdx` order (or by re-deriving a "virtual
//! block id" from an atomic counter). The executor here does exactly the
//! latter: a pool of workers repeatedly `fetch_add`s the next block id and
//! runs that block to completion. A block can therefore only ever wait on a
//! predecessor that is finished or currently running on another worker —
//! deadlock-free for any pool size ≥ 1, including the degenerate
//! single-worker pool used on this machine.

use crate::counters::TrafficCounters;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Grid geometry for a launch.
///
/// Following cuSZp's tuning ("we set only one warp for each thread block"),
/// a block is one warp of 32 threads unless stated otherwise; the
/// simulation's cost model is insensitive to the warps-per-block choice, so
/// only the grid size matters here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: usize,
}

impl LaunchConfig {
    /// A grid of `blocks` thread blocks.
    pub fn grid(blocks: usize) -> Self {
        LaunchConfig {
            grid_blocks: blocks,
        }
    }

    /// Grid sized to cover `items` items at `per_block` items per block.
    pub fn cover(items: usize, per_block: usize) -> Self {
        assert!(per_block > 0, "per_block must be positive");
        LaunchConfig {
            grid_blocks: items.div_ceil(per_block),
        }
    }
}

/// Per-block execution context handed to the kernel closure.
///
/// Carries the block id and the traffic recorder. Recording conventions:
/// kernels charge the bytes they actually move through global memory and
/// the serialized ops on their critical path, tagged with the pipeline step
/// so breakdown figures can be regenerated.
pub struct BlockCtx {
    /// This block's id in `[0, grid_blocks)`.
    pub block: usize,
    counters: TrafficCounters,
}

impl BlockCtx {
    /// Record coalesced global reads for `step`.
    #[inline]
    pub fn read(&mut self, step: &'static str, bytes: u64) {
        self.counters.read(step, bytes);
    }

    /// Record coalesced global writes for `step`.
    #[inline]
    pub fn write(&mut self, step: &'static str, bytes: u64) {
        self.counters.write(step, bytes);
    }

    /// Record strided / byte-granular global reads for `step`.
    #[inline]
    pub fn read_strided(&mut self, step: &'static str, bytes: u64) {
        self.counters.read_strided(step, bytes);
    }

    /// Record strided / byte-granular global writes for `step`.
    #[inline]
    pub fn write_strided(&mut self, step: &'static str, bytes: u64) {
        self.counters.write_strided(step, bytes);
    }

    /// Record serialized ops for `step`.
    #[inline]
    pub fn ops(&mut self, step: &'static str, n: u64) {
        self.counters.ops(step, n);
    }
}

/// Execute `grid_blocks` blocks of `f` over `workers` OS threads with
/// in-order dynamic block dispatch, returning the merged traffic counters.
///
/// `workers` is clamped to `[1, grid_blocks]`.
pub fn run_grid<F>(cfg: LaunchConfig, workers: usize, f: F) -> TrafficCounters
where
    F: Fn(&mut BlockCtx) + Sync,
{
    let grid = cfg.grid_blocks;
    if grid == 0 {
        return TrafficCounters::new();
    }
    let workers = workers.clamp(1, grid);
    let next = AtomicUsize::new(0);
    let merged = Mutex::new(TrafficCounters::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = TrafficCounters::new();
                loop {
                    let block = next.fetch_add(1, Ordering::Relaxed);
                    if block >= grid {
                        break;
                    }
                    let mut ctx = BlockCtx {
                        block,
                        counters: std::mem::take(&mut local),
                    };
                    f(&mut ctx);
                    local = ctx.counters;
                }
                merged.lock().merge(&local);
            });
        }
    });

    merged.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceBuffer;

    #[test]
    fn cover_rounds_up() {
        assert_eq!(LaunchConfig::cover(100, 32).grid_blocks, 4);
        assert_eq!(LaunchConfig::cover(96, 32).grid_blocks, 3);
        assert_eq!(LaunchConfig::cover(0, 32).grid_blocks, 0);
    }

    #[test]
    #[should_panic]
    fn cover_zero_per_block_panics() {
        LaunchConfig::cover(10, 0);
    }

    #[test]
    fn every_block_runs_exactly_once() {
        let buf = DeviceBuffer::<u32>::zeroed(257);
        let counters = run_grid(LaunchConfig::grid(257), 4, |ctx| {
            let s = buf.slice();
            s.set(ctx.block, s.get(ctx.block) + 1);
            ctx.ops("tick", 1);
        });
        assert!(buf.to_host().iter().all(|&v| v == 1));
        assert_eq!(counters.get("tick").unwrap().ops, 257);
    }

    #[test]
    fn zero_grid_is_noop() {
        let counters = run_grid(LaunchConfig::grid(0), 4, |_| panic!("no blocks"));
        assert!(counters.is_empty());
    }

    #[test]
    fn predecessor_blocks_always_observable() {
        // A block spins until its predecessor publishes; must terminate for
        // any worker count thanks to in-order dispatch.
        use crate::memory::DeviceAtomics;
        let flags = DeviceAtomics::zeroed(64);
        for workers in [1, 2, 7] {
            flags.reset();
            run_grid(LaunchConfig::grid(64), workers, |ctx| {
                if ctx.block > 0 {
                    let mut spins = 0u64;
                    while flags.load(ctx.block - 1) == 0 {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                        spins += 1;
                        assert!(spins < 1_000_000_000, "lookback livelock");
                    }
                }
                flags.store(ctx.block, ctx.block as u64 + 1);
            });
            assert_eq!(flags.load(63), 64);
        }
    }

    #[test]
    fn counters_merge_across_workers() {
        let counters = run_grid(LaunchConfig::grid(100), 3, |ctx| {
            ctx.read("in", 8);
            ctx.write("out", 4);
            ctx.ops("math", ctx.block as u64);
        });
        assert_eq!(counters.get("in").unwrap().bytes_read, 800);
        assert_eq!(counters.get("out").unwrap().bytes_written, 400);
        assert_eq!(counters.get("math").unwrap().ops, (0..100u64).sum());
    }
}
